"""Span trees: deterministic ids, injectable-clock durations, the
never-reads-the-clock null builder, and the bounded trace ring."""

import json

import pytest

from repro.obs.sinks import JsonlSink, read_trace
from repro.obs.tracing import (
    NULL_TRACE_BUILDER,
    NullTraceBuilder,
    Span,
    TraceBuilder,
    TraceRecorder,
    format_trace_id,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTraceId:
    def test_sixteen_hex_zero_padded(self):
        assert format_trace_id(1) == "0000000000000001"
        assert format_trace_id(0xDEADBEEF) == "00000000deadbeef"
        assert len(format_trace_id(2**63)) == 16

    def test_sequence_order_is_lexicographic_order(self):
        ids = [format_trace_id(n) for n in (1, 9, 10, 255, 256)]
        assert ids == sorted(ids)


class TestTraceBuilder:
    def test_span_tree_shape_and_durations(self):
        clock = FakeClock()
        builder = TraceBuilder("01", 1, clock)
        with builder.span("admission"):
            clock.advance(0.5)
        with builder.span("attempt", number=1):
            with builder.span("machine-run"):
                clock.advance(2.0)
        trace = builder.finish()
        assert trace.span_names() == [
            "request",
            "admission",
            "attempt",
            "machine-run",
        ]
        assert trace.find("admission").duration == pytest.approx(0.5)
        assert trace.find("machine-run").duration == pytest.approx(2.0)
        assert trace.find("attempt").attrs == {"number": 1}
        assert trace.find("nope") is None

    def test_annotate_targets_innermost_open_span(self):
        builder = TraceBuilder("01", 1, FakeClock())
        with builder.span("outer"):
            with builder.span("inner"):
                builder.annotate(kind="value", steps=7)
        trace = builder.finish()
        assert trace.find("inner").attrs == {"kind": "value", "steps": 7}
        assert trace.find("outer").attrs == {}

    def test_finish_closes_unclosed_spans(self):
        clock = FakeClock()
        builder = TraceBuilder("01", 1, clock)
        clock.advance(1.0)
        trace = builder.finish()  # root still open
        assert trace.root.end is not None
        assert trace.root.duration == pytest.approx(1.0)

    def test_finish_is_idempotent(self):
        builder = TraceBuilder("01", 1, FakeClock())
        assert builder.finish() is builder.finish()

    def test_as_dict_carries_identity_and_parent(self):
        builder = TraceBuilder("02", 5, FakeClock(), parent="01")
        with builder.span("render", status="value"):
            pass
        record = builder.finish().as_dict()
        assert record["trace_id"] == "02"
        assert record["request_id"] == 5
        assert record["parent"] == "01"
        assert record["spans"]["name"] == "request"
        child = record["spans"]["children"][0]
        assert child["name"] == "render"
        assert child["attrs"] == {"status": "value"}
        json.dumps(record)  # JSONL-exportable

    def test_orphan_trace_omits_parent(self):
        builder = TraceBuilder("01", 1, FakeClock())
        assert "parent" not in builder.finish().as_dict()

    def test_span_dict_durations_rounded_to_nanoseconds(self):
        span = Span("s", 0.0)
        span.end = 0.1234567894
        assert span.as_dict()["duration_seconds"] == 0.123456789


class TestNullTraceBuilder:
    def test_never_reads_the_clock(self):
        """The clock-read-sequence guarantee: telemetry off must not
        shift deadline arithmetic by even one read."""

        def exploding_clock():
            raise AssertionError("null builder read the clock")

        builder = NullTraceBuilder()
        with builder.span("anything", attr=1):
            builder.annotate(more=2)
        assert builder.finish() is None
        del exploding_clock  # the builder never had a clock to read

    def test_singleton_is_reusable(self):
        with NULL_TRACE_BUILDER.span("a"):
            pass
        assert NULL_TRACE_BUILDER.finish() is None
        assert NULL_TRACE_BUILDER.trace_id == ""


def _trace(n: int):
    builder = TraceBuilder(format_trace_id(n), n, FakeClock())
    return builder.finish()


class TestTraceRecorder:
    def test_record_and_get(self):
        recorder = TraceRecorder(capacity=4)
        recorder.record(_trace(1))
        assert recorder.get(format_trace_id(1)).request_id == 1
        assert recorder.recorded == 1

    def test_ring_evicts_oldest_and_its_index_entry(self):
        recorder = TraceRecorder(capacity=2)
        for n in (1, 2, 3):
            recorder.record(_trace(n))
        assert recorder.get(format_trace_id(1)) is None
        assert recorder.get(format_trace_id(2)) is not None
        assert recorder.get(format_trace_id(3)) is not None
        assert recorder.recorded == 3
        assert len(recorder.traces) == 2

    def test_record_none_is_a_no_op(self):
        recorder = TraceRecorder()
        recorder.record(None)
        assert recorder.recorded == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_jsonl_sink_receives_trace_events(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        recorder = TraceRecorder(capacity=4, sink=JsonlSink(str(path)))
        recorder.record(_trace(1))
        recorder.record(_trace(2))
        recorder.close()
        events = list(read_trace(str(path)))
        assert [e["event"] for e in events] == ["trace", "trace"]
        assert events[0]["trace_id"] == format_trace_id(1)
        assert events[0]["spans"]["name"] == "request"
