"""Unit tests for the span profiler (cost attribution)."""

from repro.api import compile_expr
from repro.lang.ast import Span
from repro.machine import Machine
from repro.machine.observe import observe
import pytest

from repro.obs import (
    ALLOC,
    FORCE,
    FORCE_END,
    PRIM_RAISE,
    RAISE,
    STEP,
    SpanProfiler,
    is_live,
)
from repro.obs.attribution import NO_SPAN, ROOT
from repro.prelude.loader import machine_env


class TestStackMachine:
    def test_steps_outside_any_force_go_to_root(self):
        profiler = SpanProfiler()
        profiler.emit(STEP, n=1)
        profiler.emit(STEP, n=2)
        assert profiler.totals[ROOT]["steps"] == 2
        assert profiler.folded == {(ROOT,): 2}

    def test_steps_inside_a_force_charge_its_span(self):
        profiler = SpanProfiler()
        span = Span(1, 1, 1, 5)
        profiler.emit(FORCE, depth=1, span=span)
        profiler.emit(STEP, n=1)
        profiler.emit(FORCE_END, depth=1)
        profiler.emit(STEP, n=2)
        assert profiler.totals["1:1-5"] == {
            "steps": 1, "allocs": 0, "forces": 1, "raises": 0,
        }
        assert profiler.totals[ROOT]["steps"] == 1
        assert profiler.folded == {(ROOT, "1:1-5"): 1, (ROOT,): 1}

    def test_nested_forces_build_stacks(self):
        profiler = SpanProfiler()
        outer, inner = Span(1, 1, 1, 9), Span(2, 1, 2, 9)
        profiler.emit(FORCE, depth=1, span=outer)
        profiler.emit(FORCE, depth=2, span=inner)
        profiler.emit(STEP, n=1)
        profiler.emit(FORCE_END, depth=2)
        profiler.emit(FORCE_END, depth=1)
        assert profiler.folded == {(ROOT, "1:1-9", "2:1-9"): 1}

    def test_spanless_force_uses_placeholder(self):
        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=None)
        profiler.emit(STEP, n=1)
        profiler.emit(FORCE_END, depth=1)
        assert profiler.totals[NO_SPAN]["steps"] == 1

    def test_allocs_and_raises_are_charged(self):
        profiler = SpanProfiler()
        span = Span(1, 1, 1, 5)
        profiler.emit(FORCE, depth=1, span=span)
        profiler.emit(ALLOC, kind="thunk")
        profiler.emit(RAISE, exc="DivideByZero", span=Span(3, 1, 3, 9))
        profiler.emit(FORCE_END, depth=1)
        assert profiler.totals["1:1-5"]["allocs"] == 1
        # A raise with its own span is charged to that span.
        assert profiler.totals["3:1-9"]["raises"] == 1

    def test_spanless_raise_charges_enclosing_frame(self):
        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=Span(1, 1, 1, 5))
        profiler.emit(RAISE, exc="NonTermination", span=None)
        profiler.emit(FORCE_END, depth=1)
        assert profiler.totals["1:1-5"]["raises"] == 1

    def test_prim_raise_charged_to_the_primitive_span(self):
        # `prim-raise` (DivideByZero/Overflow from a checked ⊕) carries
        # the primitive application's span and is charged there, not to
        # the enclosing force frame.
        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=Span(1, 1, 1, 5))
        profiler.emit(PRIM_RAISE, exc="DivideByZero", span=Span(2, 1, 2, 8))
        profiler.emit(FORCE_END, depth=1)
        assert profiler.totals["2:1-8"]["raises"] == 1
        assert profiler.totals["1:1-5"]["raises"] == 0

    def test_spanless_prim_raise_charges_enclosing_frame(self):
        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=Span(1, 1, 1, 5))
        profiler.emit(PRIM_RAISE, exc="Overflow", span=None)
        profiler.emit(FORCE_END, depth=1)
        assert profiler.totals["1:1-5"]["raises"] == 1

    def test_profiler_is_a_live_sink(self):
        assert is_live(SpanProfiler())


class TestOutputs:
    def test_folded_lines_format(self):
        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=Span(1, 1, 1, 5))
        profiler.emit(STEP, n=1)
        profiler.emit(STEP, n=2)
        profiler.emit(FORCE_END, depth=1)
        profiler.emit(STEP, n=3)
        assert profiler.folded_lines() == [
            f"{ROOT} 1",
            f"{ROOT};1:1-5 2",
        ]

    def test_table_rows_hottest_first(self):
        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=Span(1, 1, 1, 5))
        profiler.emit(STEP, n=1)
        profiler.emit(FORCE_END, depth=1)
        for n in range(3):
            profiler.emit(STEP, n=n)
        rows = profiler.table_rows()
        assert rows[0][0] == ROOT
        assert rows[0][1]["steps"] == 3

    def test_as_dict_round_trips_through_json(self):
        import json

        profiler = SpanProfiler()
        profiler.emit(FORCE, depth=1, span=Span(1, 1, 1, 5))
        profiler.emit(STEP, n=1)
        profiler.emit(FORCE_END, depth=1)
        data = json.loads(json.dumps(profiler.as_dict()))
        assert data["totals"]["1:1-5"]["steps"] == 1
        assert data["folded"][f"{ROOT};1:1-5"] == 1


class TestEndToEnd:
    def test_attribution_of_a_real_run(self):
        # An explicit raise (the RAISE event covers `raise` and
        # pattern-match failure, matching stats.raises) is charged to
        # its own source span.
        profiler = SpanProfiler()
        machine = Machine()
        env = machine_env(machine)
        observe(
            compile_expr("sum [1, raise DivideByZero, 3]"),
            env=env,
            machine=machine,
            sink=profiler,
        )
        raised = {
            label: counters["raises"]
            for label, counters in profiler.totals.items()
            if counters["raises"]
        }
        assert raised, "the raise was not attributed anywhere"
        assert sum(raised.values()) == machine.stats.raises
        # The charged label is a real span, not the fallback frames.
        assert all(
            label not in (ROOT, NO_SPAN) for label in raised
        )
        # Steps were attributed and the totals agree with the machine.
        total_steps = sum(
            c["steps"] for c in profiler.totals.values()
        )
        assert total_steps == machine.stats.steps

    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_prim_raise_attribution_end_to_end(self, backend):
        # A division by zero has no `raise` expression; the distinct
        # prim-raise event lets the profiler charge it to the `div`
        # application's span — identically on both backends.
        expr = compile_expr("let { f = \\x -> x `div` 0 } in f 3 + 2")
        profiler = SpanProfiler()
        machine = Machine(backend=backend)
        outcome = observe(
            expr, env=machine_env(machine), machine=machine, sink=profiler
        )
        assert outcome.exc.name == "DivideByZero"
        # The div site (1:17-26) gets the charge; stats.raises stays 0
        # (prim-raise is deliberately not in lockstep with it).
        assert profiler.totals["1:17-26"]["raises"] == 1
        assert machine.stats.raises == 0

    def test_prim_raise_and_raise_streams_agree_across_backends(self):
        expr = compile_expr("(1 `div` 0) + raise Overflow")
        streams = {}
        for backend in ("ast", "compiled"):
            profiler = SpanProfiler()
            machine = Machine(backend=backend)
            observe(
                expr,
                env=machine_env(machine),
                machine=machine,
                sink=profiler,
            )
            streams[backend] = profiler.as_dict()
        assert streams["ast"] == streams["compiled"]

    def test_attribution_does_not_perturb_counters(self):
        expr = compile_expr("sum [1, 2, 3]")
        plain = Machine()
        observe(expr, env=machine_env(plain), machine=plain)
        profiled = Machine()
        observe(
            expr,
            env=machine_env(profiled),
            machine=profiled,
            sink=SpanProfiler(),
        )
        assert (
            plain.stats.snapshot().as_dict()
            == profiled.stats.snapshot().as_dict()
        )
