"""Behavioural tests for ``repro.obs.profile.profile_source``."""

import json

import pytest

from repro.obs import EXCSET_JOIN, STEP, read_trace
from repro.obs.profile import ProfileReport, profile_source


class TestMachineLayer:
    def test_basic_report(self):
        report = profile_source("sum [1, 2, 3]")
        assert report.layer == "machine"
        assert report.outcome == "6"
        assert report.machine_stats is not None
        assert report.machine_stats["steps"] > 0
        # The sink saw exactly what the machine counted.
        assert report.events[STEP] == report.machine_stats["steps"]
        assert {"parse", "prelude-env", "machine-eval"} <= set(
            report.phases
        )

    def test_exceptional_outcome(self):
        report = profile_source("1 `div` 0")
        assert "DivideByZero" in report.outcome

    def test_trace_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        report = profile_source("1 + 2", trace=path)
        records = read_trace(path)
        steps = [r for r in records if r["event"] == STEP]
        assert len(steps) == report.machine_stats["steps"]
        assert report.trace_path == path


class TestDenoteLayer:
    def test_denote_report(self):
        report = profile_source(
            "(1 `div` 0) + raise Overflow", layer="denote"
        )
        assert report.machine_stats is None
        assert "DivideByZero" in report.denotation
        assert "Overflow" in report.denotation
        assert report.denote_stats["steps"] > 0
        assert report.denote_stats["excset_joins"] >= 1
        # A two-exception union lands in the width histogram.
        assert 2 in report.set_width_histogram

    def test_both_layers(self):
        report = profile_source("1 + 2", layer="both")
        assert report.outcome == "3"
        assert report.denotation == "Ok 3"
        assert report.machine_stats is not None
        assert report.denote_stats is not None

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError):
            profile_source("1", layer="compile")


class TestRendering:
    def test_json_is_valid_and_complete(self):
        report = profile_source("1 + 2")
        data = json.loads(report.to_json())
        assert data["source"] == "1 + 2"
        assert data["outcome"] == "3"
        assert data["machine_stats"]["steps"] == report.events[STEP]

    def test_table_mentions_key_sections(self):
        table = profile_source("1 + 2", layer="both").to_table()
        assert "machine stats" in table
        assert "denotational stats" in table
        assert "events" in table
        assert "phases (seconds)" in table

    def test_report_is_plain_dataclass(self):
        report = ProfileReport(source="x", layer="machine")
        assert report.as_dict()["source"] == "x"


class TestCompiledBackendProfile:
    """``repro profile --backend compiled``: the report names its
    backend and reports exactly the AST walker's numbers."""

    SOURCE = (
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 9"
    )

    def test_report_names_its_backend(self):
        ast = profile_source(self.SOURCE, backend="ast")
        compiled = profile_source(self.SOURCE, backend="compiled")
        assert ast.backend == "ast"
        assert compiled.backend == "compiled"
        assert "backend  compiled" in compiled.to_table()
        assert compiled.as_dict()["backend"] == "compiled"

    def test_counters_match_ast_exactly(self):
        ast = profile_source(self.SOURCE, backend="ast")
        compiled = profile_source(self.SOURCE, backend="compiled")
        assert ast.machine_stats == compiled.machine_stats
        assert ast.events == compiled.events
        assert ast.outcome == compiled.outcome

    def test_attribution_matches_ast_exactly(self):
        ast = profile_source(
            self.SOURCE, backend="ast", attribution=True
        )
        compiled = profile_source(
            self.SOURCE, backend="compiled", attribution=True
        )
        assert ast.span_totals == compiled.span_totals
        assert ast.span_totals  # attribution actually ran

    def test_flame_output_identical(self, tmp_path):
        paths = {}
        for backend in ("ast", "compiled"):
            path = tmp_path / f"{backend}.folded"
            report = profile_source(
                self.SOURCE, backend=backend, flame=str(path)
            )
            assert report.flame_path == str(path)
            paths[backend] = path.read_text()
        assert paths["ast"] == paths["compiled"]
        assert paths["ast"].strip(), "folded output is empty"

    def test_attribution_off_by_default(self):
        report = profile_source(self.SOURCE)
        assert report.span_totals is None
        assert report.flame_path is None
        assert "span attribution" not in report.to_table()
