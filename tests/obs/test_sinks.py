"""Unit tests for the sink zoo, the event taxonomy and the timers."""

import io
import json

import pytest

from repro.obs import (
    DENOTE_EVENTS,
    EVENT_TAXONOMY,
    EXCSET_JOIN,
    MACHINE_EVENTS,
    NULL_SINK,
    PHASE_END,
    PHASE_START,
    STEP,
    CountingSink,
    JsonlSink,
    NullSink,
    PhaseTimer,
    RingBufferSink,
    TeeSink,
    TraceSink,
    is_live,
    read_trace,
)


class TestLiveness:
    def test_none_and_null_are_not_live(self):
        assert not is_live(None)
        assert not is_live(NULL_SINK)
        assert not is_live(NullSink())

    def test_real_sinks_are_live(self):
        assert is_live(CountingSink())
        assert is_live(RingBufferSink(4))

    def test_sinks_satisfy_the_protocol(self):
        for sink in (
            NullSink(),
            CountingSink(),
            RingBufferSink(4),
            TeeSink(CountingSink()),
        ):
            assert isinstance(sink, TraceSink)


class TestCountingSink:
    def test_counts_by_name(self):
        sink = CountingSink()
        sink.emit(STEP, n=1)
        sink.emit(STEP, n=2)
        sink.emit("alloc", kind="thunk")
        assert sink.count(STEP) == 2
        assert sink.count("alloc") == 1
        assert sink.count("never") == 0
        assert sink.as_dict() == {"alloc": 1, STEP: 2}

    def test_width_histogram(self):
        sink = CountingSink()
        for width in (1, 2, 2, 3):
            sink.emit(EXCSET_JOIN, site="prim", width=width, infinite=False)
        assert sink.width_histograms[EXCSET_JOIN] == {1: 1, 2: 2, 3: 1}


class TestRingBufferSink:
    def test_keeps_most_recent(self):
        sink = RingBufferSink(capacity=3)
        for n in range(10):
            sink.emit(STEP, n=n)
        assert len(sink) == 3
        assert [r["n"] for r in sink.events] == [7, 8, 9]
        assert all(r["event"] == STEP for r in sink.events)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonlSink:
    def test_writes_to_file_like(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(STEP, n=1)
        sink.emit("raise", exc="Overflow")
        sink.close()
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert lines == [
            {"seq": 1, "event": STEP, "n": 1},
            {"seq": 2, "event": "raise", "exc": "Overflow"},
        ]

    def test_round_trips_through_a_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.emit(STEP, n=1)
        assert read_trace(path) == [{"seq": 1, "event": STEP, "n": 1}]

    def test_close_is_idempotent_and_silences_emit(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.emit(STEP, n=1)
        sink.close()
        sink.close()
        sink.emit(STEP, n=2)  # dropped, not an error
        assert len(read_trace(path)) == 1

    def test_non_json_payloads_are_stringified(self):
        buf = io.StringIO()
        JsonlSink(buf).emit("weird", value=object())
        assert "weird" in buf.getvalue()


class TestTeeSink:
    def test_fans_out(self):
        a, b = CountingSink(), CountingSink()
        tee = TeeSink(a, b)
        tee.emit(STEP, n=1)
        assert a.count(STEP) == b.count(STEP) == 1

    def test_drops_dead_members(self):
        a = CountingSink()
        tee = TeeSink(NULL_SINK, a, None)  # type: ignore[arg-type]
        assert tee.sinks == (a,)


class TestTaxonomy:
    def test_layer_partitions(self):
        assert set(MACHINE_EVENTS).isdisjoint(DENOTE_EVENTS)
        for name, spec in EVENT_TAXONOMY.items():
            assert spec.name == name
            assert spec.layer in ("machine", "denote", "io", "timer")
            assert spec.fields
            assert spec.description

    def test_core_events_present(self):
        for name in (
            "step",
            "alloc",
            "force",
            "blackhole-enter",
            "raise",
            "async-interrupt",
            "fuel-grant",
            "io-action",
            "excset-join",
            "case-exception-mode-enter",
        ):
            assert name in EVENT_TAXONOMY


class TestPhaseTimer:
    def test_accumulates_durations(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        first = timer.durations["work"]
        with timer.phase("work"):
            pass
        assert timer.durations["work"] >= first
        assert set(timer.as_dict()) == {"work"}

    def test_emits_phase_events(self):
        sink = CountingSink()
        timer = PhaseTimer(sink)
        with timer.phase("a"):
            with timer.phase("b"):
                pass
        assert sink.count(PHASE_START) == 2
        assert sink.count(PHASE_END) == 2

    def test_null_sink_receives_nothing(self):
        timer = PhaseTimer(NULL_SINK)
        with timer.phase("a"):
            pass
        assert timer._sink is None

    def test_records_duration_even_when_body_raises(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("bad"):
                raise RuntimeError("boom")
        assert "bad" in timer.durations


class TestTeeLiveness:
    """An all-dead tee is itself dead — fanning out to nobody must
    cost nothing (the same structural-zero rule as the null sink)."""

    def test_empty_tee_is_not_live(self):
        assert not is_live(TeeSink())

    def test_tee_of_only_dead_members_is_not_live(self):
        assert not is_live(TeeSink(NullSink(), NULL_SINK))

    def test_tee_with_one_live_member_is_live(self):
        assert is_live(TeeSink(NullSink(), CountingSink()))

    def test_dead_members_dropped_at_construction(self):
        live = CountingSink()
        tee = TeeSink(NullSink(), live, NULL_SINK)
        assert tee.sinks == (live,)

    def test_attach_sink_treats_dead_tee_as_nothing(self):
        from repro.machine import Machine

        machine = Machine()
        machine.attach_sink(TeeSink(NullSink()))
        assert machine._tracing is False
        machine.attach_sink(TeeSink(CountingSink()))
        assert machine._tracing is True

    def test_dead_tee_does_not_perturb_machine(self):
        from repro.api import compile_expr
        from repro.machine import Machine
        from repro.prelude.loader import machine_env

        expr = compile_expr("sum [1, 2, 3]")
        bare = Machine()
        bare.eval(expr, machine_env(bare))
        teed = Machine(sink=TeeSink(NullSink()))
        teed.eval(expr, machine_env(teed))
        assert bare.stats.steps == teed.stats.steps


class TestRingBufferWrapAround:
    def test_wrap_around_keeps_exactly_capacity(self):
        sink = RingBufferSink(capacity=3)
        for n in range(10):
            sink.emit(STEP, n=n)
        assert len(sink) == 3
        assert [r["n"] for r in sink.events] == [7, 8, 9]

    def test_below_capacity_keeps_everything(self):
        sink = RingBufferSink(capacity=8)
        for n in range(5):
            sink.emit(STEP, n=n)
        assert len(sink) == 5

    def test_wrap_around_preserves_event_names(self):
        sink = RingBufferSink(capacity=2)
        sink.emit("alloc", kind="thunk")
        sink.emit(STEP, n=1)
        sink.emit("force", depth=1, span=None)
        assert [r["event"] for r in sink.events] == [STEP, "force"]


class TestWidthHistograms:
    def test_histograms_are_keyed_by_event_name(self):
        sink = CountingSink()
        sink.emit(EXCSET_JOIN, site="prim", width=2, infinite=False)
        sink.emit(EXCSET_JOIN, site="case", width=2, infinite=False)
        sink.emit(EXCSET_JOIN, site="prim", width=3, infinite=False)
        sink.emit("other-join", width=2)
        assert sink.width_histograms[EXCSET_JOIN] == {2: 2, 3: 1}
        assert sink.width_histograms["other-join"] == {2: 1}

    def test_events_without_width_do_not_histogram(self):
        sink = CountingSink()
        sink.emit(STEP, n=1)
        assert sink.width_histograms == {}


class TestJsonlCloseEdgeCases:
    def test_double_close_of_owned_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        sink.emit(STEP, n=1)
        sink.close()
        sink.close()  # idempotent: second close is a no-op
        sink.emit(STEP, n=2)  # silently dropped after close
        assert len(read_trace(str(path))) == 1

    def test_close_flushes_but_keeps_borrowed_handle_open(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        sink.emit(STEP, n=1)
        sink.close()
        sink.close()
        assert not handle.closed
        assert json.loads(handle.getvalue())["n"] == 1
