"""Metrics instruments: deterministic bucket counts and percentiles,
Prometheus exposition round-trips, the null registry's emptiness, and
the fleet's shard-merge arithmetic."""

import math

import pytest

from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    STEP_BUCKETS,
    histogram_stats,
    log_buckets,
    parse_exposition,
    percentile_from_counts,
    render_exposition,
)


class TestLogBuckets:
    def test_geometric_shape(self):
        assert log_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_defaults_are_sorted_and_wide(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert LATENCY_BUCKETS[0] == pytest.approx(0.0001)
        assert LATENCY_BUCKETS[-1] > 50.0
        assert STEP_BUCKETS[0] == 1.0
        assert STEP_BUCKETS[-1] > 4_000_000

    @pytest.mark.parametrize(
        "start,factor,count", [(0, 2, 3), (1, 1, 3), (1, 2, 0)]
    )
    def test_rejects_degenerate_parameters(self, start, factor, count):
        with pytest.raises(ValueError):
            log_buckets(start, factor, count)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c_total", "help")
        c.inc()
        c.inc(2)
        assert c.value() == 3

    def test_counters_only_go_up(self):
        c = Counter("c_total", "help")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = Counter("req_total", "help", labelnames=("status",))
        c.inc(status="value")
        c.inc(2, status="error")
        assert c.value(status="value") == 1
        assert c.value(status="error") == 2

    def test_wrong_labels_raise(self):
        c = Counter("req_total", "help", labelnames=("status",))
        with pytest.raises(ValueError):
            c.inc(other="x")

    def test_unlabelled_untouched_renders_zero_sample(self):
        c = Counter("quiet_total", "help")
        assert c.samples() == [("quiet_total", 0.0)]

    def test_callback_reads_through(self):
        c = Counter("hits_total", "help", callback=lambda: 41 + 1)
        assert c.samples() == [("hits_total", 42.0)]

    def test_callback_dict_becomes_labelled_samples(self):
        c = Counter(
            "trips_total", "help", callback=lambda: {"deadline": 2}
        )
        assert c.samples() == [('trips_total{key="deadline"}', 2.0)]


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("inflight", "help")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value() == 4


class TestHistogram:
    def test_observation_lands_in_first_covering_bucket(self):
        h = Histogram("h", "help", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        h.observe(2.0)  # boundary: value <= bound
        h.observe(100.0)  # +Inf
        assert h.bucket_counts() == [0, 2, 0, 1]
        assert h.count() == 3
        assert h.sum() == pytest.approx(103.5)

    def test_merge_counts_is_elementwise_addition(self):
        h = Histogram("h", "help", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.merge_counts([1, 2, 3])
        assert h.bucket_counts() == [2, 2, 3]

    def test_merge_counts_rejects_length_mismatch(self):
        h = Histogram("h", "help", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            h.merge_counts([1, 2])

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "help", buckets=(2.0, 1.0))

    def test_equal_counts_mean_equal_percentiles(self):
        """The determinism contract: percentiles are a pure function
        of the integer bucket counts."""
        a = Histogram("a", "help", buckets=STEP_BUCKETS)
        b = Histogram("b", "help", buckets=STEP_BUCKETS)
        for h in (a, b):
            for value in (3, 17, 17, 250, 90_000):
                h.observe(value)
        assert a.bucket_counts() == b.bucket_counts()
        assert a.quantiles() == b.quantiles()

    def test_empty_percentile_is_zero(self):
        h = Histogram("h", "help")
        assert h.percentile(0.5) == 0.0

    def test_inf_bucket_reports_largest_finite_bound(self):
        h = Histogram("h", "help", buckets=(1.0, 2.0))
        h.observe(1e9)
        assert h.percentile(0.99) == 2.0

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram("h", "help", buckets=(10.0, 20.0))
        for _ in range(4):
            h.observe(15.0)
        # rank 2 of 4 in (10, 20]: 10 + (2/4) * 10
        assert h.percentile(0.5) == pytest.approx(15.0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        first = reg.counter("c_total", "help")
        again = reg.counter("c_total", "ignored")
        assert first is again

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", "help")
        with pytest.raises(ValueError):
            reg.histogram("x", "help")

    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("b_total", "help")
        reg.gauge("a", "help")
        assert [f.name for f in reg.families()] == ["a", "b_total"]


class TestExposition:
    def test_render_parse_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", ("status",)).inc(
            3, status="value"
        )
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = reg.render()
        assert "# HELP req_total requests" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'req_total{status="value"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        families = parse_exposition(text)
        assert families["req_total"]["type"] == "counter"
        stats = histogram_stats(families, "lat_seconds")
        assert stats["counts"] == [1, 0, 1]
        assert stats["count"] == 2
        assert stats["sum"] == pytest.approx(5.05)

    def test_bucket_samples_are_cumulative(self):
        h = Histogram("h", "help", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        cumulative = [
            value
            for name, value in h.samples()
            if name.startswith("h_bucket")
        ]
        assert cumulative == [1, 2, 2]

    def test_percentile_from_counts_matches_histogram(self):
        h = Histogram("h", "help", buckets=LATENCY_BUCKETS)
        for v in (0.0002, 0.003, 0.003, 0.4):
            h.observe(v)
        stats = histogram_stats(
            parse_exposition(render_exposition([h])), "h"
        )
        for q in (0.5, 0.95, 0.99):
            assert percentile_from_counts(
                stats["bounds"], stats["counts"], q
            ) == pytest.approx(h.percentile(q))

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_exposition("!! not a sample line")

    def test_histogram_stats_absent_family_is_none(self):
        assert histogram_stats({}, "nope") is None

    def test_inf_values_survive_the_round_trip(self):
        families = parse_exposition('h_bucket{le="+Inf"} 3\n')
        (_name, labels, value) = families["h_bucket"]["samples"][0]
        assert labels["le"] == "+Inf"
        assert value == 3.0
        assert math.isfinite(value)


class TestNullRegistry:
    def test_render_is_empty(self):
        reg = NullRegistry()
        reg.counter("c", "help").inc(5)
        reg.histogram("h", "help").observe(1.0)
        reg.gauge("g", "help").set(3)
        assert reg.render() == ""
        assert reg.families() == []
        assert reg.get("c") is None

    def test_null_instrument_reads_zero(self):
        instrument = NullRegistry().histogram("h", "help")
        instrument.observe(10.0)
        assert instrument.count() == 0
        assert instrument.bucket_counts() == []
        assert instrument.quantiles() == {
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
