"""Unification and substitution unit tests."""

import pytest

from repro.types.types import (
    INT,
    STRING,
    Scheme,
    TCon,
    TFun,
    TVar,
    free_type_vars,
    fun,
)
from repro.types.unify import UnifyError, apply_subst, unify


class TestUnify:
    def test_var_binds(self):
        subst = {}
        unify(TVar("a"), INT, subst)
        assert apply_subst(subst, TVar("a")) == INT

    def test_symmetric(self):
        subst = {}
        unify(INT, TVar("a"), subst)
        assert apply_subst(subst, TVar("a")) == INT

    def test_same_var(self):
        subst = {}
        unify(TVar("a"), TVar("a"), subst)
        assert subst == {}

    def test_constructor_args(self):
        subst = {}
        unify(
            TCon("List", (TVar("a"),)), TCon("List", (INT,)), subst
        )
        assert apply_subst(subst, TVar("a")) == INT

    def test_function_types(self):
        subst = {}
        unify(TFun(TVar("a"), TVar("b")), fun(INT, STRING), subst)
        assert apply_subst(subst, TVar("a")) == INT
        assert apply_subst(subst, TVar("b")) == STRING

    def test_mismatch(self):
        with pytest.raises(UnifyError):
            unify(INT, STRING, {})

    def test_arity_mismatch(self):
        with pytest.raises(UnifyError):
            unify(TCon("List", (INT,)), TCon("List", ()), {})

    def test_occurs_check(self):
        with pytest.raises(UnifyError):
            unify(TVar("a"), TFun(TVar("a"), INT), {})

    def test_transitive_chains(self):
        subst = {}
        unify(TVar("a"), TVar("b"), subst)
        unify(TVar("b"), INT, subst)
        assert apply_subst(subst, TVar("a")) == INT

    def test_con_vs_fun(self):
        with pytest.raises(UnifyError):
            unify(INT, TFun(INT, INT), {})


class TestHelpers:
    def test_free_type_vars(self):
        t = fun(TVar("a"), TCon("List", (TVar("b"),)), INT)
        assert free_type_vars(t) == {"a", "b"}

    def test_scheme_free_vars(self):
        scheme = Scheme(("a",), fun(TVar("a"), TVar("b")))
        assert scheme.free_vars() == {"b"}

    def test_type_rendering(self):
        assert str(fun(INT, INT)) == "Int -> Int"
        assert str(TCon("List", (INT,))) == "[Int]"
        assert str(TCon("Tuple2", (INT, STRING))) == "(Int, String)"
        assert (
            str(TFun(TFun(INT, INT), INT)) == "(Int -> Int) -> Int"
        )
