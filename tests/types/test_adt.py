"""ADT environment: declarations, elaboration, error cases."""

import pytest

from repro.lang.parser import parse_program
from repro.lang.syntax_types import STCon, STFun, STVar
from repro.types.adt import ADTEnv, ADTError
from repro.types.types import INT, TCon, TFun, TVar


def env_for(source):
    return ADTEnv.from_programs(parse_program(source))


class TestDeclarations:
    def test_constructor_info(self):
        env = env_for("data Box a = Box a Int\nx = 1")
        info = env.constructor("Box")
        assert info.type_name == "Box"
        assert info.params == ("a",)
        assert info.arity == 2
        assert info.fields == (TVar("a"), INT)

    def test_result_type(self):
        env = env_for("data Pair a b = MkP a b\nx = 1")
        info = env.constructor("MkP")
        assert info.result_type() == TCon(
            "Pair", (TVar("a"), TVar("b"))
        )

    def test_scheme(self):
        env = env_for("data W = MkW Int\nx = 1")
        scheme = env.constructor("MkW").scheme()
        assert str(scheme.type) == "Int -> W"

    def test_unknown_constructor(self):
        env = ADTEnv()
        with pytest.raises(ADTError):
            env.constructor("Nope")

    def test_recursive_declaration(self):
        env = env_for("data T = L | N T T\nx = 1")
        info = env.constructor("N")
        assert info.fields == (TCon("T"), TCon("T"))


class TestRedeclaration:
    def test_identical_redeclaration_tolerated(self):
        env = env_for("data B = Yes | No\nx = 1")
        env.add_decl(parse_program("data B = Yes | No\nx = 1").data_decls[0])
        assert env.constructor("Yes").type_name == "B"

    def test_different_arity_rejected(self):
        env = env_for("data B = Yes | No\nx = 1")
        with pytest.raises(ADTError):
            env.add_decl(
                parse_program("data B a = Yes | No\nx = 1").data_decls[0]
            )

    def test_different_fields_rejected(self):
        env = env_for("data B = Yes | No\nx = 1")
        with pytest.raises(ADTError):
            env.add_decl(
                parse_program("data C = Yes Int\nx = 1").data_decls[0]
            )


class TestElaboration:
    def test_var(self):
        assert ADTEnv().elaborate(STVar("a")) == TVar("a")

    def test_fun(self):
        t = ADTEnv().elaborate(STFun(STCon("Int"), STVar("a")))
        assert t == TFun(INT, TVar("a"))

    def test_applied_con(self):
        t = ADTEnv().elaborate(STCon("List", (STCon("Int"),)))
        assert t == TCon("List", (INT,))

    def test_bad_input(self):
        with pytest.raises(ADTError):
            ADTEnv().elaborate("not a type")
