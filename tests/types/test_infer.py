"""Hindley–Milner inference: the paper's typing rules and standard HM
behaviour."""

import pytest

from repro.api import compile_expr, compile_program, typecheck_program
from repro.types import TypeError_, infer_expr
from repro.types.adt import ADTEnv
from repro.types.infer import infer_program
from repro.types.types import INT, STRING, TCon, TFun, TVar
from repro.prelude.loader import prelude_program


@pytest.fixture(scope="module")
def adts():
    return ADTEnv.from_programs(prelude_program())


def infer(source, adts):
    return infer_expr(compile_expr(source), adts=adts)


class TestBasicInference:
    def test_int_literal(self, adts):
        assert infer("42", adts) == INT

    def test_string_literal(self, adts):
        assert infer('"s"', adts) == STRING

    def test_arithmetic(self, adts):
        assert infer("1 + 2 * 3", adts) == INT

    def test_identity_function(self, adts):
        t = infer("\\x -> x", adts)
        assert isinstance(t, TFun)
        assert t.arg == t.result

    def test_application(self, adts):
        assert infer("(\\x -> x + 1) 2", adts) == INT

    def test_conditional(self, adts):
        assert infer("if 1 < 2 then 3 else 4", adts) == INT

    def test_list(self, adts):
        t = infer("[1, 2, 3]", adts)
        assert t == TCon("List", (INT,))

    def test_tuple(self, adts):
        t = infer("(1, \"s\")", adts)
        assert t == TCon("Tuple2", (INT, STRING))

    def test_case(self, adts):
        t = infer(
            "case Just 1 of { Just v -> v; Nothing -> 0 }", adts
        )
        assert t == INT

    def test_let_polymorphism(self, adts):
        t = infer(
            "let { ident = \\x -> x } in "
            "(ident 1, ident \"s\")",
            adts,
        )
        assert t == TCon("Tuple2", (INT, STRING))


class TestPaperTypingRules:
    def test_raise_is_polymorphic(self, adts):
        # raise :: Exception -> a — usable at Int here.
        assert infer("1 + raise Overflow", adts) == INT

    def test_raise_requires_exception(self, adts):
        with pytest.raises(TypeError_):
            infer("raise 42", adts)

    def test_get_exception_in_io(self, adts):
        t = infer("getException (1 + 1)", adts)
        assert t == TCon("IO", (TCon("ExVal", (INT,)),))

    def test_map_exception_pure(self, adts):
        t = infer("mapException (\\e -> Overflow) 42", adts)
        assert t == INT

    def test_map_exception_mapper_type(self, adts):
        with pytest.raises(TypeError_):
            infer("mapException (\\e -> 1) 42", adts)

    def test_bind_types(self, adts):
        t = infer(
            "getChar >>= (\\c -> putChar c)", adts
        )
        assert t == TCon("IO", (TCon("Unit"),))

    def test_seq_polymorphic(self, adts):
        assert infer("seq 1 \"x\"", adts) == STRING


class TestErrors:
    def test_unbound_variable(self, adts):
        with pytest.raises(TypeError_):
            infer("nonexistent", adts)

    def test_type_mismatch(self, adts):
        with pytest.raises(TypeError_):
            infer("1 + \"s\"", adts)

    def test_occurs_check(self, adts):
        with pytest.raises(TypeError_):
            infer("\\x -> x x", adts)

    def test_branch_mismatch(self, adts):
        with pytest.raises(TypeError_):
            infer("if 1 < 2 then 3 else \"s\"", adts)

    def test_constructor_arity_in_pattern(self, adts):
        with pytest.raises(TypeError_):
            infer("case Just 1 of { Just -> 0 }", adts)


class TestPrograms:
    def test_program_inference(self):
        env = typecheck_program(
            compile_program(
                "double x = x + x\nquad x = double (double x)"
            )
        )
        assert str(env["quad"].type) == "Int -> Int"

    def test_polymorphic_function_generalized(self):
        env = typecheck_program(
            compile_program("mine xs = map (\\x -> x) xs")
        )
        assert env["mine"].vars  # generalized

    def test_signature_checked(self):
        with pytest.raises(TypeError_):
            typecheck_program(
                compile_program("f :: Int -> Int\nf x = \"oops\"")
            )

    def test_signature_for_unbound(self):
        with pytest.raises(TypeError_):
            typecheck_program(compile_program("g :: Int -> Int\nf x = x"))

    def test_user_data_types(self):
        env = typecheck_program(
            compile_program(
                "data Shape = Circle Int | Square Int\n"
                "area s = case s of { Circle r -> r * r * 3;"
                " Square w -> w * w }"
            )
        )
        assert str(env["area"].type) == "Shape -> Int"

    def test_recursive_data_type(self):
        env = typecheck_program(
            compile_program(
                "data Tree = Leaf Int | Node Tree Tree\n"
                "total t = case t of { Leaf n -> n;"
                " Node l r -> total l + total r }"
            )
        )
        assert str(env["total"].type) == "Tree -> Int"

    def test_prelude_types(self):
        from repro.api import prelude_type_env

        env, _adts = prelude_type_env()
        assert str(env["map"]) == "forall a b. (a -> b) -> [a] -> [b]"
        assert str(env["error"]) == "forall a. String -> a"
        assert (
            str(env["tryEval"]) == "forall a. a -> IO (ExVal a)"
        )
