"""Binding-group dependency analysis (SCC) tests."""

from repro.lang.parser import parse_expr
from repro.types.depgraph import dependency_sccs


def sccs(bind_sources):
    binds = [(name, parse_expr(src)) for name, src in bind_sources]
    return [
        [name for name, _ in component]
        for component in dependency_sccs(binds)
    ]


class TestSCCs:
    def test_independent_bindings(self):
        result = sccs([("a", "1"), ("b", "2")])
        assert sorted(map(tuple, result)) == [("a",), ("b",)]

    def test_dependency_ordered(self):
        result = sccs([("user", "helper 1"), ("helper", "\\x -> x")])
        assert result.index(["helper"]) < result.index(["user"])

    def test_self_recursion_single_component(self):
        result = sccs([("f", "\\x -> f x")])
        assert result == [["f"]]

    def test_mutual_recursion_grouped(self):
        result = sccs(
            [("evens", "\\n -> odds n"), ("odds", "\\n -> evens n")]
        )
        assert len(result) == 1
        assert sorted(result[0]) == ["evens", "odds"]

    def test_mixed(self):
        result = sccs(
            [
                ("top", "f 1 + g 2"),
                ("f", "\\x -> g x"),
                ("g", "\\x -> f x"),
                ("leaf", "42"),
            ]
        )
        fg = next(c for c in result if len(c) == 2)
        assert sorted(fg) == ["f", "g"]
        assert result.index(fg) < result.index(["top"])

    def test_shadowing_not_a_dependency(self):
        # `f` binds its own x; using global-looking names under a
        # lambda that shadows them creates no edge.
        result = sccs([("x", "1"), ("f", "\\x -> x")])
        assert ["f"] in result and ["x"] in result

    def test_long_chain(self):
        binds = [("b0", "1")] + [
            (f"b{i}", f"b{i-1} + 1") for i in range(1, 30)
        ]
        result = sccs(binds)
        positions = {c[0]: i for i, c in enumerate(result)}
        for i in range(1, 30):
            assert positions[f"b{i-1}"] < positions[f"b{i}"]
