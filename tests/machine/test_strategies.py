"""Evaluation strategies: the imprecision made visible (Section 3.5 /
E5): different orders observe different members of the denoted set."""

import pytest

from repro.api import denote_source, observe_source
from repro.core.domains import Bad
from repro.machine import Exceptional, LeftToRight, Normal, RightToLeft, Shuffled
from repro.machine.strategy import standard_strategies

PAPER_EXPR = '(1 `div` 0) + error "Urk"'


class TestOrders:
    def test_left_to_right(self):
        assert LeftToRight().order("+", 2) == (0, 1)

    def test_right_to_left(self):
        assert RightToLeft().order("+", 2) == (1, 0)

    def test_shuffled_deterministic_per_seed(self):
        a = [Shuffled(3).order("+", 2) for _ in range(5)]
        b = [Shuffled(3).order("+", 2) for _ in range(5)]
        assert a == b

    def test_shuffled_is_permutation(self):
        strategy = Shuffled(11)
        for n in (2, 3, 4):
            order = strategy.order("op", n)
            assert sorted(order) == list(range(n))


class TestImprecisionObservable:
    def test_different_strategies_different_exceptions(self):
        left = observe_source(PAPER_EXPR, strategy=LeftToRight())
        right = observe_source(PAPER_EXPR, strategy=RightToLeft())
        assert isinstance(left, Exceptional)
        assert isinstance(right, Exceptional)
        assert left.exc.name == "DivideByZero"
        assert right.exc.name == "UserError"

    def test_every_observation_in_denoted_set(self):
        denoted = denote_source(PAPER_EXPR)
        assert isinstance(denoted, Bad)
        for strategy in standard_strategies():
            out = observe_source(PAPER_EXPR, strategy=strategy)
            assert isinstance(out, Exceptional)
            assert out.exc in denoted.excs, (
                f"{strategy}: {out.exc} not in {denoted.excs}"
            )

    def test_same_strategy_reproducible(self):
        # "Successive runs of a program, using the same compiler
        # optimisation level, will in practice give the same
        # behaviour" (Section 3.5).
        outs = [
            observe_source(PAPER_EXPR, strategy=Shuffled(5)).exc
            for _ in range(3)
        ]
        assert len(set(outs)) == 1

    def test_normal_results_strategy_independent(self):
        for strategy in standard_strategies():
            out = observe_source(
                "sum (enumFromTo 1 20)", strategy=strategy
            )
            assert isinstance(out, Normal)
            assert out.value.value == 210

    def test_three_way_choice(self):
        source = "(1 `div` 0) + (raise Overflow + error \"c\")"
        denoted = denote_source(source)
        observed = {
            observe_source(source, strategy=s).exc.name
            for s in standard_strategies()
        }
        # At least two different representatives observed...
        assert len(observed) >= 2
        # ... and all of them denoted.
        names = {e.name for e in denoted.excs.finite_members()}
        assert observed <= names
