"""Operational machine: basic evaluation, laziness, sharing."""

import pytest

from repro.api import compile_expr, observe_source
from repro.machine import (
    Diverged,
    Exceptional,
    LeftToRight,
    Machine,
    Normal,
    observe,
)
from repro.machine.eval import MachineError
from repro.machine.values import VCon, VFun, VInt, VStr
from repro.prelude.loader import machine_env


def run(source, **kwargs):
    return observe_source(source, **kwargs)


def normal_int(outcome):
    assert isinstance(outcome, Normal), str(outcome)
    assert isinstance(outcome.value, VInt)
    return outcome.value.value


class TestBasics:
    def test_arithmetic(self):
        assert normal_int(run("1 + 2 * 3")) == 7

    def test_application(self):
        assert normal_int(run("(\\x y -> x - y) 10 4")) == 6

    def test_string(self):
        out = run('strAppend "ab" "cd"')
        assert isinstance(out, Normal)
        assert out.value == VStr("abcd")

    def test_conditional(self):
        assert normal_int(run("if 1 < 2 then 10 else 20")) == 10

    def test_prelude_functions(self):
        assert normal_int(run("sum (map (\\x -> x * x) [1, 2, 3])")) == 14

    def test_constructor_value(self):
        out = run("Just 5")
        assert isinstance(out, Normal)
        assert isinstance(out.value, VCon)
        assert out.value.name == "Just"

    def test_lambda_value(self):
        out = run("\\x -> x")
        assert isinstance(out.value, VFun)


class TestLaziness:
    def test_unused_exceptional_argument(self):
        assert normal_int(run("(\\x -> 3) (1 `div` 0)")) == 3

    def test_unused_diverging_argument(self):
        assert normal_int(
            run("const 4 (let { w = \\u -> w u } in w ())", fuel=100_000)
        ) == 4

    def test_infinite_list_take(self):
        out = run("sum (take 5 (iterate (\\x -> x + 1) 1))")
        assert normal_int(out) == 15

    def test_exception_hides_in_structure(self):
        # Section 3.2: exceptional values lurk inside lazy structures.
        assert normal_int(run("length [1 `div` 0, 2]")) == 2

    def test_deep_forcing_finds_it(self):
        out = run("[1 `div` 0, 2]", deep=True)
        assert isinstance(out, Exceptional)
        assert out.exc.name == "DivideByZero"

    def test_sharing_memoises(self):
        machine = Machine()
        env = machine_env(machine)
        expr = compile_expr("let { x = sum (enumFromTo 1 100) } in x + x")
        value = machine.eval(expr, env)
        assert isinstance(value, VInt) and value.value == 10100
        # Rough sharing check: the sum must only have been computed
        # once.  200 additions would roughly double prim_ops.
        assert machine.stats.prim_ops < 350


class TestExceptions:
    def test_raise_propagates(self):
        out = run("1 + (2 * raise Overflow)")
        assert isinstance(out, Exceptional)
        assert out.exc.name == "Overflow"

    def test_pattern_match_failure(self):
        out = run("case Nothing of { Just x -> x }")
        assert isinstance(out, Exceptional)
        assert out.exc.name == "PatternMatchFail"

    def test_error_function(self):
        out = run('error "boom"')
        assert isinstance(out, Exceptional)
        assert out.exc.name == "UserError"
        assert out.exc.arg == "boom"

    def test_exception_in_case_scrutinee(self):
        out = run("case (1 `div` 0) of { 1 -> 2; _ -> 3 }")
        assert isinstance(out, Exceptional)
        assert out.exc.name == "DivideByZero"

    def test_seq_forces(self):
        out = run("seq (1 `div` 0) 42")
        assert isinstance(out, Exceptional)


class TestDivergence:
    def test_fuel_exhaustion(self):
        out = run("let { f = \\x -> f (not x) } in f True", fuel=10_000)
        assert isinstance(out, Diverged)

    def test_fix_identity_detected_or_diverges(self):
        out = run("fix (\\x -> x)", fuel=10_000)
        # fix (\x->x) re-enters its own knot cell: the blackhole
        # detector reports NonTermination.
        assert isinstance(out, Exceptional)
        assert out.exc.name == "NonTermination"


class TestStats:
    def test_counters_move(self):
        machine = Machine()
        env = machine_env(machine)
        machine.eval(compile_expr("sum [1, 2, 3]"), env)
        stats = machine.stats
        assert stats.steps > 0
        assert stats.allocations > 0
        assert stats.prim_ops > 0
        assert stats.thunks_forced > 0

    def test_snapshot_is_copy(self):
        machine = Machine()
        snap = machine.stats.snapshot()
        machine.stats.steps += 5
        assert snap.steps != machine.stats.steps


class TestErrors:
    def test_unbound_variable(self):
        with pytest.raises(MachineError):
            machine = Machine()
            machine.eval(compile_expr("nonexistent"), {})

    def test_apply_non_function(self):
        with pytest.raises(MachineError):
            machine = Machine()
            machine.eval(compile_expr("1 2"), {})
