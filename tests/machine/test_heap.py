"""Heap cell behaviour: the Section 3.3 implementation details —
memoisation, blackholing, and overwriting abandoned thunks with
``raise ex``."""

import pytest

from repro.api import compile_expr
from repro.core.excset import DIVIDE_BY_ZERO, NON_TERMINATION, OVERFLOW
from repro.machine import Cell, Machine, MachineDiverged, ObjRaise
from repro.machine.values import VInt
from repro.prelude.loader import machine_env


class TestMemoisation:
    def test_forced_once(self):
        machine = Machine()
        cell = Cell(compile_expr("1 + 1"), {})
        assert cell.force(machine) == VInt(2)
        steps_after_first = machine.stats.steps
        assert cell.force(machine) == VInt(2)
        assert machine.stats.steps == steps_after_first

    def test_ready_cell(self):
        machine = Machine()
        cell = Cell.ready(VInt(9))
        assert cell.force(machine) == VInt(9)
        assert machine.stats.steps == 0


class TestRaiseOverwriting:
    """Section 3.3: "we must be careful to overwrite each thunk that is
    under evaluation with (raise ex).  That way, if the thunk is
    evaluated again, the same exception will be raised again."
    """

    def test_reraise_same_exception(self):
        machine = Machine()
        cell = Cell(compile_expr("1 `div` 0"), {})
        with pytest.raises(ObjRaise) as first:
            cell.force(machine)
        with pytest.raises(ObjRaise) as second:
            cell.force(machine)
        assert first.value.exc == second.value.exc == DIVIDE_BY_ZERO

    def test_reraise_costs_nothing(self):
        machine = Machine()
        cell = Cell(compile_expr("1 `div` 0"), {})
        with pytest.raises(ObjRaise):
            cell.force(machine)
        steps = machine.stats.steps
        with pytest.raises(ObjRaise):
            cell.force(machine)
        assert machine.stats.steps == steps

    def test_raising_cell_constructor(self):
        machine = Machine()
        cell = Cell.raising(OVERFLOW)
        with pytest.raises(ObjRaise) as err:
            cell.force(machine)
        assert err.value.exc == OVERFLOW

    def test_shared_thunk_raises_consistently(self):
        # Both consumers of a shared exceptional thunk see the *same*
        # exception, even under a strategy that would pick differently
        # on re-evaluation — this is why β-expansion is the dangerous
        # direction for the non-deterministic baseline.
        machine = Machine()
        env = machine_env(machine)
        expr = compile_expr(
            'let { x = (1 `div` 0) + error "Urk" } in Tuple2 x x'
        )
        pair = machine.eval(expr, env)
        seen = []
        for sub in pair.args:
            try:
                sub.force(machine)
            except ObjRaise as err:
                seen.append(err.exc)
        assert len(seen) == 2
        assert seen[0] == seen[1]


class TestBlackholes:
    """Section 5.2: black = black + 1 is "readily detected as a
    so-called black hole"; getException is then permitted to report
    NonTermination."""

    def test_detected_as_nontermination(self):
        machine = Machine(detect_blackholes=True)
        cell = Cell(
            compile_expr("let { black = black + 1 } in black"), {}
        )
        with pytest.raises(ObjRaise) as err:
            cell.force(machine)
        assert err.value.exc == NON_TERMINATION

    def test_detection_is_optional(self):
        # "permitted, but not required" — with detection off, the
        # machine just runs out of fuel.
        machine = Machine(detect_blackholes=False, fuel=5_000)
        cell = Cell(
            compile_expr("let { black = black + 1 } in black"), {}
        )
        with pytest.raises(MachineDiverged):
            cell.force(machine)

    def test_productive_knot_is_not_a_blackhole(self):
        machine = Machine()
        env = machine_env(machine)
        value = machine.eval(
            compile_expr("head (let { xs = Cons 7 xs } in tail xs)"),
            env,
        )
        assert value == VInt(7)
