"""Warm-vs-cold parity: a forked machine must be observationally
byte-identical to a freshly built one.

The snapshot layer (repro.machine.snapshot) shares a fully memoised
prelude heap between machines.  That is only sound if *nothing
observable* distinguishes a fork from the cold construction — so this
suite compares, across both backends, several strategies (including
the stateful ``Shuffled`` RNG stream) and the outcome taxonomy:
outcomes, machine counters, trace-event totals and raise provenance.
It also pins the immutability invariant the sharing rests on: no
request, however it ends (value, raise, interrupt, divergence), may
leave a snapshot cell in a writable state.
"""

import pytest

from repro.api import compile_expr
from repro.machine.heap import (
    AsyncInterrupt,
    MachineDiverged,
    ObjRaise,
    _RAISE,
    _VALUE,
)
from repro.machine.observe import Normal, observe, show_value
from repro.machine.snapshot import (
    PreludeSnapshot,
    freeze_env,
    mutable_cells,
    shared_snapshot,
    warm_machine,
)
from repro.machine.strategy import LeftToRight, RightToLeft, Shuffled
from repro.obs.sinks import CountingSink

BACKENDS = ["ast", "compiled", "super"]

#: (name, source) — exercising values, prelude-heavy evaluation, both
#: raise paths, strategy-sensitive imprecision, and provenance.
PROGRAMS = [
    ("value", "1 + 2 * 3"),
    ("prelude-heavy", "sum (map (\\x -> x * x) (enumFromTo 1 10))"),
    ("prelude-raise", "head Nil"),
    ("prim-raise", "1 `div` 0"),
    ("imprecise", "(1 `div` 0) + head Nil"),
    ("lazy-structure", "take 3 (iterate (\\x -> x + x) 1)"),
]

STRATEGIES = [LeftToRight, RightToLeft, lambda: Shuffled(7)]


def _observe_pair(snapshot, source, fuel=200_000, provenance=False):
    """(warm, cold) observations with full instrumentation attached —
    each entry is (outcome, stats-dict, event-dict, provenance)."""
    expr = compile_expr(source)
    results = []
    for maker in (snapshot.fork, snapshot.cold_start):
        machine, env = maker(fuel=fuel)
        sink = CountingSink()
        machine.attach_sink(sink)
        outcome = observe(
            expr,
            env=env,
            machine=machine,
            reset_stats=False,
            provenance=provenance,
        )
        stats = machine.stats.as_dict()
        events = sink.as_dict()
        if isinstance(outcome, Normal):
            # VCon and friends compare by identity; render to compare
            # across heaps (this also forces the same spine both ways).
            shown = f"Normal({show_value(outcome.value, machine)})"
        else:
            shown = str(outcome)
        results.append(
            (
                shown,
                stats,
                events,
                getattr(outcome, "provenance", None),
            )
        )
    return results


class TestParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "name,source", PROGRAMS, ids=[n for n, _ in PROGRAMS]
    )
    def test_fork_matches_cold_start(self, backend, name, source):
        snapshot = shared_snapshot(backend=backend)
        warm, cold = _observe_pair(snapshot, source)
        assert warm[0] == cold[0], "outcomes diverged"
        assert warm[1] == cold[1], "machine counters diverged"
        assert warm[2] == cold[2], "trace-event totals diverged"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("make_strategy", STRATEGIES)
    def test_parity_across_strategies(self, backend, make_strategy):
        snapshot = PreludeSnapshot.build(
            backend=backend, strategy=make_strategy()
        )
        for _name, source in PROGRAMS:
            warm, cold = _observe_pair(snapshot, source)
            assert warm[:3] == cold[:3], (source, warm, cold)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shuffled_rng_stream_is_replayed_per_fork(self, backend):
        """Every fork (and every cold start) consumes the Shuffled RNG
        from the same post-warm-up point: repeat forks observe the same
        member of ``{DivideByZero, UserError}``, and so does cold."""
        snapshot = PreludeSnapshot.build(
            backend=backend, strategy=Shuffled(3)
        )
        source = "(1 `div` 0) + head Nil"
        outcomes = []
        for _ in range(3):
            (warm, cold) = _observe_pair(snapshot, source)
            assert warm[0] == cold[0]
            outcomes.append(warm[0])
        assert len({str(o) for o in outcomes}) == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_provenance_parity(self, backend):
        """The recorded raise journey — site span, force chain, depth,
        decision index — is identical on a fork and a cold machine."""
        snapshot = shared_snapshot(backend=backend)
        for source in ("head Nil", "1 `div` 0", "sum (Cons 1 (Cons (2 `div` 0) Nil))"):
            warm, cold = _observe_pair(snapshot, source, provenance=True)
            assert warm[3] is not None
            assert warm[3] == cold[3], source

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_divergence_parity(self, backend):
        snapshot = shared_snapshot(backend=backend)
        source = "let { loop = \\x -> loop x } in loop 1"
        warm, cold = _observe_pair(snapshot, source, fuel=5_000)
        assert str(warm[0]) == "Diverged" == str(cold[0])
        assert warm[1] == cold[1]
        assert warm[2] == cold[2]


class TestImmutability:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_snapshot_heap_is_fully_memoised(self, backend):
        snapshot = PreludeSnapshot.build(backend=backend)
        assert mutable_cells(snapshot.env) == []
        for cell in snapshot.env.values():
            assert cell.state in (_VALUE, _RAISE)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_requests_cannot_perturb_the_snapshot(self, backend):
        """Values, raises, async interrupts and divergence all leave
        the shared heap untouched — the property that makes concurrent
        forking safe."""
        snapshot = PreludeSnapshot.build(backend=backend)
        sources = [s for _, s in PROGRAMS]
        sources.append("let { loop = \\x -> loop x } in loop 1")
        for source in sources:
            machine, env = snapshot.fork(fuel=5_000)
            expr = compile_expr(source)
            try:
                machine.eval(expr, env)
            except (ObjRaise, AsyncInterrupt, MachineDiverged):
                pass
            assert mutable_cells(snapshot.env) == [], source

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forks_are_isolated(self, backend):
        """One fork's counters and heap writes never leak into
        another's — request cells are per-fork allocations."""
        snapshot = shared_snapshot(backend=backend)
        expr = compile_expr("sum (enumFromTo 1 30)")
        first, env = snapshot.fork()
        first.eval(expr, env)
        second, env2 = snapshot.fork()
        assert second.stats.steps == 0
        second.eval(expr, env2)
        assert first.stats.as_dict() == second.stats.as_dict()


class TestHelpers:
    def test_freeze_env_reaches_nested_cells(self):
        """freeze_env drives *transitively* reachable cells — closure
        captures included — to a memoised state."""
        machine, env = warm_machine(backend="ast")
        assert mutable_cells(env) == []
        # freezing an already-frozen env is a no-op
        before = machine.stats.as_dict()
        freeze_env(env, machine)
        assert machine.stats.as_dict() == before

    def test_warm_machine_restores_fuel_and_counters(self):
        machine, _env = warm_machine(backend="ast", fuel=12_345)
        assert machine.stats.steps == 0
        assert machine.fuel == 12_345

    def test_shared_snapshot_is_cached_per_backend(self):
        assert shared_snapshot(backend="ast") is shared_snapshot(
            backend="ast"
        )
        assert shared_snapshot(backend="ast") is not shared_snapshot(
            backend="compiled"
        )

    def test_strategy_key_names_the_strategy(self):
        snap = PreludeSnapshot.build(strategy=Shuffled(9))
        assert snap.strategy_key() == "shuffled(seed=9)"
