"""Raise provenance: recorded alongside the semantics, never inside it.

Locks in the two halves of the provenance contract
(docs/OBSERVABILITY.md, "Provenance & attribution"):

* **fidelity** — under ``observe(..., provenance=True)`` an
  ``Exceptional`` outcome carries the member's raise site, force
  chain and scheduling indices, including through memoised re-raises
  (§3.3's raise-overwriting) and blackhole-detected loops;
* **invisibility** — provenance is ``compare=False`` metadata: outcome
  equality, ``Exc``/``ExcSet`` equality and oracle verdicts are
  byte-identical with recording on or off, and a machine without a
  recorder doesn't even construct the records.
"""

import pytest

from repro.api import compile_expr
from repro.core.denote import DenoteContext
from repro.core.excset import Exc, ExcSet
from repro.lang.ast import Span
from repro.machine import BACKENDS, Machine
from repro.machine.observe import Exceptional, observe
from repro.machine.strategy import LeftToRight, RightToLeft
from repro.obs.provenance import (
    CHAIN_LIMIT,
    ExcOrigins,
    ProvenanceRecorder,
    RaiseProvenance,
    format_provenance,
)
from repro.prelude.loader import machine_env

TWO_FAULTS = '(1 `div` 0) + error "boom"'

BOTH = pytest.mark.parametrize("backend", BACKENDS)


def run(source, backend="ast", strategy=None, provenance=True, fuel=200_000):
    machine = Machine(strategy=strategy, fuel=fuel, backend=backend)
    return observe(
        compile_expr(source),
        env=machine_env(machine),
        machine=machine,
        provenance=provenance,
    )


class TestRecording:
    @BOTH
    def test_raise_site_span(self, backend):
        outcome = run(TWO_FAULTS, backend)
        assert isinstance(outcome, Exceptional)
        assert outcome.exc == Exc("DivideByZero")
        record = outcome.provenance
        assert isinstance(record, RaiseProvenance)
        assert record.exc_name == "DivideByZero"
        assert record.span == Span(1, 2, 1, 11)

    @BOTH
    def test_strategy_changes_member_and_site(self, backend):
        left = run(TWO_FAULTS, backend, strategy=LeftToRight())
        right = run(TWO_FAULTS, backend, strategy=RightToLeft())
        assert left.exc != right.exc
        assert left.provenance.span != right.provenance.span

    @BOTH
    def test_force_chain_records_demanding_spans(self, backend):
        # The raise happens while forcing the list element demanded by
        # sum: the chain must mention an in-flight force.
        outcome = run("sum [1, 2 `div` 0, 3]", backend)
        assert isinstance(outcome, Exceptional)
        record = outcome.provenance
        assert record is not None
        assert len(record.chain) >= 1
        assert record.force_depth >= 1

    @BOTH
    def test_memoised_reraise_keeps_original_provenance(self, backend):
        # `x` raises once; the second demand re-raises from the
        # overwritten cell (§3.3) and must carry the ORIGINAL record.
        source = "let { x = 1 `div` 0 } in (x + 0) + (x + 0)"
        outcome = run(source, backend)
        assert isinstance(outcome, Exceptional)
        assert outcome.provenance is not None
        assert outcome.provenance.exc_name == "DivideByZero"

    @BOTH
    def test_blackhole_nontermination_is_annotated(self, backend):
        outcome = run("let { x = x + 1 } in x", backend)
        assert isinstance(outcome, Exceptional)
        assert outcome.exc.name == "NonTermination"
        assert outcome.provenance is not None

    @BOTH
    def test_pattern_match_failure_site(self, backend):
        outcome = run("case Just 1 of { Nothing -> 0 }", backend)
        assert isinstance(outcome, Exceptional)
        assert outcome.exc.name == "PatternMatchFail"
        assert outcome.provenance is not None

    def test_chain_is_truncated(self):
        recorder = ProvenanceRecorder()
        recorder.stack.extend(
            Span(1, i, 1, i + 1) for i in range(1, 30)
        )

        class _Stats:
            force_depth = 29
            prim_ops = 0

        record = recorder.make(Exc("Overflow"), None, _Stats())
        assert len(record.chain) == CHAIN_LIMIT


class TestInvisibility:
    def test_exceptional_equality_ignores_provenance(self):
        bare = Exceptional(Exc("DivideByZero"))
        annotated = Exceptional(
            Exc("DivideByZero"),
            provenance=RaiseProvenance("DivideByZero", Span(1, 1, 1, 2)),
        )
        assert bare == annotated
        assert str(bare) == str(annotated)

    @BOTH
    def test_outcome_identical_with_recording_on_and_off(self, backend):
        on = run(TWO_FAULTS, backend, provenance=True)
        off = run(TWO_FAULTS, backend, provenance=False)
        assert on == off
        assert off.provenance is None

    @BOTH
    def test_counters_identical_with_recording_on_and_off(self, backend):
        expr = compile_expr("sum [1, 2 `div` 0, 3]")
        snapshots = []
        for provenance in (False, True):
            machine = Machine(backend=backend)
            observe(
                expr,
                env=machine_env(machine),
                machine=machine,
                provenance=provenance,
            )
            snapshots.append(machine.stats.snapshot().as_dict())
        assert snapshots[0] == snapshots[1]

    def test_recorder_detached_after_observe(self):
        machine = Machine()
        observe(
            compile_expr("1 `div` 0"),
            env=machine_env(machine),
            machine=machine,
            provenance=True,
        )
        assert machine._prov is None

    def test_off_by_default(self):
        machine = Machine()
        assert machine._prov is None
        outcome = observe(
            compile_expr("1 `div` 0"),
            env=machine_env(machine),
            machine=machine,
        )
        assert outcome.provenance is None

    def test_exc_and_excset_equality_untouched(self):
        # Provenance lives on outcomes and Python exceptions, never on
        # the semantic values: Exc has no provenance attribute, so the
        # lattice and oracle comparisons cannot see it.
        exc = Exc("DivideByZero")
        assert not hasattr(exc, "provenance")
        assert ExcSet.of(exc) == ExcSet.of(Exc("DivideByZero"))


class TestFormatting:
    def test_format_with_record(self):
        record = RaiseProvenance(
            "DivideByZero",
            span=Span(1, 2, 1, 11),
            chain=(Span(1, 1, 1, 20),),
            force_depth=1,
            decision_index=3,
        )
        lines = format_provenance(Exc("DivideByZero"), record)
        assert lines[0] == "DivideByZero raised at 1:2-11"
        assert "forced from 1:1-20" in lines[1]
        assert "force depth 1" in lines[-1]
        assert "decision index 3" in lines[-1]

    def test_format_without_record(self):
        lines = format_provenance(Exc("Overflow"), None)
        assert lines == ["Overflow: <no provenance recorded>"]

    def test_user_error_shows_message(self):
        record = RaiseProvenance("UserError", span=None)
        lines = format_provenance(Exc("UserError", "boom"), record)
        assert lines[0] == "UserError 'boom' raised at <unknown>"


class TestDenoteOrigins:
    def test_origins_recorded_per_member(self):
        from repro.api import denote_source

        origins = ExcOrigins()
        ctx = DenoteContext(fuel=200_000, provenance=origins)
        value = denote_source(TWO_FAULTS, ctx=ctx)
        members = {exc.name for exc in value.excs.finite_members()}
        assert members == {"DivideByZero", "UserError"}
        div = next(
            exc for exc in origins.origins if exc.name == "DivideByZero"
        )
        assert str(origins.origin_of(div)) == "1:2-11"

    def test_first_introduction_wins(self):
        origins = ExcOrigins()
        origins.note(Exc("Overflow"), Span(1, 1, 1, 2))
        origins.note(Exc("Overflow"), Span(9, 9, 9, 10))
        assert origins.origin_of(Exc("Overflow")) == Span(1, 1, 1, 2)

    def test_denotation_unchanged_by_origins(self):
        from repro.api import denote_source

        plain = denote_source(TWO_FAULTS)
        tracked = denote_source(
            TWO_FAULTS,
            ctx=DenoteContext(fuel=200_000, provenance=ExcOrigins()),
        )
        assert plain == tracked
