"""Fuel-sliced execution parity (`repro.machine.slices`).

The contract the cooperative scheduler stands on: driving an
evaluation in bounded slices — any slice size, any interleaving —
must be observationally identical to running it in one piece, on
every backend.  Outcome, counters, trace events, Shuffled RNG stream
and provenance records are all compared; parking must add *nothing*
to the observable surface, and interrupts delivered through the gate
or an injected governor trip must land through the ordinary §5.1
``AsyncInterrupt`` path at deterministic steps.
"""

import threading

import pytest

from repro.api import compile_expr
from repro.core.excset import CONTROL_C, TIMEOUT
from repro.machine import (
    BACKENDS,
    Diverged,
    Exceptional,
    Machine,
    Normal,
    Shuffled,
    observe,
)
from repro.machine.slices import (
    SLICE_DONE,
    SLICE_YIELDED,
    SliceRunner,
    run_sliced,
)
from repro.obs.sinks import RingBufferSink
from repro.prelude.loader import machine_env
from repro.serve.governor import GovernorLimits, ResourceGovernor

EVERY = pytest.mark.parametrize("backend", BACKENDS)

#: A few hundred steps of mixed work: shared thunks, prim-ops, cons.
WORK = "sum (map (\\x -> x * x) (enumFromTo 1 12))"
#: Deterministically exceptional (imprecise set with two raises).
FAULTY = "(1 `div` 0) + error \"boom\""
#: Never terminates — the preemption target.
SPIN = "let { w = \\u -> w u } in w ()"


def plain_run(source, backend, *, strategy=None, sink=None,
              fuel=2_000_000, provenance=False):
    machine = Machine(
        strategy=strategy, backend=backend, fuel=fuel, sink=sink
    )
    env = machine_env(machine)
    out = observe(
        compile_expr(source), env=env, machine=machine,
        provenance=provenance,
    )
    return out, machine


def sliced_run(source, backend, slice_steps, *, strategy=None,
               sink=None, fuel=2_000_000, provenance=False):
    machine = Machine(
        strategy=strategy, backend=backend, fuel=fuel, sink=sink
    )
    env = machine_env(machine)
    out = run_sliced(
        machine,
        lambda: observe(
            compile_expr(source), env=env, machine=machine,
            provenance=provenance,
        ),
        slice_steps,
    )
    return out, machine


class TestSlicedParity:
    @EVERY
    @pytest.mark.parametrize("slice_steps", [1, 7, 64, 100_000])
    def test_value_outcome_and_counters(self, backend, slice_steps):
        ref, ref_machine = plain_run(WORK, backend)
        out, machine = sliced_run(WORK, backend, slice_steps)
        assert isinstance(out, Normal)
        assert out == ref
        assert machine.stats.snapshot() == ref_machine.stats.snapshot()

    @EVERY
    @pytest.mark.parametrize("slice_steps", [3, 50])
    def test_exceptional_outcome(self, backend, slice_steps):
        ref, _ = plain_run(FAULTY, backend)
        out, _ = sliced_run(FAULTY, backend, slice_steps)
        assert isinstance(out, Exceptional)
        assert out == ref

    @EVERY
    def test_trace_stream_identical(self, backend):
        ref_sink = RingBufferSink(capacity=200_000)
        plain_run(WORK, backend, sink=ref_sink)
        sliced_sink = RingBufferSink(capacity=200_000)
        sliced_run(WORK, backend, 13, sink=sliced_sink)
        assert sliced_sink.events == ref_sink.events

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_shuffled_rng_stream(self, seed):
        # Shuffled draws per prim-op; a park/resume between draws must
        # not perturb the stream on any backend.
        picks = {}
        for backend in BACKENDS:
            ref, _ = plain_run(
                FAULTY, backend, strategy=Shuffled(seed)
            )
            out, _ = sliced_run(
                FAULTY, backend, 5, strategy=Shuffled(seed)
            )
            assert isinstance(out, Exceptional)
            assert out.exc == ref.exc, backend
            picks[backend] = out.exc
        for backend in BACKENDS[1:]:
            assert picks[backend] == picks["ast"], backend

    @EVERY
    def test_provenance_records(self, backend):
        ref, _ = plain_run(FAULTY, backend, provenance=True)
        out, _ = sliced_run(FAULTY, backend, 9, provenance=True)
        assert out == ref
        assert out.provenance == ref.provenance

    @EVERY
    def test_fuel_exhaustion_still_diverges(self, backend):
        ref, ref_machine = plain_run(SPIN, backend, fuel=300)
        out, machine = sliced_run(SPIN, backend, 64, fuel=300)
        assert isinstance(out, Diverged)
        assert out == ref
        assert machine.stats.steps == ref_machine.stats.steps

    def test_cross_backend_sliced_counters(self):
        snaps = {}
        for backend in BACKENDS:
            _, machine = sliced_run(WORK, backend, 17)
            snaps[backend] = machine.stats.snapshot()
        for backend in BACKENDS[1:]:
            assert snaps[backend] == snaps["ast"], backend


class TestSliceProtocol:
    @EVERY
    def test_yield_then_done_accounting(self, backend):
        machine = Machine(backend=backend)
        env = machine_env(machine)
        runner = SliceRunner.for_machine(
            machine,
            lambda: observe(
                compile_expr(WORK), env=env, machine=machine
            ),
        )
        statuses = []
        while True:
            status = runner.run_slice(40)
            statuses.append(status)
            if status.done:
                break
        assert statuses[0].state == SLICE_YIELDED
        assert statuses[-1].state == SLICE_DONE
        assert len(statuses) > 2
        assert sum(s.steps for s in statuses) == machine.stats.steps
        out = runner.finish()
        assert isinstance(out, Normal)

    @EVERY
    def test_interrupt_while_parked(self, backend):
        sink = RingBufferSink(capacity=10_000)
        machine = Machine(backend=backend, sink=sink)
        env = machine_env(machine)
        runner = SliceRunner.for_machine(
            machine,
            lambda: observe(
                compile_expr(SPIN), env=env, machine=machine
            ),
        )
        assert runner.run_slice(100).state == SLICE_YIELDED
        runner.interrupt(CONTROL_C)
        # The parked continuation wakes just to unwind; pump until
        # the runner reports completion.
        while not runner.run_slice(100).done:
            pass
        out = runner.finish()
        assert isinstance(out, Exceptional)
        assert out.exc == CONTROL_C
        delivered = [
            e for e in sink.events if e["event"] == "async-interrupt"
        ]
        assert delivered and delivered[0]["exc"] == "ControlC"

    def test_interrupt_delivery_step_parity(self):
        # Interrupt a parked evaluation after exactly one 100-step
        # slice: delivery must land at the same step on every backend.
        at = {}
        for backend in BACKENDS:
            sink = RingBufferSink(capacity=10_000)
            machine = Machine(backend=backend, sink=sink)
            env = machine_env(machine)
            runner = SliceRunner.for_machine(
                machine,
                lambda env=env, machine=machine: observe(
                    compile_expr(SPIN), env=env, machine=machine
                ),
            )
            assert runner.run_slice(100).state == SLICE_YIELDED
            runner.interrupt(CONTROL_C)
            while not runner.run_slice(100).done:
                pass
            runner.finish()
            events = [
                e for e in sink.events
                if e["event"] == "async-interrupt"
            ]
            assert len(events) == 1
            at[backend] = events[0]["at"]
        for backend in BACKENDS[1:]:
            assert at[backend] == at["ast"], backend

    @EVERY
    def test_governor_inject_preempts_mid_slice(self, backend):
        # The scheduler's preemption path: an injected governor trip is
        # delivered mid-slice through poll() -> _interrupt, and
        # registers as an ordinary TripRecord.
        machine = Machine(backend=backend)
        env = machine_env(machine)
        governor = ResourceGovernor(GovernorLimits())
        machine.attach_governor(governor)
        governor.start()
        runner = SliceRunner.for_machine(
            machine,
            lambda: observe(
                compile_expr(SPIN), env=env, machine=machine
            ),
        )
        assert runner.run_slice(50).state == SLICE_YIELDED
        governor.inject("tenant-steps", TIMEOUT)
        status = runner.run_slice(1_000_000)
        assert status.done
        # Delivered on the first tick of the new slice, not after the
        # whole grant: the preemption was mid-slice.
        assert status.steps <= 2
        out = runner.finish()
        assert isinstance(out, Exceptional)
        assert out.exc == TIMEOUT
        assert governor.tripped
        assert governor.trip.reason == "tenant-steps"
        assert governor.trip.exc == "Timeout"

    @EVERY
    def test_governor_limit_trips_at_same_step_sliced(self, backend):
        # A step-budget trip must land at the identical step whether
        # or not the run is sliced — the governor cannot see the gate.
        def trip_step(sliced):
            machine = Machine(backend=backend)
            env = machine_env(machine)
            governor = ResourceGovernor(GovernorLimits(max_steps=200))
            machine.attach_governor(governor)
            governor.start()
            thunk = lambda: observe(  # noqa: E731
                compile_expr(SPIN), env=env, machine=machine
            )
            if sliced:
                out = run_sliced(machine, thunk, 7)
            else:
                out = thunk()
            assert isinstance(out, Exceptional)
            assert out.exc == TIMEOUT
            return governor.trip.step

        assert trip_step(sliced=True) == trip_step(sliced=False)

    def test_interleaved_runners_are_isolated(self):
        # Two evaluations round-robined on one driving thread: each
        # must produce exactly its solo outcome and counters.
        ref_out, ref_machine = plain_run(WORK, "ast")
        machines, runners = [], []
        for _ in range(2):
            machine = Machine(backend="ast")
            env = machine_env(machine)
            runners.append(
                SliceRunner.for_machine(
                    machine,
                    lambda env=env, machine=machine: observe(
                        compile_expr(WORK), env=env, machine=machine
                    ),
                )
            )
            machines.append(machine)
        pending = list(runners)
        while pending:
            pending = [
                r for r in pending if not r.run_slice(11).done
            ]
        for machine, runner in zip(machines, runners):
            assert runner.finish() == ref_out
            assert (
                machine.stats.snapshot() == ref_machine.stats.snapshot()
            )

    def test_thunk_error_propagates(self):
        def boom(_gate):
            raise ValueError("front-end exploded")

        runner = SliceRunner(boom)
        assert runner.run_slice(10).done
        with pytest.raises(ValueError, match="front-end exploded"):
            runner.finish()

    def test_active_clock_excludes_parked_time(self):
        ticks = [0.0]

        def clock():
            return ticks[0]

        machine = Machine(backend="ast")
        env = machine_env(machine)
        runner = SliceRunner(
            lambda gate: (
                machine.attach_slice_gate(gate),
                observe(
                    compile_expr(SPIN), env=env, machine=machine
                ),
            )[-1],
            clock=clock,
        )
        runner.machine = machine
        assert runner.run_slice(50).state == SLICE_YIELDED
        parked_at = runner.gate.active_clock()
        ticks[0] += 100.0  # a long wait in the run queue
        assert runner.gate.active_clock() == parked_at
        runner.interrupt(CONTROL_C)
        while not runner.run_slice(10).done:
            pass
        runner.finish()

    def test_run_slice_after_done_is_noop(self):
        machine = Machine(backend="ast")
        env = machine_env(machine)
        runner = SliceRunner.for_machine(
            machine,
            lambda: observe(
                compile_expr("1 + 2"), env=env, machine=machine
            ),
        )
        while not runner.run_slice(1_000_000).done:
            pass
        again = runner.run_slice(10)
        assert again.done and again.steps == 0
        assert isinstance(runner.finish(), Normal)

    def test_parked_continuations_are_cheap_threads(self):
        # A worker can hold many parked evaluations at once — the
        # 1000-in-flight architecture in miniature.
        runners = []
        for _ in range(25):
            machine = Machine(backend="ast")
            env = machine_env(machine)
            runners.append(
                SliceRunner.for_machine(
                    machine,
                    lambda env=env, machine=machine: observe(
                        compile_expr(WORK), env=env, machine=machine
                    ),
                )
            )
        for runner in runners:
            assert runner.run_slice(5).state == SLICE_YIELDED
        assert threading.active_count() >= 25
        pending = list(runners)
        while pending:
            pending = [
                r for r in pending if not r.run_slice(200).done
            ]
        for runner in runners:
            assert isinstance(runner.finish(), Normal)
