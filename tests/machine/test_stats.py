"""MachineStats lifecycle + the machine half of the tracing contract.

Covers the observability guarantees docs/OBSERVABILITY.md promises:
snapshots are immutable records; stats lifecycle is explicit
(reset-per-observe, with fuel and the async event plan rebased rather
than forgotten); the null sink is structurally free; a JSONL trace
round-trips.
"""

import dataclasses

import pytest

from repro.api import compile_expr
from repro.core.excset import CONTROL_C
from repro.machine import Machine, MachineStats, StatsSnapshot
from repro.machine.heap import AsyncInterrupt
from repro.machine.observe import Exceptional, Normal, observe
from repro.obs import (
    EVENT_TAXONOMY,
    NULL_SINK,
    STEP,
    CountingSink,
    JsonlSink,
    read_trace,
)
from repro.prelude.loader import machine_env


def _eval(machine: Machine, source: str):
    return machine.eval(compile_expr(source), machine_env(machine))


class TestSnapshot:
    def test_snapshot_is_frozen(self):
        snap = Machine().stats.snapshot()
        assert isinstance(snap, StatsSnapshot)
        with pytest.raises(dataclasses.FrozenInstanceError):
            snap.steps = 99

    def test_snapshot_is_independent_of_live_counters(self):
        machine = Machine()
        _eval(machine, "1 + 2")
        snap = machine.stats.snapshot()
        before = snap.steps
        _eval(machine, "sum [1, 2, 3]")
        assert snap.steps == before
        assert machine.stats.steps > before

    def test_as_dict_mirrors_fields(self):
        machine = Machine()
        _eval(machine, "1 + 2")
        live = machine.stats.as_dict()
        snap = machine.stats.snapshot().as_dict()
        assert live == snap
        assert set(live) == {
            "steps",
            "allocations",
            "thunks_forced",
            "raises",
            "prim_ops",
            "force_depth",
            "max_force_depth",
        }


class TestResetStats:
    def test_counters_zeroed_and_old_snapshot_returned(self):
        machine = Machine()
        _eval(machine, "sum [1, 2, 3]")
        steps = machine.stats.steps
        assert steps > 0
        old = machine.reset_stats()
        assert old.steps == steps
        assert machine.stats.steps == 0
        assert machine.stats.allocations == 0

    def test_remaining_fuel_is_rebased_not_refilled(self):
        machine = Machine(fuel=1_000)
        _eval(machine, "1 + 2")
        consumed = machine.stats.steps
        machine.reset_stats()
        # The budget left is exactly what was left before the reset.
        assert machine.fuel == 1_000 - consumed
        assert machine.stats.steps == 0

    def test_grant_fuel_allowance_survives_reset(self):
        machine = Machine(fuel=1_000)
        _eval(machine, "1 + 2")
        machine.grant_fuel(500)  # fuel := steps + 500
        machine.reset_stats()
        assert machine.fuel == 500

    def test_event_plan_is_rebased(self):
        # An interrupt scheduled 20 steps into the run must still fire
        # ~20 steps in after a reset consumed some of the countdown.
        machine = Machine(event_plan={20: CONTROL_C})
        _eval(machine, "1 + 2")
        consumed = machine.stats.steps
        assert 0 < consumed < 20
        machine.reset_stats()
        with pytest.raises(AsyncInterrupt):
            _eval(
                machine,
                "let { go = \\n -> if n == 0 then 0 "
                "else n + go (n - 1) } in go 400",
            )
        assert machine.stats.steps == 20 - consumed


class TestResetPerObserve:
    def test_recycled_machine_reports_per_observation_cost(self):
        machine = Machine()
        expr = compile_expr("1 + 2")
        first = observe(expr, machine=machine)
        steps_once = machine.stats.steps
        second = observe(expr, machine=machine)
        assert isinstance(first, Normal) and isinstance(second, Normal)
        assert machine.stats.steps == steps_once  # not accumulated

    def test_reset_can_be_opted_out(self):
        machine = Machine()
        expr = compile_expr("1 + 2")
        observe(expr, machine=machine)
        steps_once = machine.stats.steps
        observe(expr, machine=machine, reset_stats=False)
        assert machine.stats.steps == 2 * steps_once


class TestNullSinkZeroOverhead:
    SOURCES = (
        "sum [1, 2, 3]",
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 10",
        "case (1 `div` 0) of { 1 -> 2; _ -> 3 }",
    )

    @pytest.mark.parametrize("source", SOURCES)
    def test_step_counts_identical_with_and_without_sink(self, source):
        bare = Machine()
        try:
            _eval(bare, source)
        except Exception:
            pass
        nulled = Machine(sink=NULL_SINK)
        try:
            _eval(nulled, source)
        except Exception:
            pass
        assert bare.stats.as_dict() == nulled.stats.as_dict()

    def test_counting_sink_counts_equal_stats(self):
        sink = CountingSink()
        machine = Machine(sink=sink)
        _eval(machine, "sum [1, 2, 3]")
        assert sink.count(STEP) == machine.stats.steps


class TestJsonlRoundTrip:
    def test_trace_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        machine = Machine(sink=sink)
        _eval(machine, "sum [1, 2, 3]")
        sink.close()
        records = read_trace(path)
        assert records, "trace must not be empty"
        # seq is monotonically increasing from 1.
        assert [r["seq"] for r in records] == list(
            range(1, len(records) + 1)
        )
        # Every event name is in the published taxonomy.
        assert {r["event"] for r in records} <= set(EVENT_TAXONOMY)
        # The step events are exactly the machine's step counter.
        steps = [r for r in records if r["event"] == "step"]
        assert len(steps) == machine.stats.steps
        assert steps[-1]["n"] == machine.stats.steps

    def test_exceptional_run_traces_the_raise(self, tmp_path):
        path = str(tmp_path / "raise.jsonl")
        with JsonlSink(path) as sink:
            machine = Machine(sink=sink)
            out = observe(
                compile_expr("raise Overflow"),
                env=machine_env(machine),
                machine=machine,
                reset_stats=False,
            )
        assert isinstance(out, Exceptional)
        events = [r["event"] for r in read_trace(path)]
        assert "raise" in events
