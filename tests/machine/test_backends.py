"""Backend parity: every machine backend against the AST walker.

Every test here runs under each backend in
:data:`repro.machine.BACKENDS` — ``ast``, ``compiled`` and ``super`` —
(or runs them all and compares).  The contract (docs/PERFORMANCE.md):
identical outcomes, identical counters, identical strategy-ordered
exception choices, identical async delivery points — the backends
must be observationally indistinguishable, only wall-clock differs.
New backends join the battery by appearing in ``BACKENDS``; no
bespoke tests are needed.
"""

import pytest

from repro.api import compile_expr, compile_program, run_io_source
from repro.core.excset import CONTROL_C, NON_TERMINATION, Exc
from repro.machine import (
    BACKENDS,
    CompiledMachine,
    Diverged,
    Exceptional,
    LeftToRight,
    Machine,
    Normal,
    RightToLeft,
    Shuffled,
    SuperMachine,
    observe,
    observe_program,
)
from repro.machine.heap import Cell, ObjRaise
from repro.machine.values import VCon, VFun, VInt
from repro.prelude.loader import machine_env

BOTH = pytest.mark.parametrize("backend", BACKENDS)


def run(source, backend, **kwargs):
    machine = Machine(backend=backend, **kwargs)
    env = machine_env(machine)
    return observe(compile_expr(source), env=env, machine=machine), machine


def normal_int(outcome):
    assert isinstance(outcome, Normal), str(outcome)
    assert isinstance(outcome.value, VInt)
    return outcome.value.value


class TestDispatch:
    def test_backend_selects_subclass(self):
        assert type(Machine(backend="compiled")) is CompiledMachine
        assert type(Machine(backend="super")) is SuperMachine
        assert type(Machine(backend="ast")) is Machine
        assert type(Machine()) is Machine

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Machine(backend="jit")

    def test_backend_attribute(self):
        assert Machine(backend="compiled").backend == "compiled"
        assert Machine().backend == "ast"


class TestShadowing:
    @BOTH
    def test_lambda_shadows_lambda(self, backend):
        out, _ = run("(\\x -> (\\x -> x + 1) 10 + x) 100", backend)
        assert normal_int(out) == 111

    @BOTH
    def test_let_shadows_lambda(self, backend):
        out, _ = run("(\\x -> let { x = 5 } in x * x) 3", backend)
        assert normal_int(out) == 25

    @BOTH
    def test_case_pattern_shadows(self, backend):
        src = "(\\x -> case Just 7 of { Just x -> x + x }) 1"
        out, _ = run(src, backend)
        assert normal_int(out) == 14

    @BOTH
    def test_local_shadows_prelude_global(self, backend):
        # `head` is a prelude binding resolved through a global cell in
        # the compiled backend; a local binder must still win.
        out, _ = run("let { head = \\x -> 42 } in head [1, 2]", backend)
        assert normal_int(out) == 42

    @BOTH
    def test_inner_shadow_does_not_leak(self, backend):
        out, _ = run(
            "let { y = 1 } in (let { y = 2 } in y) + y", backend
        )
        assert normal_int(out) == 3


class TestRecursionAndKnots:
    @BOTH
    def test_recursive_let(self, backend):
        src = ("let { fac = \\n -> if n < 1 then 1 else n * fac (n - 1) }"
               " in fac 6")
        out, _ = run(src, backend)
        assert normal_int(out) == 720

    @BOTH
    def test_mutual_recursion(self, backend):
        src = ("let { even = \\n -> if n == 0 then True else odd (n - 1)"
               "    ; odd  = \\n -> if n == 0 then False else even (n - 1) }"
               " in even 10")
        out, _ = run(src, backend)
        assert isinstance(out, Normal)
        assert isinstance(out.value, VCon)
        assert out.value.name == "True"

    @BOTH
    def test_fix_knot(self, backend):
        src = ("fix (\\rec -> \\n -> if n < 1 then 0 else n + rec (n - 1))"
               " 10")
        out, _ = run(src, backend)
        assert normal_int(out) == 55

    @BOTH
    def test_infinite_structure_knot(self, backend):
        # The let cell refers to itself *as data*: the frame must be
        # tied before the thunk is forced.
        src = "let { xs = Cons 1 xs } in head (tail (tail xs))"
        out, _ = run(src, backend)
        assert normal_int(out) == 1

    @BOTH
    def test_program_level_recursion(self, backend):
        program = compile_program(
            "main = go 100\n"
            "go n = if n < 1 then 0 else n + go (n - 1)\n"
        )
        out = observe_program(program, backend=backend)
        assert normal_int(out) == 5050


class TestClosureCapture:
    @BOTH
    def test_capture_survives_binder_scope(self, backend):
        # The closure escapes the let that bound `secret`; a pruned
        # capture must have copied the slot, not a frame pointer that
        # later evaluation could repurpose.
        src = ("(let { secret = 41 } in \\x -> x + secret) 1")
        out, _ = run(src, backend)
        assert normal_int(out) == 42

    @BOTH
    def test_nested_capture_chain(self, backend):
        src = ("((\\a -> \\b -> \\c -> a * 100 + b * 10 + c) 1 2 3)")
        out, _ = run(src, backend)
        assert normal_int(out) == 123

    @BOTH
    def test_captured_thunk_is_shared(self, backend):
        # Forcing through two different closures must hit one cell.
        src = ("let { x = 2 + 3; f = \\u -> x + u; g = \\u -> x * u }"
               " in f 1 + g 1")
        out, machine = run(src, backend)
        assert normal_int(out) == 11

    @BOTH
    def test_returned_function_value(self, backend):
        out, machine = run("const (\\x -> x + 1) 0", backend)
        assert isinstance(out, Normal)
        fn = out.value
        assert isinstance(fn, VFun)
        # Apply it through the backend-neutral primitive.
        cell = machine.bind_cell(fn, Cell.ready(VInt(9)))
        assert cell.force(machine) == VInt(10)


class TestBlackholes:
    @BOTH
    def test_detected_blackhole_is_non_termination(self, backend):
        out, _ = run("let { x = x + 1 } in x", backend)
        assert isinstance(out, Exceptional)
        assert out.exc == NON_TERMINATION

    @BOTH
    def test_undetected_blackhole_diverges(self, backend):
        out, _ = run(
            "let { x = x + 1 } in x", backend, detect_blackholes=False
        )
        assert isinstance(out, Diverged)

    @BOTH
    def test_fuel_exhaustion(self, backend):
        out, _ = run(
            "let { w = \\u -> w u } in w ()", backend, fuel=10_000
        )
        assert isinstance(out, Diverged)


class TestCounterParity:
    PROGRAMS = [
        "sum (map (\\x -> x * x) (enumFromTo 1 50))",
        "length [1 `div` 0, 2, error \"c\"]",
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 12",
        "foldr (\\x acc -> x + acc) 0 (take 20 (iterate (\\x -> x + 1) 1))",
        "case [1, 2, 3] of { Cons h t -> h + length t; Nil -> 0 }",
    ]

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_stats_identical(self, source):
        snapshots = {}
        for backend in BACKENDS:
            out, machine = run(source, backend)
            assert isinstance(out, Normal)
            snapshots[backend] = machine.stats.snapshot().as_dict()
        for backend in BACKENDS[1:]:
            assert snapshots[backend] == snapshots["ast"], backend

    def test_stats_identical_on_exception(self):
        snapshots = {}
        for backend in BACKENDS:
            out, machine = run("1 + (2 `div` 0)", backend)
            assert isinstance(out, Exceptional)
            snapshots[backend] = machine.stats.snapshot().as_dict()
        for backend in BACKENDS[1:]:
            assert snapshots[backend] == snapshots["ast"], backend


class TestStrategyParity:
    TWO_FAULTS = "(1 `div` 0) + error \"boom\""

    @pytest.mark.parametrize(
        "strategy, expected",
        [(LeftToRight(), "DivideByZero"), (RightToLeft(), "UserError")],
    )
    def test_ordered_strategies_pick_same_exception(
        self, strategy, expected
    ):
        for backend in BACKENDS:
            machine = Machine(strategy=strategy, backend=backend)
            env = machine_env(machine)
            out = observe(
                compile_expr(self.TWO_FAULTS), env=env, machine=machine
            )
            assert isinstance(out, Exceptional)
            assert out.exc.name == expected, backend

    @pytest.mark.parametrize("seed", [0, 1, 7, 11])
    def test_shuffled_rng_stream_parity(self, seed):
        # Shuffled consults its RNG per prim-op execution; both
        # backends must draw in the same order and land on the same
        # representative exception.
        picks = {}
        for backend in BACKENDS:
            machine = Machine(strategy=Shuffled(seed), backend=backend)
            env = machine_env(machine)
            out = observe(
                compile_expr(self.TWO_FAULTS), env=env, machine=machine
            )
            assert isinstance(out, Exceptional)
            picks[backend] = out.exc
        for backend in BACKENDS[1:]:
            assert picks[backend] == picks["ast"], backend


class TestAsyncParity:
    @BOTH
    def test_event_plan_interrupts(self, backend):
        machine = Machine(event_plan={50: CONTROL_C}, backend=backend)
        env = machine_env(machine)
        out = observe(
            compile_expr("let { w = \\u -> w u } in w ()"),
            env=env, machine=machine,
        )
        assert isinstance(out, Exceptional)
        assert out.exc == CONTROL_C

    def test_delivery_step_parity(self):
        # The interrupt must land at the same step count on both
        # backends — the tick contract, not just the final outcome.
        steps = {}
        for backend in BACKENDS:
            machine = Machine(event_plan={75: CONTROL_C}, backend=backend)
            env = machine_env(machine)
            out = observe(
                compile_expr("let { w = \\u -> w u } in w ()"),
                env=env, machine=machine,
            )
            assert isinstance(out, Exceptional)
            steps[backend] = machine.stats.steps
        for backend in BACKENDS[1:]:
            assert steps[backend] == steps["ast"], backend


class TestRaiseMemoisation:
    @BOTH
    def test_cell_overwritten_with_raise(self, backend):
        machine = Machine(backend=backend)
        env = machine_env(machine)
        cell = Cell(compile_expr("1 `div` 0"), env)
        with pytest.raises(ObjRaise) as first:
            cell.force(machine)
        raises_after_first = machine.stats.raises
        with pytest.raises(ObjRaise) as second:
            cell.force(machine)
        assert first.value.exc == second.value.exc
        # The overwrite (Section 3.3) means no re-evaluation: the raise
        # counter must not move on the second force.
        assert machine.stats.raises == raises_after_first


class TestIOParity:
    @BOTH
    def test_put_str_sequencing(self, backend):
        result = run_io_source('putStr "a" >> putStr "b"', backend=backend)
        assert result.ok
        assert result.stdout == "ab"

    @BOTH
    def test_catch_io(self, backend):
        src = ('catchIO (ioError (UserError "boom")) '
               '(\\e -> putStr "caught")')
        result = run_io_source(src, backend=backend)
        assert result.ok
        assert result.stdout == "caught"

    @BOTH
    def test_get_exception(self, backend):
        src = ("getException (1 `div` 0) >>= (\\r -> "
               "case r of { OK v -> putStr \"ok\"; "
               "Bad e -> putStr \"bad\" })")
        result = run_io_source(src, backend=backend)
        assert result.ok
        assert result.stdout == "bad"

    @BOTH
    def test_map_exception(self, backend):
        machine = Machine(backend=backend)
        env = machine_env(machine)
        out = observe(
            compile_expr(
                'mapException (\\e -> UserError "renamed") (1 `div` 0)'
            ),
            env=env, machine=machine,
        )
        assert isinstance(out, Exceptional)
        assert out.exc.name == "UserError"


class TestProvenanceParity:
    """Provenance records are part of the observable surface: both
    backends must report the same raise site, chain shape and
    scheduling indices for the same schedule."""

    CASES = [
        "(1 `div` 0) + error \"boom\"",
        "sum [1, 2 `div` 0, 3]",
        "case Just 1 of { Nothing -> 0 }",
        "let { x = 1 `div` 0 } in (x + 0) + (x + 0)",
        "head (filter (\\x -> x `div` 0 > 0) [1, 2, 3])",
    ]

    def _observe_with_provenance(self, source, backend, strategy=None):
        machine = Machine(strategy=strategy, backend=backend)
        env = machine_env(machine)
        return observe(
            compile_expr(source),
            env=env,
            machine=machine,
            provenance=True,
        )

    @pytest.mark.parametrize("source", CASES)
    def test_records_identical(self, source):
        outcomes = [
            self._observe_with_provenance(source, backend)
            for backend in BACKENDS
        ]
        reference = outcomes[0]
        assert isinstance(reference, Exceptional)
        for backend, outcome in zip(BACKENDS[1:], outcomes[1:]):
            assert outcome == reference, backend
            assert outcome.provenance == reference.provenance, backend

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_records_identical_under_shuffle(self, seed):
        source = "(1 `div` 0) + error \"boom\""
        records = [
            self._observe_with_provenance(
                source, backend, strategy=Shuffled(seed)
            ).provenance
            for backend in BACKENDS
        ]
        for backend, record in zip(BACKENDS[1:], records[1:]):
            assert record == records[0], backend


class TestAttributionParity:
    """Span-level cost attribution is computed from the event stream,
    so both backends must produce identical per-span totals and
    identical folded stacks."""

    CASES = [
        "let { fib = \\n -> if n < 2 then n "
        "else fib (n - 1) + fib (n - 2) } in fib 10",
        "sum (map (\\x -> x * x) (enumFromTo 1 40))",
        "sum [1, 2 `div` 0, 3]",
    ]

    def _attribute(self, source, backend):
        from repro.obs import SpanProfiler

        profiler = SpanProfiler()
        machine = Machine(backend=backend)
        env = machine_env(machine)
        observe(
            compile_expr(source),
            env=env,
            machine=machine,
            sink=profiler,
        )
        return profiler

    @pytest.mark.parametrize("source", CASES)
    def test_totals_identical(self, source):
        profilers = [
            self._attribute(source, backend) for backend in BACKENDS
        ]
        assert profilers[0].totals  # non-empty: attribution happened
        for backend, prof in zip(BACKENDS[1:], profilers[1:]):
            assert prof.totals == profilers[0].totals, backend

    @pytest.mark.parametrize("source", CASES)
    def test_folded_stacks_identical(self, source):
        profilers = [
            self._attribute(source, backend) for backend in BACKENDS
        ]
        reference = profilers[0].folded_lines()
        for backend, prof in zip(BACKENDS[1:], profilers[1:]):
            assert prof.folded_lines() == reference, backend
