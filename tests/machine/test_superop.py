"""The superinstruction backend's own surface: profile parsing and
heat classification, profile-guided fusion gating, constant folding
through memoised prelude cells, the source-keyed code-object cache,
and decision-decorated flamegraph parity.

Observable parity with the other backends lives in
tests/machine/test_backends.py (every test there runs under
``backend="super"`` too); this module pins the knobs that exist *only*
on the super backend.
"""

import pytest

from repro.api import compile_expr, observe_source
from repro.machine import Machine, Normal, SuperMachine, observe
from repro.machine.superop import (
    _CODE_CACHE,
    compile_super,
    load_profile,
    normalize_profile,
    span_heat,
)
from repro.prelude.loader import machine_env

FIB = (
    "let { fib = \\n -> if n < 2 then n "
    "else fib (n - 1) + fib (n - 2) } in fib 10"
)


def run(source, **kwargs):
    machine = Machine(backend="super", **kwargs)
    env = machine_env(machine)
    out = observe(compile_expr(source), env=env, machine=machine)
    return out, machine


class TestSpanHeat:
    FOLDED = [
        "<root>;fib 1",
        "<root>;fib;fib 96",
        "<root>;sum 2",
        "",
        "not-a-folded-line",
        "<root> 1",
    ]

    def test_counts_attribute_to_leaf_frames(self):
        heat = span_heat(self.FOLDED)
        # fib collected 97 of 100 leaf steps; the rest are cold at the
        # default 1% cut only if below it — sum (2%) and <root> (1%)
        # clear the bar, so everything here is hot.
        assert heat["fib"] is True
        assert heat["sum"] is True

    def test_fraction_raises_the_bar(self):
        heat = span_heat(self.FOLDED, fraction=0.5)
        assert heat == {"fib": True, "sum": False, "<root>": False}

    def test_decision_decorations_are_stripped(self):
        plain = span_heat(["<root>;fib 10", "<root>;sum 1"])
        decorated = span_heat(["<root>@d0;fib@d3 10", "<root>@d0;sum@d7 1"])
        assert decorated == plain

    def test_empty_profile_is_empty_map(self):
        assert span_heat([]) == {}
        assert span_heat(["garbage", ""]) == {}


class TestNormalizeProfile:
    def test_none_means_fuse_everything(self):
        assert normalize_profile(None) is None

    def test_dict_is_copied_through(self):
        heat = {"fib": True, "sum": False}
        normalized = normalize_profile(heat)
        assert normalized == heat
        assert normalized is not heat

    def test_iterable_of_folded_lines(self):
        assert normalize_profile(["<root>;fib 10"]) == {"fib": True}

    def test_path_loads_folded_file(self, tmp_path):
        path = tmp_path / "profile.folded"
        path.write_text("<root>;fib 99\n<root>;sum 1\n")
        assert normalize_profile(str(path)) == load_profile(str(path))
        assert normalize_profile(str(path))["fib"] is True


class TestProfileGuidedFusion:
    def test_default_fuses_hot_shapes(self):
        out, machine = run(FIB)
        assert isinstance(out, Normal)
        report = machine.fusion_report()
        assert report["prim"] > 0
        assert report["case"] > 0
        assert report["app"] > 0

    def test_all_cold_profile_suppresses_fusion(self):
        # A profile that marks the root region cold (and names no hot
        # span) turns the super backend into the plain compiled
        # lowering: zero fusion sites claimed, identical observations.
        from repro.obs.attribution import ROOT

        out_cold, cold_machine = run(FIB, profile={ROOT: False})
        out_hot, hot_machine = run(FIB)
        assert out_cold == out_hot
        assert cold_machine.stats.snapshot() == hot_machine.stats.snapshot()
        assert sum(cold_machine.fusion_report().values()) == 0
        assert sum(hot_machine.fusion_report().values()) > 0

    def test_machine_dispatch_accepts_profile_kwarg(self):
        machine = Machine(backend="super", profile={"fib": True})
        assert type(machine) is SuperMachine
        assert machine._heat == {"fib": True}

    def test_profile_requires_super_backend(self):
        with pytest.raises(TypeError):
            Machine(backend="compiled", profile={"fib": True})

    def test_observe_source_profile_plumbs_through(self):
        out = observe_source(FIB, backend="super", profile={"fib": False})
        assert isinstance(out, Normal)
        assert str(out.value) == "55"

    def test_observe_source_profile_rejects_other_backends(self):
        with pytest.raises(ValueError):
            observe_source(FIB, backend="compiled", profile={})


class TestConstantFolding:
    def test_forced_prelude_cells_fold(self):
        # machine_env leaves prelude cells memoised only after use;
        # force one, then compile a fresh expression against the same
        # environment — the state-2 global bakes in as a constant.
        machine = Machine(backend="super")
        env = machine_env(machine)
        observe(compile_expr("const 1 2"), env=env, machine=machine)
        before = machine.fusion_report()["folded-cells"]
        observe(compile_expr("const 3 4"), env=env, machine=machine)
        assert machine.fusion_report()["folded-cells"] > before

    def test_folding_preserves_counters(self):
        # Warm-heap parity: re-evaluating against an already-memoised
        # environment lets the super compiler fold the forced globals,
        # but its second-run counters must still match the unfused
        # compiled backend doing the same warm re-evaluation — folding
        # removes indirections, not ticks.
        source = "sum (enumFromTo 1 5)"
        second = {}
        for backend in ("compiled", "super"):
            machine = Machine(backend=backend)
            env = machine_env(machine)
            observe(compile_expr(source), env=env, machine=machine)
            out = observe(compile_expr(source), env=env, machine=machine)
            assert isinstance(out, Normal)
            second[backend] = machine.stats.snapshot().as_dict()
        assert second["super"] == second["compiled"]


class TestCodeCache:
    def test_identical_sources_share_code_objects(self):
        expr = compile_expr("1 + 2 * 3")
        machine = Machine(backend="super")
        env = machine_env(machine)
        compile_super(expr, env, machine.strategy)
        size = len(_CODE_CACHE)
        other = Machine(backend="super")
        compile_super(expr, machine_env(other), other.strategy)
        assert len(_CODE_CACHE) == size

    def test_cached_code_still_gets_fresh_constants(self):
        # The cache keys code *objects* by source text; per-environment
        # constants live in each function's namespace, so two machines
        # sharing cached code must still compute independently.
        a, _ = run("sum (enumFromTo 1 10)")
        b, _ = run("sum (enumFromTo 1 10)")
        assert a == b
        assert str(a.value) == "55"


class TestDecisionDecoratedFlames:
    def _folded(self, backend):
        from repro.obs import SpanProfiler

        profiler = SpanProfiler(decisions=True)
        machine = Machine(backend=backend)
        env = machine_env(machine)
        observe(
            compile_expr(FIB), env=env, machine=machine, sink=profiler
        )
        return profiler.folded_lines()

    def test_decorated_stacks_byte_identical_across_backends(self):
        from repro.machine import BACKENDS

        reference = self._folded("ast")
        assert any("@d" in line for line in reference)
        for backend in BACKENDS[1:]:
            assert self._folded(backend) == reference, backend

    def test_decorated_profile_steers_like_plain(self):
        decorated = span_heat(self._folded("super"))
        out, machine = run(FIB, profile=decorated)
        assert isinstance(out, Normal)
        assert str(out.value) == "55"
