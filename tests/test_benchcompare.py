"""Unit tests for the ``repro bench`` comparison engine."""

import json

from repro.benchcompare import (
    DEFAULT_SEED_DIR,
    EXPERIMENT_SOURCES,
    compare_records,
    load_records,
)


def _write(dir_path, experiment, rows):
    path = dir_path / f"BENCH_{experiment}.json"
    path.write_text(
        json.dumps({"experiment": experiment, "rows": rows})
    )


class TestLoadRecords:
    def test_loads_bench_files(self, tmp_path):
        _write(tmp_path, "E1", [{"workload": "fib", "steps": 10}])
        _write(tmp_path, "E2", [{"workload": "fib", "ratio": 2.0}])
        (tmp_path / "unrelated.json").write_text("{}")
        records = load_records(str(tmp_path))
        assert set(records) == {"E1", "E2"}

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_records(str(tmp_path / "nope")) == {}


class TestCompare:
    def test_identical_records_pass(self):
        rows = {"E1": [{"workload": "fib", "steps": 100}]}
        comparison = compare_records(rows, rows)
        assert comparison.ok
        assert not comparison.regressions
        assert comparison.deltas[0].pct == 0.0

    def test_regression_over_threshold_fails(self):
        seed = {"E1": [{"workload": "fib", "steps": 100}]}
        fresh = {"E1": [{"workload": "fib", "steps": 121}]}
        comparison = compare_records(seed, fresh)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.metric == "steps"
        assert delta.pct == 21.0

    def test_within_threshold_passes(self):
        seed = {"E1": [{"workload": "fib", "steps": 100}]}
        fresh = {"E1": [{"workload": "fib", "steps": 119}]}
        assert compare_records(seed, fresh).ok

    def test_improvement_is_not_a_regression(self):
        seed = {"E1": [{"workload": "fib", "steps": 100}]}
        fresh = {"E1": [{"workload": "fib", "steps": 50}]}
        assert compare_records(seed, fresh).ok

    def test_wallclock_fields_never_gate(self):
        seed = {
            "E13": [
                {"workload": "fib", "ast_seconds": 0.01, "speedup": 3.0}
            ]
        }
        fresh = {
            "E13": [
                {"workload": "fib", "ast_seconds": 9.99, "speedup": 0.1}
            ]
        }
        comparison = compare_records(seed, fresh)
        assert comparison.ok
        assert all(not d.gated for d in comparison.deltas)
        assert "(not gated)" in comparison.table()

    def test_zero_seed_turning_nonzero_is_infinite_regression(self):
        seed = {"E1b": [{"workload": "fib", "overhead_pct": 0.0}]}
        fresh = {"E1b": [{"workload": "fib", "overhead_pct": 0.5}]}
        comparison = compare_records(seed, fresh)
        assert not comparison.ok

    def test_rows_matched_by_string_fields(self):
        seed = {
            "E2": [
                {"workload": "fib", "axis": "steps", "native": 10},
                {"workload": "fib", "axis": "code-size", "native": 5},
            ]
        }
        fresh = {
            "E2": [
                {"workload": "fib", "axis": "code-size", "native": 5},
                {"workload": "fib", "axis": "steps", "native": 10},
            ]
        }
        assert compare_records(seed, fresh).ok

    def test_missing_fresh_row_is_a_problem(self):
        seed = {"E1": [{"workload": "fib", "steps": 10}]}
        fresh = {"E1": []}
        comparison = compare_records(seed, fresh)
        assert not comparison.ok
        assert any("missing" in p for p in comparison.problems)

    def test_missing_experiment_is_a_problem(self):
        comparison = compare_records(
            {"E1": [{"workload": "fib", "steps": 10}]}, {}
        )
        assert not comparison.ok

    def test_unseeded_experiment_is_a_problem(self):
        comparison = compare_records(
            {}, {"E99": [{"workload": "fib", "steps": 10}]}
        )
        assert not comparison.ok
        assert any("E99" in p for p in comparison.problems)

    def test_as_dict_is_json_serialisable(self):
        seed = {"E1": [{"workload": "fib", "steps": 100}]}
        fresh = {"E1": [{"workload": "fib", "steps": 130}]}
        payload = json.loads(
            json.dumps(compare_records(seed, fresh).as_dict())
        )
        assert payload["ok"] is False
        assert payload["regressions"][0]["metric"] == "steps"


class TestCheckedInSeeds:
    """The seed records shipped in benchmarks/records/ stay coherent."""

    def test_seeds_exist_for_every_gated_experiment(self):
        records = load_records(DEFAULT_SEED_DIR)
        assert set(records) == set(EXPERIMENT_SOURCES)

    def test_seed_overhead_rows_are_zero(self):
        records = load_records(DEFAULT_SEED_DIR)
        for row in records["E1b"]:
            assert row["overhead_pct"] == 0.0


class TestParallelRuns:
    """``--jobs`` must be a pure speed knob: a parallel run writes
    byte-identical records to a serial one (the determinism gate for
    the parallelised ``repro bench``)."""

    def test_parallel_records_match_serial_exactly(self, tmp_path):
        # Wall-clock fields differ between *any* two runs (that is why
        # the gate never looks at them); every deterministic metric
        # must agree to the digit, and the row/file structure must be
        # identical.
        from repro.benchcompare import _is_wallclock, run_benchmarks

        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        experiments = ["E1", "E13"]
        assert run_benchmarks(str(serial), experiments, jobs=1) == 0
        assert run_benchmarks(str(parallel), experiments, jobs=0) == 0
        serial_files = sorted(p.name for p in serial.iterdir())
        parallel_files = sorted(p.name for p in parallel.iterdir())
        assert serial_files == parallel_files
        assert serial_files == ["BENCH_E1.json", "BENCH_E13.json"]

        def deterministic(directory):
            return {
                experiment: [
                    {
                        k: v
                        for k, v in row.items()
                        if not _is_wallclock(k)
                    }
                    for row in rows
                ]
                for experiment, rows in load_records(
                    str(directory)
                ).items()
            }

        assert deterministic(serial) == deterministic(parallel)

    def test_unknown_experiment_rejected_before_spawning(self, tmp_path):
        import pytest

        from repro.benchcompare import run_benchmarks

        with pytest.raises(ValueError):
            run_benchmarks(str(tmp_path), ["E99"], jobs=4)
