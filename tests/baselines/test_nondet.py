"""The non-deterministic baseline (Section 3.4, option 2): collecting
semantics and the paper's β-failure counterexample."""

import pytest

from repro.api import compile_expr
from repro.baselines.nondet import (
    ChoiceStrategy,
    collect_outcomes,
    demonstrate_beta_failure,
)
from repro.prelude.loader import machine_env


class TestChoiceStrategy:
    def test_follows_choices(self):
        strategy = ChoiceStrategy([0, 1])
        assert strategy.order("+", 2) == (0, 1)
        assert strategy.order("+", 2) == (1, 0)

    def test_default_beyond_prefix(self):
        strategy = ChoiceStrategy([])
        assert strategy.order("+", 2) == (0, 1)
        assert strategy.overflowed

    def test_unary_not_a_choice_point(self):
        strategy = ChoiceStrategy([])
        strategy.order("negate", 1)
        assert strategy.used == 0


class TestCollectingSemantics:
    def test_deterministic_program_single_outcome(self):
        outcomes = collect_outcomes(compile_expr("1 + 2"))
        assert outcomes == frozenset({("ok-int", 3)})

    def test_two_exceptions_two_outcomes(self):
        outcomes = collect_outcomes(
            compile_expr(
                '(1 `div` 0) + raise (UserError "Urk")'
            )
        )
        assert outcomes == frozenset(
            {
                ("exc", "DivideByZero", None),
                ("exc", "UserError", "Urk"),
            }
        )

    def test_nested_choices_explored(self):
        outcomes = collect_outcomes(
            compile_expr(
                "(raise Overflow + raise DivideByZero) + "
                "raise PatternMatchFail"
            )
        )
        assert ("exc", "Overflow", None) in outcomes
        assert ("exc", "DivideByZero", None) in outcomes
        assert ("exc", "PatternMatchFail", None) in outcomes

    def test_with_prelude_env(self):
        outcomes = collect_outcomes(
            compile_expr("sum [1, 2, 3]"), env_builder=machine_env
        )
        assert outcomes == frozenset({("ok-int", 6)})

    def test_outcome_set_is_the_denoted_set(self):
        # Cross-check against the imprecise denotation: the collecting
        # outcomes are exactly the finite members of the Bad set.
        from repro.api import denote_source
        from repro.core.domains import Bad

        denoted = denote_source('(1 `div` 0) + error "Urk"')
        assert isinstance(denoted, Bad)
        names = {e.name for e in denoted.excs.finite_members()}
        outcomes = collect_outcomes(
            compile_expr('(1 `div` 0) + error "Urk"'),
            env_builder=machine_env,
        )
        assert {o[1] for o in outcomes} == names


class TestBetaFailure:
    """Section 3.4: under source-level non-determinism, β is invalid —
    "the non-deterministic + might (in principle) make a different
    choice at its two occurrences"."""

    def test_shared_always_equal(self):
        demo = demonstrate_beta_failure()
        assert demo.shared_outcomes == frozenset({("equal", True)})

    def test_substituted_can_differ(self):
        demo = demonstrate_beta_failure()
        assert ("equal", False) in demo.substituted_outcomes

    def test_beta_invalid_under_nondet(self):
        demo = demonstrate_beta_failure()
        assert not demo.beta_valid
