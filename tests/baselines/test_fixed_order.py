"""The fixed-evaluation-order baseline (Section 3.4, option 1)."""

import pytest

from repro.baselines.fixed_order import (
    denote_fixed_order,
    fixed_order_ctx,
)
from repro.core.domains import Bad, Ok
from repro.lang.match import flatten_case_patterns
from repro.lang.parser import parse_expr
from tests.conftest import d


def d_fixed(source, fuel=100_000):
    return d(source, ctx=fixed_order_ctx(fuel))


def names(value):
    assert isinstance(value, Bad)
    return {e.name for e in value.excs.finite_members()}


class TestSingleExceptionSemantics:
    def test_left_argument_wins(self):
        value = d_fixed('(1 `div` 0) + error "Urk"')
        assert names(value) == {"DivideByZero"}

    def test_order_dependence_exposed(self):
        a = d_fixed('(1 `div` 0) + error "Urk"')
        b = d_fixed('error "Urk" + (1 `div` 0)')
        assert names(a) != names(b)

    def test_sets_stay_singletons(self):
        value = d_fixed(
            "(raise Overflow + raise DivideByZero) + raise PatternMatchFail"
        )
        assert len(names(value)) == 1

    def test_normal_results_agree_with_imprecise(self):
        for source in ("1 + 2", "sum [1, 2, 3]", "(\\x -> x) 9"):
            assert d_fixed(source) == d(source)

    def test_case_naive(self):
        value = d_fixed(
            "case raise DivideByZero of { True -> raise Overflow;"
            " False -> 1 }"
        )
        assert names(value) == {"DivideByZero"}

    def test_application_ignores_argument(self):
        value = d_fixed("(raise Overflow) (1 `div` 0)")
        assert names(value) == {"Overflow"}

    def test_laziness_preserved(self):
        # Fixing the order does not make the language strict.
        assert d_fixed("(\\x -> 3) (1 `div` 0)") == Ok(3)

    def test_denote_fixed_order_helper(self):
        expr = flatten_case_patterns(parse_expr("1 + 1"))
        assert denote_fixed_order(expr) == Ok(2)
