"""Documentation hygiene: every relative markdown link must resolve,
and the README's documentation index must cover docs/.

Grew out of the docs sweep for the warm-path PR: cross-references
between README, EXPERIMENTS and the docs/ pages kept drifting as
pages were added.  This pins them.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

# Narrative markdown only — not the per-PR scratch files.
DOC_FILES = sorted(
    p
    for p in list(REPO.glob("*.md")) + list((REPO / "docs").glob("*.md"))
    if p.name not in {"ISSUE.md", "SNIPPETS.md", "PAPERS.md"}
)

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_links(path: Path) -> list[str]:
    """All non-URL, non-anchor markdown link targets in a file."""
    out = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        out.append(target.split("#", 1)[0])
    return out


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_resolve(doc: Path) -> None:
    for target in relative_links(doc):
        resolved = (doc.parent / target).resolve()
        assert resolved.exists(), (
            f"{doc.relative_to(REPO)} links to {target!r}, "
            f"which does not exist at {resolved}"
        )


def test_readme_indexes_every_docs_page() -> None:
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    for page in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md documentation index is missing docs/{page.name}"
        )


def test_experiments_links_are_markdown_linked_docs() -> None:
    """Each docs/ page named in an EXPERIMENTS.md headline must exist."""
    text = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for name in re.findall(r"docs/([A-Z]+\.md)", text):
        assert (REPO / "docs" / name).exists(), f"docs/{name} missing"
