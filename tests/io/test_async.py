"""Asynchronous exceptions (Section 5.1): interrupts, timeouts, and
resumable thunks."""

import pytest

from repro.api import compile_expr, run_io_source
from repro.core.excset import CONTROL_C, TIMEOUT
from repro.io.events import (
    EventPlan,
    control_c_at,
    heap_overflow_at,
    stack_overflow_at,
    timeout_after,
)
from repro.machine import Cell, Machine
from repro.machine.heap import AsyncInterrupt
from repro.machine.values import VInt
from repro.prelude.loader import machine_env

CATCH = (
    "getException (sum (enumFromTo 1 5000)) >>= (\\r -> case r of "
    "{ OK v -> putStr \"ok\"; Bad e -> putStr (showException e) })"
)


class TestEventPlans:
    def test_timeout_plan(self):
        plan = timeout_after(100)
        assert plan.as_dict() == {100: TIMEOUT}

    def test_control_c_plan(self):
        plan = control_c_at(5)
        assert plan.as_dict()[5] == CONTROL_C

    def test_shifted(self):
        plan = timeout_after(100).shifted(50)
        assert 150 in plan.as_dict()

    def test_resource_events(self):
        assert stack_overflow_at(1).as_dict()[1].name == "StackOverflow"
        assert heap_overflow_at(1).as_dict()[1].name == "HeapOverflow"


class TestInterruptDelivery:
    def test_getexception_catches_control_c(self):
        # getException v --?x--> return (Bad x): the value (even a
        # perfectly normal one) is discarded.
        result = run_io_source(CATCH, events=control_c_at(500))
        assert result.ok
        assert result.stdout == "ControlC"

    def test_uncaught_interrupt_aborts(self):
        result = run_io_source(
            "putStr (showInt (sum (enumFromTo 1 5000)))",
            events=control_c_at(500),
        )
        assert result.status == "exception"
        assert result.exc == CONTROL_C

    def test_no_event_normal_result(self):
        result = run_io_source(CATCH)
        assert result.stdout == "ok"

    def test_event_after_completion_ignored(self):
        result = run_io_source(CATCH, events=control_c_at(10_000_000))
        assert result.stdout == "ok"

    def test_timeout_monitor(self):
        # "if evaluation of my argument goes on for too long, I will
        # terminate evaluation and return Bad Timeout".
        result = run_io_source(
            "getException (let { w = w + 0 } in "
            "sum (iterate (\\x -> x) 1)) >>= (\\r -> case r of "
            "{ OK v -> putStr \"ok\"; "
            "Bad e -> putStr (showException e) })",
            fuel=20_000,
            timeout_as_exception=True,
        )
        assert result.ok
        assert result.stdout == "Timeout"


class TestResumableThunks:
    """The "fascinating wrinkle" (Section 5.1): thunks abandoned by an
    asynchronous exception must be overwritten with a resumable
    continuation, not with ``raise ex``."""

    def test_thunk_resumable_after_interrupt(self):
        machine = Machine(event_plan={50: CONTROL_C})
        env = machine_env(machine)
        cell = Cell(compile_expr("sum (enumFromTo 1 100)"), env)
        with pytest.raises(AsyncInterrupt):
            cell.force(machine)
        # The interrupt must NOT have poisoned the thunk: forcing again
        # (no further events pending) completes normally.
        value = cell.force(machine)
        assert value == VInt(5050)

    def test_sync_exception_still_poisons(self):
        from repro.machine.heap import ObjRaise

        machine = Machine()
        env = machine_env(machine)
        cell = Cell(compile_expr("1 `div` 0"), env)
        with pytest.raises(ObjRaise):
            cell.force(machine)
        with pytest.raises(ObjRaise):
            cell.force(machine)
