"""The Section 4.4 labelled transition system over denotations:
trace enumeration, non-deterministic getException, oracles."""

import pytest

from repro.api import denote_source
from repro.core.excset import CONTROL_C, TIMEOUT
from repro.io.oracle import FirstOracle, SeededOracle
from repro.io.transition import (
    enumerate_outcomes,
    run_denotational,
)


def outcomes(source, **kwargs):
    return enumerate_outcomes(denote_source(source), **kwargs)


def kinds(results):
    return {r.kind for r in results}


class TestDeterministicPrograms:
    def test_return(self):
        results = outcomes("returnIO 42")
        assert len(results) == 1
        (result,) = results
        assert result.kind == "ok"
        assert result.detail == "42"

    def test_putchar_trace(self):
        (result,) = outcomes("putChar 'x'")
        assert result.trace == ("!x",)

    def test_getchar_consumes_input(self):
        (result,) = outcomes(
            "getChar >>= (\\c -> putChar c)", stdin="q"
        )
        assert result.trace == ("?q", "!q")

    def test_getchar_blocked_without_input(self):
        (result,) = outcomes("getChar")
        assert result.kind == "blocked"

    def test_bind_chains(self):
        (result,) = outcomes(
            "putStr \"ab\" >>= (\\u -> putStr \"cd\")"
        )
        assert "".join(result.trace) == "!a!b!c!d"


class TestGetExceptionRules:
    def test_ok_rule(self):
        (result,) = outcomes("getException 42")
        assert result.kind == "ok"
        assert "OK" in result.detail

    def test_bad_rule_branches_over_the_set(self):
        # getException (Bad {DivideByZero, UserError}) -> either member.
        results = outcomes(
            "getException ((1 `div` 0) + error \"Urk\") >>= "
            "(\\r -> case r of { OK v -> putChar 'k'; "
            "Bad e -> case e of { DivideByZero -> putChar 'd'; "
            "_ -> putChar 'u' } })"
        )
        traces = {"".join(r.trace) for r in results}
        assert traces == {"!d", "!u"}

    def test_nontermination_rule_allows_divergence(self):
        # getException ⊥ may diverge or return any exception
        # (fictitious exceptions, Section 5.3).
        results = outcomes(
            "getException (let { w = w + 1 } in w) >>= "
            "(\\r -> returnIO 0)"
        )
        assert "diverge" in kinds(results)
        assert any(r.fictitious is False for r in results) or any(
            "~" in "".join(r.trace) for r in results
        )

    def test_uncaught_bad_program(self):
        results = outcomes("putStr (showInt (1 `div` 0))")
        assert kinds(results) == {"uncaught"}
        (result,) = results
        assert "DivideByZero" in result.detail


class TestAsyncRule:
    def test_async_event_branch(self):
        results = outcomes(
            "getException 42 >>= (\\r -> case r of "
            "{ OK v -> putChar 'k'; Bad e -> putChar 'e' })",
            async_events=[CONTROL_C],
        )
        traces = {"".join(r.trace) for r in results}
        # Without the event: value 42 -> 'k'.  With it: Bad ControlC,
        # discarding the normal value -> 'e'.
        assert traces == {"!k", "?ControlC!e"}


class TestExecutorAgreesWithLTS:
    """Soundness of the executor w.r.t. the transition system: every
    operational run is one of the enumerated behaviours."""

    PROGRAMS = [
        ("returnIO 7", ""),
        ("putStr \"ab\"", ""),
        ("getChar >>= (\\c -> putChar c)", "m"),
        (
            "getException ((1 `div` 0) + error \"Urk\") >>= "
            "(\\r -> case r of { OK v -> putChar 'k'; "
            "Bad e -> case e of { DivideByZero -> putChar 'd'; "
            "_ -> putChar 'u' } })",
            "",
        ),
        ("putStr (showInt (1 `div` 0))", ""),
    ]

    def test_operational_runs_are_permitted(self):
        from repro.api import run_io_source
        from repro.machine import LeftToRight, RightToLeft

        for source, stdin in self.PROGRAMS:
            allowed = outcomes(source, stdin=stdin)
            allowed_traces = {
                ("".join(r.trace).replace("~", ""), r.kind)
                for r in allowed
            }
            for strategy in (LeftToRight(), RightToLeft()):
                result = run_io_source(
                    source, stdin=stdin, strategy=strategy
                )
                trace = "".join(
                    f"!{c}" for c in result.stdout
                )
                if stdin and result.stdout:
                    # reads interleave; reconstruct coarse trace
                    trace = f"?{stdin[0]}" + trace
                kind = {
                    "ok": "ok",
                    "exception": "uncaught",
                    "diverged": "diverge",
                }[result.status]
                assert (trace, kind) in allowed_traces, (
                    f"{source}: {trace}/{kind} not in {allowed_traces}"
                )


class TestDenotationalRunner:
    def test_first_oracle_deterministic(self):
        io = denote_source(
            "getException ((1 `div` 0) + error \"Urk\")"
        )
        a = run_denotational(io, oracle=FirstOracle())
        b = run_denotational(io, oracle=FirstOracle())
        assert a == b

    def test_seeded_oracle_reproducible(self):
        io = denote_source(
            "getException ((1 `div` 0) + error \"Urk\")"
        )
        a = run_denotational(io, oracle=SeededOracle(3))
        b = run_denotational(io, oracle=SeededOracle(3))
        assert a == b

    def test_oracle_choice_varies_with_seed(self):
        io_src = (
            "getException ((1 `div` 0) + error \"Urk\") >>= "
            "(\\r -> case r of { OK v -> putChar 'k'; "
            "Bad e -> case e of { DivideByZero -> putChar 'd'; "
            "_ -> putChar 'u' } })"
        )
        seen = set()
        for seed in range(8):
            io = denote_source(io_src)
            result = run_denotational(io, oracle=SeededOracle(seed))
            seen.add("".join(result.trace))
        assert seen == {"!d", "!u"}

    def test_trace_and_io(self):
        io = denote_source(
            "getChar >>= (\\c -> putChar c)",
        )
        result = run_denotational(io, stdin="w")
        assert result.kind == "ok"
        assert result.trace == ("?w", "!w")

    def test_divergence_choice(self):
        io = denote_source(
            "getException (let { w = w + 1 } in w)", fuel=20_000
        )
        oracle = SeededOracle(0, diverge_probability=1.0)
        result = run_denotational(io, oracle=oracle)
        assert result.kind == "diverge"
