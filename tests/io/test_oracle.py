"""Choice oracles (Section 3.5's external consultant)."""

import pytest

from repro.core.excset import (
    ALL_EXCEPTIONS,
    BOTTOM_SET,
    DIVIDE_BY_ZERO,
    EMPTY_SET,
    ExcSet,
    NON_TERMINATION,
    OVERFLOW,
)
from repro.io.oracle import FirstOracle, SeededOracle


class TestFirstOracle:
    def test_deterministic(self):
        oracle = FirstOracle()
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO)
        assert oracle.choose(s) == oracle.choose(s)

    def test_member(self):
        oracle = FirstOracle()
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO)
        assert oracle.choose(s) in s

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            FirstOracle().choose(EMPTY_SET)

    def test_never_diverges(self):
        assert not FirstOracle().choose_divergence(BOTTOM_SET)


class TestSeededOracle:
    def test_reproducible(self):
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO)
        picks_a = [SeededOracle(4).choose(s) for _ in range(5)]
        picks_b = [SeededOracle(4).choose(s) for _ in range(5)]
        assert picks_a == picks_b

    def test_varies_across_calls(self):
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO)
        oracle = SeededOracle(0)
        picks = {oracle.choose(s) for _ in range(20)}
        assert len(picks) == 2  # both members eventually chosen

    def test_member_always(self):
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO)
        oracle = SeededOracle(1)
        for _ in range(20):
            assert oracle.choose(s) in s

    def test_infinite_set_fictitious_choice(self):
        # Any synchronous exception is permitted from ⊥ (Section 5.3).
        oracle = SeededOracle(2)
        exc = oracle.choose(BOTTOM_SET)
        assert exc in BOTTOM_SET or exc == DIVIDE_BY_ZERO

    def test_divergence_probability_zero(self):
        oracle = SeededOracle(0, diverge_probability=0.0)
        assert not oracle.choose_divergence(BOTTOM_SET)

    def test_divergence_probability_one(self):
        oracle = SeededOracle(0, diverge_probability=1.0)
        assert oracle.choose_divergence(BOTTOM_SET)

    def test_divergence_needs_nontermination(self):
        oracle = SeededOracle(0, diverge_probability=1.0)
        assert not oracle.choose_divergence(ExcSet.of(OVERFLOW))
        assert oracle.choose_divergence(
            ExcSet.of(NON_TERMINATION, OVERFLOW)
        )
