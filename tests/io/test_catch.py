"""catchIO — the IO-level handler extension (not in the paper; the
direction its Section 6 comparison points at).  The executor, the
transition system and the denotational runner must agree."""

import pytest

from repro.api import denote_source, run_io_program, run_io_source
from repro.io.transition import enumerate_outcomes, run_denotational
from repro.machine import LeftToRight, RightToLeft


class TestExecutor:
    def test_catches_pure_exception_in_body(self):
        result = run_io_source(
            "catchIO (putStr (showInt (1 `div` 0))) "
            "(\\e -> putStr (showException e))"
        )
        assert result.ok
        assert result.stdout == "DivideByZero"

    def test_catches_io_error(self):
        result = run_io_source(
            "catchIO (ioError Overflow) "
            "(\\e -> putStr (showException e))"
        )
        assert result.stdout == "Overflow"

    def test_no_exception_no_handler(self):
        result = run_io_source(
            "catchIO (putStr \"fine\") (\\e -> putStr \"handled\")"
        )
        assert result.stdout == "fine"

    def test_output_before_failure_is_kept(self):
        # IO already performed is not rolled back.
        result = run_io_source(
            "catchIO (putStr \"partial\" >> ioError Overflow) "
            "(\\e -> putStr \"!\")"
        )
        assert result.stdout == "partial!"

    def test_nested_catch_inner_wins(self):
        result = run_io_source(
            "catchIO (catchIO (ioError Overflow) "
            "(\\e -> putStr \"inner\")) (\\e -> putStr \"outer\")"
        )
        assert result.stdout == "inner"

    def test_handler_exception_escapes_to_outer(self):
        result = run_io_source(
            "catchIO (catchIO (ioError Overflow) "
            "(\\e -> ioError DivideByZero)) "
            "(\\e -> putStr (showException e))"
        )
        assert result.stdout == "DivideByZero"

    def test_representative_is_strategy_dependent(self):
        source = (
            "catchIO (putStr (showInt ((1 `div` 0) + "
            "raise Overflow))) (\\e -> putStr (showException e))"
        )
        left = run_io_source(source, strategy=LeftToRight())
        right = run_io_source(source, strategy=RightToLeft())
        assert left.stdout == "DivideByZero"
        assert right.stdout == "Overflow"

    def test_rethrow_after_cleanup(self):
        # The bracket/finally pattern, written with catchIO.
        result = run_io_source(
            "catchIO (catchIO (ioError Overflow) "
            "(\\e -> putStr \"cleanup\" >> ioError e)) "
            "(\\e -> putStr (strAppend \"/\" (showException e)))"
        )
        assert result.stdout == "cleanup/Overflow"

    def test_program_level(self):
        source = """
fragile :: Int -> IO Unit
fragile n = putStr (showInt (100 `div` n))

main = do
  catchIO (fragile 0) (\\e -> putStr "saved")
  putStr "+continued"
"""
        result = run_io_program(source, typecheck=True)
        assert result.stdout == "saved+continued"


class TestTransitionSystem:
    def test_catch_branches_over_the_set(self):
        results = enumerate_outcomes(
            denote_source(
                "catchIO (putStr (showInt ((1 `div` 0) + "
                "raise Overflow))) (\\e -> case e of "
                "{ DivideByZero -> putChar 'd'; _ -> putChar 'o' })"
            )
        )
        traces = {"".join(r.trace) for r in results}
        assert traces == {"!d", "!o"}

    def test_no_uncaught_results_when_handled(self):
        results = enumerate_outcomes(
            denote_source(
                "catchIO (ioError Overflow) (\\e -> returnIO 1)"
            )
        )
        assert {r.kind for r in results} == {"ok"}

    def test_denotational_runner_agrees(self):
        io = denote_source(
            "catchIO (putStr (showInt (1 `div` 0))) "
            "(\\e -> putChar 'c')"
        )
        result = run_denotational(io)
        assert result.kind == "ok"
        assert result.trace == ("!c",)

    def test_executor_outcomes_permitted(self):
        source = (
            "catchIO (putStr (showInt ((1 `div` 0) + "
            "raise Overflow))) (\\e -> case e of "
            "{ DivideByZero -> putChar 'd'; _ -> putChar 'o' })"
        )
        allowed = {
            "".join(r.trace)
            for r in enumerate_outcomes(denote_source(source))
        }
        for strategy in (LeftToRight(), RightToLeft()):
            result = run_io_source(source, strategy=strategy)
            trace = "".join(f"!{c}" for c in result.stdout)
            assert trace in allowed
