"""The operational IO executor: performing programs, getException,
uncaught exceptions (Sections 3.3, 3.5, 4.4)."""

import pytest

from repro.api import run_io_program, run_io_source
from repro.machine import LeftToRight, RightToLeft


class TestBasicIO:
    def test_return(self):
        result = run_io_source("returnIO 42")
        assert result.ok
        assert result.value.value == 42

    def test_putstr(self):
        result = run_io_source('putStr "hello"')
        assert result.ok
        assert result.stdout == "hello"

    def test_putchar_sequence(self):
        result = run_io_source(
            "thenIO (putChar 'h') (putChar 'i')"
        )
        assert result.stdout == "hi"

    def test_getchar_echo(self):
        # The paper's complete example program (Section 3.5):
        # main = getChar >>= \ch -> putChar ch >>= \_ -> return ()
        result = run_io_source(
            "getChar >>= (\\ch -> putChar ch >>= (\\u -> returnIO ()))",
            stdin="x",
        )
        assert result.ok
        assert result.stdout == "x"

    def test_do_notation(self):
        result = run_io_source(
            "do { c <- getChar; putChar c; putChar c; returnIO () }",
            stdin="z",
        )
        assert result.stdout == "zz"

    def test_bind_is_lazy_until_performed(self):
        # Evaluating an IO value has no side effects; only performing
        # does (Section 3.5).
        result = run_io_source(
            "let { action = putStr \"once\" } in "
            "seq action (returnIO 1)"
        )
        assert result.ok
        assert result.stdout == ""

    def test_mapM(self):
        result = run_io_source(
            "mapM_ (\\c -> putChar c) ['a', 'b', 'c']"
        )
        assert result.stdout == "abc"

    def test_stdin_exhaustion(self):
        result = run_io_source("getChar", stdin="")
        assert result.status == "exception"


class TestGetException:
    def test_catches_exception(self):
        result = run_io_source(
            "getException (1 `div` 0) >>= (\\r -> case r of "
            "{ OK v -> putStr \"ok\"; "
            "Bad e -> putStr (showException e) })"
        )
        assert result.stdout == "DivideByZero"

    def test_normal_value_wrapped_ok(self):
        result = run_io_source(
            "getException 42 >>= (\\r -> case r of "
            "{ OK v -> returnIO v; Bad e -> returnIO 0 })"
        )
        assert result.ok
        assert result.value.value == 42

    def test_observed_exception_strategy_dependent(self):
        source = (
            "getException ((1 `div` 0) + error \"Urk\") >>= (\\r -> "
            "case r of { OK v -> putStr \"ok\"; "
            "Bad e -> putStr (showException e) })"
        )
        left = run_io_source(source, strategy=LeftToRight())
        right = run_io_source(source, strategy=RightToLeft())
        assert left.stdout == "DivideByZero"
        assert right.stdout == "UserError Urk"

    def test_catch_eval_handler(self):
        result = run_io_source(
            "catchEval (1 `div` 0) (\\e -> 99) >>= "
            "(\\v -> returnIO v)"
        )
        assert result.ok
        assert result.value.value == 99

    def test_only_whnf_forced(self):
        # getException forces to head normal form only (Section 3.3);
        # an exception deeper inside survives the catch.
        result = run_io_source(
            "getException [1 `div` 0] >>= (\\r -> case r of "
            "{ OK xs -> returnIO (length xs); Bad e -> returnIO 0 })"
        )
        assert result.ok
        assert result.value.value == 1

    def test_exceptions_propagate_out_of_io_values(self):
        # An exception while *computing which action to run*.
        result = run_io_source("head Nil")
        assert result.status == "exception"
        assert result.exc.name == "UserError"

    def test_nested_getexception(self):
        result = run_io_source(
            "getException (1 `div` 0) >>= (\\r1 -> "
            "getException (raise Overflow) >>= (\\r2 -> "
            "case r1 of { Bad e1 -> case r2 of "
            "{ Bad e2 -> putStr (strAppend (showException e1) "
            "(showException e2)); OK v -> returnIO () }; "
            "OK v -> returnIO () }))"
        )
        assert result.stdout == "DivideByZeroOverflow"


class TestUncaught:
    def test_uncaught_exception_reported(self):
        # "the value returned might now be Bad x ... an uncaught
        # exception, which the implementation should report"
        # (Section 4.4).
        result = run_io_source("putStr (showInt (1 `div` 0))")
        assert result.status == "exception"
        assert result.exc.name == "DivideByZero"

    def test_io_error(self):
        result = run_io_source("ioError Overflow")
        assert result.status == "exception"
        assert result.exc.name == "Overflow"

    def test_divergence_reported(self):
        result = run_io_source(
            "returnIO (let { w = \\u -> w u } in w ()) >>= "
            "(\\v -> seq v (returnIO 0))",
            fuel=20_000,
        )
        assert result.status == "diverged"


class TestPrograms:
    def test_main_program(self):
        source = """
main :: IO Unit
main = do
  putStr "hello, "
  putStr "world"
  returnIO Unit
"""
        result = run_io_program(source)
        assert result.stdout == "hello, world"

    def test_program_with_helpers(self):
        source = """
shout :: String -> IO Unit
shout s = do
  putStr s
  putStr "!"
  returnIO Unit

main = shout "hey"
"""
        result = run_io_program(source)
        assert result.stdout == "hey!"

    def test_alternate_entry(self):
        source = "main = putStr \"a\"\nother = putStr \"b\""
        result = run_io_program(source, entry="other")
        assert result.stdout == "b"

    def test_missing_entry(self):
        with pytest.raises(KeyError):
            run_io_program("main = returnIO 1", entry="nonexistent")

    def test_typechecked_program(self):
        source = """
main :: IO Unit
main = putLine "typed"
"""
        result = run_io_program(source, typecheck=True)
        assert result.stdout == "typed\n"
