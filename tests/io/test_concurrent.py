"""The concurrency extension (Section 4.4's closing remark made real):
forkIO, MVars, scheduling, and exceptions-in-threads."""

import pytest

from repro.io.concurrent import (
    BLOCKED_INDEFINITELY,
    Scheduler,
    run_concurrent_program,
    run_concurrent_source,
)

RACE = (
    'forkIO (putStr "aaa" >> returnIO Unit) >> putStr "111"'
)


class TestBasics:
    def test_sequential_program_unchanged(self):
        result = run_concurrent_source('putStr "hello"')
        assert result.ok
        assert result.stdout == "hello"

    def test_fork_runs(self):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\done -> "
            'forkIO (putStr "child" >> putMVar done Unit) >> '
            "takeMVar done >>= (\\u -> putStr \"main\"))"
        )
        assert result.ok
        assert result.stdout == "childmain"

    def test_main_exit_kills_children(self):
        # GHC semantics: the program ends when main ends.
        result = run_concurrent_source(RACE, quantum=100)
        assert result.ok
        assert result.stdout == "111"

    def test_getchar_shared_stdin(self):
        result = run_concurrent_source(
            "getChar >>= (\\a -> getChar >>= (\\b -> "
            "putChar b >> putChar a))",
            stdin="xy",
        )
        assert result.stdout == "yx"


class TestScheduling:
    def test_quantum_changes_interleaving(self):
        source = (
            'forkIO (putStr "a" >> putStr "b" >> returnIO Unit) >> '
            "(newEmptyMVar >>= (\\m -> "
            'putStr "1" >> putStr "2" >> '
            "forkIO (putMVar m Unit) >> takeMVar m))"
        )
        small = run_concurrent_source(source, quantum=1).stdout
        large = run_concurrent_source(source, quantum=50).stdout
        assert sorted(small) == sorted(large)
        assert small != large

    def test_same_quantum_reproducible(self):
        outs = {
            run_concurrent_source(RACE, quantum=2).stdout
            for _ in range(3)
        }
        assert len(outs) == 1

    def test_yield(self):
        source = (
            "newEmptyMVar >>= (\\done -> "
            'forkIO (putStr "c" >> putMVar done Unit) >> '
            '(putStr "m" >> yieldIO >> takeMVar done))'
        )
        result = run_concurrent_source(source, quantum=100)
        assert result.ok
        assert "c" in result.stdout and "m" in result.stdout


class TestMVars:
    def test_handoff(self):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\m -> "
            "forkIO (putMVar m 42) >> "
            "takeMVar m >>= (\\v -> putStr (showInt v)))"
        )
        assert result.stdout == "42"

    def test_new_full_mvar(self):
        result = run_concurrent_source(
            "newMVar 7 >>= (\\m -> takeMVar m >>= "
            "(\\v -> putStr (showInt v)))"
        )
        assert result.stdout == "7"

    def test_take_then_put_roundtrip(self):
        result = run_concurrent_source(
            "newMVar 1 >>= (\\m -> "
            "takeMVar m >>= (\\v -> "
            "putMVar m (v + 1) >> "
            "takeMVar m >>= (\\w -> putStr (showInt w))))"
        )
        assert result.stdout == "2"

    def test_put_on_full_blocks_until_taken(self):
        source = (
            "newMVar 1 >>= (\\m -> "
            "forkIO (putMVar m 2) >> "
            "takeMVar m >>= (\\a -> "
            "takeMVar m >>= (\\b -> "
            "putStr (showInt (a * 10 + b)))))"
        )
        result = run_concurrent_source(source)
        assert result.stdout == "12"

    def test_deadlock_detected(self):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\m -> takeMVar m)"
        )
        assert result.status == "deadlock"
        assert result.exc == BLOCKED_INDEFINITELY

    def test_lazy_value_through_mvar(self):
        # The MVar carries an unevaluated thunk; the exception surfaces
        # at the taker (exceptions-as-values through channels).
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\m -> "
            "forkIO (putMVar m (1 `div` 0)) >> "
            "takeMVar m >>= (\\v -> "
            "getException (v + 1) >>= (\\r -> case r of "
            "{ OK x -> putStr \"ok\"; "
            "Bad e -> putStr (showException e) })))"
        )
        assert result.stdout == "DivideByZero"


class TestExceptionsInThreads:
    def test_child_exception_kills_child_only(self):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\done -> "
            "forkIO (ioError Overflow) >> "
            "forkIO (putMVar done Unit) >> "
            "takeMVar done >>= (\\u -> putStr \"survived\"))"
        )
        assert result.ok
        assert result.stdout == "survived"
        dead = [t for t in result.threads if t.status == "exception"]
        assert len(dead) == 1
        assert dead[0].exc.name == "Overflow"

    def test_main_exception_ends_program(self):
        result = run_concurrent_source(
            'forkIO (putStr "child" >> returnIO Unit) >> '
            "ioError Overflow"
        )
        assert result.status == "exception"
        assert result.exc.name == "Overflow"

    def test_catch_in_thread(self):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\done -> "
            "forkIO (catchIO (ioError Overflow) "
            "(\\e -> putStr (showException e)) >> putMVar done Unit) >> "
            "takeMVar done)"
        )
        assert result.ok
        assert result.stdout == "Overflow"

    def test_get_exception_per_thread(self):
        result = run_concurrent_source(
            "getException (1 `div` 0) >>= (\\r -> case r of "
            "{ OK v -> putStr \"ok\"; Bad e -> putStr \"caught\" })"
        )
        assert result.stdout == "caught"


class TestPrograms:
    PRODUCER_CONSUMER = """
produce :: MVar Int -> Int -> IO Unit
produce chan n =
  if n == 0
    then returnIO Unit
    else do
      putMVar chan n
      produce chan (n - 1)

consume :: MVar Int -> Int -> Int -> IO Unit
consume chan n acc =
  if n == 0
    then putStr (showInt acc)
    else do
      v <- takeMVar chan
      consume chan (n - 1) (acc + v)

main = do
  chan <- newEmptyMVar
  forkIO (produce chan 10)
  consume chan 10 0
"""

    def test_producer_consumer(self):
        result = run_concurrent_program(
            self.PRODUCER_CONSUMER, typecheck=True
        )
        assert result.ok
        assert result.stdout == "55"

    def test_quantum_invariant_result(self):
        # Interleavings differ, but MVar synchronisation makes the
        # *result* deterministic — the concurrency analogue of "the
        # observed exception varies but stays in the set".
        for quantum in (1, 3, 17):
            result = run_concurrent_program(
                self.PRODUCER_CONSUMER, quantum=quantum
            )
            assert result.stdout == "55"

QUANTA = (1, 2, 7, 64)


class TestQuantumRobustness:
    """Satellite of the cooperative scheduler PR: the IO-layer
    scheduler's quantum is the same kind of knob as the serve-layer
    slice size, and cranking it across {1, 2, 7, 64} must leave every
    synchronised observable — results, per-thread outcomes, deadlock
    detection — untouched.  Only unsynchronised interleaving (which
    the semantics deliberately leaves imprecise) may move."""

    @pytest.mark.parametrize("quantum", QUANTA)
    def test_mvar_handoff_invariant(self, quantum):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\done -> "
            'forkIO (putStr "child" >> putMVar done Unit) >> '
            "takeMVar done >>= (\\u -> putStr \"main\"))",
            quantum=quantum,
        )
        assert result.ok
        assert result.stdout == "childmain"
        assert [t.status for t in result.threads] == ["done", "done"]

    @pytest.mark.parametrize("quantum", QUANTA)
    def test_deadlock_detected_at_every_quantum(self, quantum):
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\m -> takeMVar m)",
            quantum=quantum,
        )
        assert result.status == "deadlock"
        assert result.exc == BLOCKED_INDEFINITELY

    @pytest.mark.parametrize("quantum", QUANTA)
    def test_cross_thread_deadlock_detected(self, quantum):
        # Two threads each waiting on the MVar the other never fills.
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\a -> newEmptyMVar >>= (\\b -> "
            "forkIO (takeMVar a >>= (\\v -> putMVar b v)) >> "
            "takeMVar b))",
            quantum=quantum,
        )
        assert result.status == "deadlock"
        assert result.exc == BLOCKED_INDEFINITELY

    @pytest.mark.parametrize("quantum", QUANTA)
    def test_per_thread_outcomes_invariant(self, quantum):
        # A child dies of Overflow, another completes, main survives:
        # the *multiset* of per-thread outcomes is quantum-independent
        # even though the interleaving is not.
        result = run_concurrent_source(
            "newEmptyMVar >>= (\\done -> "
            "forkIO (ioError Overflow) >> "
            "forkIO (putMVar done Unit) >> "
            "takeMVar done >>= (\\u -> putStr \"survived\"))",
            quantum=quantum,
        )
        assert result.ok
        assert result.stdout == "survived"
        outcomes = sorted(
            (t.status, t.exc.name if t.exc else None)
            for t in result.threads
        )
        assert outcomes == [
            ("done", None),
            ("done", None),
            ("exception", "Overflow"),
        ]

    @pytest.mark.parametrize("quantum", QUANTA)
    def test_producer_consumer_invariant(self, quantum):
        result = run_concurrent_program(
            TestPrograms.PRODUCER_CONSUMER, quantum=quantum
        )
        assert result.ok
        assert result.stdout == "55"

    def test_catch_in_thread_invariant_across_quanta(self):
        outputs = {
            run_concurrent_source(
                "newEmptyMVar >>= (\\done -> "
                "forkIO (catchIO (ioError Overflow) "
                "(\\e -> putStr (showException e)) >> "
                "putMVar done Unit) >> takeMVar done)",
                quantum=quantum,
            ).stdout
            for quantum in QUANTA
        }
        assert outputs == {"Overflow"}
