"""IO program equivalence: trace-set comparison (built on §4.4)."""

import pytest

from repro.io.equivalence import compare_io_sources

HANDLER = (
    " >>= (\\r -> case r of { OK v -> putChar 'k'; "
    "Bad e -> case e of { DivideByZero -> putChar 'd'; "
    "_ -> putChar 'u' } })"
)


class TestEquivalence:
    def test_reflexive(self):
        report = compare_io_sources("putStr \"a\"", "putStr \"a\"")
        assert report.equivalent

    def test_commuted_arguments_equivalent(self):
        # The IO-level face of commutativity: same exception set, same
        # behaviour set.
        report = compare_io_sources(
            "getException ((1 `div` 0) + raise Overflow)" + HANDLER,
            "getException (raise Overflow + (1 `div` 0))" + HANDLER,
        )
        assert report.equivalent

    def test_different_output_not_equivalent(self):
        report = compare_io_sources("putStr \"a\"", "putStr \"b\"")
        assert not report.equivalent
        assert not report.lhs_refines_rhs
        assert not report.rhs_refines_lhs

    def test_determinising_is_refinement(self):
        # rhs can only raise one exception where lhs can raise two:
        # rhs's behaviours are a subset — lhs ⊑ rhs.
        report = compare_io_sources(
            "getException ((1 `div` 0) + raise Overflow)" + HANDLER,
            "getException (1 `div` 0)" + HANDLER,
        )
        assert not report.equivalent
        assert report.lhs_refines_rhs
        assert not report.rhs_refines_lhs

    def test_beta_equivalent_at_io_level(self):
        report = compare_io_sources(
            "(\\x -> putStr x) \"hi\"",
            "putStr \"hi\"",
        )
        assert report.equivalent

    def test_io_reordering_not_equivalent(self):
        # Unlike pure reordering, IO actions are sequenced: swapping
        # putChars changes the trace.
        report = compare_io_sources(
            "putChar 'a' >> putChar 'b'",
            "putChar 'b' >> putChar 'a'",
        )
        assert not report.equivalent

    def test_catch_of_sound_body_equivalent_to_body(self):
        report = compare_io_sources(
            "catchIO (putStr \"x\") (\\e -> putStr \"h\")",
            "putStr \"x\"",
        )
        assert report.equivalent

    def test_stdin_sensitivity(self):
        report = compare_io_sources(
            "getChar >>= (\\c -> putChar c)",
            "getChar >>= (\\c -> putChar c)",
            stdin="q",
        )
        assert report.equivalent

    def test_report_rendering(self):
        report = compare_io_sources("putStr \"a\"", "putStr \"a\"")
        assert "equivalent" in str(report)
        report2 = compare_io_sources("putStr \"a\"", "putStr \"b\"")
        assert "incomparable" in str(report2)
