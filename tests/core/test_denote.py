"""The denotational combinator rules of Section 4.2, transcribed into
tests one by one."""

import pytest

from repro.core.denote import DenoteContext, InternalError, denote_expr
from repro.core.domains import BAD_EMPTY, BOTTOM, Bad, ConVal, FunVal, Ok
from repro.core.excset import (
    DIVIDE_BY_ZERO,
    ExcSet,
    OVERFLOW,
    PATTERN_MATCH_FAIL,
    user_error,
)
from repro.lang.ops import INT_MAX
from tests.conftest import d, exc_names, excs_of, ok_value


class TestPlusRule:
    """[e1 + e2] = v1 ⊕ v2 | Bad (S[e1] ∪ S[e2])."""

    def test_both_normal(self):
        assert d("1 + 2") == Ok(3)

    def test_left_exceptional(self):
        assert exc_names(d("(1 `div` 0) + 2")) == {"DivideByZero"}

    def test_right_exceptional(self):
        assert exc_names(d("2 + (1 `div` 0)")) == {"DivideByZero"}

    def test_both_exceptional_unions(self):
        value = d('(1 `div` 0) + error "Urk"')
        assert excs_of(value) == ExcSet.of(
            DIVIDE_BY_ZERO, user_error("Urk")
        )

    def test_the_papers_example_is_order_independent(self):
        assert excs_of(d('(1 `div` 0) + error "Urk"')) == excs_of(
            d('error "Urk" + (1 `div` 0)')
        )

    def test_overflow_checked(self):
        big = INT_MAX - 1
        assert exc_names(d(f"{big} + {big}")) == {"Overflow"}

    def test_loop_plus_error_is_bottom(self):
        """loop + error "Urk" = ⊥ (the Section 4 opening example):
        the union of all exceptions with a singleton is still all."""
        value = d(
            'let { loop = loop + 1 } in loop + error "Urk"', fuel=50_000
        )
        assert value == BOTTOM


class TestRaiseRule:
    def test_raise_normal_exception(self):
        assert exc_names(d("raise Overflow")) == {"Overflow"}

    def test_raise_exceptional_argument_propagates(self):
        value = d("raise (head Nil)")
        assert exc_names(value) == {"UserError"}

    def test_error_defined_via_raise(self):
        value = d('error "boom"')
        assert excs_of(value) == ExcSet.of(user_error("boom"))

    def test_user_error_message_preserved(self):
        (exc,) = excs_of(d('error "specific"')).finite_members()
        assert exc.arg == "specific"


class TestApplicationRule:
    def test_normal_function(self):
        assert d("(\\x -> x + 1) 5") == Ok(6)

    def test_lazy_argument_not_forced(self):
        # β: (\x -> 3)(1/0) must be 3, NOT an exception (Section 4.2:
        # "we must not union in the argument's exceptions if the
        # function is a normal value, or else we would lose β").
        assert d("(\\x -> 3) (1 `div` 0)") == Ok(3)

    def test_exceptional_function_unions_argument(self):
        # Bad s applied: union the argument's exceptions (Section 4.2
        # "under some circumstances we might legitimately evaluate the
        # argument first").
        value = d("(raise Overflow) (1 `div` 0)")
        assert exc_names(value) == {"Overflow", "DivideByZero"}

    def test_exceptional_function_normal_argument(self):
        value = d("(raise Overflow) 5")
        assert exc_names(value) == {"Overflow"}


class TestLambdaIsNormal:
    def test_lambda_returning_bottom_is_not_bottom(self):
        """λx.⊥ ≠ ⊥ (Section 4.2: "a lambda abstraction is a normal
        value") — and it is implementable: getException can tell."""
        value = d("\\x -> loopForever", fuel=10_000)
        # The lambda itself is WHNF; the unbound body is never demanded.
        assert isinstance(value, Ok)
        assert isinstance(value.value, FunVal)

    def test_seq_on_lambda_succeeds(self):
        assert d("seq (\\x -> 1 `div` 0) 42") == Ok(42)


class TestConstructorsNonStrict:
    def test_constructor_with_exceptional_field_is_normal(self):
        value = d("Just (1 `div` 0)")
        assert isinstance(value, Ok)
        assert isinstance(value.value, ConVal)

    def test_field_exception_surfaces_on_demand(self):
        value = d("case Just (1 `div` 0) of { Just x -> x + 1; Nothing -> 0 }")
        assert exc_names(value) == {"DivideByZero"}

    def test_deep_list_spine(self):
        assert d("length [1 `div` 0, 2 `div` 0]") == Ok(2)


class TestSeqRule:
    def test_seq_forces_first(self):
        assert exc_names(d("seq (1 `div` 0) 42")) == {"DivideByZero"}

    def test_seq_normal_first(self):
        assert d("seq 1 42") == Ok(42)

    def test_seq_unions_continuation(self):
        # seq a b = case a of _ -> b: exception-finding unions b.
        value = d("seq (1 `div` 0) (raise Overflow)")
        assert exc_names(value) == {"DivideByZero", "Overflow"}


class TestFixRule:
    def test_fix_constant(self):
        assert d("fix (\\x -> 42)", fuel=10_000) == Ok(42)

    def test_fix_diverging(self):
        assert d("fix (\\x -> x)", fuel=10_000) == BOTTOM

    def test_fix_productive(self):
        value = d("head (fix (\\xs -> Cons 9 xs))", fuel=50_000)
        assert value == Ok(9)

    def test_fix_of_exceptional_value_is_bottom(self):
        assert d("fix (raise Overflow)", fuel=10_000) == BOTTOM

    def test_loop_is_bottom(self):
        # The paper's loop: f True where f x = f (not x).
        value = d(
            "let { f = \\x -> f (not x) } in f True", fuel=20_000
        )
        assert value == BOTTOM


class TestLetRule:
    def test_simple_let(self):
        assert d("let { x = 2 } in x + x") == Ok(4)

    def test_mutual_recursion(self):
        value = d(
            "let { even = \\n -> if n == 0 then True else odd (n - 1);"
            " odd = \\n -> if n == 0 then False else even (n - 1) }"
            " in even 10",
            fuel=50_000,
        )
        assert ok_value(value).name == "True"

    def test_lazy_binding_unused_exception(self):
        assert d("let { x = 1 `div` 0 } in 5") == Ok(5)

    def test_knot_tying(self):
        value = d(
            "let { xs = Cons 1 xs } in head (tail (tail xs))",
            fuel=50_000,
        )
        assert value == Ok(1)

    def test_self_referential_scalar_is_bottom(self):
        assert d("let { x = x + 1 } in x", fuel=10_000) == BOTTOM


class TestPatternMatchFailure:
    def test_no_matching_alternative(self):
        value = d("case Nothing of { Just x -> x }")
        assert exc_names(value) == {"PatternMatchFail"}

    def test_head_of_empty_list(self):
        # head Nil = error "head: empty list" in the prelude.
        assert exc_names(d("head Nil")) == {"UserError"}

    def test_zipwith_unequal_lists_head_ok(self):
        # The paper's Section 3.2 example: exceptional value at the
        # *end* of the list; the defined prefix is still usable.
        assert d("head (zipWith (+) [1] [1, 2])") == Ok(2)

    def test_zipwith_unequal_lists_traversal_is_bottom(self):
        """Reproduction finding F-1 (EXPERIMENTS.md): traversing up to
        the exceptional tail with a *recursive* function denotes ⊥, not
        Bad {UserError}.  Exception-finding mode explores length's
        Cons branch with the tail bound to Bad {}, which re-enters
        length — the chain never leaves ⊥.  Sound (UserError ∈ ⊥'s
        set, and the machine observes exactly UserError) but coarse."""
        value = d("length (zipWith (+) [1] [1, 2])", fuel=60_000)
        assert value == BOTTOM


class TestPrimitives:
    def test_div(self):
        assert d("7 `div` 2") == Ok(3)

    def test_mod(self):
        assert d("7 `mod` 2") == Ok(1)

    def test_div_by_zero(self):
        assert exc_names(d("1 `div` 0")) == {"DivideByZero"}

    def test_mod_by_zero(self):
        assert exc_names(d("1 `mod` 0")) == {"DivideByZero"}

    def test_comparison(self):
        assert ok_value(d("1 < 2")).name == "True"
        assert ok_value(d("2 <= 1")).name == "False"

    def test_comparison_propagates_exceptions(self):
        value = d("(1 `div` 0) < (raise Overflow)")
        assert exc_names(value) == {"DivideByZero", "Overflow"}

    def test_negate(self):
        assert d("negate 5") == Ok(-5)

    def test_string_ops(self):
        assert d('strAppend "ab" "cd"') == Ok("abcd")
        assert d('strLen "abc"') == Ok(3)
        assert d("showInt 42") == Ok("42")

    def test_char_ops(self):
        assert d("ord 'A'") == Ok(65)
        assert d("chr 66") == Ok("B")

    def test_ill_typed_primitive_is_internal_error(self):
        with pytest.raises(InternalError):
            d("True + 1")


class TestFuel:
    def test_fuel_exhaustion_is_bottom(self):
        value = d("sum (enumFromTo 1 1000000)", fuel=500)
        assert value == BOTTOM

    def test_enough_fuel_computes(self):
        assert d("sum (enumFromTo 1 10)", fuel=100_000) == Ok(55)

    def test_steps_counted(self):
        ctx = DenoteContext(fuel=100_000)
        d("1 + 2", ctx=ctx)
        assert ctx.steps > 0
