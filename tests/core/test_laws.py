"""The Section 4.5 transformation laws, checked as the paper states
them (E9), plus the law checker's own behaviour."""

import pytest

from repro.api import check_law_sources
from repro.baselines.fixed_order import fixed_order_ctx
from repro.core.laws import (
    DEFAULT_BATTERY,
    PAIR_BATTERY,
    TOTAL_FUNCTION_BATTERY,
    check_law,
)
from repro.lang.parser import parse_expr


class TestPaperExamples:
    def test_commutativity_of_plus(self):
        report = check_law_sources("a + b", "b + a", name="plus-commute")
        assert report.verdict == "identity"

    def test_commutativity_fails_under_fixed_order(self):
        report = check_law_sources(
            "a + b", "b + a",
            name="plus-commute-fixed",
            ctx_factory=fixed_order_ctx,
        )
        assert report.verdict == "unsound"

    def test_beta_reduction_valid(self):
        report = check_law_sources(
            "(\\x -> x + x) a", "a + a", name="beta"
        )
        assert report.holds

    def test_beta_with_discarded_argument(self):
        # (\x -> 3)(1/0) = 3: constructors/lambdas lazy.
        report = check_law_sources("(\\x -> 3) a", "3", name="beta-k")
        assert report.verdict == "identity"

    def test_error_this_vs_error_that_not_equal(self):
        """In pure Haskell error "This" = error "That" (both ⊥); in
        the paper's semantics the law rightly fails (Section 4.5:
        "our semantics correctly distinguishes some expressions that
        Haskell currently identifies")."""
        forward = check_law_sources(
            'error "This"', 'error "That"', name="this-that"
        )
        # Neither refines the other: a genuine inequation.  The checker
        # reports unsound for the forward direction.
        assert forward.verdict == "unsound"

    def test_error_same_message_equal(self):
        report = check_law_sources(
            'error "Same"', 'error "Same"', name="same-same"
        )
        assert report.verdict == "identity"

    def test_app_of_case_refinement_paper_instantiation(self):
        """lhs ⊑ rhs with the paper's f = g = \\v.1 (Section 4.5)."""
        report = check_law_sources(
            "(case e of { True -> f; False -> g }) x",
            "case e of { True -> f x; False -> g x }",
            name="app-of-case",
            var_batteries={
                "f": TOTAL_FUNCTION_BATTERY,
                "g": TOTAL_FUNCTION_BATTERY,
                "x": DEFAULT_BATTERY,
            },
        )
        assert report.verdict == "refinement"

    def test_case_switch_identity(self):
        report = check_law_sources(
            "case x of { Tuple2 a b -> case y of { Tuple2 p q -> a + p } }",
            "case y of { Tuple2 p q -> case x of { Tuple2 a b -> a + p } }",
            name="case-switch",
            var_batteries={"x": PAIR_BATTERY, "y": PAIR_BATTERY},
        )
        assert report.verdict == "identity"

    def test_full_laziness_let_floating(self):
        report = check_law_sources(
            "(let { v = a + b } in v + v) * c",
            "let { v = a + b } in (v + v) * c",
            name="let-float",
        )
        assert report.verdict == "identity"

    def test_inlining_valid(self):
        """let x = e in x == x-substituted: the rewrite the rejected
        non-deterministic design cannot have (Section 3.4/3.5)."""
        report = check_law_sources(
            "let { x = a + b } in x * x",
            "(a + b) * (a + b)",
            name="inline",
        )
        assert report.verdict == "identity"


class TestCheckerBehaviour:
    def test_counterexample_reported(self):
        report = check_law_sources("a", "b", name="absurd")
        assert report.verdict == "unsound"
        assert report.counterexample is not None
        assert report.lhs_value is not None

    def test_ill_typed_environments_skipped(self):
        # Bool battery values fed to + are skipped, not crashes.
        report = check_law_sources("a + 0", "a", name="plus-zero")
        assert report.verdict == "identity"
        assert report.environments_tested > 0

    def test_closed_law(self):
        report = check_law_sources("1 + 1", "2", name="arith")
        assert report.verdict == "identity"
        assert report.environments_tested == 1

    def test_max_environments_respected(self):
        report = check_law_sources(
            "a + b + c", "c + b + a", name="big", max_environments=10
        )
        assert report.environments_tested <= 10

    def test_str_rendering(self):
        report = check_law_sources("a", "a", name="refl")
        assert "refl" in str(report)
        assert "identity" in str(report)
