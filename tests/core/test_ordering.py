"""The information order ⊑ on denotations (Sections 4.1/4.5)."""

import pytest

from repro.core.domains import (
    BAD_EMPTY,
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    Ok,
    Thunk,
)
from repro.core.excset import DIVIDE_BY_ZERO, ExcSet, OVERFLOW, user_error
from repro.core.ordering import refines, sem_equal


class TestBadOrdering:
    def test_bottom_below_everything(self):
        for upper in (Ok(3), Bad(ExcSet.of(OVERFLOW)), BAD_EMPTY, BOTTOM):
            assert refines(BOTTOM, upper)

    def test_superset_below_subset(self):
        big = Bad(ExcSet.of(DIVIDE_BY_ZERO, OVERFLOW))
        small = Bad(ExcSet.of(DIVIDE_BY_ZERO))
        assert refines(big, small)
        assert not refines(small, big)

    def test_non_bottom_bad_incomparable_with_ok(self):
        bad = Bad(ExcSet.of(OVERFLOW))
        assert not refines(bad, Ok(3))
        assert not refines(Ok(3), bad)

    def test_disjoint_bads_incomparable(self):
        this = Bad(ExcSet.of(user_error("This")))
        that = Bad(ExcSet.of(user_error("That")))
        assert not refines(this, that)
        assert not refines(that, this)


class TestOkOrdering:
    def test_equal_ints(self):
        assert refines(Ok(3), Ok(3))
        assert not refines(Ok(3), Ok(4))

    def test_constructor_componentwise(self):
        pair_lo = Ok(
            ConVal("Tuple2", (Thunk.ready(BOTTOM), Thunk.ready(Ok(2))))
        )
        pair_hi = Ok(
            ConVal("Tuple2", (Thunk.ready(Ok(1)), Thunk.ready(Ok(2))))
        )
        assert refines(pair_lo, pair_hi)
        assert not refines(pair_hi, pair_lo)

    def test_different_constructors_incomparable(self):
        assert not refines(Ok(ConVal("True")), Ok(ConVal("False")))

    def test_lambda_bottom_above_bottom(self):
        # Ok (\x -> ⊥) is a normal value strictly above ⊥ (Section 4.2).
        fun = Ok(FunVal(lambda t: BOTTOM))
        assert refines(BOTTOM, fun)
        assert not refines(fun, BOTTOM)

    def test_functions_extensional(self):
        f = Ok(FunVal(lambda t: Ok(1)))
        g = Ok(FunVal(lambda t: Ok(1)))
        h = Ok(FunVal(lambda t: Ok(2)))
        assert refines(f, g) and refines(g, f)
        assert not refines(f, h)

    def test_function_pointwise_refinement(self):
        lo = Ok(FunVal(lambda t: BOTTOM))
        hi = Ok(FunVal(lambda t: Ok(1)))
        assert refines(lo, hi)
        assert not refines(hi, lo)


class TestSemEqual:
    def test_reflexive(self):
        for v in (Ok(1), BOTTOM, BAD_EMPTY, Bad(ExcSet.of(OVERFLOW))):
            assert sem_equal(v, v)

    def test_not_symmetric_refinement(self):
        big = Bad(ExcSet.of(DIVIDE_BY_ZERO, OVERFLOW))
        small = Bad(ExcSet.of(DIVIDE_BY_ZERO))
        assert not sem_equal(big, small)
