"""The exception-set lattice P(E)_⊥ (Section 4.1): representation and
lattice laws, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.excset import (
    ALL_EXCEPTIONS,
    BOTTOM_SET,
    CONTROL_C,
    DIVIDE_BY_ZERO,
    EMPTY_SET,
    Exc,
    ExcSet,
    NON_TERMINATION,
    OVERFLOW,
    PATTERN_MATCH_FAIL,
    TIMEOUT,
    glb,
    lub,
    user_error,
)

_MEMBERS = [
    DIVIDE_BY_ZERO,
    OVERFLOW,
    PATTERN_MATCH_FAIL,
    user_error("a"),
    user_error("b"),
    NON_TERMINATION,
]

excsets = st.builds(
    ExcSet,
    st.frozensets(st.sampled_from(_MEMBERS), max_size=4),
    st.booleans(),
)


class TestConstruction:
    def test_empty(self):
        assert EMPTY_SET.is_empty()
        assert not EMPTY_SET.is_bottom()

    def test_of(self):
        s = ExcSet.of(DIVIDE_BY_ZERO, OVERFLOW)
        assert DIVIDE_BY_ZERO in s and OVERFLOW in s
        assert PATTERN_MATCH_FAIL not in s

    def test_bottom_is_all_plus_nontermination(self):
        assert BOTTOM_SET.is_bottom()
        assert DIVIDE_BY_ZERO in BOTTOM_SET
        assert user_error("anything") in BOTTOM_SET
        assert NON_TERMINATION in BOTTOM_SET

    def test_all_exceptions_lacks_nontermination(self):
        assert not ALL_EXCEPTIONS.is_bottom()
        assert NON_TERMINATION not in ALL_EXCEPTIONS
        assert DIVIDE_BY_ZERO in ALL_EXCEPTIONS

    def test_async_not_implied_by_all_synchronous(self):
        # Asynchronous events are not members of E (Section 5.1).
        assert TIMEOUT not in ALL_EXCEPTIONS
        assert CONTROL_C not in BOTTOM_SET

    def test_normalisation_drops_redundant_members(self):
        s = ExcSet(frozenset([DIVIDE_BY_ZERO, NON_TERMINATION]), True)
        assert s.members == frozenset([NON_TERMINATION])

    def test_user_error_carries_message(self):
        assert user_error("x") != user_error("y")
        assert user_error("x") == user_error("x")


class TestUnion:
    def test_finite_union(self):
        s = ExcSet.of(DIVIDE_BY_ZERO) | ExcSet.of(OVERFLOW)
        assert s == ExcSet.of(DIVIDE_BY_ZERO, OVERFLOW)

    def test_union_with_all(self):
        s = ExcSet.of(DIVIDE_BY_ZERO) | ALL_EXCEPTIONS
        assert s.all_synchronous
        assert not s.is_bottom()

    def test_union_with_bottom_is_bottom(self):
        assert (ExcSet.of(OVERFLOW) | BOTTOM_SET).is_bottom()

    @given(excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_union_commutative(self, a, b):
        assert a | b == b | a

    @given(excsets, excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_union_associative(self, a, b, c):
        assert (a | b) | c == a | (b | c)

    @given(excsets)
    @settings(max_examples=50, deadline=None)
    def test_union_idempotent(self, a):
        assert a | a == a

    @given(excsets)
    @settings(max_examples=50, deadline=None)
    def test_empty_is_identity(self, a):
        assert a | EMPTY_SET == a


class TestOrdering:
    """S1 ⊑ S2 iff S1 ⊇ S2 — reverse inclusion (Section 4.1)."""

    def test_bottom_least(self):
        for s in (EMPTY_SET, ExcSet.of(OVERFLOW), ALL_EXCEPTIONS):
            assert BOTTOM_SET.leq(s)

    def test_empty_top(self):
        for s in (BOTTOM_SET, ExcSet.of(OVERFLOW), ALL_EXCEPTIONS):
            assert s.leq(EMPTY_SET)

    def test_superset_is_below(self):
        big = ExcSet.of(DIVIDE_BY_ZERO, OVERFLOW)
        small = ExcSet.of(DIVIDE_BY_ZERO)
        assert big.leq(small)
        assert not small.leq(big)

    def test_all_below_finite(self):
        assert ALL_EXCEPTIONS.leq(ExcSet.of(DIVIDE_BY_ZERO))
        assert not ExcSet.of(DIVIDE_BY_ZERO).leq(ALL_EXCEPTIONS)

    @given(excsets)
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, a):
        assert a.leq(a)

    @given(excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_antisymmetric(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(excsets, excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_transitive(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_union_is_glb(self, a, b):
        meet = glb(a, b)
        assert meet.leq(a) and meet.leq(b)

    @given(excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_intersection_is_lub(self, a, b):
        join = lub(a, b)
        assert a.leq(join) and b.leq(join)

    @given(excsets, excsets, excsets)
    @settings(max_examples=100, deadline=None)
    def test_glb_universal(self, a, b, c):
        # c ⊑ a and c ⊑ b  =>  c ⊑ glb(a,b)
        if c.leq(a) and c.leq(b):
            assert c.leq(glb(a, b))


class TestWitness:
    def test_witness_member(self):
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO)
        assert s.witness() in s

    def test_empty_has_no_witness(self):
        assert EMPTY_SET.witness() is None

    def test_all_synchronous_has_witness(self):
        assert ALL_EXCEPTIONS.witness() is not None

    def test_witness_deterministic(self):
        s = ExcSet.of(OVERFLOW, DIVIDE_BY_ZERO, PATTERN_MATCH_FAIL)
        assert s.witness() == s.witness()


class TestDisplay:
    def test_str_finite(self):
        assert str(ExcSet.of(DIVIDE_BY_ZERO)) == "{DivideByZero}"

    def test_str_bottom_mentions_e(self):
        text = str(BOTTOM_SET)
        assert "E" in text and "NonTermination" in text
