"""Section 5.4: isException — both semantics, the proof-obligation
design, and the executable unimplementability argument."""

import pytest

from repro.api import compile_expr
from repro.core.denote import DenoteContext
from repro.core.domains import BOTTOM, Bad, ConVal, Ok
from repro.core.excset import DIVIDE_BY_ZERO, ExcSet
from repro.core.unsafe import (
    is_exception_optimistic,
    is_exception_pessimistic,
    observe_is_exception,
    unsafe_is_exception,
)
from repro.machine.strategy import LeftToRight, RightToLeft

# The paper's example: isException ((1/0) + loop).
PAPER_EXAMPLE = compile_expr(
    "(1 `div` 0) + (let { spin = \\n -> spin n } in spin 0)"
)


class TestPureSemantics:
    def test_optimistic_on_bad(self):
        value = is_exception_optimistic(Bad(ExcSet.of(DIVIDE_BY_ZERO)))
        assert value == Ok(ConVal("True"))

    def test_optimistic_on_bottom(self):
        assert is_exception_optimistic(BOTTOM) == Ok(ConVal("True"))

    def test_optimistic_on_ok(self):
        assert is_exception_optimistic(Ok(3)) == Ok(ConVal("False"))

    def test_pessimistic_on_bad(self):
        value = is_exception_pessimistic(Bad(ExcSet.of(DIVIDE_BY_ZERO)))
        assert value == Ok(ConVal("True"))

    def test_pessimistic_on_bottom(self):
        assert is_exception_pessimistic(BOTTOM) == BOTTOM

    def test_semantics_agree_away_from_bottom(self):
        for value in (Ok(1), Bad(ExcSet.of(DIVIDE_BY_ZERO))):
            assert is_exception_optimistic(
                value
            ) == is_exception_pessimistic(value)


class TestUnsafeDesign:
    def test_fine_when_obligation_met(self):
        expr = compile_expr("1 `div` 0")
        assert unsafe_is_exception(expr) == Ok(ConVal("True"))
        assert unsafe_is_exception(compile_expr("42")) == Ok(
            ConVal("False")
        )

    def test_obligation_violated_gives_evaluation_dependent_junk(self):
        # With a ⊥ argument the answer is whatever the (fuel-bounded)
        # denotation happens to be — the point of the obligation.
        value = unsafe_is_exception(
            PAPER_EXAMPLE, ctx=DenoteContext(fuel=5_000)
        )
        # optimistic semantics on ⊥ says True — but see below: no
        # implementation realises this on all orders.
        assert value == Ok(ConVal("True"))


class TestUnimplementability:
    """"Two different implementations have delivered two different
    values!" — the paper's exact demonstration."""

    def test_left_to_right_says_true(self):
        assert (
            observe_is_exception(
                PAPER_EXAMPLE, strategy=LeftToRight(), fuel=20_000
            )
            == "True"
        )

    def test_right_to_left_diverges(self):
        assert (
            observe_is_exception(
                PAPER_EXAMPLE, strategy=RightToLeft(), fuel=20_000
            )
            == "diverged"
        )

    def test_neither_semantics_is_implemented_by_all_orders(self):
        answers = {
            observe_is_exception(
                PAPER_EXAMPLE, strategy=s, fuel=20_000
            )
            for s in (LeftToRight(), RightToLeft())
        }
        # optimistic demands {True}; pessimistic demands {diverged};
        # reality delivers both.
        assert answers == {"True", "diverged"}

    def test_normal_values_unproblematic(self):
        for strategy in (LeftToRight(), RightToLeft()):
            assert (
                observe_is_exception(
                    compile_expr("1 + 1"), strategy=strategy
                )
                == "False"
            )
