"""Semantic domain unit tests: thunks, constructors, helpers."""

import pytest

from repro.core.domains import (
    BAD_EMPTY,
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    Thunk,
    exc_part,
    from_bool,
    is_bottom,
    mk_bad,
    ok_bool,
    ok_unit,
)
from repro.core.excset import (
    BOTTOM_SET,
    DIVIDE_BY_ZERO,
    EMPTY_SET,
    ExcSet,
)


class TestThunk:
    def test_memoised(self):
        calls = []

        def compute():
            calls.append(1)
            return Ok(5)

        thunk = Thunk(compute)
        assert thunk.force() == Ok(5)
        assert thunk.force() == Ok(5)
        assert len(calls) == 1

    def test_ready(self):
        thunk = Thunk.ready(Ok(9))
        assert thunk.force() == Ok(9)

    def test_reentrant_demand_is_bottom(self):
        # A value defined strictly in terms of itself is ⊥.
        holder = {}

        def compute():
            return holder["thunk"].force()

        holder["thunk"] = Thunk(compute)
        assert holder["thunk"].force() == BOTTOM

    def test_lazy_until_forced(self):
        thunk = Thunk(lambda: (_ for _ in ()).throw(AssertionError))
        # Creating it runs nothing; only force() would explode.
        assert thunk is not None


class TestHelpers:
    def test_exc_part(self):
        assert exc_part(Ok(1)) == EMPTY_SET
        assert exc_part(Bad(ExcSet.of(DIVIDE_BY_ZERO))) == ExcSet.of(
            DIVIDE_BY_ZERO
        )

    def test_mk_bad_collapses_bottom(self):
        assert mk_bad(BOTTOM_SET) is BOTTOM
        assert mk_bad(ExcSet.of(DIVIDE_BY_ZERO)) == Bad(
            ExcSet.of(DIVIDE_BY_ZERO)
        )

    def test_is_bottom(self):
        assert is_bottom(BOTTOM)
        assert not is_bottom(BAD_EMPTY)
        assert not is_bottom(Ok(1))

    def test_bool_helpers(self):
        assert from_bool(ok_bool(True)) is True
        assert from_bool(ok_bool(False)) is False
        assert from_bool(Ok(3)) is None
        assert from_bool(BOTTOM) is None

    def test_ok_unit(self):
        value = ok_unit()
        assert isinstance(value.value, ConVal)
        assert value.value.name == "Unit"


class TestRendering:
    def test_bad_str(self):
        assert "DivideByZero" in str(Bad(ExcSet.of(DIVIDE_BY_ZERO)))

    def test_bottom_str(self):
        text = str(BOTTOM)
        assert "E" in text and "NonTermination" in text

    def test_ok_str(self):
        assert str(Ok(3)) == "Ok 3"

    def test_conval_str(self):
        assert str(ConVal("True")) == "True"
        assert "2 args" in str(
            ConVal("Cons", (Thunk.ready(Ok(1)), Thunk.ready(Ok(2))))
        )

    def test_ioval_str(self):
        assert str(IOVal("getException")) == "IO<getException>"

    def test_funval_label(self):
        assert str(FunVal(lambda t: Ok(1), label="id")) == "id"
