"""The exception-finding mode of Section 4.3 — "the slightly surprising
rule" — versus the naive rule, and the laws it exists to validate."""

import pytest

from repro.baselines.fixed_order import naive_case_ctx
from repro.core.denote import DenoteContext
from repro.core.domains import BAD_EMPTY, BOTTOM, Bad, Ok
from repro.core.excset import DIVIDE_BY_ZERO, ExcSet, OVERFLOW
from repro.core.laws import PAIR_BATTERY, check_law
from repro.lang.match import flatten_case_patterns
from repro.lang.parser import parse_expr
from tests.conftest import d, exc_names


def d_naive(source: str, fuel: int = 50_000):
    return d(source, ctx=naive_case_ctx(fuel))


class TestNormalScrutinee:
    def test_selects_matching_alternative(self):
        assert d("case Just 5 of { Just x -> x; Nothing -> 0 }") == Ok(5)

    def test_first_match_wins(self):
        assert d("case 1 of { 1 -> 10; _ -> 20 }") == Ok(10)

    def test_wildcard(self):
        assert d("case 9 of { 1 -> 10; _ -> 20 }") == Ok(20)

    def test_bindings_are_lazy(self):
        value = d(
            "case Just (1 `div` 0) of { Just x -> 3; Nothing -> 0 }"
        )
        assert value == Ok(3)


class TestExceptionFindingMode:
    def test_unions_scrutinee_and_branches(self):
        value = d(
            "case (raise DivideByZero) of "
            "{ True -> raise Overflow; False -> 42 }"
        )
        assert exc_names(value) == {"DivideByZero", "Overflow"}

    def test_branch_exceptions_explored_with_bad_empty(self):
        # Pattern variables are bound to Bad {}: a branch returning the
        # variable itself contributes nothing.
        value = d(
            "case (raise DivideByZero) of { Just x -> x; Nothing -> 1 }"
        )
        assert exc_names(value) == {"DivideByZero"}

    def test_branch_using_variable_strictly_contributes_nothing(self):
        # x + 1 with x = Bad {} is Bad ({} ∪ {}) = Bad {}.
        value = d(
            "case (raise DivideByZero) of "
            "{ Just x -> x + 1; Nothing -> 2 }"
        )
        assert exc_names(value) == {"DivideByZero"}

    def test_branch_raising_contributes(self):
        value = d(
            "case (raise DivideByZero) of "
            "{ Just x -> raise Overflow; Nothing -> error \"n\" }"
        )
        assert exc_names(value) == {
            "DivideByZero",
            "Overflow",
            "UserError",
        }

    def test_bottom_scrutinee_stays_bottom(self):
        value = d(
            "case (let { w = w + 1 } in w) of { True -> 1; False -> 2 }",
            fuel=20_000,
        )
        assert value == BOTTOM

    def test_diverging_branch_makes_bottom(self):
        # A branch whose exploration diverges contributes ⊥'s set.
        value = d(
            "case (raise Overflow) of "
            "{ True -> let { w = w + 1 } in w; False -> 1 }",
            fuel=20_000,
        )
        assert value == BOTTOM


class TestNaiveModeContrast:
    def test_naive_returns_scrutinee_only(self):
        value = d_naive(
            "case (raise DivideByZero) of "
            "{ True -> raise Overflow; False -> 42 }"
        )
        assert exc_names(value) == {"DivideByZero"}

    def test_case_switch_law_validated_by_exception_finding(self):
        lhs = flatten_case_patterns(
            parse_expr(
                "case x of { Tuple2 a b -> "
                "case y of { Tuple2 p q -> a + p } }"
            )
        )
        rhs = flatten_case_patterns(
            parse_expr(
                "case y of { Tuple2 p q -> "
                "case x of { Tuple2 a b -> a + p } }"
            )
        )
        batteries = {"x": PAIR_BATTERY, "y": PAIR_BATTERY}
        imprecise = check_law(
            lhs, rhs, name="case-switch", var_batteries=batteries
        )
        assert imprecise.verdict == "identity"

    def test_case_switch_law_fails_under_naive_mode(self):
        lhs = flatten_case_patterns(
            parse_expr(
                "case x of { Tuple2 a b -> "
                "case y of { Tuple2 p q -> a + p } }"
            )
        )
        rhs = flatten_case_patterns(
            parse_expr(
                "case y of { Tuple2 p q -> "
                "case x of { Tuple2 a b -> a + p } }"
            )
        )
        batteries = {"x": PAIR_BATTERY, "y": PAIR_BATTERY}
        naive = check_law(
            lhs,
            rhs,
            name="case-switch",
            var_batteries=batteries,
            ctx_factory=naive_case_ctx,
        )
        assert naive.verdict == "unsound"
        # The counterexample is the paper's: both scrutinees
        # exceptional, order determines which exception appears.
        assert naive.counterexample is not None


class TestBadEmptyValue:
    """The "strange value Bad {}" (Section 4.1): not the denotation of
    any term, but essential to case's semantics."""

    def test_bad_empty_is_not_bottom(self):
        assert not BAD_EMPTY.excs.is_bottom()

    def test_bad_empty_is_top_of_exceptional_side(self):
        assert Bad(ExcSet.of(DIVIDE_BY_ZERO)).excs.leq(BAD_EMPTY.excs)
        assert BOTTOM.excs.leq(BAD_EMPTY.excs)
