"""Fuel monotonicity (invariant 3 of DESIGN.md): more fuel can only
increase information — the fuel-k denotation approximates the true one
from below, like the paper's ascending chain for fix."""

from hypothesis import given, settings

from repro.core.denote import DenoteContext, denote
from repro.core.ordering import refines
from tests.genexpr import int_exprs


def _denote_with_fuel(expr, fuel):
    ctx = DenoteContext(fuel=fuel, max_depth=2_000)
    return denote(expr, {}, ctx)


class TestFuelMonotonicity:
    @given(int_exprs(depth=4))
    @settings(max_examples=150, deadline=None)
    def test_more_fuel_refines(self, expr):
        lo = _denote_with_fuel(expr, 60)
        hi = _denote_with_fuel(expr, 5_000)
        assert refines(lo, hi), f"{lo} not ⊑ {hi}"

    @given(int_exprs(depth=3))
    @settings(max_examples=100, deadline=None)
    def test_fuel_chain(self, expr):
        previous = None
        for fuel in (10, 40, 200, 2_000):
            current = _denote_with_fuel(expr, fuel)
            if previous is not None:
                assert refines(previous, current)
            previous = current

    @given(int_exprs(depth=3))
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, expr):
        a = _denote_with_fuel(expr, 3_000)
        b = _denote_with_fuel(expr, 3_000)
        assert refines(a, b) and refines(b, a)
