"""mapException (Section 5.4): pure, deterministic, maps the *set*."""

import pytest

from repro.core.domains import BOTTOM, Ok
from repro.machine import LeftToRight, RightToLeft
from repro.api import observe_source
from repro.machine.observe import Exceptional
from tests.conftest import d, exc_names


class TestDenotational:
    def test_normal_value_untouched(self):
        assert d("mapException (\\e -> Overflow) 42") == Ok(42)

    def test_maps_single_exception(self):
        value = d("mapException (\\e -> Overflow) (1 `div` 0)")
        assert exc_names(value) == {"Overflow"}

    def test_papers_example_catch_all_to_usererror(self):
        # mapException (\x -> UserError "Urk") e  (Section 5.4)
        value = d(
            'mapException (\\x -> UserError "Urk") (raise Overflow)'
        )
        assert exc_names(value) == {"UserError"}

    def test_maps_each_member_of_the_set(self):
        value = d(
            "mapException (\\e -> case e of "
            "{ DivideByZero -> Overflow; _ -> e }) "
            '((1 `div` 0) + error "Urk")'
        )
        assert exc_names(value) == {"Overflow", "UserError"}

    def test_identity_mapper_preserves_set(self):
        value = d('mapException (\\e -> e) ((1 `div` 0) + error "Urk")')
        assert exc_names(value) == {"DivideByZero", "UserError"}

    def test_collapsing_mapper_merges(self):
        value = d(
            "mapException (\\e -> PatternMatchFail) "
            '((1 `div` 0) + error "Urk")'
        )
        assert exc_names(value) == {"PatternMatchFail"}

    def test_lazy_in_its_argument_structure(self):
        # mapException only forces to WHNF; the Just survives.
        value = d(
            "case mapException (\\e -> Overflow) (Just (1 `div` 0)) of "
            "{ Just x -> 1; Nothing -> 0 }"
        )
        assert value == Ok(1)

    def test_bottom_maps_to_bottom(self):
        value = d(
            "mapException (\\e -> Overflow) (let { w = w + 1 } in w)",
            fuel=20_000,
        )
        assert value == BOTTOM

    def test_raising_mapper_contributes_its_exception(self):
        value = d(
            "mapException (\\e -> head Nil) (raise Overflow)"
        )
        assert exc_names(value) == {"UserError"}


class TestOperational:
    """The implementation applies the mapper to the sole representative
    (Section 5.4: "from an implementation point of view, it applies the
    function to the sole representative")."""

    def test_representative_mapped_left(self):
        out = observe_source(
            "mapException (\\e -> case e of "
            "{ DivideByZero -> Overflow; _ -> e }) "
            '((1 `div` 0) + error "Urk")',
            strategy=LeftToRight(),
        )
        assert isinstance(out, Exceptional)
        assert out.exc.name == "Overflow"

    def test_representative_mapped_right(self):
        out = observe_source(
            "mapException (\\e -> case e of "
            "{ DivideByZero -> Overflow; _ -> e }) "
            '((1 `div` 0) + error "Urk")',
            strategy=RightToLeft(),
        )
        assert isinstance(out, Exceptional)
        assert out.exc.name == "UserError"

    def test_observed_is_member_of_denoted_mapped_set(self):
        source = (
            "mapException (\\e -> case e of "
            "{ DivideByZero -> Overflow; _ -> PatternMatchFail }) "
            '((1 `div` 0) + error "Urk")'
        )
        denoted = exc_names(d(source))
        for strategy in (LeftToRight(), RightToLeft()):
            out = observe_source(source, strategy=strategy)
            assert isinstance(out, Exceptional)
            assert out.exc.name in denoted

    def test_pure_no_io_needed(self):
        # mapException composes inside pure expressions.
        out = observe_source(
            "1 + mapException (\\e -> Overflow) 2"
        )
        from repro.machine.observe import Normal

        assert isinstance(out, Normal)
