"""Deep rendering of denotations (repro.core.render)."""

import pytest

from repro.core.render import show_semval
from tests.conftest import d


class TestShowSemVal:
    def test_int(self):
        assert show_semval(d("42")) == "42"

    def test_string(self):
        assert show_semval(d('"hi"')) == "'hi'"

    def test_list(self):
        assert show_semval(d("[1, 2, 3]")) == "[1, 2, 3]"

    def test_nested(self):
        assert show_semval(d("Just (1, [2])")) == "(Just (1, [2]))"

    def test_nullary_constructor(self):
        assert show_semval(d("True")) == "True"

    def test_bad(self):
        text = show_semval(d("1 `div` 0"))
        assert text.startswith("<Bad")
        assert "DivideByZero" in text

    def test_lurking_exception_in_element(self):
        text = show_semval(d("[1, 2 `div` 0, 3]"))
        assert text == "[1, <Bad {DivideByZero}>, 3]"

    def test_exceptional_tail(self):
        text = show_semval(d("zipWith (+) [1] [1, 2]"))
        assert text.startswith("[2, <Bad")
        assert "Unequal lists" in text

    def test_infinite_list_truncated(self):
        text = show_semval(
            d("iterate (\\x -> x + 1) 0", fuel=500_000), depth=5
        )
        assert text.endswith(", ...]")

    def test_function(self):
        assert show_semval(d("\\x -> x")) == "<function>"

    def test_io(self):
        assert show_semval(d("getException 1")) == "<io:getException>"

    def test_tuple(self):
        assert show_semval(d("(1, 2, 3)")) == "(1, 2, 3)"
