"""Individual rewrite rules: syntactic behaviour."""

import pytest

from repro.api import compile_expr
from repro.lang.ast import App, Case, Lam, Let, Lit, PrimOp, Var
from repro.lang.names import NameSupply, alpha_equivalent, free_vars
from repro.lang.parser import parse_expr
from repro.transform import (
    AppOfCase,
    BetaReduce,
    BetaToLet,
    CaseOfCase,
    CaseOfKnownCon,
    CaseSwitch,
    CommonSubexpression,
    CommutePrimArgs,
    DeadAltRemoval,
    DeadLetElimination,
    EtaReduce,
    InlineLet,
    LetFloatFromApp,
    LetFloatFromCase,
    rewrite_bottom_up,
    rewrite_everywhere,
    rewrite_fixpoint,
)


def fire(rule, source):
    expr = compile_expr(source)
    return rule.try_rewrite(expr, NameSupply(avoid=free_vars(expr)))


class TestBetaReduce:
    def test_fires_on_redex(self):
        result = fire(BetaReduce(), "(\\x -> x + x) a")
        assert alpha_equivalent(result, parse_expr("a + a"))

    def test_no_fire_on_non_redex(self):
        assert fire(BetaReduce(), "f a") is None

    def test_capture_avoiding(self):
        result = fire(BetaReduce(), "(\\x -> \\y -> x) y")
        assert isinstance(result, Lam)
        assert result.var != "y"
        assert result.body == Var("y")


class TestBetaToLet:
    def test_produces_let(self):
        result = fire(BetaToLet(), "(\\x -> x + x) (a * b)")
        assert isinstance(result, Let)
        assert result.binds[0][0] == "x"

    def test_renames_when_arg_mentions_binder(self):
        result = fire(BetaToLet(), "(\\x -> x + 1) (x * 2)")
        assert isinstance(result, Let)
        assert result.binds[0][0] != "x"


class TestEtaReduce:
    def test_fires(self):
        assert fire(EtaReduce(), "\\x -> f x") == Var("f")

    def test_no_fire_when_var_used_in_fn(self):
        assert fire(EtaReduce(), "\\x -> x x") is None

    def test_marked_unsound(self):
        assert EtaReduce.expected == "unsound"


class TestCaseRules:
    def test_case_of_known_con(self):
        result = fire(
            CaseOfKnownCon(),
            "case Just 3 of { Just x -> x + 1; Nothing -> 0 }",
        )
        assert alpha_equivalent(result, parse_expr("3 + 1"))

    def test_case_of_known_con_skips_mismatches(self):
        result = fire(
            CaseOfKnownCon(),
            "case Nothing of { Just x -> x; Nothing -> 9 }",
        )
        assert result == Lit(9, "int")

    def test_case_of_known_literal(self):
        result = fire(
            CaseOfKnownCon(), "case 2 of { 1 -> 10; 2 -> 20; _ -> 0 }"
        )
        assert result == Lit(20, "int")

    def test_case_of_case_fires(self):
        result = fire(
            CaseOfCase(),
            "case (case a of { True -> b; False -> c }) of "
            "{ True -> d; False -> e }",
        )
        assert isinstance(result, Case)
        assert result.scrutinee == Var("a")
        inner = result.alts[0].body
        assert isinstance(inner, Case)

    def test_app_of_case_fires(self):
        result = fire(
            AppOfCase(),
            "(case c of { True -> f; False -> g }) a",
        )
        assert isinstance(result, Case)
        assert isinstance(result.alts[0].body, App)

    def test_case_switch_fires(self):
        result = fire(
            CaseSwitch(),
            "case x of { Tuple2 a b -> "
            "case y of { Tuple2 p q -> a + p } }",
        )
        assert isinstance(result, Case)
        assert result.scrutinee == Var("y")

    def test_case_switch_respects_dependency(self):
        # Inner scrutinee bound by the outer pattern: must not fire.
        assert (
            fire(
                CaseSwitch(),
                "case x of { Tuple2 a b -> "
                "case a of { Tuple2 p q -> p } }",
            )
            is None
        )

    def test_dead_alt_removal(self):
        result = fire(
            DeadAltRemoval(),
            "case a of { _ -> 1; True -> 2 }",
        )
        assert isinstance(result, Case)
        assert len(result.alts) == 1


class TestLetRules:
    def test_dead_let(self):
        result = fire(DeadLetElimination(), "let { u = a } in 42")
        assert result == Lit(42, "int")

    def test_dead_let_keeps_used(self):
        assert fire(DeadLetElimination(), "let { u = a } in u") is None

    def test_partial_removal(self):
        result = fire(
            DeadLetElimination(), "let { u = a; v = b } in v"
        )
        assert isinstance(result, Let)
        assert len(result.binds) == 1

    def test_let_float_from_app(self):
        result = fire(
            LetFloatFromApp(), "(let { v = a } in f v) b"
        )
        assert isinstance(result, Let)
        assert isinstance(result.body, App)

    def test_let_float_from_app_no_capture(self):
        assert (
            fire(LetFloatFromApp(), "(let { v = a } in f v) v") is None
        )

    def test_let_float_from_case(self):
        result = fire(
            LetFloatFromCase(),
            "case (let { v = a } in v) of { True -> 1; False -> 2 }",
        )
        assert isinstance(result, Let)
        assert isinstance(result.body, Case)


class TestInline:
    def test_inline_single_use(self):
        result = fire(InlineLet(), "let { v = a + b } in v * 2")
        assert alpha_equivalent(result, parse_expr("(a + b) * 2"))

    def test_no_inline_expensive_multi_use(self):
        assert fire(InlineLet(), "let { v = f a } in v + v") is None

    def test_inline_cheap_multi_use(self):
        result = fire(InlineLet(), "let { v = a } in v + v")
        assert alpha_equivalent(result, parse_expr("a + a"))

    def test_aggressive_inlines_anything(self):
        result = fire(
            InlineLet(aggressive=True), "let { v = f a } in v + v"
        )
        assert alpha_equivalent(result, parse_expr("f a + f a"))

    def test_recursive_binding_not_inlined(self):
        assert fire(InlineLet(), "let { v = v + 1 } in v") is None


class TestCommute:
    def test_commutes_plus(self):
        result = fire(CommutePrimArgs(), "a + b")
        assert result == PrimOp("+", (Var("b"), Var("a")))

    def test_does_not_commute_minus(self):
        assert fire(CommutePrimArgs(), "a - b") is None

    def test_commutes_only_requested_ops(self):
        rule = CommutePrimArgs(ops=frozenset(["*"]))
        assert fire(rule, "a + b") is None
        assert fire(rule, "a * b") is not None


class TestCSE:
    def test_shares_repeated_subexpression(self):
        result = fire(CommonSubexpression(), "(a + b) * (a + b)")
        assert isinstance(result, Let)
        (name, rhs), = result.binds
        assert alpha_equivalent(rhs, parse_expr("a + b"))

    def test_no_fire_without_repetition(self):
        assert fire(CommonSubexpression(), "(a + b) * (c + d)") is None


class TestDrivers:
    def test_bottom_up_counts(self):
        expr = compile_expr("(\\x -> x) ((\\y -> y) 1)")
        result, count = rewrite_bottom_up(expr, BetaReduce())
        assert count == 2
        assert result == Lit(1, "int")

    def test_fixpoint_reaches_normal_form(self):
        expr = compile_expr(
            "let { v = 1 } in (\\x -> x + v) 2"
        )
        result, fired = rewrite_fixpoint(
            expr, [BetaReduce(), InlineLet(), DeadLetElimination()]
        )
        assert fired >= 2
        assert alpha_equivalent(result, parse_expr("2 + 1"))

    def test_fixpoint_bounded(self):
        # Commute ping-pongs forever; the round budget must stop it.
        expr = compile_expr("a + b")
        result, _fired = rewrite_fixpoint(
            expr, [CommutePrimArgs()], max_rounds=5
        )
        assert isinstance(result, PrimOp)
