"""The verifier: rule classification under the three semantics (E3)."""

import pytest

from repro.baselines.fixed_order import fixed_order_ctx, naive_case_ctx
from repro.transform import (
    AppOfCase,
    BetaReduce,
    BetaToLet,
    CaseOfCase,
    CaseOfKnownCon,
    CaseSwitch,
    CommonSubexpression,
    CommutePrimArgs,
    DeadAltRemoval,
    DeadLetElimination,
    EtaReduce,
    InlineLet,
    LetFloatFromApp,
    LetFloatFromCase,
    classify_transformation,
)

ALL_RULES = [
    BetaReduce(),
    BetaToLet(),
    CaseOfKnownCon(),
    CaseOfCase(),
    AppOfCase(),
    CaseSwitch(),
    DeadAltRemoval(),
    DeadLetElimination(),
    LetFloatFromApp(),
    LetFloatFromCase(),
    InlineLet(aggressive=True),
    CommonSubexpression(),
    CommutePrimArgs(),
]


class TestImpreciseSemantics:
    """Every optimising rule is an identity or a refinement — the
    paper's conjecture (Section 4.5), verified on the corpus."""

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.name)
    def test_rule_is_legitimate(self, rule):
        report = classify_transformation(rule)
        assert report.firings > 0, f"{rule.name}: corpus never fires it"
        assert report.valid, str(report)

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.name)
    def test_verdict_matches_expectation(self, rule):
        report = classify_transformation(rule)
        if rule.expected == "identity":
            assert report.worst == "identity", str(report)
        else:
            assert report.worst in ("identity", "refinement"), str(report)

    def test_eta_reduce_rejected(self):
        # The one deliberately-unsound rule: λx.fx -> f loses the
        # normal-value-ness of the lambda (Section 4.2).
        report = classify_transformation(EtaReduce())
        assert report.firings > 0
        assert not report.valid
        assert report.counterexamples


class TestFixedOrderSemantics:
    """Under the ML/FL baseline the reordering rules break (E3)."""

    def test_commute_unsound(self):
        report = classify_transformation(
            CommutePrimArgs(),
            ctx_factory=fixed_order_ctx,
            semantics_name="fixed-order",
        )
        assert not report.valid
        assert report.unsound > 0

    def test_case_switch_unsound(self):
        report = classify_transformation(
            CaseSwitch(),
            ctx_factory=fixed_order_ctx,
            semantics_name="fixed-order",
        )
        assert not report.valid

    def test_beta_still_valid(self):
        # β does not reorder anything; it survives even the baseline.
        report = classify_transformation(
            BetaReduce(), ctx_factory=fixed_order_ctx
        )
        assert report.valid

    def test_dead_let_still_valid(self):
        report = classify_transformation(
            DeadLetElimination(), ctx_factory=fixed_order_ctx
        )
        assert report.valid


class TestNaiveCaseSemantics:
    """E7: without exception-finding mode, case-switching dies."""

    def test_case_switch_needs_exception_finding(self):
        naive = classify_transformation(
            CaseSwitch(),
            ctx_factory=naive_case_ctx,
            semantics_name="naive-case",
        )
        assert not naive.valid
        imprecise = classify_transformation(CaseSwitch())
        assert imprecise.valid

    def test_commute_survives_naive_case(self):
        # The naive case rule breaks case laws, not primitive laws.
        report = classify_transformation(
            CommutePrimArgs(), ctx_factory=naive_case_ctx
        )
        assert report.valid


class TestReportAccounting:
    def test_counts_add_up(self):
        report = classify_transformation(CommutePrimArgs())
        assert (
            report.identities + report.refinements + report.unsound
            == report.firings
        )

    def test_str_contains_name(self):
        report = classify_transformation(BetaReduce())
        assert "beta-reduce" in str(report)
