"""Optimisation pipelines: meaning-preservation and the E5 effect
(different levels may observe different members of the denoted set)."""

import pytest

from repro.analysis.strictness import analyse_program
from repro.api import compile_expr, compile_program, denote_source
from repro.core.denote import DenoteContext, denote
from repro.core.domains import Bad, Ok
from repro.core.ordering import refines
from repro.lang.ast import expr_size
from repro.machine import Machine, Exceptional, observe
from repro.prelude.loader import denote_env, machine_env
from repro.transform import O0, O1, O2, OptLevel, pipeline_for
from repro.transform.pipeline import O2_commuted, O2_strict

SOURCES = [
    "(\\x -> x + x) (a * 2)",
    "let { v = a + b } in v * v",
    "case Just a of { Just v -> v + 1; Nothing -> 0 }",
    "(case p of { True -> f; False -> g }) (a + 1)",
    "case (case p of { True -> q; False -> r }) of "
    "{ True -> 1; False -> 2 }",
    "seq (a + b) (b + a)",
]


def _denote(expr, fuel=100_000):
    ctx = DenoteContext(fuel=fuel)
    env = denote_env(ctx)
    return denote(expr, env, ctx)


class TestMeaningPreservation:
    @pytest.mark.parametrize("level", [O1, O2], ids=lambda lv: lv.name)
    @pytest.mark.parametrize("source", SOURCES)
    def test_optimised_refines_original(self, level, source):
        from repro.core.laws import (
            BOOL_BATTERY,
            DEFAULT_BATTERY,
            TOTAL_FUNCTION_BATTERY,
            check_law,
        )

        expr = compile_expr(source)
        optimised = level.optimise(expr)
        report = check_law(
            expr,
            optimised,
            name=f"{level.name}:{source}",
            var_batteries={
                "f": TOTAL_FUNCTION_BATTERY,
                "g": TOTAL_FUNCTION_BATTERY,
                "p": BOOL_BATTERY,
                "q": BOOL_BATTERY,
                "r": BOOL_BATTERY,
            },
            max_environments=400,
        )
        assert report.holds, str(report)

    def test_o0_is_identity_function(self):
        expr = compile_expr(SOURCES[0])
        assert O0.optimise(expr) == expr

    def test_optimisation_shrinks_redexes(self):
        expr = compile_expr("(\\x -> x + x) 3")
        optimised = O2.optimise(expr)
        assert expr_size(optimised) < expr_size(expr)


class TestObservableImprecision:
    """E5's mechanism: a commuting optimiser changes which exception
    the machine meets first; all observations stay in the denoted set."""

    SOURCE = '(1 `div` 0) + error "Urk"'

    def test_commuted_pipeline_changes_observation(self):
        base_expr = compile_expr(self.SOURCE)
        commuted = O2_commuted().optimise(base_expr)

        machine_a = Machine()
        out_a = observe(
            base_expr, env=machine_env(machine_a), machine=machine_a
        )
        machine_b = Machine()
        out_b = observe(
            commuted, env=machine_env(machine_b), machine=machine_b
        )
        assert isinstance(out_a, Exceptional)
        assert isinstance(out_b, Exceptional)
        assert out_a.exc != out_b.exc

    def test_all_levels_within_denoted_set(self):
        denoted = denote_source(self.SOURCE)
        assert isinstance(denoted, Bad)
        for level in (O0, O1, O2, O2_commuted()):
            expr = level.optimise(compile_expr(self.SOURCE))
            machine = Machine()
            out = observe(expr, env=machine_env(machine), machine=machine)
            assert isinstance(out, Exceptional)
            assert out.exc in denoted.excs, f"{level}: {out.exc}"


class TestStrictPipeline:
    def test_strictness_level_runs(self):
        program = compile_program(
            "addUp n acc = if n == 0 then acc else addUp (n - 1) (acc + n)\n"
            "main = addUp 10 0"
        )
        strict_env = analyse_program(program)
        level = O2_strict(strict_env)
        optimised = level.optimise_program(program)
        machine = Machine()
        from repro.machine.eval import program_env

        env = program_env(optimised, machine, machine_env(machine))
        assert env["main"].force(machine).value == 55


class TestPipelineFactory:
    def test_known_names(self):
        for name in ("O0", "O1", "O2", "O2+strict", "O2+commute"):
            assert isinstance(pipeline_for(name), OptLevel)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            pipeline_for("O9")
