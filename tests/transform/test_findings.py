"""Reproduction findings that go *beyond* the paper's text.

The paper conjectures (Section 4.5) that "optimising transformations
are either identities or refinements" and backs the app-of-case example
with the instantiation f = g = \\v.1.  Our verifier, quantifying over a
battery that also contains ⊥-bodied functions, finds that the
conjecture needs a caveat: with g = \\v.⊥ the same rewrite *decreases*
information.  This file pins the finding down precisely (F-2 in
EXPERIMENTS.md).
"""

import pytest

from repro.core.denote import DenoteContext, denote
from repro.core.domains import BOTTOM, Bad, FunVal, Ok, Thunk
from repro.core.excset import ExcSet, user_error
from repro.core.ordering import refines
from repro.lang.match import flatten_case_patterns
from repro.lang.parser import parse_expr

LHS_SRC = "(case e of { True -> f; False -> g }) x"
RHS_SRC = "case e of { True -> f x; False -> g x }"


def _denote_with(env_values):
    lhs = flatten_case_patterns(parse_expr(LHS_SRC))
    rhs = flatten_case_patterns(parse_expr(RHS_SRC))
    env = {k: Thunk.ready(v) for k, v in env_values.items()}
    lv = denote(lhs, dict(env), DenoteContext(fuel=10_000))
    rv = denote(rhs, dict(env), DenoteContext(fuel=10_000))
    return lv, rv


class TestAppOfCaseFinding:
    def test_paper_instantiation_is_refinement(self):
        """e = raise E, x = raise X, f = g = \\v.1 gives
        lhs = Bad {E, X} and rhs = Bad {E} — the paper's numbers."""
        e = Bad(ExcSet.of(user_error("E")))
        x = Bad(ExcSet.of(user_error("X")))
        fun = Ok(FunVal(lambda t: Ok(1), label="\\v -> 1"))
        lhs, rhs = _denote_with({"e": e, "x": x, "f": fun, "g": fun})
        assert lhs == Bad(ExcSet.of(user_error("E"), user_error("X")))
        assert rhs == Bad(ExcSet.of(user_error("E")))
        assert refines(lhs, rhs)
        assert not refines(rhs, lhs)

    def test_bottom_bodied_function_reverses_the_refinement(self):
        """F-2: with g = \\v.⊥ the rewrite *loses* information:
        lhs = Bad {E} but rhs = ⊥ (exploring the False branch applies
        g, whose body is ⊥, in exception-finding mode)."""
        e = Bad(ExcSet.of(user_error("E")))
        x = Ok(0)
        f = Ok(FunVal(lambda t: Ok(3), label="\\_ -> 3"))
        g = Ok(FunVal(lambda t: BOTTOM, label="\\_ -> bottom"))
        lhs, rhs = _denote_with({"e": e, "x": x, "f": f, "g": g})
        assert lhs == Bad(ExcSet.of(user_error("E")))
        assert rhs == BOTTOM
        # The rewrite direction lhs -> rhs is NOT a refinement here:
        assert not refines(lhs, rhs)
        # ... in fact it goes strictly the other way:
        assert refines(rhs, lhs)

    def test_exception_returning_function_also_reverses(self):
        """F-2 continued: g x = Bad {F} also breaks the refinement —
        the rhs explores the application and gains F, so
        rhs = Bad {E, F} ⊑ lhs = Bad {E}."""
        e = Bad(ExcSet.of(user_error("E")))
        f = Ok(FunVal(lambda t: Bad(ExcSet.of(user_error("F")))))
        lhs, rhs = _denote_with({"e": e, "x": Ok(0), "f": f, "g": f})
        assert lhs == Bad(ExcSet.of(user_error("E")))
        assert rhs == Bad(ExcSet.of(user_error("E"), user_error("F")))
        assert not refines(lhs, rhs)
        assert refines(rhs, lhs)

    def test_conjecture_caveat_documented(self):
        """The caveat: the rewrite is a refinement whenever the branch
        bodies applied to the argument yield *normal* values (as in the
        paper's own instantiation, f = g = \\v.1)."""
        e = Bad(ExcSet.of(user_error("E")))
        for result in (Ok(1), Ok(42)):
            f = Ok(FunVal(lambda t, r=result: r))
            lhs, rhs = _denote_with(
                {"e": e, "x": Bad(ExcSet.of(user_error("X"))), "f": f,
                 "g": f}
            )
            assert refines(lhs, rhs)

    def test_either_direction_operationally_sound(self):
        """Despite the denotational wobble, every machine observation
        of either side is a member of *both* sides' exception sets —
        the rewrite never misleads an implementation."""
        from repro.api import compile_expr
        from repro.machine import Exceptional, Machine, observe
        from repro.machine.strategy import standard_strategies

        lhs = compile_expr(
            "(case raise (UserError \"E\") of "
            "{ True -> \\v -> 1; False -> \\v -> 1 }) "
            "(raise (UserError \"X\"))"
        )
        rhs = compile_expr(
            "case raise (UserError \"E\") of "
            "{ True -> (\\v -> 1) (raise (UserError \"X\")); "
            "False -> (\\v -> 1) (raise (UserError \"X\")) }"
        )
        for expr in (lhs, rhs):
            for strategy in standard_strategies():
                machine = Machine(strategy=strategy)
                out = observe(expr, machine=machine)
                assert isinstance(out, Exceptional)
                assert out.exc == user_error("E")
