"""The -fno-pedantic-bottoms flag (Section 5.3 footnote): laws that
hold only under a no-⊥ proof obligation."""

import pytest

from repro.api import check_law_sources
from repro.core.laws import BOOL_BATTERY
from repro.lang.names import NameSupply
from repro.lang.parser import parse_expr
from repro.transform.pedantic import (
    NO_BOTTOM_BATTERY,
    CollapseIdenticalAlts,
    DropSeqOnNonBottom,
)


def fire(rule, source):
    expr = parse_expr(source)
    return rule.try_rewrite(expr, NameSupply())


class TestRewriting:
    def test_collapse_fires_on_identical_bodies(self):
        result = fire(
            CollapseIdenticalAlts(),
            "case v of { True -> a + 1; False -> a + 1 }",
        )
        assert result == parse_expr("a + 1")

    def test_collapse_requires_identical_bodies(self):
        assert (
            fire(
                CollapseIdenticalAlts(),
                "case v of { True -> 1; False -> 2 }",
            )
            is None
        )

    def test_collapse_respects_pattern_bindings(self):
        assert (
            fire(
                CollapseIdenticalAlts(),
                "case v of { Just y -> y; Nothing -> y }",
            )
            is None
        )

    def test_drop_seq_fires(self):
        assert fire(DropSeqOnNonBottom(), "seq a b") == parse_expr("b")


class TestProofObligation:
    """The paper's law: unsound in general, identity once the
    obligation (no sub-expression is ⊥/exceptional) is discharged."""

    LHS = "case v of { True -> e; False -> e }"
    RHS = "e"

    def test_unsound_with_pedantic_bottoms(self):
        report = check_law_sources(
            self.LHS,
            self.RHS,
            name="collapse-pedantic",
            var_batteries={"v": BOOL_BATTERY},
        )
        assert report.verdict == "unsound"
        # The counterexample drops the scrutinee's exception.
        assert report.counterexample is not None

    def test_identity_with_obligation_discharged(self):
        from repro.core.domains import ConVal, Ok

        normal_bools = (Ok(ConVal("True")), Ok(ConVal("False")))
        report = check_law_sources(
            self.LHS,
            self.RHS,
            name="collapse-no-pedantic",
            var_batteries={
                "v": normal_bools,
                "e": NO_BOTTOM_BATTERY,
            },
        )
        assert report.verdict == "identity"

    def test_drop_seq_unsound_generally(self):
        report = check_law_sources(
            "seq a b", "b", name="drop-seq-pedantic"
        )
        assert report.verdict == "unsound"

    def test_drop_seq_identity_under_obligation(self):
        report = check_law_sources(
            "seq a b",
            "b",
            name="drop-seq-no-pedantic",
            var_batteries={
                "a": NO_BOTTOM_BATTERY,
                "b": NO_BOTTOM_BATTERY,
            },
        )
        assert report.verdict == "identity"
