"""HTTP front-end tests: a real daemon on an ephemeral port, driven
with the stdlib client.  Kept small — the protocol is a thin shim over
:class:`~repro.serve.service.EvalService`, which has its own suite."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import EvalService, ServiceConfig
from repro.serve.http import make_server


@pytest.fixture()
def server():
    service = EvalService(
        ServiceConfig(max_steps=100_000, deadline_seconds=None)
    )
    httpd = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def _post(httpd, path, payload, raw=None):
    host, port = httpd.server_address[:2]
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


def _get(httpd, path):
    host, port = httpd.server_address[:2]
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestEval:
    def test_value_round_trip(self, server):
        status, body, _ = _post(server, "/eval", {"expr": "6 * 7"})
        assert status == 200
        assert body["status"] == "value"
        assert body["value"] == "42"

    def test_exceptional_round_trip(self, server):
        status, body, _ = _post(server, "/eval", {"expr": "head []"})
        assert status == 200
        assert body["status"] == "exceptional"

    def test_io_with_stdout(self, server):
        status, body, _ = _post(
            server, "/eval", {"expr": 'putLine "hello"'}
        )
        assert status == 200
        assert body["stdout"] == "hello\n"

    def test_bad_json_is_a_400(self, server):
        status, body, _ = _post(
            server, "/eval", None, raw=b"{not json"
        )
        assert status == 400
        assert body["reason"] == "bad-json"

    def test_oversized_body_is_a_413(self, server):
        status, body, _ = _post(
            server, "/eval", None, raw=b"x" * ((1 << 20) + 1)
        )
        assert status == 413
        assert body["reason"] == "body-too-large"

    def test_parse_error_is_a_400(self, server):
        status, body, _ = _post(server, "/eval", {"expr": "let { = "})
        assert status == 400
        assert body["reason"] == "parse-error"


class TestBatch:
    def test_batch_round_trip(self, server):
        status, body, _ = _post(
            server,
            "/eval",
            {"programs": ["1 + 1", "head Nil", 'putLine "x"']},
        )
        assert status == 200
        assert body["status"] == "batch"
        assert body["count"] == 3
        assert [r["status"] for r in body["results"]] == [
            "value",
            "exceptional",
            "value",
        ]
        assert body["results"][2]["stdout"] == "x\n"

    def test_batch_health_counters(self, server):
        _post(server, "/eval", {"programs": ["1", "2"]})
        _, health = _get(server, "/healthz")
        assert health["batches"]["total"] == 1
        assert health["batches"]["programs"] == 2
        assert health["cache"]["misses"] >= 2

    def test_oversized_batch_is_a_400(self, server):
        programs = ["1 + 1"] * (
            server.service.config.max_batch + 1
        )
        status, body, _ = _post(
            server, "/eval", {"programs": programs}
        )
        assert status == 400
        assert body["reason"] == "batch-too-large"


class TestRouting:
    def test_healthz(self, server):
        _post(server, "/eval", {"expr": "1 + 1"})
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["requests_total"] >= 1
        assert body["requests"]["value"] >= 1

    def test_unknown_path_is_a_404(self, server):
        status, body = _get(server, "/nope")
        assert status == 404
        status, body, _ = _post(server, "/nope", {"expr": "1"})
        assert status == 404

    def test_metrics_exposition_matches_health(self, server):
        """The scrape CI runs: exposition parses, and the request
        histogram's count equals ``requests_total`` exactly."""
        from repro.obs.telemetry import histogram_stats, parse_exposition

        _post(server, "/eval", {"expr": "1 + 1"})
        _post(server, "/eval", {"expr": "(("})
        host, port = server.server_address[:2]
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode("utf-8")
        families = parse_exposition(text)
        stats = histogram_stats(families, "repro_request_seconds")
        _status, health = _get(server, "/healthz")
        assert stats["count"] == health["requests_total"]

    def test_eval_bodies_carry_trace_ids(self, server):
        _status, body, _ = _post(server, "/eval", {"expr": "1 + 1"})
        assert len(body["trace_id"]) == 16
        assert isinstance(body["request_id"], int)


class TestRetryAfter:
    def test_open_breaker_sets_the_header(self, server):
        # Trip the breaker straight on the service object, then watch
        # the HTTP layer translate the rejection.
        service = server.service
        for _ in range(service.config.breaker_threshold):
            service.breaker.record_failure()
        status, body, headers = _post(
            server, "/eval", {"expr": "1 + 1"}
        )
        assert status == 503
        assert body["reason"] == "circuit-open"
        assert float(headers["Retry-After"]) > 0
