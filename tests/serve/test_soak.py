"""The fault-driven soak: the ISSUE's acceptance gate for the service.

Hundreds of concurrent requests with chaos-mode fault injection on —
the service must survive with zero hung requests, zero unhandled
Python exceptions, every response inside the documented schema, and
the circuit breaker must be seen opening *and* closing.  The clock and
sleeps are injected, so the whole thing is deterministic-modulo-thread-
interleaving and runs in seconds.
"""

import threading

import pytest

from repro.serve import EvalService, ServiceConfig
from tests.serve.test_service import FakeClock, assert_in_schema

LOOP = "let { loop = \\x -> loop x } in loop 1"
FIB = (
    "let { fib = \\n -> if n < 2 then n else fib (n - 1) + fib (n - 2) } "
    "in fib 10"
)

#: The mixed workload, cycled by request index: mostly values, some
#: exceptional outcomes, some recoveries, a sprinkle of step-limit
#: trips and client errors.
WORKLOAD = [
    FIB,
    "1 + 2 * 3",
    "1 `div` 0",
    'putStr "soak"',
    "head []",
    "catchIO (getException (1 `div` 0)) (\\r -> returnIO 0)",
    "sum [1, 2, 3, 4, 5]",
    "let { xs = 1 : xs } in head xs",
    "length [1, 2, 3]",
    LOOP,
]

TOTAL_REQUESTS = 520
WORKERS = 8


@pytest.mark.parametrize("backend", ["ast", "compiled", "super"])
def test_fault_driven_soak(backend):
    clock = FakeClock()
    config = ServiceConfig(
        backend=backend,
        max_steps=50_000,
        max_allocations=200_000,
        deadline_seconds=None,  # the fake clock never advances
        max_concurrency=WORKERS,
        queue_depth=TOTAL_REQUESTS,  # admission never rejects the soak
        retries=1,
        breaker_threshold=5,
        breaker_reset_seconds=2.0,
        fault_seed=2026,
        # Interrupt steps are drawn from [1, horizon]; keeping the
        # horizon above max_steps means a divergent request sometimes
        # trips the step governor first and sometimes takes the
        # injected interrupt — both paths get soaked.
        fault_horizon=100_000,
    )
    service = EvalService(config, clock=clock, sleep=lambda s: None)

    results = []
    errors = []
    lock = threading.Lock()
    indices = iter(range(TOTAL_REQUESTS))
    index_lock = threading.Lock()

    def worker():
        while True:
            with index_lock:
                index = next(indices, None)
            if index is None:
                return
            try:
                status, body, retry_after = service.handle(
                    {"expr": WORKLOAD[index % len(WORKLOAD)]}
                )
            except Exception as err:  # the gate: nothing may escape
                with lock:
                    errors.append((index, repr(err)))
                return
            with lock:
                results.append((index, status, body))

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(WORKERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)

    # Zero hung requests: every worker came home, every request has a
    # recorded response.
    assert all(not t.is_alive() for t in threads)
    assert errors == []
    assert len(results) == TOTAL_REQUESTS

    # Every response is inside the documented schema.
    statuses = {}
    for _index, http_status, body in results:
        assert http_status in (200, 400, 429, 503)
        assert_in_schema(body)
        statuses[body["status"]] = statuses.get(body["status"], 0) + 1

    # The workload's variety actually showed up.
    assert statuses.get("value", 0) > 0
    assert statuses.get("exceptional", 0) > 0
    assert statuses.get("resource-exhausted", 0) > 0
    assert service.faults_injected > 0

    # Health is coherent after the storm.
    health = service.health()
    assert health["in_flight"] == 0
    assert sum(health["requests"].values()) == TOTAL_REQUESTS
    assert health["governor_trips"].get("steps", 0) > 0

    # -- breaker opens AND closes, deterministically ---------------------
    # Settle any state the soak left behind: let a probe through and
    # close the breaker with known-good requests.
    clock.advance(config.breaker_reset_seconds + 0.5)
    for _ in range(2):
        service.handle({"expr": "1 + 1"})
    assert service.breaker.state == "closed"

    # Hammer with divergent requests until the breaker opens.  With
    # chaos mode on, an individual attempt may take an injected
    # interrupt (a breaker *success*) rather than trip the governor,
    # so this is a bounded loop, not exactly ``threshold`` requests —
    # but the seeds are deterministic, so the run is replayable.
    for _ in range(100):
        service.handle({"expr": LOOP})
        if service.breaker.state == "open":
            break
    assert service.breaker.state == "open"

    status, body, retry_after = service.handle({"expr": "1 + 1"})
    assert status == 503
    assert body["reason"] == "circuit-open"
    assert retry_after > 0

    clock.advance(config.breaker_reset_seconds + 0.5)
    status, body, _ = service.handle({"expr": "1 + 1"})
    assert status == 200
    assert body["status"] in ("value", "exceptional")
    assert service.breaker.state == "closed"

    states = [s for s, _ in service.breaker.transitions]
    assert "open" in states
    assert "closed" in states
    assert states[-1] == "closed"
