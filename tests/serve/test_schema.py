"""One description of the serve API (repro.serve.schema) — and proof
that every projection of it stays in sync: the generated block in
docs/ROBUSTNESS.md, the ``repro serve --help`` text, and the schema's
own internal consistency."""

import subprocess
import sys
from pathlib import Path

from repro.serve.schema import (
    DOCS_PATH,
    HTTP_STATUS,
    RESPONSE_SCHEMAS,
    SERVE_FLAGS,
    extract_block,
    render_markdown,
    schema_sets,
    sync_docs,
)

REPO = Path(__file__).resolve().parents[2]


class TestDocsSync:
    def test_docs_block_matches_rendered_schema(self):
        """docs/ROBUSTNESS.md carries the generated block verbatim —
        editing the schema without running ``--write`` fails here."""
        text = DOCS_PATH.read_text()
        block = extract_block(text)
        assert block is not None, "serve-schema markers missing"
        assert block == render_markdown(), (
            "stale serve-schema block — regenerate with "
            "PYTHONPATH=src python -m repro.serve.schema --write"
        )

    def test_sync_docs_check_mode_agrees(self):
        assert sync_docs(write=False) is True

    def test_cli_check_exits_zero_when_in_sync(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve.schema", "--check"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": ""},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestHelpSync:
    def test_serve_help_renders_every_flag(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--help"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": ""},
        )
        assert proc.returncode == 0
        for spec in SERVE_FLAGS:
            assert spec.flag in proc.stdout, spec.flag
            # argparse wraps help text; the first few words survive
            # wrapping and are enough to pin the description's source.
            head = " ".join(spec.help.split()[:3])
            assert head in proc.stdout.replace("\n", " ").replace(
                "  ", " "
            ) or spec.help.split()[0] in proc.stdout, spec.flag


class TestSchemaShape:
    def test_every_status_has_an_http_mapping(self):
        assert set(RESPONSE_SCHEMAS) == set(HTTP_STATUS)

    def test_required_and_optional_are_disjoint(self):
        for status in RESPONSE_SCHEMAS:
            required, optional = schema_sets(status)
            assert not required & optional, status

    def test_status_field_is_always_required(self):
        for status in RESPONSE_SCHEMAS:
            required, _ = schema_sets(status)
            assert "status" in required, status

    def test_flags_are_unique(self):
        flags = [spec.flag for spec in SERVE_FLAGS]
        assert len(flags) == len(set(flags))

    def test_rendered_block_escapes_table_pipes(self):
        """Descriptions may contain ``|``; the renderer must escape
        them so the markdown tables do not silently gain columns."""
        for line in render_markdown().splitlines():
            if not line.startswith("|"):
                continue
            unescaped = line.replace("\\|", "").count("|")
            assert unescaped == 4, line
