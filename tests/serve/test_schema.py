"""One description of the serve API (repro.serve.schema) — and proof
that every projection of it stays in sync: the generated block in
docs/ROBUSTNESS.md, the ``repro serve --help`` text, and the schema's
own internal consistency."""

import subprocess
import sys
from pathlib import Path

from repro.serve.schema import (
    DOCS_PATH,
    HEALTH_SCHEMA,
    HTTP_STATUS,
    METRIC_FAMILIES,
    RESPONSE_SCHEMAS,
    SERVE_FLAGS,
    extract_block,
    render_markdown,
    schema_sets,
    sync_docs,
)

REPO = Path(__file__).resolve().parents[2]


class TestDocsSync:
    def test_docs_block_matches_rendered_schema(self):
        """docs/ROBUSTNESS.md carries the generated block verbatim —
        editing the schema without running ``--write`` fails here."""
        text = DOCS_PATH.read_text()
        block = extract_block(text)
        assert block is not None, "serve-schema markers missing"
        assert block == render_markdown(), (
            "stale serve-schema block — regenerate with "
            "PYTHONPATH=src python -m repro.serve.schema --write"
        )

    def test_sync_docs_check_mode_agrees(self):
        assert sync_docs(write=False) is True

    def test_cli_check_exits_zero_when_in_sync(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve.schema", "--check"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": ""},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestHelpSync:
    def test_serve_help_renders_every_flag(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--help"],
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": ""},
        )
        assert proc.returncode == 0
        for spec in SERVE_FLAGS:
            assert spec.flag in proc.stdout, spec.flag
            # argparse wraps help text; the first few words survive
            # wrapping and are enough to pin the description's source.
            head = " ".join(spec.help.split()[:3])
            assert head in proc.stdout.replace("\n", " ").replace(
                "  ", " "
            ) or spec.help.split()[0] in proc.stdout, spec.flag


class TestSchemaShape:
    def test_every_status_has_an_http_mapping(self):
        assert set(RESPONSE_SCHEMAS) == set(HTTP_STATUS)

    def test_required_and_optional_are_disjoint(self):
        for status in RESPONSE_SCHEMAS:
            required, optional = schema_sets(status)
            assert not required & optional, status

    def test_status_field_is_always_required(self):
        for status in RESPONSE_SCHEMAS:
            required, _ = schema_sets(status)
            assert "status" in required, status

    def test_flags_are_unique(self):
        flags = [spec.flag for spec in SERVE_FLAGS]
        assert len(flags) == len(set(flags))

    def test_health_schema_matches_live_health_payload(self):
        """``GET /healthz`` and ``HEALTH_SCHEMA`` are the same set of
        keys — documenting a field that does not exist (or shipping
        one undocumented) fails here."""
        from repro.serve import EvalService, ServiceConfig

        service = EvalService(ServiceConfig())
        assert set(service.health()) == set(HEALTH_SCHEMA)

    def test_metric_families_match_live_exposition(self):
        """Every declared metric family renders (and nothing else):
        the generated docs table is exactly the live /metrics
        surface."""
        from repro.obs.telemetry import parse_exposition
        from repro.serve import EvalService, ServiceConfig

        service = EvalService(ServiceConfig())
        service.handle({"expr": "1 + 2"})
        families = parse_exposition(service.metrics_text())
        assert set(families) == {
            spec.name for spec in METRIC_FAMILIES
        }
        kinds = {spec.name: spec.kind for spec in METRIC_FAMILIES}
        for name, family in families.items():
            assert family["type"] == kinds[name], name

    def test_metric_family_names_are_unique_and_prefixed(self):
        names = [spec.name for spec in METRIC_FAMILIES]
        assert len(names) == len(set(names))
        assert all(name.startswith("repro_") for name in names)

    def test_rendered_block_escapes_table_pipes(self):
        """Descriptions may contain ``|``; the renderer must escape
        them so the markdown tables do not silently gain columns."""
        for line in render_markdown().splitlines():
            if not line.startswith("|"):
                continue
            unescaped = line.replace("\\|", "").count("|")
            assert unescaped == 4, line
