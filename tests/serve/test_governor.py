"""Governor unit tests and the ISSUE's edge cases, on both backends:
deadline inside ``catchIO``, allocation cap during a memoised
re-raise, interrupts on the first/last step, retry exhaustion."""

import pytest

from repro.api import compile_expr
from repro.core.excset import CONTROL_C, HEAP_OVERFLOW, TIMEOUT
from repro.io.run import IOExecutor
from repro.machine import Machine
from repro.machine.heap import Cell
from repro.machine.observe import Exceptional, Normal, observe, show_value
from repro.prelude.loader import machine_env
from repro.serve.governor import (
    DEADLINE_STRIDE,
    GovernorLimits,
    ResourceGovernor,
)

FIB = (
    "let { fib = \\n -> if n < 2 then n else fib (n - 1) + fib (n - 2) } "
    "in fib 10"
)

BACKENDS = ["ast", "compiled", "super"]


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SteppingClock:
    """A clock that creeps forward on every read — evaluation 'takes
    time' deterministically, without real waiting."""

    def __init__(self, per_read: float = 0.001) -> None:
        self.now = 0.0
        self.per_read = per_read

    def __call__(self) -> float:
        self.now += self.per_read
        return self.now


def _governed(source, limits, backend="ast", clock=None):
    machine = Machine(backend=backend)
    governor = ResourceGovernor(
        limits, clock=clock if clock is not None else FakeClock()
    )
    machine.attach_governor(governor)
    governor.start()
    outcome = observe(
        compile_expr(source), env=machine_env(machine), machine=machine
    )
    return outcome, machine, governor


class TestLimits:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_step_budget_delivers_timeout(self, backend):
        outcome, machine, governor = _governed(
            FIB, GovernorLimits(max_steps=100), backend
        )
        assert outcome == Exceptional(TIMEOUT)
        assert machine.stats.steps == 101
        assert governor.trip.reason == "steps"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_allocation_cap_delivers_heap_overflow(self, backend):
        outcome, _, governor = _governed(
            FIB, GovernorLimits(max_allocations=50), backend
        )
        assert outcome == Exceptional(HEAP_OVERFLOW)
        assert governor.trip.reason == "allocations"
        assert governor.trip.exc == "HeapOverflow"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deadline_delivers_timeout(self, backend):
        clock = SteppingClock(per_read=0.01)
        outcome, _, governor = _governed(
            FIB,
            GovernorLimits(deadline_seconds=0.05),
            backend,
            clock=clock,
        )
        assert outcome == Exceptional(TIMEOUT)
        assert governor.trip.reason == "deadline"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unreached_limits_leave_outcome_and_counters_alone(
        self, backend
    ):
        bare = Machine(backend=backend)
        base = observe(
            compile_expr(FIB), env=machine_env(bare), machine=bare
        )
        outcome, machine, governor = _governed(
            FIB,
            GovernorLimits(
                max_steps=10**9,
                max_allocations=10**9,
                deadline_seconds=10**9,
            ),
            backend,
        )
        assert outcome == base
        assert not governor.tripped
        assert (
            machine.stats.snapshot().as_dict()
            == bare.stats.snapshot().as_dict()
        )

    def test_trip_is_recorded_with_machine_state(self):
        _, _, governor = _governed(FIB, GovernorLimits(max_steps=100))
        trip = governor.trip
        assert trip.step == 101
        assert trip.allocations >= 0
        assert trip.exc == "Timeout"

    def test_limits_fire_at_most_once(self):
        # One-shot: after the trip, poll never fires that limit again.
        _, machine, governor = _governed(
            FIB, GovernorLimits(max_steps=100)
        )
        assert governor.poll(machine) is None
        assert len(governor.trips) == 1

    def test_steps_identical_across_backends(self):
        outcomes = set()
        steps = set()
        for backend in BACKENDS:
            outcome, machine, _ = _governed(
                FIB, GovernorLimits(max_steps=137), backend
            )
            outcomes.add(str(outcome))
            steps.add(machine.stats.steps)
        assert len(outcomes) == 1
        assert len(steps) == 1


class TestDeadlineInsideCatch:
    """The graceful-degradation edge case: the deadline fires while a
    ``catchIO`` body runs; the handler catches the ``Timeout`` (one-shot
    delivery lets it run) and the request still produces a value."""

    SOURCE = (
        "let { loop = \\x -> loop x } in "
        "catchIO (returnIO (loop 1)) (\\e -> returnIO 99)"
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_handler_recovers_from_deadline(self, backend):
        clock = SteppingClock(per_read=0.001)
        machine = Machine(backend=backend)
        governor = ResourceGovernor(
            GovernorLimits(deadline_seconds=0.05), clock=clock
        )
        machine.attach_governor(governor)
        governor.start()
        env = machine_env(machine)
        executor = IOExecutor(machine=machine)
        result = executor.run_cell(
            Cell(compile_expr(self.SOURCE), env)
        )
        assert governor.trip.reason == "deadline"
        assert result.status == "ok"
        assert show_value(result.value, machine) == "99"


class TestAllocCapDuringMemoisedReRaise:
    """The allocation cap trips while a memoised raise is being
    re-forced: the governor's ``HeapOverflow`` must win cleanly (or the
    memoised member must re-raise unchanged) — never a torn value."""

    SOURCE = (
        "let { bad = 1 `div` 0 } in "
        "bindIO (getException bad) "
        "(\\r1 -> getException (sum [1, 2, 3, 4, 5] + bad))"
    )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_heap_overflow_wins_during_re_raise(self, backend):
        # First pin down how many allocations the first getException
        # needs, then cap just above it so the governor trips during
        # the second (re-raising) evaluation.
        probe = Machine(backend=backend)
        env = machine_env(probe)
        IOExecutor(machine=probe).run_cell(
            Cell(compile_expr(self.SOURCE), env)
        )
        total = probe.stats.allocations

        machine = Machine(backend=backend)
        governor = ResourceGovernor(
            GovernorLimits(max_allocations=total - 2)
        )
        machine.attach_governor(governor)
        governor.start()
        env = machine_env(machine)
        result = IOExecutor(machine=machine).run_cell(
            Cell(compile_expr(self.SOURCE), env)
        )
        # getException converts the interrupt to Bad HeapOverflow; the
        # program still completes with a well-formed value.
        assert result.status == "ok"
        assert governor.trip.reason == "allocations"
        rendered = show_value(result.value, machine)
        assert "HeapOverflow" in rendered

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_memoised_raise_survives_the_interrupt(self, backend):
        # After an alloc-cap trip, re-forcing the memoised cell still
        # re-raises the original member — no corruption.
        source = (
            "let { bad = 1 `div` 0 } in "
            "bindIO (getException bad) (\\r1 -> getException bad)"
        )
        machine = Machine(backend=backend)
        governor = ResourceGovernor(GovernorLimits(max_allocations=10**9))
        machine.attach_governor(governor)
        governor.start()
        env = machine_env(machine)
        result = IOExecutor(machine=machine).run_cell(
            Cell(compile_expr(source), env)
        )
        assert result.status == "ok"
        assert "DivideByZero" in show_value(result.value, machine)


class TestFirstAndLastStepInterrupts:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupt_on_first_step(self, backend):
        machine = Machine(event_plan={1: CONTROL_C}, backend=backend)
        outcome = observe(
            compile_expr(FIB), env=machine_env(machine), machine=machine
        )
        assert outcome == Exceptional(CONTROL_C)
        assert machine.stats.steps == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupt_on_last_step(self, backend):
        bare = Machine(backend=backend)
        base = observe(
            compile_expr(FIB), env=machine_env(bare), machine=bare
        )
        assert isinstance(base, Normal)
        last = bare.stats.steps
        machine = Machine(event_plan={last: CONTROL_C}, backend=backend)
        outcome = observe(
            compile_expr(FIB), env=machine_env(machine), machine=machine
        )
        assert outcome == Exceptional(CONTROL_C)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupt_one_past_the_end_never_fires(self, backend):
        bare = Machine(backend=backend)
        base = observe(
            compile_expr(FIB), env=machine_env(bare), machine=bare
        )
        machine = Machine(
            event_plan={bare.stats.steps + 1: CONTROL_C}, backend=backend
        )
        outcome = observe(
            compile_expr(FIB), env=machine_env(machine), machine=machine
        )
        assert outcome == base


class TestDeadlineStride:
    def test_deadline_checked_on_stride_boundaries_only(self):
        clock = FakeClock()
        governor = ResourceGovernor(
            GovernorLimits(deadline_seconds=1.0), clock=clock
        )
        governor.start()
        clock.advance(5.0)  # way past the deadline

        class _Stats:
            steps = DEADLINE_STRIDE + 1
            allocations = 0

        class _M:
            stats = _Stats()

        # Off-stride step: not checked.
        assert governor.poll(_M()) is None
        _Stats.steps = DEADLINE_STRIDE * 2
        assert governor.poll(_M()) == TIMEOUT
