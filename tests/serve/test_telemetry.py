"""Service telemetry: trace ids on every response (success and error
paths), resolvable admission→render span trees, exact histogram
accounting against ``requests_total``, cross-backend determinism of
the latency histogram under an injectable clock, and the
pay-as-you-go contract of ``--no-telemetry``."""

import json

import pytest

from repro.obs.sinks import read_trace
from repro.obs.telemetry import (
    histogram_stats,
    parse_exposition,
    percentile_from_counts,
)
from repro.serve import EvalService, ServiceConfig

LOOP = "let { loop = \\x -> loop x } in loop 1"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SteppingClock:
    """Every read advances by a fixed amount — the durations a service
    computes become a pure function of the clock-read *sequence*."""

    def __init__(self, per_read: float = 0.001) -> None:
        self.now = 0.0
        self.per_read = per_read

    def __call__(self) -> float:
        self.now += self.per_read
        return self.now


def _service(clock=None, **overrides):
    config = ServiceConfig(**overrides)
    return EvalService(
        config,
        clock=clock if clock is not None else FakeClock(),
        sleep=lambda s: None,
    )


class TestTraceIds:
    def test_every_success_body_carries_resolvable_ids(self):
        service = _service()
        status, body, _ = service.handle({"expr": "1 + 2"})
        assert status == 200
        assert body["request_id"] == 1
        assert body["trace_id"] == "0000000000000001"
        trace = service.get_trace(body["trace_id"])
        assert trace is not None
        assert trace.request_id == 1

    def test_ids_are_deterministic_across_services(self):
        """Two services fed the same request sequence mint identical
        ids — the property that keeps byte-identical parity suites
        meaningful with ids in the bodies."""
        requests = [{"expr": "1 + 2"}, {"expr": "("}, {"expr": "3 * 3"}]
        first, second = _service(), _service()
        for request in requests:
            body_a = first.handle(request)[1]
            body_b = second.handle(request)[1]
            assert body_a["trace_id"] == body_b["trace_id"]
            assert body_a["request_id"] == body_b["request_id"]

    def test_single_request_span_taxonomy(self):
        service = _service(warm=True)
        _, body, _ = service.handle({"expr": "1 + 2"})
        trace = service.get_trace(body["trace_id"])
        names = trace.span_names()
        assert names[0] == "request"
        for stage in (
            "admission",
            "breaker",
            "cache-lookup",
            "attempt",
            "machine-run",
            "render",
        ):
            assert stage in names, names
        assert "fork" in names or "cold-build" in names
        run = trace.find("machine-run")
        attempt = trace.find("attempt")
        assert run in attempt.children
        assert attempt.attrs["number"] == 1
        assert attempt.attrs["kind"] == "value"
        assert attempt.attrs["steps"] == body["stats"]["steps"]

    def test_cold_service_traces_cold_build(self):
        service = _service(warm=False)
        _, body, _ = service.handle({"expr": "1 + 2"})
        trace = service.get_trace(body["trace_id"])
        assert "cold-build" in trace.span_names()
        assert "fork" not in trace.span_names()

    def test_exceptional_attempt_annotates_exc(self):
        service = _service()
        _, body, _ = service.handle({"expr": "1 `div` 0"})
        assert body["status"] == "exceptional"
        trace = service.get_trace(body["trace_id"])
        assert trace.find("attempt").attrs["exc"] == body["exc"]


class TestErrorPathIds:
    def test_parse_error_carries_ids(self):
        service = _service()
        status, body, _ = service.handle({"expr": "(("})
        assert status == 400
        assert body["status"] == "error"
        assert body["request_id"] == 1
        trace = service.get_trace(body["trace_id"])
        assert trace.find("cache-lookup") is not None

    def test_bad_request_carries_ids(self):
        service = _service()
        status, body, _ = service.handle({"nope": 1})
        assert status == 400
        assert "trace_id" in body and "request_id" in body
        assert service.get_trace(body["trace_id"]) is not None

    def test_queue_full_rejection_carries_ids(self):
        service = _service(max_concurrency=1, queue_depth=0)
        assert service._admission.acquire(blocking=False)
        status, body, _ = service.handle({"expr": "1 + 1"})
        service._admission.release()
        assert status == 429
        assert body["reason"] == "queue-full"
        trace = service.get_trace(body["trace_id"])
        assert trace.root.attrs["rejected"] == "queue-full"
        assert "admission" in trace.span_names()

    def test_circuit_open_rejection_carries_ids(self):
        service = _service(
            max_steps=1_000,
            deadline_seconds=None,
            breaker_threshold=1,
        )
        service.handle({"expr": LOOP})
        assert service.breaker.state == "open"
        status, body, _ = service.handle({"expr": "1 + 1"})
        assert status == 503
        assert body["reason"] == "circuit-open"
        assert service.get_trace(body["trace_id"]) is not None


class TestBatchTraces:
    def test_envelope_and_children_link_both_ways(self):
        service = _service()
        _, body, _ = service.handle(
            {"programs": [{"expr": "1 + 1"}, {"expr": "2 + 2"}]}
        )
        assert body["status"] == "batch"
        envelope = service.get_trace(body["trace_id"])
        child_ids = envelope.root.attrs["children"]
        assert [r["trace_id"] for r in body["results"]] == child_ids
        for child_id in child_ids:
            child = service.get_trace(child_id)
            assert child.parent == body["trace_id"]
            assert "machine-run" in child.span_names()

    def test_oversized_batch_rejection_carries_ids(self):
        service = _service(max_batch=1)
        status, body, _ = service.handle(
            {"programs": [{"expr": "1"}, {"expr": "2"}]}
        )
        assert status == 400
        assert body["reason"] == "batch-too-large"
        assert "trace_id" in body and "request_id" in body


class TestHistogramAccounting:
    def test_request_histogram_count_equals_requests_total(self):
        """The headline invariant: one ``repro_request_seconds``
        observation per served program — parse errors included,
        rejections and batch envelopes excluded — exactly matching
        ``requests_total``."""
        service = _service()
        service.handle({"expr": "1 + 2"})
        service.handle({"expr": "(("})  # parse error: still a request
        service.handle({"programs": [{"expr": "1"}, {"expr": "2"}]})
        service.handle({"bad": "shape"})  # rejected before serving
        families = parse_exposition(service.metrics_text())
        stats = histogram_stats(families, "repro_request_seconds")
        assert stats["count"] == 4
        assert service.health()["requests_total"] == 4

    def test_status_counter_matches_health(self):
        service = _service()
        service.handle({"expr": "1 + 2"})
        service.handle({"expr": "(("})
        families = parse_exposition(service.metrics_text())
        samples = {
            labels["status"]: value
            for name, labels, value in families["repro_requests_total"][
                "samples"
            ]
            if labels
        }
        assert samples == {
            k: float(v)
            for k, v in service.requests_by_status.items()
        }

    def test_stage_histogram_observes_root_children(self):
        service = _service(clock=SteppingClock())
        service.handle({"expr": "1 + 2"})
        families = parse_exposition(service.metrics_text())
        stage_samples = families["repro_stage_seconds"]["samples"]
        stages = {
            labels["stage"]
            for _name, labels, _v in stage_samples
            if "stage" in labels
        }
        assert {"admission", "breaker", "cache-lookup", "render"} <= stages

    def test_machine_event_totals_flow_through(self):
        service = _service()
        _, body, _ = service.handle({"expr": "1 + 2"})
        families = parse_exposition(service.metrics_text())
        steps = [
            value
            for _n, labels, value in families[
                "repro_machine_events_total"
            ]["samples"]
            if labels.get("event") == "step"
        ]
        assert steps and steps[0] == float(body["stats"]["steps"])

    def test_governor_trip_counter(self):
        service = _service(max_steps=1_000, deadline_seconds=None)
        service.handle({"expr": LOOP})
        families = parse_exposition(service.metrics_text())
        trips = {
            labels.get("reason"): value
            for _n, labels, value in families[
                "repro_governor_trips_total"
            ]["samples"]
            if labels
        }
        assert trips.get("steps") == 1.0


class TestHistogramDeterminism:
    """Under a stepping clock, latency histograms are a pure function
    of the clock-read sequence — which (by the exact cross-backend
    counter parity E13/E18 prove) is identical on every backend."""

    @staticmethod
    def _run(backend: str):
        service = _service(
            clock=SteppingClock(per_read=0.001), backend=backend
        )
        for source in ("1 + 2", "sum (enumFromTo 1 20)", "(("):
            service.handle({"expr": source})
        families = parse_exposition(service.metrics_text())
        stats = histogram_stats(families, "repro_request_seconds")
        return stats

    def test_identical_buckets_and_percentiles_across_backends(self):
        baseline = self._run("ast")
        for backend in ("compiled", "super"):
            other = self._run(backend)
            assert other["counts"] == baseline["counts"], backend
            for q in (0.5, 0.95, 0.99):
                assert percentile_from_counts(
                    other["bounds"], other["counts"], q
                ) == percentile_from_counts(
                    baseline["bounds"], baseline["counts"], q
                ), backend

    def test_same_backend_reruns_are_byte_identical(self):
        a = _service(clock=SteppingClock())
        b = _service(clock=SteppingClock())
        for service in (a, b):
            service.handle({"expr": "1 + 2"})
            service.handle({"expr": "3 * 3"})
        assert a.metrics_text() == b.metrics_text()


class TestTelemetryOff:
    def test_no_metrics_no_traces_same_bodies(self):
        on = _service(telemetry=True)
        off = _service(telemetry=False)
        bodies = []
        for service in (on, off):
            _, body, _ = service.handle({"expr": "1 + 2"})
            bodies.append(body)
        assert json.dumps(bodies[0], sort_keys=True) == json.dumps(
            bodies[1], sort_keys=True
        )
        assert off.metrics_text() == ""
        assert off.get_trace(bodies[1]["trace_id"]) is None
        assert off.health()["telemetry"]["enabled"] is False

    def test_off_still_mints_ids(self):
        service = _service(telemetry=False)
        _, body, _ = service.handle({"expr": "1"})
        assert body["trace_id"] == "0000000000000001"


class TestTraceRingAndLog:
    def test_ring_capacity_bounds_retention(self):
        service = _service(trace_ring=2)
        ids = []
        for n in range(3):
            _, body, _ = service.handle({"expr": f"{n} + 1"})
            ids.append(body["trace_id"])
        assert service.get_trace(ids[0]) is None
        assert service.get_trace(ids[1]) is not None
        assert service.get_trace(ids[2]) is not None
        health = service.health()["telemetry"]
        assert health["traces_recorded"] == 3
        assert health["traces_retained"] == 2
        assert health["trace_ring"] == 2

    def test_trace_log_writes_replayable_jsonl(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        service = _service(trace_log=str(path))
        service.handle({"expr": "1 + 2"})
        service.handle({"expr": "2 + 3"})
        service.close()
        events = list(read_trace(str(path)))
        assert len(events) == 2
        assert all(e["event"] == "trace" for e in events)
        assert events[0]["spans"]["name"] == "request"

    def test_trace_log_lines_complete_without_close(self, tmp_path):
        """The sink is line-buffered: a killed daemon leaves complete
        JSONL lines, not a truncated record."""
        path = tmp_path / "traces.jsonl"
        service = _service(trace_log=str(path))
        service.handle({"expr": "1 + 2"})
        raw = path.read_text()
        assert raw.endswith("\n")
        json.loads(raw.splitlines()[0])


class TestHealthTelemetryBlock:
    def test_reports_ring_state(self):
        service = _service()
        block = service.health()["telemetry"]
        assert block == {
            "enabled": True,
            "trace_ring": 256,
            "traces_recorded": 0,
            "traces_retained": 0,
        }
