"""The content-addressed program cache (repro.serve.cache).

Pins the properties docs/SERVING.md advertises: sha256 × backend ×
strategy keying, LRU bounding with oldest-first eviction, automatic
invalidation on source edits (a changed source is a different key),
negative caching of parse errors, and memoised lazy stages (compile,
typecheck) that run at most once per entry.
"""

import pytest

from repro.machine.snapshot import shared_snapshot
from repro.serve.cache import CachedProgram, ProgramCache, source_digest


def _cache(capacity=4, backend="ast", strategy_key="left-to-right"):
    return ProgramCache(
        backend=backend, strategy_key=strategy_key, capacity=capacity
    )


class TestKeying:
    def test_key_is_digest_backend_strategy(self):
        cache = _cache()
        key = cache.key_for("1 + 2")
        assert key == (
            source_digest("1 + 2"),
            "ast",
            "left-to-right",
        )

    def test_edited_source_is_a_different_key(self):
        """Content addressing *is* the invalidation story: the old
        artifact can never be served for new source."""
        cache = _cache()
        before = cache.lookup("1 + 2")
        after = cache.lookup("1 + 3")
        assert before is not after
        assert before.key != after.key
        # and the original is still served from cache, unchanged
        assert cache.lookup("1 + 2") is before

    def test_distinct_backends_do_not_share_entries(self):
        ast = _cache(backend="ast")
        compiled = _cache(backend="compiled")
        assert ast.key_for("1") != compiled.key_for("1")


class TestLRU:
    def test_capacity_is_enforced(self):
        cache = _cache(capacity=3)
        for i in range(10):
            cache.lookup(f"1 + {i}")
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 7

    def test_eviction_is_oldest_first(self):
        cache = _cache(capacity=2)
        cache.lookup("1")
        cache.lookup("2")
        cache.lookup("3")  # evicts "1"
        assert "1" not in cache
        assert "2" in cache and "3" in cache

    def test_hit_refreshes_recency(self):
        cache = _cache(capacity=2)
        cache.lookup("1")
        cache.lookup("2")
        cache.lookup("1")  # "2" is now the LRU entry
        cache.lookup("3")  # evicts "2", not "1"
        assert "1" in cache
        assert "2" not in cache

    def test_hit_and_miss_counters(self):
        cache = _cache()
        cache.lookup("1 + 2")
        cache.lookup("1 + 2")
        cache.lookup("1 + 2")
        cache.lookup("3 + 4")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 2
        assert stats["entries"] == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            _cache(capacity=0)


class TestInvalidation:
    def test_explicit_invalidate(self):
        cache = _cache()
        first = cache.lookup("head Nil")
        assert cache.invalidate("head Nil") is True
        assert "head Nil" not in cache
        assert cache.invalidate("head Nil") is False
        assert cache.lookup("head Nil") is not first
        assert cache.stats()["invalidations"] == 1

    def test_clear_empties_and_counts(self):
        cache = _cache()
        cache.lookup("1")
        cache.lookup("2")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 2


class TestNegativeCaching:
    def test_parse_error_is_cached(self):
        cache = _cache()
        entry = cache.lookup("let { = } in")
        assert entry.error is not None
        assert entry.expr is None
        assert cache.lookup("let { = } in") is entry
        assert cache.stats()["hits"] == 1


class TestCachedProgram:
    def test_typecheck_memoised(self):
        entry = _cache().lookup("1 + 2")
        verdict = entry.typecheck()
        assert verdict == ("ok", "Int")
        assert entry.typecheck() is verdict

    def test_typecheck_reports_type_errors(self):
        entry = _cache().lookup('1 + "two"')
        status, message = entry.typecheck()
        assert status == "type-error"
        assert message

    @pytest.mark.parametrize("backend", ["compiled", "super"])
    def test_code_compiles_once_and_is_shared_across_forks(self, backend):
        """The lowered artifact bakes the snapshot's frozen cells in,
        so one compilation serves every fork of that snapshot — on the
        compiled backend (closure trees) and the super backend (fused
        frames) alike."""
        snapshot = shared_snapshot(backend=backend)
        cache = ProgramCache(
            backend=backend,
            strategy_key=snapshot.strategy_key(),
        )
        entry = cache.lookup("sum (enumFromTo 1 10)")
        m1, _ = snapshot.fork()
        m2, _ = snapshot.fork()
        code = entry.code(snapshot.env, m1.strategy)
        assert entry.code(snapshot.env, m2.strategy) is code
        assert str(m1.eval(code, ())) == str(m2.eval(code, ()))

    def test_entry_shape(self):
        entry = CachedProgram(("k",), "1", object(), None)
        assert entry.source == "1"
        assert entry.error is None
