"""``repro top``: the pure frame renderer against canned payloads and
the polling loop with injected fetch/clock/sleep — no live socket."""

import io

from repro.obs.telemetry import parse_exposition
from repro.serve import EvalService, ServiceConfig
from repro.serve.top import CLEAR, render_dashboard, run_top


def _sample_service():
    service = EvalService(ServiceConfig())
    service.handle({"expr": "1 + 2"})
    service.handle({"expr": "(("})
    service.handle({"programs": [{"expr": "1"}, {"expr": "2"}]})
    return service


def _payloads(service):
    return service.health(), parse_exposition(service.metrics_text())


class TestRenderDashboard:
    def test_frame_carries_the_headline_numbers(self):
        health, families = _payloads(_sample_service())
        frame = render_dashboard(
            health, families, url="http://x:1"
        )
        assert "repro top — http://x:1" in frame
        assert "total 4" in frame  # 2 singles + 2 batch programs
        assert "latency" in frame and "p95" in frame
        assert "stages p50" in frame
        assert "breaker    closed" in frame
        assert "batches 1 (programs 2)" in frame
        assert "traces     recorded 5" in frame

    def test_rate_derives_from_consecutive_samples(self):
        service = _sample_service()
        health, families = _payloads(service)
        old = dict(health)
        old["requests_total"] = health["requests_total"] - 4
        frame = render_dashboard(
            health, families, previous=(10.0, old), now=12.0
        )
        assert "(+2.0/s)" in frame

    def test_telemetry_off_is_visible(self):
        service = EvalService(ServiceConfig(telemetry=False))
        service.handle({"expr": "1"})
        frame = render_dashboard(*_payloads(service))
        assert "telemetry OFF" in frame
        # no exposition -> no latency/stage lines, but no crash either
        assert "latency" not in frame

    def test_cold_service_reports_cache_off(self):
        service = EvalService(ServiceConfig(warm=False))
        service.handle({"expr": "1"})
        frame = render_dashboard(*_payloads(service))
        assert "cache      off (cold path)" in frame


class TestRunTop:
    def test_bounded_iterations_and_clear(self):
        service = _sample_service()
        out = io.StringIO()
        calls = []

        def fetch(url):
            calls.append(url)
            return _payloads(service)

        code = run_top(
            "http://svc",
            interval=1.0,
            iterations=3,
            fetch=fetch,
            clock=iter(range(100)).__next__,
            sleep=lambda s: None,
            out=out,
        )
        assert code == 0
        assert len(calls) == 3
        assert out.getvalue().count(CLEAR) == 3
        assert "repro top — http://svc" in out.getvalue()

    def test_no_clear_mode(self):
        service = _sample_service()
        out = io.StringIO()
        run_top(
            "http://svc",
            iterations=1,
            clear=False,
            fetch=lambda url: _payloads(service),
            clock=lambda: 0.0,
            sleep=lambda s: None,
            out=out,
        )
        assert CLEAR not in out.getvalue()

    def test_unreachable_service_returns_1(self):
        out = io.StringIO()

        def fetch(url):
            raise OSError("connection refused")

        code = run_top(
            "http://down",
            iterations=2,
            fetch=fetch,
            clock=lambda: 0.0,
            sleep=lambda s: None,
            out=out,
        )
        assert code == 1
        assert "unreachable" in out.getvalue()
