"""EvalService behaviour: response schemas, admission control, the
circuit breaker's full open/probe/close cycle, and retry exhaustion —
all deterministic (injected clocks, no real sleeping)."""

import pytest

from repro.serve import EvalService, ServiceConfig
from repro.serve.schema import RESPONSE_SCHEMAS, schema_sets

LOOP = "let { loop = \\x -> loop x } in loop 1"
FIB = (
    "let { fib = \\n -> if n < 2 then n else fib (n - 1) + fib (n - 2) } "
    "in fib 10"
)


def assert_in_schema(body):
    """Every produced body must stay inside ``required | optional`` of
    its status — with the field sets read from repro.serve.schema, the
    same source of truth that renders docs/ROBUSTNESS.md and --help."""
    status = body.get("status")
    assert status in RESPONSE_SCHEMAS, f"unknown status {status!r}"
    required, optional = schema_sets(status)
    keys = set(body)
    missing = required - keys
    extra = keys - required - optional
    assert not missing, f"{status}: missing {missing}"
    assert not extra, f"{status}: unexpected {extra}"
    if status == "batch":
        for item in body["results"]:
            assert_in_schema(item)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SteppingClock:
    def __init__(self, per_read: float = 0.001) -> None:
        self.now = 0.0
        self.per_read = per_read

    def __call__(self) -> float:
        self.now += self.per_read
        return self.now


def _service(clock=None, **overrides):
    config = ServiceConfig(**overrides)
    return EvalService(
        config,
        clock=clock if clock is not None else FakeClock(),
        sleep=lambda s: None,
    )


class TestSchemas:
    @pytest.mark.parametrize("backend", ["ast", "compiled", "super"])
    def test_value(self, backend):
        service = _service(backend=backend)
        status, body, _ = service.handle({"expr": "1 + 2 * 3"})
        assert status == 200
        assert body["status"] == "value"
        assert body["value"] == "7"
        assert body["attempts"] == 1
        assert body["stats"]["steps"] > 0
        assert_in_schema(body)

    def test_io_value_carries_stdout(self):
        service = _service()
        status, body, _ = service.handle({"expr": 'putStr "hi"'})
        assert status == 200
        assert body["status"] == "value"
        assert body["stdout"] == "hi"
        assert_in_schema(body)

    @pytest.mark.parametrize("backend", ["ast", "compiled", "super"])
    def test_exceptional(self, backend):
        service = _service(backend=backend)
        status, body, _ = service.handle({"expr": "1 `div` 0"})
        assert status == 200
        assert body["status"] == "exceptional"
        assert body["exc"] == "DivideByZero"
        assert body["synchronous"] is True
        assert_in_schema(body)

    def test_resource_exhausted_steps(self):
        service = _service(max_steps=1_000, deadline_seconds=None)
        status, body, _ = service.handle({"expr": LOOP})
        assert status == 200
        assert body["status"] == "resource-exhausted"
        assert body["reason"] == "steps"
        assert body["exc"] == "Timeout"
        assert body["trip"]["reason"] == "steps"
        assert_in_schema(body)

    def test_resource_exhausted_allocations(self):
        service = _service(
            max_allocations=100, deadline_seconds=None, max_steps=None
        )
        status, body, _ = service.handle({"expr": LOOP})
        assert status == 200
        assert body["reason"] == "allocations"
        assert body["exc"] == "HeapOverflow"
        assert_in_schema(body)

    def test_parse_error_is_a_400(self):
        service = _service()
        status, body, _ = service.handle({"expr": "let { = "})
        assert status == 400
        assert body["status"] == "error"
        assert body["reason"] == "parse-error"
        assert_in_schema(body)

    def test_malformed_payload_is_a_400(self):
        service = _service()
        for payload in (None, [], {}, {"expr": 42}):
            status, body, _ = service.handle(payload)
            assert status == 400
            assert body["reason"] == "bad-request"
            assert_in_schema(body)

    def test_events_ride_along_when_collected(self):
        service = _service(collect_events=True)
        _, body, _ = service.handle({"expr": FIB})
        assert body["events"]["step"] == body["stats"]["steps"]

    def test_events_absent_when_disabled(self):
        service = _service(collect_events=False)
        _, body, _ = service.handle({"expr": FIB})
        assert "events" not in body


class TestIsolation:
    def test_requests_do_not_share_machine_state(self):
        service = _service()
        _, first, _ = service.handle({"expr": FIB})
        _, second, _ = service.handle({"expr": FIB})
        assert first["stats"] == second["stats"]
        assert first["value"] == second["value"]

    def test_exceptional_request_does_not_poison_the_next(self):
        service = _service()
        service.handle({"expr": "1 `div` 0"})
        _, body, _ = service.handle({"expr": "2 + 2"})
        assert body["status"] == "value"
        assert body["value"] == "4"


class TestAdmission:
    def test_queue_full_rejects_with_429(self):
        service = _service(max_concurrency=1, queue_depth=0)
        # Fill every admission slot (concurrency + queue) by hand —
        # equivalent to a request occupying the machine.
        assert service._admission.acquire(blocking=False)
        status, body, retry_after = service.handle({"expr": "1 + 1"})
        assert status == 429
        assert body["status"] == "rejected"
        assert body["reason"] == "queue-full"
        assert retry_after > 0
        assert_in_schema(body)
        service._admission.release()
        # Capacity restored: the next request evaluates.
        status, body, _ = service.handle({"expr": "1 + 1"})
        assert status == 200
        assert body["value"] == "2"

    def test_rejections_are_counted(self):
        service = _service(max_concurrency=1, queue_depth=0)
        assert service._admission.acquire(blocking=False)
        service.handle({"expr": "1"})
        service._admission.release()
        assert service.requests_by_status["rejected"] == 1


class TestCircuitBreaker:
    def test_full_open_probe_close_cycle(self):
        clock = FakeClock()
        service = _service(
            clock=clock,
            max_steps=1_000,
            deadline_seconds=None,
            breaker_threshold=2,
            breaker_reset_seconds=5.0,
        )
        # Two deterministic resource-exhausted failures open it.
        for _ in range(2):
            status, body, _ = service.handle({"expr": LOOP})
            assert status == 200
            assert body["status"] == "resource-exhausted"
        assert service.breaker.state == "open"

        # Open: fast rejection with Retry-After.
        status, body, retry_after = service.handle({"expr": "1 + 1"})
        assert status == 503
        assert body["reason"] == "circuit-open"
        assert retry_after == pytest.approx(5.0)
        assert_in_schema(body)

        # After the reset window a probe is admitted; success closes.
        clock.advance(5.5)
        status, body, _ = service.handle({"expr": "1 + 1"})
        assert status == 200
        assert body["value"] == "2"
        assert service.breaker.state == "closed"
        states = [s for s, _ in service.breaker.transitions]
        assert states == ["open", "half-open", "closed"]

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        service = _service(
            clock=clock,
            max_steps=1_000,
            deadline_seconds=None,
            breaker_threshold=1,
            breaker_reset_seconds=5.0,
        )
        service.handle({"expr": LOOP})
        assert service.breaker.state == "open"
        clock.advance(5.5)
        service.handle({"expr": LOOP})  # the probe also exhausts
        assert service.breaker.state == "open"

    def test_exceptional_outcomes_do_not_open_the_breaker(self):
        service = _service(breaker_threshold=1)
        for _ in range(3):
            status, body, _ = service.handle({"expr": "1 `div` 0"})
            assert status == 200
            assert body["status"] == "exceptional"
        assert service.breaker.state == "closed"

    def test_parse_errors_do_not_open_the_breaker(self):
        service = _service(breaker_threshold=1)
        for _ in range(3):
            service.handle({"expr": "let { = "})
        assert service.breaker.state == "closed"


class TestRetries:
    def test_deadline_trips_are_retried_to_exhaustion(self):
        # Every read of the clock creeps forward, so each attempt blows
        # its deadline deterministically; the policy retries the
        # transient failure until the budget runs out and the service
        # reports a structured failure with the attempt count.
        service = _service(
            clock=SteppingClock(per_read=0.01),
            deadline_seconds=0.05,
            max_steps=None,
            max_allocations=None,
            retries=2,
        )
        status, body, retry_after = service.handle({"expr": LOOP})
        assert status == 200
        assert body["status"] == "resource-exhausted"
        assert body["reason"] == "deadline"
        assert body["attempts"] == 3
        assert body["retry_after"] > 0
        assert retry_after == body["retry_after"]
        assert_in_schema(body)
        assert service.retries_performed == 2

    def test_deterministic_outcomes_are_never_retried(self):
        service = _service(
            max_steps=1_000, deadline_seconds=None, retries=3
        )
        _, body, _ = service.handle({"expr": LOOP})
        assert body["reason"] == "steps"
        assert body["attempts"] == 1
        _, body, _ = service.handle({"expr": "1 `div` 0"})
        assert body["attempts"] == 1


class TestChaosMode:
    def test_seeded_faults_are_injected_and_reported(self):
        service = _service(
            fault_seed=1234, fault_horizon=500, retries=0
        )
        saw_injection = False
        for n in range(12):
            status, body, _ = service.handle({"expr": FIB})
            assert status == 200
            assert_in_schema(body)
            if body.get("faults_injected"):
                saw_injection = True
        assert saw_injection
        assert service.faults_injected > 0

    def test_same_seed_same_faults(self):
        bodies = []
        for _ in range(2):
            service = _service(fault_seed=99, fault_horizon=500)
            _, body, _ = service.handle({"expr": FIB})
            bodies.append(body)
        assert bodies[0] == bodies[1]


class TestBatch:
    def test_batch_of_sources_evaluates_in_order(self):
        service = _service()
        status, body, retry_after = service.handle(
            {"programs": ["1 + 1", "1 `div` 0", "head Nil"]}
        )
        assert status == 200
        assert retry_after is None
        assert body["status"] == "batch"
        assert body["count"] == 3
        assert [r["status"] for r in body["results"]] == [
            "value",
            "exceptional",
            "exceptional",
        ]
        assert body["results"][0]["value"] == "2"
        assert_in_schema(body)

    def test_batch_items_may_be_request_objects(self):
        service = _service()
        _, body, _ = service.handle(
            {
                "programs": [
                    {"expr": 'putStr "a"', "stdin": ""},
                    {"expr": '1 + "x"', "typecheck": True},
                ]
            }
        )
        assert body["results"][0]["stdout"] == "a"
        assert body["results"][1]["reason"] == "type-error"
        assert_in_schema(body)

    def test_each_program_gets_its_own_governor(self):
        """A resource-exhausted program must not poison the rest of
        its batch — limits are per program, not per batch."""
        service = _service(max_steps=1_000, deadline_seconds=None)
        _, body, _ = service.handle({"programs": [LOOP, "2 + 2", LOOP]})
        assert [r["status"] for r in body["results"]] == [
            "resource-exhausted",
            "value",
            "resource-exhausted",
        ]
        assert body["results"][1]["value"] == "4"

    def test_oversized_batch_is_rejected(self):
        service = _service(max_batch=2)
        status, body, _ = service.handle({"programs": ["1", "2", "3"]})
        assert status == 400
        assert body["reason"] == "batch-too-large"
        assert_in_schema(body)

    def test_malformed_batches_are_400s(self):
        service = _service()
        for programs in ([], "1 + 1", [42], [{"expr": 7}]):
            status, body, _ = service.handle({"programs": programs})
            assert status == 400
            assert body["reason"] == "bad-request"
            assert_in_schema(body)

    def test_batch_counters(self):
        service = _service()
        service.handle({"programs": ["1", "2"]})
        service.handle({"programs": ["3"]})
        health = service.health()
        assert health["batches"] == {"total": 2, "programs": 3}

    def test_open_breaker_rejects_whole_batch(self):
        service = _service(
            max_steps=1_000, deadline_seconds=None, breaker_threshold=1
        )
        service.handle({"expr": LOOP})
        assert service.breaker.state == "open"
        status, body, _ = service.handle({"programs": ["1 + 1"]})
        assert status == 503
        assert body["reason"] == "circuit-open"


class TestWarmPath:
    @pytest.mark.parametrize("backend", ["ast", "compiled", "super"])
    def test_warm_and_cold_responses_are_byte_identical(self, backend):
        """The parity contract at the service level: only latency may
        distinguish the paths (docs/SERVING.md's soundness argument)."""
        warm = _service(backend=backend, warm=True)
        cold = _service(backend=backend, warm=False)
        for expr in (
            "sum (map (\\x -> x * x) (enumFromTo 1 10))",
            "1 `div` 0",
            "(1 `div` 0) + head Nil",
            'putStr "hello"',
        ):
            warm_status, warm_body, _ = warm.handle({"expr": expr})
            cold_status, cold_body, _ = cold.handle({"expr": expr})
            assert warm_status == cold_status
            assert warm_body == cold_body, expr

    def test_repeat_programs_hit_the_cache(self):
        service = _service()
        for _ in range(5):
            service.handle({"expr": FIB})
        cache = service.health()["cache"]
        assert cache["misses"] == 1
        assert cache["hits"] == 4
        assert cache["entries"] == 1

    def test_cold_service_has_no_cache(self):
        service = _service(warm=False)
        service.handle({"expr": "1 + 1"})
        health = service.health()
        assert health["warm"] is False
        assert health["cache"] is None

    def test_typecheck_gate_accepts_well_typed_programs(self):
        service = _service()
        status, body, _ = service.handle(
            {"expr": "1 + 2", "typecheck": True}
        )
        assert status == 200
        assert body["status"] == "value"

    def test_typecheck_gate_rejects_ill_typed_programs(self):
        service = _service()
        status, body, _ = service.handle(
            {"expr": '1 + "two"', "typecheck": True}
        )
        assert status == 400
        assert body["reason"] == "type-error"
        assert body["message"]
        assert_in_schema(body)
        assert service.breaker.state == "closed"


class TestHealth:
    def test_health_reports_counters_and_limits(self):
        service = _service(max_steps=1_000, deadline_seconds=None)
        service.handle({"expr": "1 + 1"})
        service.handle({"expr": "1 `div` 0"})
        service.handle({"expr": LOOP})
        health = service.health()
        assert health["status"] == "ok"
        assert health["requests_total"] == 3
        assert health["requests"] == {
            "exceptional": 1,
            "resource-exhausted": 1,
            "value": 1,
        }
        assert health["governor_trips"] == {"steps": 1}
        assert health["in_flight"] == 0
        assert health["events"]["step"] > 0
        assert health["limits"]["max_steps"] == 1_000
        assert "breaker" in health
