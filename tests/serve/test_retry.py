"""Unit tests for the resilience primitives (repro.serve.retry)."""

import pytest

from repro.serve.retry import (
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    OPEN,
    RetryPolicy,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_single_attempt_never_sleeps(self):
        sleeps = []
        policy = RetryPolicy(attempts=1, sleep=sleeps.append)
        result, attempts = policy.run(
            lambda i: f"try-{i}", retryable=lambda r: True
        )
        assert result == "try-1"
        assert attempts == 1
        assert sleeps == []

    def test_stops_early_on_non_retryable(self):
        calls = []
        policy = RetryPolicy(attempts=5, sleep=lambda s: None)
        result, attempts = policy.run(
            lambda i: calls.append(i) or "ok",
            retryable=lambda r: False,
        )
        assert calls == [1]
        assert attempts == 1

    def test_exhausts_budget_when_always_retryable(self):
        calls = []
        policy = RetryPolicy(attempts=3, sleep=lambda s: None)
        result, attempts = policy.run(
            lambda i: calls.append(i) or "fail",
            retryable=lambda r: True,
        )
        assert calls == [1, 2, 3]
        assert attempts == 3
        assert result == "fail"

    def test_backoff_is_seeded_and_deterministic(self):
        a = RetryPolicy(attempts=4, seed=42, sleep=lambda s: None)
        b = RetryPolicy(attempts=4, seed=42, sleep=lambda s: None)
        assert [a.backoff(n) for n in (1, 2, 3)] == [
            b.backoff(n) for n in (1, 2, 3)
        ]
        c = RetryPolicy(attempts=4, seed=43, sleep=lambda s: None)
        assert [a.backoff(n) for n in (1, 2, 3)] != [
            c.backoff(n) for n in (1, 2, 3)
        ]

    def test_backoff_respects_the_ceiling(self):
        policy = RetryPolicy(
            attempts=10,
            base_delay=0.1,
            multiplier=10.0,
            max_delay=0.5,
            seed=0,
            sleep=lambda s: None,
        )
        for n in range(1, 8):
            assert 0.0 <= policy.backoff(n) <= 0.5

    def test_delays_taken_are_recorded(self):
        policy = RetryPolicy(attempts=3, seed=1, sleep=lambda s: None)
        policy.run(lambda i: "fail", retryable=lambda r: True)
        assert len(policy.delays_taken) == 2

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestCircuitBreaker:
    def _breaker(self, threshold=3, reset=10.0):
        clock = FakeClock()
        return CircuitBreaker(
            threshold=threshold, reset_seconds=reset, clock=clock
        ), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self._breaker()
        assert breaker.state == CLOSED
        allowed, retry_after = breaker.allow()
        assert allowed
        assert retry_after == 0.0

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_breaker_fast_rejects_with_retry_after(self):
        breaker, clock = self._breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(10.0)
        clock.advance(4.0)
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(6.0)
        assert breaker.fast_rejections == 2

    def test_half_opens_after_reset_and_closes_on_success(self):
        breaker, clock = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.5)
        allowed, _ = breaker.allow()
        assert allowed
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        states = [s for s, _ in breaker.transitions]
        assert states == [OPEN, HALF_OPEN, CLOSED]

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.5)
        assert breaker.allow()[0]
        breaker.record_failure()
        assert breaker.state == OPEN
        # The clock restarted: still rejecting.
        assert not breaker.allow()[0]

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.5)
        assert breaker.allow()[0]  # the probe
        allowed, retry_after = breaker.allow()  # a second caller
        assert not allowed
        assert retry_after > 0

    def test_as_dict_reports_state_and_transitions(self):
        breaker, clock = self._breaker(threshold=1, reset=5.0)
        breaker.record_failure()
        data = breaker.as_dict()
        assert data["state"] == OPEN
        assert data["transitions"][0]["state"] == OPEN

    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
