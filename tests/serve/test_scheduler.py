"""The cooperative multi-tenant scheduler (`repro.serve.scheduler`).

Three layers: the bare scheduler (DRR fairness, priority order,
shutdown semantics) driven with hand-built slice runners; the service
integration (`--scheduler cooperative`) where the contract is
byte-identical response bodies vs the threaded mode, plus the new
tenant-quota admission and mid-slice §5.1 preemption paths; and the
telemetry surface (healthz scheduler block, tenant-labelled counters
with bounded cardinality).
"""

import threading
import time

import pytest

from repro.api import compile_expr
from repro.machine import Machine, observe
from repro.machine.slices import SliceRunner
from repro.prelude.loader import machine_env
from repro.serve.scheduler import (
    PRIORITIES,
    CooperativeScheduler,
    SchedulerHooks,
)
from repro.serve.service import EvalService, ServiceConfig

#: A few hundred steps of list work.
WORK = "sum (map (\\x -> x * x) (enumFromTo 1 12))"
#: Never terminates — the starvation/preemption antagonist.
SPIN = "let { w = \\u -> w u } in w ()"


def make_runner(source, *, backend="ast", fuel=2_000_000, started=None):
    """A slice runner over a fresh machine, test-grade: the gate is
    attached up front (``SliceRunner.for_machine``), so the first
    grant already slices."""
    machine = Machine(backend=backend, fuel=fuel)
    env = machine_env(machine)
    expr = compile_expr(source)

    def thunk():
        if started is not None:
            started.append(source)
        return observe(expr, env=env, machine=machine)

    return SliceRunner.for_machine(machine, thunk)


def coop_config(**overrides):
    base = dict(
        scheduler="cooperative",
        workers=2,
        slice_steps=500,
        max_concurrency=64,
        queue_depth=64,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestSchedulerCore:
    def test_completes_tasks_and_counts(self):
        sched = CooperativeScheduler(workers=2, slice_steps=100)
        try:
            tasks = [
                sched.submit("alice", "normal", make_runner(WORK))
                for _ in range(4)
            ]
            for task in tasks:
                assert task.wait(timeout=30.0)
            snap = sched.snapshot()
            assert snap["submitted"] == 4
            assert snap["completed"] == 4
            assert snap["slices"] >= 4
            assert snap["run_queue_depth"] == 0
        finally:
            sched.close()

    def test_light_tenant_not_starved_by_spinner(self):
        # One worker, a hot tenant spinning forever: DRR must still
        # cycle the rotation and run the light tenant's work.
        sched = CooperativeScheduler(workers=1, slice_steps=200)
        try:
            hot = sched.submit(
                "hog", "normal", make_runner(SPIN, fuel=50_000_000)
            )
            light = [
                sched.submit("light", "normal", make_runner(WORK))
                for _ in range(3)
            ]
            for task in light:
                assert task.wait(timeout=30.0), (
                    "light tenant starved behind a spinning tenant"
                )
            assert not hot.wait(timeout=0.0)
        finally:
            sched.close()

    def test_priority_orders_within_tenant(self):
        # Single worker busy on another tenant while one tenant queues
        # a batch task then an interactive one: the interactive task
        # must be granted its first slice first.
        started = []
        sched = CooperativeScheduler(workers=1, slice_steps=200)
        try:
            blocker = sched.submit(
                "other", "normal", make_runner(SPIN, fuel=50_000_000)
            )
            batch = sched.submit(
                "t", "batch", make_runner(WORK, started=started)
            )
            inter = sched.submit(
                "t",
                "interactive",
                make_runner(WORK, started=started),
            )
            assert batch.wait(timeout=30.0)
            assert inter.wait(timeout=30.0)
            assert inter.first_slice_at <= batch.first_slice_at
            assert not blocker.wait(timeout=0.0)
        finally:
            sched.close()

    def test_deficit_round_robin_interleaves_tenants(self):
        sched = CooperativeScheduler(workers=1, slice_steps=50)
        try:
            tasks = []
            for tenant in ("a", "b", "c"):
                for _ in range(3):
                    tasks.append(
                        sched.submit(tenant, "normal", make_runner(WORK))
                    )
            for task in tasks:
                assert task.wait(timeout=30.0)
            assert sched.snapshot()["completed"] == 9
        finally:
            sched.close()

    def test_submit_after_close_raises(self):
        sched = CooperativeScheduler(workers=1)
        sched.close()
        with pytest.raises(RuntimeError):
            sched.submit("t", "normal", make_runner(WORK))

    def test_unknown_priority_rejected(self):
        sched = CooperativeScheduler(workers=1)
        try:
            with pytest.raises(ValueError):
                sched.submit("t", "urgent", make_runner(WORK))
        finally:
            sched.close()

    def test_pause_accumulates_resume_drains(self):
        # pause() quiesces the workers without touching submission:
        # the run queue builds to exactly N, and resume() drains it.
        # This is the mechanism the nightly soak uses to prove 1000
        # evaluations really were in flight concurrently.
        sched = CooperativeScheduler(workers=2, slice_steps=100)
        try:
            sched.pause()
            tasks = [
                sched.submit(f"t{i % 3}", "normal", make_runner(WORK))
                for i in range(6)
            ]
            snap = sched.snapshot()
            assert snap["run_queue_depth"] == 6, snap
            assert snap["submitted"] == 6, snap
            assert snap["completed"] == 0, snap
            assert snap["slices"] == 0, snap
            sched.resume()
            for task in tasks:
                assert task.wait(timeout=30.0)
            assert sched.snapshot()["completed"] == 6
        finally:
            sched.close()

    def test_close_unblocks_spinner(self):
        sched = CooperativeScheduler(workers=1, slice_steps=100)
        task = sched.submit(
            "t", "normal", make_runner(SPIN, fuel=50_000_000)
        )
        sched.close()  # cancels with ControlC
        assert task.wait(timeout=10.0), (
            "close() left a spinning task's waiter stranded"
        )

    def test_schedule_seed_perturbs_but_completes(self):
        for seed in (0, 5, 99):
            sched = CooperativeScheduler(
                workers=2, slice_steps=100, schedule_seed=seed
            )
            try:
                tasks = [
                    sched.submit(t, "normal", make_runner(WORK))
                    for t in ("a", "b", "a", "c")
                ]
                for task in tasks:
                    assert task.wait(timeout=30.0)
            finally:
                sched.close()


def _normalized(service, payload):
    status, body, _ = service.handle(dict(payload))
    body.pop("request_id", None)
    body.pop("trace_id", None)
    return status, body


MIXED_REQUESTS = [
    {"expr": WORK, "tenant": "alice", "priority": "interactive"},
    {"expr": "(1 `div` 0) + 2", "tenant": "bob"},
    {
        "expr": "let { f = \\n -> case n < 2 of { True -> n; "
        "False -> f (n - 1) + f (n - 2) } } in f 12",
        "tenant": "carol",
        "priority": "batch",
    },
    {"expr": "length (enumFromTo 1 40)", "tenant": "alice"},
]


class TestCooperativeService:
    def test_body_parity_with_threaded_mode(self):
        coop = EvalService(coop_config())
        threaded = EvalService(
            ServiceConfig(max_concurrency=64, queue_depth=64)
        )
        try:
            got = [_normalized(coop, r) for r in MIXED_REQUESTS]
            want = [_normalized(threaded, r) for r in MIXED_REQUESTS]
            assert got == want
        finally:
            coop.close()
            threaded.close()

    def test_concurrent_mini_soak_parity(self):
        # ~200 requests in flight at once on 2 workers: every body
        # byte-identical (ids normalised) to the threaded twin served
        # sequentially.  The tier-1 shadow of the 1000-in-flight
        # acceptance soak (scripts in CI nightly).
        n = 200
        requests = [
            dict(
                MIXED_REQUESTS[i % len(MIXED_REQUESTS)],
                tenant=f"t{i % 5}",
            )
            for i in range(n)
        ]
        coop = EvalService(
            coop_config(
                max_concurrency=n + 8, queue_depth=32, slice_steps=200
            )
        )
        threaded = EvalService(
            ServiceConfig(max_concurrency=8, queue_depth=8)
        )
        try:
            want = [_normalized(threaded, r) for r in requests]
            got = [None] * n

            def call(i):
                got[i] = _normalized(coop, requests[i])

            threads = [
                threading.Thread(target=call, args=(i,))
                for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert got == want
            snap = coop.scheduler.snapshot()
            assert snap["completed"] == n
            assert snap["slices"] > n  # real slicing happened
        finally:
            coop.close()
            threaded.close()

    def test_invalid_tenant_and_priority_rejected(self):
        service = EvalService(coop_config())
        try:
            status, body = _normalized(
                service, {"expr": "1 + 1", "tenant": ""}
            )
            assert status == 400
            assert body["reason"] == "bad-request"
            status, body = _normalized(
                service, {"expr": "1 + 1", "priority": "urgent"}
            )
            assert status == 400
            assert body["reason"] == "bad-request"
        finally:
            service.close()

    def test_tenant_in_flight_quota(self):
        service = EvalService(coop_config(tenant_max_in_flight=1))
        try:
            ids = (1, "t-1")
            granted, rejection = service._tenant_admit("alice", ids)
            assert granted and rejection is None
            granted, rejection = service._tenant_admit("alice", ids)
            assert not granted
            status, body, retry_after = rejection
            assert status == 429
            assert body["reason"] == "tenant-quota"
            assert retry_after > 0
            # Other tenants are unaffected.
            granted, _ = service._tenant_admit("bob", ids)
            assert granted
            service._tenant_release("alice")
            granted, _ = service._tenant_admit("alice", ids)
            assert granted
        finally:
            service.close()

    def test_step_quota_preempts_spinner_as_governor_trip(self):
        # A spinning tenant over its step budget is preempted with a
        # mid-slice §5.1 Timeout through the governor — shaped exactly
        # like a resource limit, reason `tenant-quota`.
        service = EvalService(
            coop_config(
                slice_steps=1_000,
                tenant_step_quota=5_000,
                max_steps=None,
                max_allocations=None,
                deadline_seconds=None,
            )
        )
        try:
            status, body = _normalized(service, {"expr": SPIN})
            assert status == 200
            assert body["status"] == "resource-exhausted"
            assert body["reason"] == "tenant-quota"
            assert body["trip"]["exc"] == "Timeout"
            assert body["trip"]["reason"] == "tenant-quota"
            assert service.scheduler.preemptions_total >= 1
        finally:
            service.close()

    def test_batch_inherits_envelope_tenant(self):
        coop = EvalService(coop_config())
        threaded = EvalService(ServiceConfig())
        try:
            payload = {
                "programs": [WORK, {"expr": "2 + 2"}],
                "tenant": "team-a",
                "priority": "batch",
            }
            status, body = _normalized(coop, payload)
            assert status == 200
            assert body["count"] == 2
            for result in body["results"]:
                result.pop("request_id", None)
                result.pop("trace_id", None)
            _, want = _normalized(threaded, payload)
            for result in want["results"]:
                result.pop("request_id", None)
                result.pop("trace_id", None)
            assert body == want
        finally:
            coop.close()
            threaded.close()


class TestSchedulerTelemetry:
    def test_healthz_scheduler_block_cooperative(self):
        service = EvalService(coop_config())
        try:
            service.handle({"expr": WORK, "tenant": "alice"})
            sched = service.health()["scheduler"]
            assert sched["mode"] == "cooperative"
            assert sched["workers"] == 2
            assert sched["slice_steps"] == 500
            assert sched["slices"] >= 1
            assert sched["run_queue_depth"] == 0
            assert "starvation_seconds" in sched
            assert "preemptions" in sched
        finally:
            service.close()

    def test_healthz_scheduler_block_threads(self):
        service = EvalService(ServiceConfig())
        try:
            sched = service.health()["scheduler"]
            assert sched["mode"] == "threads"
            assert sched["slices"] == 0
            assert sched["slice_steps"] is None
        finally:
            service.close()

    def test_requests_total_labelled_by_tenant(self):
        service = EvalService(coop_config())
        try:
            service.handle({"expr": "1 + 1", "tenant": "alice"})
            service.handle({"expr": "1 + 1", "tenant": "bob"})
            text = service.metrics_text()
            assert 'tenant="alice"' in text
            assert 'tenant="bob"' in text
        finally:
            service.close()

    def test_tenant_label_cardinality_bounded(self):
        service = EvalService(coop_config(tenant_label_slots=2))
        try:
            for name in ("a", "b", "c", "d"):
                service.handle({"expr": "1 + 1", "tenant": name})
            text = service.metrics_text()
            assert 'tenant="a"' in text
            assert 'tenant="b"' in text
            assert 'tenant="c"' not in text
            assert 'tenant="d"' not in text
            assert 'tenant="other"' in text
        finally:
            service.close()

    def test_slice_and_first_slice_histograms_populated(self):
        service = EvalService(coop_config())
        try:
            service.handle({"expr": WORK})
            text = service.metrics_text()
            assert "repro_slice_steps_count" in text
            assert "repro_first_slice_seconds_count" in text
            assert "repro_sched_slices_total" in text
            assert "repro_tenant_steps_total" in text
        finally:
            service.close()

    def test_scheduler_metrics_read_through(self):
        service = EvalService(coop_config())
        try:
            service.handle({"expr": WORK})
            text = service.metrics_text()
            slices = service.scheduler.slices_total
            assert f"repro_sched_slices_total {slices}" in text
        finally:
            service.close()


class TestSchedulerTop:
    def test_top_renders_scheduler_panel(self):
        from repro.serve.top import render_dashboard

        service = EvalService(coop_config())
        try:
            service.handle({"expr": WORK, "tenant": "alice"})
            from repro.obs.telemetry import parse_exposition

            frame = render_dashboard(
                service.health(),
                parse_exposition(service.metrics_text()),
            )
            assert "scheduler  cooperative" in frame
            assert "slices" in frame
        finally:
            service.close()

    def test_top_renders_threads_mode(self):
        from repro.obs.telemetry import parse_exposition
        from repro.serve.top import render_dashboard

        service = EvalService(ServiceConfig())
        try:
            frame = render_dashboard(
                service.health(),
                parse_exposition(service.metrics_text()),
            )
            assert "scheduler  threads" in frame
        finally:
            service.close()
