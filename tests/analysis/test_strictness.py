"""Strictness analysis: unit behaviour + soundness against the
denotational semantics (if analysed strict, then substituting ⊥ for the
variable yields an exceptional/bottom denotation containing the
variable's exceptions)."""

import pytest
from hypothesis import given, settings

from repro.analysis.strictness import (
    analyse_program,
    function_signature,
    strict_in,
)
from repro.api import compile_expr, compile_program
from repro.core.denote import DenoteContext, denote
from repro.core.domains import BOTTOM, Bad, Ok, Thunk
from repro.core.excset import ExcSet, user_error
from repro.lang.names import free_vars
from repro.lang.parser import parse_expr

from tests.genexpr import int_exprs


def strict(source, var):
    return strict_in(compile_expr(source), var)


class TestBasicVerdicts:
    def test_variable_strict_in_itself(self):
        assert strict("x", "x")

    def test_literal_not_strict(self):
        assert not strict("42", "x")

    def test_plus_strict_both(self):
        assert strict("x + 1", "x")
        assert strict("1 + x", "x")

    def test_lambda_shields(self):
        assert not strict("\\y -> x + y", "x")

    def test_constructor_shields(self):
        assert not strict("Just x", "x")
        assert not strict("Cons x Nil", "x")

    def test_case_scrutinee_strict(self):
        assert strict("case x of { True -> 1; False -> 2 }", "x")

    def test_case_all_branches(self):
        assert strict(
            "case p of { True -> x + 1; False -> x - 1 }", "x"
        )

    def test_case_some_branches_not_strict(self):
        assert not strict(
            "case p of { True -> x + 1; False -> 0 }", "x"
        )

    def test_shadowing_respected(self):
        assert not strict("case p of { Just x -> x; Nothing -> 0 }", "x")

    def test_seq_strict_in_both(self):
        assert strict("seq x 1", "x")
        assert strict("seq 1 x", "x")

    def test_raise_strict_in_payload(self):
        assert strict("raise x", "x")

    def test_let_body_strict(self):
        assert strict("let { v = 1 } in x + v", "x")

    def test_let_transitive(self):
        assert strict("let { v = x + 1 } in v * 2", "x")

    def test_let_lazy_binding_not_strict(self):
        assert not strict("let { v = x + 1 } in 2", "x")

    def test_unknown_application_not_strict_in_arg(self):
        assert not strict("f x", "x")

    def test_unknown_application_strict_in_fn(self):
        assert strict("f x", "f")


class TestSignatures:
    def test_simple_signature(self):
        sig = function_signature(parse_expr("\\a b -> a + 1"), {})
        assert sig == (True, False)

    def test_non_function(self):
        assert function_signature(parse_expr("42"), {}) is None

    def test_program_analysis_recursive(self):
        program = compile_program(
            "sumTo n = if n == 0 then 0 else n + sumTo (n - 1)\n"
            "lazyConst a b = a"
        )
        env = analyse_program(program)
        assert env["sumTo"] == (True,)
        assert env["lazyConst"] == (True, False)

    def test_accumulator_strictness(self):
        program = compile_program(
            "go n acc = if n == 0 then acc else go (n - 1) (acc + n)"
        )
        env = analyse_program(program)
        assert env["go"][0] is True

    def test_mutual_recursion(self):
        program = compile_program(
            "evens n = if n == 0 then True else odds (n - 1)\n"
            "odds n = if n == 0 then False else evens (n - 1)"
        )
        env = analyse_program(program)
        assert env["evens"] == (True,)
        assert env["odds"] == (True,)

    def test_signatures_enable_call_site_verdicts(self):
        program = compile_program("apply1 g = g 1\nuse v = v + 1")
        env = analyse_program(program)
        assert strict_in(parse_expr("use x"), "x", env)


class TestSoundness:
    """If the analysis says "strict in x", then the denotation with
    x = Bad {probe} must be exceptional and contain the probe (this is
    the semantic content of strictness under imprecise exceptions)."""

    PROBE = user_error("strictness-probe")

    def _check(self, expr):
        for var in sorted(free_vars(expr)):
            if not strict_in(expr, var):
                continue
            env = {
                name: Thunk.ready(
                    Bad(ExcSet.of(self.PROBE))
                    if name == var
                    else Ok(1)
                )
                for name in free_vars(expr)
            }
            value = denote(expr, env, DenoteContext(fuel=20_000))
            assert isinstance(value, Bad), (
                f"strict in {var} but {value} for {expr}"
            )
            assert self.PROBE in value.excs

    @given(int_exprs(depth=4, env=("u1", "u2")))
    @settings(max_examples=150, deadline=None)
    def test_strict_verdicts_sound(self, expr):
        self._check(expr)

    def test_hand_picked(self):
        for source in (
            "x + 1",
            "case x of { True -> 1; False -> 2 }",
            "seq x 2",
            "let { v = x } in v + 1",
        ):
            self._check(compile_expr(source))
