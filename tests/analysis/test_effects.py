"""The exception-freedom (effect) analysis — the fixed-order baseline's
gatekeeper (Section 6 / E6)."""

import pytest

from repro.analysis.effects import (
    cannot_raise,
    program_effect_env,
    transformable_sites,
)
from repro.api import compile_expr, compile_program


def safe(source, **kwargs):
    return cannot_raise(compile_expr(source), **kwargs)


class TestWhnfSafety:
    def test_literals_safe(self):
        assert safe("42")
        assert safe('"text"')

    def test_lambda_safe(self):
        assert safe("\\x -> 1 `div` 0")

    def test_constructors_safe(self):
        # WHNF immediately; lazy fields may hide exceptions but that is
        # the *consumer's* problem.
        assert safe("Just (1 `div` 0)")

    def test_arithmetic_unsafe(self):
        # + may overflow: honest pessimism (the paper's point).
        assert not safe("1 + 1")

    def test_div_unsafe(self):
        assert not safe("4 `div` 2")

    def test_comparison_of_safe_args_safe(self):
        assert not safe("a == b")  # unknown variables
        assert safe("1 == 2")

    def test_raise_unsafe(self):
        assert not safe("raise Overflow")

    def test_unknown_variable_unsafe(self):
        assert not safe("x")

    def test_assumed_safe_variable(self):
        assert safe("x", assume_safe=frozenset(["x"]))

    def test_unknown_call_unsafe(self):
        # "pessimistic across module boundaries" (Section 2.3).
        assert not safe("f 1")

    def test_case_needs_exhaustive_alts(self):
        assert not safe("case 1 of { 1 -> 2 }")
        assert safe("case 1 of { 1 -> 2; _ -> 3 }")

    def test_case_branches_checked(self):
        assert not safe("case 1 of { 1 -> 2 `div` 0; _ -> 3 }")

    def test_fix_unsafe(self):
        assert not safe("fix (\\x -> x)")

    def test_seq_checks_both(self):
        assert safe("seq 1 2")
        assert not safe("seq (1 `div` 1) 2")

    def test_let_propagates_verdicts(self):
        assert safe("let { v = 1 } in v")
        assert not safe("let { v = 1 `div` 1 } in v")


class TestProgramEnv:
    def test_simple_bindings(self):
        program = compile_program("one = 1\ntwo = one")
        env = program_effect_env(program)
        assert env["one"] and env["two"]

    def test_arithmetic_binding_unsafe(self):
        program = compile_program("n = 1 + 1")
        assert not program_effect_env(program)["n"]

    def test_promotion_through_dependencies(self):
        program = compile_program("a = 1\nb = a\nc = b")
        env = program_effect_env(program)
        assert all(env.values())


class TestReorderSites:
    def test_sites_found(self):
        sites = transformable_sites(compile_expr("(a + b) * (c + d)"))
        prim_sites = [s for s in sites if s.kind == "prim"]
        assert len(prim_sites) == 3

    def test_arith_sites_blocked_under_fixed_order(self):
        sites = transformable_sites(compile_expr("a + b"))
        assert all(not s.safe_under_fixed_order for s in sites)

    def test_safe_site_allowed(self):
        sites = transformable_sites(compile_expr("1 == 2"))
        (site,) = [s for s in sites if s.kind == "prim"]
        assert site.safe_under_fixed_order

    def test_imprecise_enables_everything_the_ratio(self):
        # E6's shape: imprecise enables 100% of sites, the effect
        # analysis a small fraction.
        expr = compile_expr(
            "(a + b) * (c `div` d) + (f x + (1 == 2 `div` 1))"
        )
        sites = transformable_sites(expr)
        enabled = sum(1 for s in sites if s.safe_under_fixed_order)
        assert len(sites) > 0
        assert enabled < len(sites)
