"""Occurrence analysis unit tests."""

import pytest

from repro.analysis.occurrence import occurrences, occurs_free
from repro.lang.parser import parse_expr


class TestOccurrences:
    def test_simple(self):
        counts = occurrences(parse_expr("x + x + y"))
        assert counts["x"] == 2
        assert counts["y"] == 1

    def test_lambda_shadows(self):
        counts = occurrences(parse_expr("x + (\\x -> x) 1"))
        assert counts["x"] == 1

    def test_case_pattern_shadows(self):
        counts = occurrences(
            parse_expr("case v of { Just x -> x + x; Nothing -> x }")
        )
        assert counts["x"] == 1
        assert counts["v"] == 1

    def test_let_shadows_rhs_and_body(self):
        counts = occurrences(parse_expr("let { x = x + y } in x"))
        assert "x" not in counts
        assert counts["y"] == 1

    def test_closed_expression(self):
        assert not occurrences(parse_expr("(\\x -> x) 1"))

    def test_constructor_and_prim_args(self):
        counts = occurrences(parse_expr("Just (a + a)"))
        assert counts["a"] == 2

    def test_raise_and_fix(self):
        counts = occurrences(parse_expr("raise e"))
        assert counts["e"] == 1
        counts = occurrences(parse_expr("fix f"))
        assert counts["f"] == 1


class TestOccursFree:
    def test_positive(self):
        assert occurs_free(parse_expr("x + 1"), "x")

    def test_negative(self):
        assert not occurs_free(parse_expr("\\x -> x"), "x")
