"""Hypothesis strategies generating random well-formed expressions.

The strategies now live in :mod:`repro.fuzz.hyp` beside the standalone
fuzz generator (one grammar to maintain — see docs/FUZZING.md); this
module re-exports them so existing property tests keep their imports.
The space is wider than it historically was: ``Fix``-based bounded
recursion, string literals and primitives, ``UserError`` payloads, and
``catchIO``-wrapped IO programs.
"""

from __future__ import annotations

from repro.fuzz.gen import (  # noqa: F401 — re-exports
    bool_exprs,
    int_exprs,
    io_exprs,
    string_exprs,
)

__all__ = ["int_exprs", "bool_exprs", "io_exprs", "string_exprs"]
