"""Hypothesis strategies generating random well-formed expressions.

Generated terms are closed, well-typed-by-construction at type ``Int``
(with Bool/pair sub-terms where the shape needs them), and may raise
``DivideByZero``, ``Overflow``, ``UserError`` or diverge — exactly the
space the soundness and transformation properties quantify over.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Lam,
    Let,
    Lit,
    PCon,
    PrimOp,
    PVar,
    PWild,
    Raise,
    Var,
)

_EXC_CONS = ("DivideByZero", "Overflow", "PatternMatchFail")


def _raise_expr(name: str) -> Expr:
    return Raise(Con(name, (), 0))


@st.composite
def int_exprs(draw, depth: int = 4, env: tuple = ()):
    """An Int-typed expression; ``env`` lists Int variables in scope."""
    if depth <= 0:
        leaves = [st.integers(min_value=-20, max_value=20).map(
            lambda n: Lit(n, "int")
        )]
        if env:
            leaves.append(st.sampled_from(env).map(Var))
        leaves.append(st.sampled_from(_EXC_CONS).map(_raise_expr))
        return draw(st.one_of(*leaves))
    choice = draw(st.integers(min_value=0, max_value=9))
    if choice <= 2:
        return draw(int_exprs(depth=0, env=env))
    if choice == 3:
        op = draw(st.sampled_from(["+", "-", "*", "div"]))
        left = draw(int_exprs(depth=depth - 1, env=env))
        right = draw(int_exprs(depth=depth - 1, env=env))
        return PrimOp(op, (left, right))
    if choice == 4:
        # let binding
        name = f"v{draw(st.integers(min_value=0, max_value=3))}_{depth}"
        rhs = draw(int_exprs(depth=depth - 1, env=env))
        body = draw(int_exprs(depth=depth - 1, env=env + (name,)))
        return Let(((name, rhs),), body)
    if choice == 5:
        # beta redex
        name = f"x{depth}"
        body = draw(int_exprs(depth=depth - 1, env=env + (name,)))
        arg = draw(int_exprs(depth=depth - 1, env=env))
        return App(Lam(name, body), arg)
    if choice == 6:
        # case on Bool
        cond = draw(bool_exprs(depth=depth - 1, env=env))
        then_e = draw(int_exprs(depth=depth - 1, env=env))
        else_e = draw(int_exprs(depth=depth - 1, env=env))
        return Case(
            cond,
            (Alt(PCon("True"), then_e), Alt(PCon("False"), else_e)),
        )
    if choice == 7:
        # case on a pair
        name_a = f"a{depth}"
        name_b = f"b{depth}"
        fst = draw(int_exprs(depth=depth - 1, env=env))
        snd = draw(int_exprs(depth=depth - 1, env=env))
        body = draw(
            int_exprs(depth=depth - 1, env=env + (name_a, name_b))
        )
        return Case(
            Con("Tuple2", (fst, snd), 2),
            (Alt(PCon("Tuple2", (PVar(name_a), PVar(name_b))), body),),
        )
    if choice == 8:
        # seq
        first = draw(int_exprs(depth=depth - 1, env=env))
        second = draw(int_exprs(depth=depth - 1, env=env))
        return PrimOp("seq", (first, second))
    # possible divergence: a tight self-recursive let, guarded so that
    # most generated programs still terminate
    if draw(st.booleans()):
        return Let(
            (("loop_v", PrimOp("+", (Var("loop_v"), Lit(1, "int")))),),
            Var("loop_v"),
        )
    return draw(int_exprs(depth=depth - 1, env=env))


@st.composite
def bool_exprs(draw, depth: int = 2, env: tuple = ()):
    choice = draw(st.integers(min_value=0, max_value=3))
    if depth <= 0 or choice == 0:
        return Con(draw(st.sampled_from(["True", "False"])), (), 0)
    if choice == 1:
        return draw(st.sampled_from(_EXC_CONS).map(_raise_expr))
    op = draw(st.sampled_from(["==", "<", "<="]))
    left = draw(int_exprs(depth=depth - 1, env=env))
    right = draw(int_exprs(depth=depth - 1, env=env))
    return PrimOp(op, (left, right))
