"""The alloc-fail and latency sweep axes: sound on healthy builds,
and the planted-unsound self-test is caught on every axis — on both
backends — mirroring the interrupt-schedule self-test."""

import pytest

from repro.chaos.explore import (
    SWEEP_AXES,
    self_test,
    sweep_alloc_source,
    sweep_axis,
    sweep_latency_source,
)

BACKENDS = ("ast", "compiled")

#: Small but allocation-bearing, so every axis has sweep points.
SOURCE = "let { x = 1 + 2 ; y = x + x } in y * y"


class TestAllocSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sound_on_healthy_build(self, backend):
        report = sweep_alloc_source(SOURCE, backend=backend)
        assert report.ok
        assert report.axis == "alloc"
        assert report.exc == "HeapOverflow"
        assert report.points_checked >= 1

    def test_low_threshold_actually_overflows(self):
        """The sweep must not be vacuous: at threshold 1 the heap
        refuses service and the observed outcome is HeapOverflow."""
        seen = []

        def recorder(threshold, outcome):
            seen.append((threshold, str(outcome)))
            return outcome

        report = sweep_alloc_source(SOURCE, harness=recorder)
        assert report.ok
        assert any("HeapOverflow" in rendered for _, rendered in seen)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_planted_unsound_caught(self, backend):
        caught, report = self_test(backend=backend, axis="alloc")
        assert caught, report.as_dict()
        assert report.axis == "alloc"
        assert len(report.violations) == 1


class TestLatencySweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sound_on_healthy_build(self, backend):
        report = sweep_latency_source(SOURCE, backend=backend)
        assert report.ok
        assert report.axis == "latency"
        # Latency sweeps every step of the baseline.
        assert report.points_checked == report.baseline_steps

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_planted_unsound_caught(self, backend):
        caught, report = self_test(backend=backend, axis="latency")
        assert caught, report.as_dict()
        assert report.axis == "latency"

    def test_latency_demands_exact_baseline(self):
        """A harness that perturbs the outcome at one stall point is
        flagged even though the perturbed outcome would be sound on
        the interrupt axis — latency licenses no deviation at all."""
        from repro.chaos.explore import plant_unsound

        report = sweep_latency_source(
            SOURCE, harness=plant_unsound(2)
        )
        assert not report.ok
        assert [v.step for v in report.violations] == [2]


class TestAxisDispatch:
    def test_all_axes_reachable(self):
        for axis in SWEEP_AXES:
            report = sweep_axis(axis, SOURCE)
            assert report.ok
            assert report.axis == axis

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            sweep_axis("cosmic-rays", SOURCE)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interrupt_self_test_still_caught(self, backend):
        """The original axis keeps its planted-unsound guarantee after
        the axis refactor."""
        caught, report = self_test(backend=backend, axis="interrupt")
        assert caught, report.as_dict()
        assert report.axis == "interrupt"

    def test_as_dict_carries_axis(self):
        data = sweep_axis("latency", SOURCE).as_dict()
        assert data["axis"] == "latency"
        assert data["ok"] is True
