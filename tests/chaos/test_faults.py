"""Unit tests for deterministic fault plans (repro.chaos.faults)."""

import pytest

from repro.api import compile_expr
from repro.chaos import (
    ALLOC_FAIL,
    Fault,
    FaultPlan,
    INTERRUPT,
    LATENCY,
)
from repro.core.excset import CONTROL_C, HEAP_OVERFLOW, TIMEOUT
from repro.io.events import EventPlan, timeout_after
from repro.machine import Machine
from repro.machine.observe import Exceptional, Normal, observe
from repro.prelude.loader import machine_env

FIB = (
    "let { fib = \\n -> if n < 2 then n else fib (n - 1) + fib (n - 2) } "
    "in fib 10"
)


def _run(source, plan, backend="ast"):
    machine = Machine(backend=backend)
    machine.attach_fault_plan(plan)
    outcome = observe(
        compile_expr(source), env=machine_env(machine), machine=machine
    )
    return outcome, machine


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("explode", step=1)

    def test_known_kinds_accepted(self):
        for kind in (INTERRUPT, ALLOC_FAIL, LATENCY):
            Fault(kind, step=1)


class TestInterrupts:
    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_interrupt_delivered_at_scheduled_step(self, backend):
        plan = FaultPlan([Fault(INTERRUPT, step=50, exc=TIMEOUT)])
        outcome, machine = _run(FIB, plan, backend)
        assert outcome == Exceptional(TIMEOUT)
        assert machine.stats.steps == 50
        assert [rec.step for rec in plan.injected] == [50]
        assert plan.injected[0].exc == "Timeout"
        assert plan.spent

    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_unreached_fault_never_fires(self, backend):
        plan = FaultPlan([Fault(INTERRUPT, step=10**9, exc=TIMEOUT)])
        outcome, _ = _run("1 + 2 * 3", plan, backend)
        assert isinstance(outcome, Normal)
        assert plan.injected == []
        assert not plan.spent

    def test_default_interrupt_exception_is_control_c(self):
        plan = FaultPlan([Fault(INTERRUPT, step=3)])
        outcome, _ = _run(FIB, plan)
        assert outcome == Exceptional(CONTROL_C)

    def test_backend_injection_parity(self):
        results = {}
        for backend in ("ast", "compiled"):
            plan = FaultPlan([Fault(INTERRUPT, step=123, exc=TIMEOUT)])
            outcome, machine = _run(FIB, plan, backend)
            results[backend] = (outcome, machine.stats.steps,
                                plan.injected)
        assert results["ast"] == results["compiled"]


class TestAllocFail:
    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_alloc_cap_delivers_heap_overflow(self, backend):
        plan = FaultPlan([Fault(ALLOC_FAIL, allocations=20)])
        outcome, machine = _run(FIB, plan, backend)
        assert outcome == Exceptional(HEAP_OVERFLOW)
        assert machine.stats.allocations >= 20
        assert plan.injected[0].kind == ALLOC_FAIL

    def test_alloc_fail_step_identical_across_backends(self):
        steps = []
        for backend in ("ast", "compiled"):
            plan = FaultPlan([Fault(ALLOC_FAIL, allocations=20)])
            _run(FIB, plan, backend)
            steps.append(plan.injected[0].step)
        assert steps[0] == steps[1]


class TestLatency:
    def test_latency_stalls_without_raising(self):
        stalls = []
        plan = FaultPlan(
            [Fault(LATENCY, step=3, seconds=0.25)], sleep=stalls.append
        )
        outcome, _ = _run("1 + 2 * 3", plan)
        assert isinstance(outcome, Normal)
        assert stalls == [0.25]
        assert plan.injected[0].kind == LATENCY
        assert plan.injected[0].exc is None

    def test_latency_and_interrupt_on_same_step(self):
        stalls = []
        plan = FaultPlan(
            [
                Fault(LATENCY, step=5, seconds=0.1),
                Fault(INTERRUPT, step=5, exc=TIMEOUT),
            ],
            sleep=stalls.append,
        )
        outcome, _ = _run(FIB, plan)
        # The stall happens, then the interrupt wins the step.
        assert stalls == [0.1]
        assert outcome == Exceptional(TIMEOUT)


class TestConstruction:
    def test_seeded_plans_are_deterministic(self):
        a = FaultPlan.seeded(7, horizon=1000, interrupts=2, latencies=1)
        b = FaultPlan.seeded(7, horizon=1000, interrupts=2, latencies=1)
        assert a.faults == b.faults
        c = FaultPlan.seeded(8, horizon=1000, interrupts=2, latencies=1)
        assert a.faults != c.faults

    def test_from_events_bridges_the_section_51_plan(self):
        plan = FaultPlan.from_events(timeout_after(40))
        outcome, machine = _run(FIB, plan)
        assert outcome == Exceptional(TIMEOUT)
        assert machine.stats.steps == 40

    def test_from_events_matches_native_event_plan(self):
        # The bridge and the machine's own event plan deliver at the
        # same step with the same outcome.
        native = Machine(event_plan=EventPlan(((40, TIMEOUT),)).as_dict())
        native_out = observe(
            compile_expr(FIB), env=machine_env(native), machine=native
        )
        bridged_out, bridged = _run(
            FIB, FaultPlan.from_events(timeout_after(40))
        )
        assert native_out == bridged_out
        assert native.stats.steps == bridged.stats.steps

    def test_fresh_returns_an_unspent_copy(self):
        plan = FaultPlan([Fault(INTERRUPT, step=3, exc=TIMEOUT)])
        _run(FIB, plan)
        assert plan.spent
        again = plan.fresh()
        assert not again.spent
        assert again.injected == []
        outcome, _ = _run(FIB, again)
        assert outcome == Exceptional(TIMEOUT)

    def test_as_dict_round_trips_schedule_and_record(self):
        plan = FaultPlan([Fault(INTERRUPT, step=3, exc=TIMEOUT)])
        _run(FIB, plan)
        data = plan.as_dict()
        assert data["faults"][0]["exc"] == "Timeout"
        assert data["injected"][0]["step"] == 3


class TestPayAsYouGo:
    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_detached_plan_leaves_counters_at_seed(self, backend):
        bare = Machine(backend=backend)
        observe(compile_expr(FIB), env=machine_env(bare), machine=bare)
        hooked = Machine(backend=backend)
        hooked.attach_fault_plan(None)  # attach-then-detach
        hooked.attach_governor(None)
        observe(
            compile_expr(FIB), env=machine_env(hooked), machine=hooked
        )
        assert (
            bare.stats.snapshot().as_dict()
            == hooked.stats.snapshot().as_dict()
        )

    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_unfired_plan_does_not_perturb_counters(self, backend):
        bare = Machine(backend=backend)
        observe(compile_expr(FIB), env=machine_env(bare), machine=bare)
        hooked = Machine(backend=backend)
        hooked.attach_fault_plan(
            FaultPlan([Fault(INTERRUPT, step=10**9)])
        )
        observe(
            compile_expr(FIB), env=machine_env(hooked), machine=hooked
        )
        assert (
            bare.stats.snapshot().as_dict()
            == hooked.stats.snapshot().as_dict()
        )
