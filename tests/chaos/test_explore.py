"""Tests for the interrupt-schedule explorer (repro.chaos.explore)."""

import pytest

from repro.chaos.explore import (
    delivery_points,
    plant_unsound,
    self_test,
    sweep_source,
)
from repro.core.excset import HEAP_OVERFLOW, TIMEOUT


class TestDeliveryPoints:
    def test_default_is_every_step(self):
        assert delivery_points(5) == [1, 2, 3, 4, 5]

    def test_zero_steps_is_empty(self):
        assert delivery_points(0) == []

    def test_limit_keeps_a_prefix(self):
        assert delivery_points(100, limit=3) == [1, 2, 3]

    def test_sample_includes_both_edges(self):
        points = delivery_points(1000, sample=10)
        assert points[0] == 1
        assert points[-1] == 1000
        assert len(points) <= 12  # 10 strided + forced edges

    def test_sample_larger_than_total_checks_everything(self):
        assert delivery_points(5, sample=50) == [1, 2, 3, 4, 5]


class TestSweep:
    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_small_expression_is_sound_everywhere(self, backend):
        report = sweep_source("1 + 2 * 3", backend=backend)
        assert report.ok
        assert report.baseline == "Normal(7)"
        assert report.points_checked == report.baseline_steps

    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_exceptional_baseline_is_sound_everywhere(self, backend):
        # A program whose uninterrupted outcome is itself exceptional:
        # every interrupted run must observe the injected exception
        # (the interrupt always lands before the raise completes the
        # run, or the outcome equals the baseline).
        report = sweep_source("(1 `div` 0) + 2", backend=backend)
        assert report.ok

    def test_injected_exception_is_configurable(self):
        report = sweep_source("1 + 2", exc=HEAP_OVERFLOW)
        assert report.ok
        assert report.exc == "HeapOverflow"

    def test_sampled_sweep_checks_fewer_points(self):
        full = sweep_source("1 + 2 * 3")
        sampled = sweep_source("1 + 2 * 3", sample=2)
        assert sampled.ok
        assert sampled.points_checked < full.points_checked

    def test_report_round_trips_to_dict(self):
        report = sweep_source("1 + 2", exc=TIMEOUT, limit=3)
        data = report.as_dict()
        assert data["ok"] is True
        assert data["exc"] == "Timeout"
        assert data["points_checked"] == 3
        assert data["violations"] == []

    def test_backends_agree_on_baseline_steps(self):
        ast = sweep_source("1 + 2 * 3", backend="ast", limit=1)
        compiled = sweep_source("1 + 2 * 3", backend="compiled", limit=1)
        assert ast.baseline_steps == compiled.baseline_steps
        assert ast.baseline == compiled.baseline


class TestPlantedUnsound:
    @pytest.mark.parametrize("backend", ["ast", "compiled"])
    def test_self_test_catches_the_plant(self, backend):
        caught, report = self_test(backend=backend)
        assert caught
        assert len(report.violations) == 1
        assert "chaos-plant" in report.violations[0].observed

    def test_plant_harness_flags_exactly_one_point(self):
        report = sweep_source(
            "1 + 2 * 3", harness=plant_unsound(2)
        )
        assert not report.ok
        assert [v.step for v in report.violations] == [2]
        violation = report.violations[0]
        assert "Exceptional(ControlC)" in violation.expected
        assert "chaos-plant" in violation.observed

    def test_identity_harness_changes_nothing(self):
        report = sweep_source(
            "1 + 2 * 3", harness=lambda _step, outcome: outcome
        )
        assert report.ok

    def test_render_mentions_violations(self):
        report = sweep_source("1 + 2", harness=plant_unsound(1))
        text = report.render()
        assert "VIOLATIONS" in text
        assert "step 1" in text
