"""Classic functional programs through the full pipeline — the
"downstream user" test: the language must be pleasant enough to write
real programs in, and they must typecheck and run."""

import pytest

from repro.api import run_io_program

MERGESORT = """
merge :: [Int] -> [Int] -> [Int]
merge Nil ys = ys
merge xs Nil = xs
merge (x:xs) (y:ys)
  | x <= y = x : merge xs (y:ys)
  | otherwise = y : merge (x:xs) ys

msort :: [Int] -> [Int]
msort Nil = Nil
msort (x:Nil) = x : Nil
msort xs = merge (msort (fst halves)) (msort (snd halves))
  where halves = splitAt (length xs `div` 2) xs

main = putStr (showIntList (msort [5, 3, 8, 1, 9, 2, 7]))
"""

NQUEENS = """
safe :: Int -> [Int] -> Int -> Bool
safe q qs d = case qs of
                Nil -> True
                (x:xs) -> if x == q then False
                          else if abs (x - q) == d then False
                          else safe q xs (d + 1)

queens :: Int -> [[Int]]
queens n = go n
  where
    go k = if k == 0
             then [Nil]
             else concatMap expand (go (k - 1))
    expand qs = map (\\q -> q : qs)
                    (filter (\\q -> safe q qs 1) (enumFromTo 1 n))

main = putStr (showInt (length (queens 6)))
"""

CHURCH = """
type Church = (Int -> Int) -> Int -> Int

czero :: (Int -> Int) -> Int -> Int
czero f x = x

csucc :: ((Int -> Int) -> Int -> Int) -> (Int -> Int) -> Int -> Int
csucc n f x = f (n f x)

cadd :: ((Int -> Int) -> Int -> Int)
     -> ((Int -> Int) -> Int -> Int)
     -> (Int -> Int) -> Int -> Int
cadd m n f x = m f (n f x)

cmul :: ((Int -> Int) -> Int -> Int)
     -> ((Int -> Int) -> Int -> Int)
     -> (Int -> Int) -> Int -> Int
cmul m n f = m (n f)

toInt :: ((Int -> Int) -> Int -> Int) -> Int
toInt n = n (\\k -> k + 1) 0

main = putStr (showInt (toInt
  (cmul (csucc (csucc czero))
        (cadd (csucc czero) (csucc (csucc czero))))))
"""

ACKERMANN = """
ack :: Int -> Int -> Int
ack m n
  | m == 0 = n + 1
  | n == 0 = ack (m - 1) 1
  | otherwise = ack (m - 1) (ack m (n - 1))

main = putStr (showInt (ack 2 3))
"""

HAMMING = """
-- The classic corecursive Hamming stream: laziness torture test.
merge3 :: [Int] -> [Int] -> [Int]
merge3 (x:xs) (y:ys)
  | x < y = x : merge3 xs (y:ys)
  | x > y = y : merge3 (x:xs) ys
  | otherwise = x : merge3 xs ys
merge3 xs ys = error "finite hamming stream"

hamming :: [Int]
hamming = 1 : merge3 (map (\\n -> n * 2) hamming)
                     (merge3 (map (\\n -> n * 3) hamming)
                             (map (\\n -> n * 5) hamming))

main = putStr (showIntList (take 12 hamming))
"""

COLLATZ = """
collatzLen :: Int -> Int
collatzLen n = go n 1
  where go k acc
          | k == 1 = acc
          | even k = go (k `div` 2) (acc + 1)
          | otherwise = go (3 * k + 1) (acc + 1)

main = putStr (showInt (collatzLen 27))
"""

FOLD_TREE = """
data Tree = Leaf | Node Tree Int Tree

insert :: Int -> Tree -> Tree
insert v Leaf = Node Leaf v Leaf
insert v (Node l x r)
  | v < x = Node (insert v l) x r
  | otherwise = Node l x (insert v r)

toList :: Tree -> [Int]
toList Leaf = Nil
toList (Node l x r) = append (toList l) (x : toList r)

fromList :: [Int] -> Tree
fromList = foldr insert Leaf

main = putStr (showIntList (toList (fromList [4, 2, 7, 1, 9])))
"""


class TestClassicPrograms:
    def test_mergesort(self):
        result = run_io_program(MERGESORT, typecheck=True)
        assert result.stdout == "[1, 2, 3, 5, 7, 8, 9]"

    def test_nqueens(self):
        result = run_io_program(
            NQUEENS, typecheck=True, fuel=20_000_000
        )
        assert result.stdout == "4"  # 6-queens has 4 solutions

    def test_church_numerals(self):
        result = run_io_program(CHURCH, typecheck=True)
        # 2 * (1 + 2) = 6
        assert result.stdout == "6"

    def test_ackermann(self):
        result = run_io_program(ACKERMANN, typecheck=True)
        assert result.stdout == "9"

    def test_hamming_stream(self):
        result = run_io_program(HAMMING, typecheck=True, fuel=5_000_000)
        assert result.stdout == "[1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16]"

    def test_collatz(self):
        result = run_io_program(COLLATZ, typecheck=True)
        assert result.stdout == "112"

    def test_tree_sort(self):
        result = run_io_program(FOLD_TREE, typecheck=True)
        assert result.stdout == "[1, 2, 4, 7, 9]"
