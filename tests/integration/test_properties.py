"""Cross-cutting property tests over random programs."""

import pytest
from hypothesis import assume, given, settings

from repro.core.denote import DenoteContext, denote
from repro.core.ordering import refines
from repro.encoding import EncodeError, encode_expr
from repro.lang.ast import expr_size
from repro.machine import Machine
from repro.machine.heap import MachineDiverged, ObjRaise
from repro.machine.strategy import LeftToRight, Shuffled
from repro.machine.values import VCon, VInt
from repro.transform import O1, O2

from tests.genexpr import int_exprs


def _machine_outcome(expr, strategy=None, fuel=30_000):
    """(kind, detail, strategy_seed) — the seed rides along so a
    failing example names the exact Shuffled order that produced it
    (without it, shuffled-strategy failures were unreproducible)."""
    strategy = strategy or LeftToRight()
    seed = getattr(strategy, "seed", None)
    machine = Machine(strategy=strategy, fuel=fuel)
    try:
        value = machine.eval(expr, {})
        if isinstance(value, VInt):
            return ("ok", value.value, seed)
        if isinstance(value, VCon):
            return ("ok-con", value.name, seed)
        return ("ok-other", None, seed)
    except ObjRaise as err:
        return ("exc", err.exc.name, seed)
    except (MachineDiverged, RecursionError):
        return ("diverged", None, seed)


class TestMachineDeterminism:
    @given(int_exprs(depth=4))
    @settings(max_examples=100, deadline=None)
    def test_fixed_strategy_deterministic(self, expr):
        a = _machine_outcome(expr, Shuffled(9))
        b = _machine_outcome(expr, Shuffled(9))
        assert a == b, f"Shuffled(seed=9) not deterministic: {a} vs {b}"


class TestOptimiserRefinement:
    """Pipeline output refines the input denotation on random closed
    programs (invariant 4 of DESIGN.md)."""

    @given(int_exprs(depth=4))
    @settings(max_examples=80, deadline=None)
    def test_o1_refines(self, expr):
        optimised = O1.optimise(expr)
        before = denote(expr, {}, DenoteContext(fuel=20_000))
        after = denote(optimised, {}, DenoteContext(fuel=40_000))
        assert refines(before, after), f"{before} vs {after}"

    @given(int_exprs(depth=4))
    @settings(max_examples=80, deadline=None)
    def test_o2_preserves_normal_results(self, expr):
        # On programs that compute a normal value, optimisation must
        # preserve it exactly.
        before = denote(expr, {}, DenoteContext(fuel=30_000))
        from repro.core.domains import Ok

        assume(isinstance(before, Ok))
        optimised = O2.optimise(expr)
        after = denote(optimised, {}, DenoteContext(fuel=60_000))
        assert after == before


class TestEncodingAdequacy:
    """Invariant 6, stated honestly: the encoding is *strictly more
    strict* than the native lazy semantics (Section 2.2's "increased
    strictness" bullet), so full agreement is impossible.  What does
    hold:

    * encoded ``OK v``  ⟹  the native machine computes ``v`` too
      (everything the encoding survived, laziness survives);
    * native exception ⟹ the encoding yields ``Bad`` (it forces a
      superset of what the native machine demands) — though possibly a
      *different* member when the extra strictness meets a different
      fault first.
    """

    @given(int_exprs(depth=4))
    @settings(max_examples=80, deadline=None)
    def test_encoded_ok_implies_native_ok(self, expr):
        try:
            encoded = encode_expr(expr)
        except EncodeError:
            assume(False)
        machine = Machine(fuel=400_000)
        try:
            value = machine.eval(encoded, {})
        except (MachineDiverged, RecursionError):
            assume(False)
        except ObjRaise as err:
            # NonTermination from blackhole detection: divergence is
            # the one failure the value encoding cannot capture.
            assume(err.exc.name == "NonTermination")
            assume(False)
        assert isinstance(value, VCon), str(value)
        assume(value.name == "OK")
        payload = value.args[0].force(machine)
        assume(isinstance(payload, VInt))
        native = _machine_outcome(expr, fuel=400_000)
        assume(native[0] != "diverged")
        assert native[:2] == ("ok", payload.value), str(native)

    @given(int_exprs(depth=4))
    @settings(max_examples=80, deadline=None)
    def test_native_exception_implies_encoded_bad(self, expr):
        native = _machine_outcome(expr, fuel=40_000)
        assume(native[0] == "exc")
        assume(native[1] not in ("Overflow", "NonTermination"))
        try:
            encoded = encode_expr(expr)
        except EncodeError:
            assume(False)
        machine = Machine(fuel=400_000)
        try:
            value = machine.eval(encoded, {})
        except (MachineDiverged, RecursionError):
            assume(False)
        except ObjRaise as err:
            assume(err.exc.name == "NonTermination")
            assume(False)
        assert isinstance(value, VCon)
        assert value.name == "Bad", (
            f"native raised {native[1]} but encoding returned OK"
        )

    @given(int_exprs(depth=3))
    @settings(max_examples=60, deadline=None)
    def test_encoding_always_larger(self, expr):
        try:
            encoded = encode_expr(expr)
        except EncodeError:
            assume(False)
        assert expr_size(encoded) >= expr_size(expr)


class TestRoundTripThroughOptimiser:
    @given(int_exprs(depth=3))
    @settings(max_examples=60, deadline=None)
    def test_pretty_optimised_reparses(self, expr):
        from repro.lang.parser import parse_expr
        from repro.lang.pretty import pretty

        optimised = O2.optimise(expr)
        printed = pretty(optimised)
        parse_expr(printed)  # must not raise


class TestOptimisedObservationSoundness:
    """E5 generalised over random programs: run the O2-optimised
    program on the machine under several strategies; every observation
    must be a member of the ORIGINAL program's denoted set (or a
    normal value equal to the original's)."""

    @given(int_exprs(depth=4))
    @settings(max_examples=80, deadline=None)
    def test_optimised_observation_in_original_set(self, expr):
        from repro.core.domains import Bad, Ok
        from repro.core.excset import NON_TERMINATION

        denoted = denote(expr, {}, DenoteContext(fuel=40_000))
        optimised = O2.optimise(expr)
        for seed in (1, 2):
            outcome = _machine_outcome(
                optimised, Shuffled(seed), fuel=40_000
            )
            # outcome[2] is the Shuffled seed: quote it in every
            # failure so the exact evaluation order is re-runnable.
            where = f"under Shuffled(seed={outcome[2]})"
            if outcome[0] == "ok":
                assert denoted == Ok(outcome[1]), (
                    f"observed {outcome} {where} but denoted {denoted}"
                )
            elif outcome[0] == "exc":
                assert isinstance(denoted, Bad), (
                    f"observed {outcome} {where} but denoted {denoted}"
                )
                names = {
                    e.name for e in denoted.excs.finite_members()
                }
                if denoted.excs.is_finite():
                    assert outcome[1] in names, (
                        f"raised {outcome[1]} {where}, set {names}"
                    )
                # infinite set: any synchronous exception permitted
            else:  # diverged
                assert isinstance(denoted, Bad), (
                    f"diverged {where} but denoted {denoted}"
                )
                assert NON_TERMINATION in denoted.excs, (
                    f"diverged {where} but NonTermination not denoted"
                )
