"""The Section 2.2 modularity claim, made executable.

"Loss of modularity and code re-use, especially for higher-order
functions.  For example, a sorting function that takes a comparison
function as an argument would need to be modified to be used with an
exception-raising comparison function."

With imprecise exceptions the prelude's ``sortBy`` is used *unchanged*
with a raising comparator — the exception propagates implicitly and is
caught (or not) wherever the caller likes.  Under the explicit ExVal
encoding the same reuse is impossible without changing ``sortBy``'s
type, which the encoding's type discipline makes painfully visible.
"""

import pytest

from repro.api import run_io_source
from repro.core.domains import Ok
from tests.conftest import d, exc_names


RAISING_CMP = (
    "(\\a b -> if b == 0 then raise DivideByZero else "
    "(100 `div` b) <= (100 `div` a))"
)


class TestHigherOrderReuse:
    def test_sortby_with_total_comparator(self):
        assert d("showIntList (sortBy (\\a b -> a <= b) [3, 1, 2])") == Ok(
            "[1, 2, 3]"
        )

    def test_sortby_with_raising_comparator_unmodified(self):
        # The library function needs NO modification; the exception
        # propagates out of the whole sort.  (Denotationally the
        # recursive traversal of the exceptional result is ⊥ — F-1 —
        # whose set still contains DivideByZero; operationally the
        # machine observes exactly DivideByZero.)
        from repro.api import observe_source
        from repro.core.domains import Bad
        from repro.core.excset import DIVIDE_BY_ZERO
        from repro.machine import Exceptional

        value = d(
            f"showIntList (sortBy {RAISING_CMP} [3, 0, 2])",
            fuel=100_000,
        )
        assert isinstance(value, Bad)
        assert DIVIDE_BY_ZERO in value.excs
        out = observe_source(
            f"showIntList (sortBy {RAISING_CMP} [3, 0, 2])"
        )
        assert isinstance(out, Exceptional)
        assert out.exc == DIVIDE_BY_ZERO

    def test_caller_recovers_at_the_boundary(self):
        result = run_io_source(
            f"getException (showIntList (sortBy {RAISING_CMP} "
            "[3, 0, 2])) >>= (\\r -> case r of "
            "{ OK s -> putStr s; "
            "Bad e -> putStr (showException e) })"
        )
        assert result.stdout == "DivideByZero"

    def test_clean_input_still_sorts(self):
        result = run_io_source(
            f"getException (showIntList (sortBy {RAISING_CMP} "
            "[4, 2, 1])) >>= (\\r -> case r of "
            "{ OK s -> putStr s; "
            "Bad e -> putStr (showException e) })"
        )
        # comparator sorts by 100/x descending <=, i.e. ascending x
        assert result.stdout == "[1, 2, 4]"

    def test_map_with_raising_function_unmodified(self):
        # Same story for map: the library is oblivious.
        value = d(
            "head (map (\\x -> 10 `div` x) [0, 5])"
        )
        assert exc_names(value) == {"DivideByZero"}
        assert d("head (tail (map (\\x -> 10 `div` x) [0, 5]))") == Ok(2)


class TestEncodingCannotReuse:
    def test_encoded_sortby_needs_a_different_type(self):
        """Under the encoding, a raising comparator has type
        ``a -> a -> ExVal Bool`` while ``sortBy`` expects
        ``a -> a -> Bool`` — the reuse failure is a *type error*,
        which our encoder surfaces as the prelude being outside the
        encodable fragment (its functions would all need the monadic
        rewrite the paper calls "nearly as bad")."""
        from repro.encoding import EncodeError, encode_expr
        from repro.api import compile_expr

        # Encoding a *use* of the prelude's sortBy is rejected: the
        # call site would need the ExVal-typed variant.
        expr = compile_expr(
            "sortBy (\\a b -> a <= b) [3, 1, 2]"
        )
        encoded = encode_expr(
            expr, encoded_vars=frozenset(["sortBy"])
        )
        # The encoded call now *requires* an ExVal-returning sortBy —
        # the original prelude function cannot be passed through
        # unchanged.  (We assert the shape: the call site wraps sortBy
        # in OK-checking case analysis.)
        from repro.lang.pretty import pretty

        text = pretty(encoded)
        assert "case" in text and "Bad" in text
