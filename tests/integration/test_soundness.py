"""THE soundness property (DESIGN.md invariant 1), linking the two
layers of the paper's semantics:

    For any program e and ANY evaluation strategy:
      * machine observes exception x  =>  [e] = Bad s with x ∈ s
      * machine returns normal v      =>  [e] = Ok v' matching v
      * machine diverges              =>  NonTermination ∈ s (i.e. ⊥)

Checked over hand-written programs covering every language feature and
over hypothesis-generated random programs.
"""

import pytest
from hypothesis import given, settings

from repro.core.denote import DenoteContext, denote
from repro.core.domains import Bad, ConVal, Ok
from repro.core.excset import NON_TERMINATION
from repro.machine import (
    Diverged,
    Exceptional,
    Machine,
    Normal,
)
from repro.machine.strategy import standard_strategies
from repro.machine.values import VCon, VInt, VStr
from repro.api import compile_expr
from repro.prelude.loader import denote_env, machine_env

from tests.genexpr import int_exprs

HAND_WRITTEN = [
    "1 + 2",
    "(1 `div` 0) + 2",
    '(1 `div` 0) + error "Urk"',
    "(raise Overflow * raise DivideByZero) + raise PatternMatchFail",
    "(\\x -> 3) (1 `div` 0)",
    "(\\x -> x + x) (1 `div` 0)",
    "seq (1 `div` 0) (raise Overflow)",
    "case raise DivideByZero of { True -> raise Overflow; False -> 1 }",
    "case Just (1 `div` 0) of { Just v -> 7; Nothing -> 8 }",
    "case Just (1 `div` 0) of { Just v -> v; Nothing -> 8 }",
    "head [1 `div` 0]",
    "sum [1, 2, 3]",
    "head (zipWith (+) [1] [1, 2])",
    "let { v = raise Overflow } in 5",
    "let { v = raise Overflow } in v + v",
    "let { w = w + 1 } in w",
    "mapException (\\e -> Overflow) (1 `div` 0)",
    'mapException (\\e -> e) ((1 `div` 0) + error "Urk")',
    "fix (\\x -> 42)",
    "if (1 `div` 0) == 1 then raise Overflow else raise DivideByZero",
]


def _check_soundness(expr, denote_env_builder, machine_env_builder,
                     fuel=60_000):
    ctx = DenoteContext(fuel=fuel)
    denoted = denote(expr, denote_env_builder(ctx), ctx)
    for strategy in standard_strategies():
        machine = Machine(strategy=strategy, fuel=fuel)
        env = machine_env_builder(machine)
        try:
            value = machine.eval(expr, env)
            outcome = Normal(value)
        except Exception as err:  # noqa: BLE001 - classified below
            from repro.machine.heap import MachineDiverged, ObjRaise

            if isinstance(err, ObjRaise):
                outcome = Exceptional(err.exc)
            elif isinstance(err, (MachineDiverged, RecursionError)):
                outcome = Diverged()
            else:
                raise
        _assert_agrees(denoted, outcome, expr, strategy)


def _assert_agrees(denoted, outcome, expr, strategy):
    if isinstance(outcome, Normal):
        assert isinstance(denoted, Ok), (
            f"{strategy}: machine Normal but denotation {denoted}"
        )
        value = outcome.value
        if isinstance(value, VInt):
            assert denoted.value == value.value
        elif isinstance(value, VStr):
            assert denoted.value == value.value
        elif isinstance(value, VCon):
            assert isinstance(denoted.value, ConVal)
            assert denoted.value.name == value.name
    elif isinstance(outcome, Exceptional):
        assert isinstance(denoted, Bad), (
            f"{strategy}: observed {outcome.exc} but denotation {denoted}"
        )
        assert outcome.exc in denoted.excs, (
            f"{strategy}: {outcome.exc} not in {denoted.excs}"
        )
    else:  # Diverged
        # Fuel parity between the layers is not exact; divergence is
        # only sound against ⊥ (which contains NonTermination) — or
        # against a denotation that itself ran out of fuel.
        assert isinstance(denoted, Bad), str(denoted)
        assert NON_TERMINATION in denoted.excs


class TestHandWritten:
    @pytest.mark.parametrize("source", HAND_WRITTEN)
    def test_soundness(self, source):
        expr = compile_expr(source)
        _check_soundness(expr, denote_env, machine_env)


class TestRandomPrograms:
    @given(int_exprs(depth=4))
    @settings(max_examples=200, deadline=None)
    def test_soundness_random(self, expr):
        _check_soundness(
            expr,
            lambda ctx: {},
            lambda machine: {},
            fuel=20_000,
        )

    @given(int_exprs(depth=5))
    @settings(max_examples=60, deadline=None)
    def test_soundness_random_deeper(self, expr):
        _check_soundness(
            expr,
            lambda ctx: {},
            lambda machine: {},
            fuel=30_000,
        )


class TestBlackholeSoundness:
    def test_nontermination_report_is_sound(self):
        # Blackhole detection reports NonTermination; the denotation of
        # the knot is ⊥, whose set contains NonTermination.
        expr = compile_expr("let { black = black + 1 } in black")
        ctx = DenoteContext(fuel=20_000)
        denoted = denote(expr, denote_env(ctx), ctx)
        machine = Machine(detect_blackholes=True)
        from repro.machine.heap import ObjRaise

        with pytest.raises(ObjRaise) as err:
            machine.eval(expr, machine_env(machine))
        assert isinstance(denoted, Bad)
        assert err.value.exc in denoted.excs
