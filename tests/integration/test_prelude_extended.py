"""Extended prelude functions and their interaction with exceptions."""

import pytest

from repro.core.domains import Ok
from tests.conftest import d, exc_names, ok_value


class TestListFunctions:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("sum (takeWhile (\\x -> x < 4) [1, 2, 3, 4, 1])", 6),
            ("sum (dropWhile (\\x -> x < 4) [1, 2, 3, 4, 1])", 5),
            ("fst (splitAt 2 [9, 8, 7])", None),
            ("sum (fst (splitAt 2 [9, 8, 7]))", 17),
            ("sum (snd (splitAt 2 [9, 8, 7]))", 7),
            ("last [1, 2, 3]", 3),
            ("sum (init [1, 2, 3])", 3),
            ("sum (intersperse 0 [1, 2, 3])", 6),
            ("length (intersperse 0 [1, 2, 3])", 5),
            ("sum (zipWith3 (\\a b c -> a + b * c) [1,2] [3,4] [5,6])", 42),
            ("sum (fst (unzip [(1, 9), (2, 8)]))", 3),
            ("sum (snd (unzip [(1, 9), (2, 8)]))", 17),
            ("length (nub [1, 2, 1, 3, 2])", 3),
            ("gcdI 12 18", 6),
            ("gcdI 7 13", 1),
            ("signum (negate 4) + signum 0 + signum 9", 0),
        ],
    )
    def test_value(self, source, expected):
        if expected is None:
            assert isinstance(d(source), Ok)
        else:
            assert d(source, fuel=400_000) == Ok(expected)

    def test_predicates(self):
        assert ok_value(d("even 4")).name == "True"
        assert ok_value(d("odd 4")).name == "False"

    def test_span(self):
        assert d("sum (fst (span (\\x -> x < 3) [1,2,3,1]))") == Ok(3)
        assert d("sum (snd (span (\\x -> x < 3) [1,2,3,1]))") == Ok(4)

    def test_show_functions(self):
        assert d('showBool True') == Ok("True")
        assert d("showIntList [1, 2]") == Ok("[1, 2]")
        assert d("showIntList Nil") == Ok("[]")

    def test_errors(self):
        assert exc_names(d("last Nil")) == {"UserError"}
        assert exc_names(d("init Nil")) == {"UserError"}


class TestLazinessInteraction:
    def test_takewhile_on_infinite_list(self):
        value = d(
            "sum (takeWhile (\\x -> x < 5) (iterate (\\x -> x + 1) 1))",
            fuel=400_000,
        )
        assert value == Ok(10)

    def test_exception_beyond_take_cut_invisible(self):
        # take does not force elements, so an exception past the cut
        # never surfaces (unlike takeWhile, whose predicate forces).
        assert d("sum (take 2 [1, 2, 3 `div` 0])") == Ok(3)

    def test_takewhile_predicate_forces_elements(self):
        # The predicate must evaluate the third element; the tail of
        # takeWhile's result is exceptional, and sum's recursive
        # traversal of an exceptional tail denotes ⊥ (finding F-1).
        from repro.core.domains import BOTTOM

        value = d(
            "sum (takeWhile (\\x -> x < 3) [1, 2, 3 `div` 0, 4])",
            fuel=60_000,
        )
        assert value == BOTTOM
        # The machine, however, observes precisely DivideByZero — a
        # member of ⊥'s set (soundness).
        from repro.api import observe_source
        from repro.machine import Exceptional

        out = observe_source(
            "sum (takeWhile (\\x -> x < 3) [1, 2, 3 `div` 0, 4])"
        )
        assert isinstance(out, Exceptional)
        assert out.exc.name == "DivideByZero"

    def test_last_skips_lurking_exceptions(self):
        # last only forces the spine and the final element.
        assert d("last [1 `div` 0, 2 `div` 0, 9]") == Ok(9)
