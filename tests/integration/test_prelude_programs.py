"""End-to-end programs exercising the prelude through the full
pipeline (parse -> flatten -> typecheck -> machine/denotation)."""

import pytest

from repro.api import (
    compile_program,
    denote_source,
    observe_source,
    run_io_program,
    typecheck_program,
)
from repro.core.domains import Ok
from repro.machine import Exceptional, Normal
from tests.conftest import d, exc_names, ok_value


class TestPreludeFunctions:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("length [1, 2, 3]", 3),
            ("sum (map (\\x -> x * 2) [1, 2, 3])", 12),
            ("product [1, 2, 3, 4]", 24),
            ("foldr (\\a b -> a + b) 0 [1, 2, 3]", 6),
            ("foldl (\\a b -> a - b) 10 [1, 2, 3]", 4),
            ("head (reverse [1, 2, 3])", 3),
            ("sum (filter (\\x -> x > 2) [1, 2, 3, 4])", 7),
            ("sum (take 3 (iterate (\\x -> x * 2) 1))", 7),
            ("length (drop 2 [1, 2, 3, 4])", 2),
            ("maximum [3, 1, 4, 1, 5]", 5),
            ("minimum [3, 1, 4, 1, 5]", 1),
            ("sum (append [1, 2] [3, 4])", 10),
            ("length (replicate 5 'x')", 5),
            ("sum (concat [[1], [2, 3], []])", 6),
            ("sum (concatMap (\\x -> [x, x]) [1, 2])", 6),
            ("abs (negate 7)", 7),
            ("max 2 3 + min 2 3", 5),
            ("fst (Tuple2 1 2) + snd (Tuple2 1 2)", 3),
            ("fromMaybe 0 (Just 9)", 9),
            ("fromMaybe 0 Nothing", 0),
            ("maybe 0 (\\v -> v + 1) (Just 4)", 5),
            ("sum (enumFromTo 1 100)", 5050),
            ("length (zip [1, 2, 3] ['a', 'b', 'c'])", 3),
        ],
    )
    def test_expression(self, source, expected):
        assert d(source, fuel=500_000) == Ok(expected)

    def test_lookup_alternative_return(self):
        # The paper's "alternative return" example (Section 2),
        # explicitly encoded with Maybe — "works beautifully".
        source = (
            "case lookup 2 [(1, 10), (2, 20)] of "
            "{ Just v -> v; Nothing -> 0 }"
        )
        assert d(source) == Ok(20)

    def test_bools(self):
        assert ok_value(d("and True (or False True)")).name == "True"
        assert ok_value(d("not True")).name == "False"
        assert ok_value(d("all (\\x -> x > 0) [1, 2]")).name == "True"
        assert ok_value(d("any (\\x -> x > 1) [1, 2]")).name == "True"
        assert ok_value(d("elem 3 [1, 2, 3]")).name == "True"

    def test_force_list_surfaces_exception(self):
        # forceList seqs each element as the spine is consumed, so
        # reaching the second cell forces the lurking exception.  (The
        # set also contains head's own empty-list error: head applied
        # to an exceptional list explores its Nil branch in
        # exception-finding mode.)
        value = d("head (tail (forceList [1, 2 `div` 0, 3]))")
        assert "DivideByZero" in exc_names(value)
        # The tail alone is precise:
        assert exc_names(
            d("tail (forceList [1, 2 `div` 0, 3])")
        ) == {"DivideByZero"}

    def test_force_list_on_machine(self):
        out = observe_source(
            "forceList [1, 2 `div` 0, 3]", deep=True
        )
        assert isinstance(out, Exceptional)
        assert out.exc.name == "DivideByZero"

    def test_machine_agrees(self):
        out = observe_source("sum (enumFromTo 1 100)")
        assert isinstance(out, Normal)
        assert out.value.value == 5050


class TestWholePrograms:
    FACTORIAL = """
factorial :: Int -> Int
factorial n = if n <= 1 then 1 else n * factorial (n - 1)

main :: IO Unit
main = putStr (showInt (factorial 10))
"""

    def test_factorial(self):
        result = run_io_program(self.FACTORIAL, typecheck=True)
        assert result.stdout == "3628800"

    PRIMES = """
sieve :: [Int] -> [Int]
sieve (p:xs) = p : sieve (filter (\\x -> x `mod` p /= 0) xs)
sieve Nil = Nil

primes :: [Int]
primes = sieve (enumFromTo 2 1000)

main = putStr (showInt (sum (take 10 primes)))
"""

    def test_lazy_sieve(self):
        result = run_io_program(self.PRIMES, typecheck=True)
        # First 10 primes: 2+3+5+7+11+13+17+19+23+29 = 129
        assert result.stdout == "129"

    RECOVERY = """
risky :: Int -> Int
risky n = 100 `div` n

main = do
  r <- getException (risky 0)
  case r of
    OK v -> putStr (showInt v)
    Bad e -> do
      putStr "recovered: "
      putStr (showException e)
"""

    def test_disaster_recovery(self):
        # The paper's "disaster recovery" usage (Section 2).
        result = run_io_program(self.RECOVERY, typecheck=True)
        assert result.stdout == "recovered: DivideByZero"

    def test_user_data_program(self):
        source = """
data Expr = Num Int | Add Expr Expr | Div Expr Expr

evalE :: Expr -> Int
evalE e = case e of
            Num n -> n
            Add a b -> evalE a + evalE b
            Div a b -> evalE a `div` evalE b

main = do
  r <- getException (evalE (Div (Num 1) (Add (Num 2) (Num (negate 2)))))
  case r of
    OK v -> putStr (showInt v)
    Bad e -> putStr (showException e)
"""
        result = run_io_program(source, typecheck=True)
        assert result.stdout == "DivideByZero"
