"""Every example script must run cleanly and print its headline facts
(they are part of the documented surface of the library)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda p: p.name
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr


def _run(script_name):
    script = next(p for p in EXAMPLES if p.name == script_name)
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestHeadlineFacts:
    def test_quickstart_shows_the_set_and_both_representatives(self):
        out = _run("quickstart.py")
        assert "Bad {DivideByZero, UserError 'Urk'}" in out
        assert "DivideByZero" in out
        assert "UserError 'Urk'" in out
        assert "identity" in out

    def test_transformation_table_shape(self):
        out = _run("transformation_validity.py")
        assert "unsound" in out  # baselines lose rules
        assert "commute-prim-args" in out
        assert "eta-reduce" in out

    def test_calculator_recovers(self):
        out = _run("calculator.py")
        assert "!! DivideByZero" in out
        assert "= 30" in out

    def test_async_interception(self):
        out = _run("async_interrupts.py")
        assert "interrupted: ControlC" in out
        assert "watchdog: Timeout" in out
        assert "resumed" in out

    def test_semantics_explorer_fictitious(self):
        out = _run("semantics_explorer.py")
        assert "permitted" in out
        assert "~" in out  # fictitious-exception marker

    def test_parser_combinators(self):
        out = _run("parser_combinators.py")
        assert "1 + 2 * 3 = 7" in out
        assert "!! DivideByZero" in out
        assert "parse error" in out
