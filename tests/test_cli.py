"""CLI tests: every subcommand through main()."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDenote:
    def test_simple(self, capsys):
        code, out, _err = run_cli(capsys, "denote", "1 + 2")
        assert code == 0
        assert out.strip() == "Ok 3"

    def test_exception_set(self, capsys):
        _code, out, _ = run_cli(
            capsys, "denote", '(1 `div` 0) + error "Urk"'
        )
        assert "DivideByZero" in out and "Urk" in out

    def test_fixed_order_semantics(self, capsys):
        _code, out, _ = run_cli(
            capsys,
            "denote",
            '(1 `div` 0) + error "Urk"',
            "--semantics",
            "fixed-order",
        )
        assert "DivideByZero" in out and "Urk" not in out


class TestEval:
    def test_normal(self, capsys):
        code, out, _ = run_cli(capsys, "eval", "sum [1, 2, 3]")
        assert code == 0
        assert out.strip() == "6"

    def test_strategy_changes_exception(self, capsys):
        _c, left, _ = run_cli(
            capsys, "eval", '(1 `div` 0) + error "Urk"'
        )
        _c, right, _ = run_cli(
            capsys,
            "eval",
            '(1 `div` 0) + error "Urk"',
            "--strategy",
            "right-to-left",
        )
        assert "DivideByZero" in left
        assert "Urk" in right

    def test_shuffled_strategy(self, capsys):
        code, _out, _ = run_cli(
            capsys, "eval", "1 + 1", "--strategy", "shuffled:3"
        )
        assert code == 0

    def test_unknown_strategy(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(capsys, "eval", "1", "--strategy", "nope")

    def test_lazy_structure_rendering(self, capsys):
        _c, out, _ = run_cli(capsys, "eval", "[1 `div` 0, 2]")
        assert "<raise DivideByZero>" in out


class TestLaw:
    def test_identity_exit_zero(self, capsys):
        code, out, _ = run_cli(capsys, "law", "a + b", "b + a")
        assert code == 0
        assert "identity" in out

    def test_unsound_exit_one(self, capsys):
        code, out, _ = run_cli(
            capsys, "law", "a + b", "b + a", "--semantics", "fixed-order"
        )
        assert code == 1
        assert "unsound" in out

    def test_function_vars(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "law",
            "(\\x -> f x) a",
            "f a",
            "--functions",
            "f",
        )
        assert code == 0
        assert "identity" in out


class TestTrace:
    def test_enumerates(self, capsys):
        _c, out, _ = run_cli(
            capsys,
            "trace",
            "getException (1 `div` 0) >>= (\\r -> returnIO r)",
        )
        assert "ok" in out

    def test_branching(self, capsys):
        _c, out, _ = run_cli(
            capsys,
            "trace",
            "getException ((1 `div` 0) + raise Overflow) >>= "
            "(\\r -> case r of { OK v -> putChar 'k'; "
            "Bad e -> case e of { DivideByZero -> putChar 'd'; "
            "_ -> putChar 'o' } })",
        )
        assert "!d" in out and "!o" in out


class TestOptimise:
    def test_beta(self, capsys):
        _c, out, _ = run_cli(
            capsys, "optimise", "(\\x -> x + 1) 2", "--level", "O1"
        )
        assert out.strip() == "2 + 1"

    def test_o0_echo(self, capsys):
        _c, out, _ = run_cli(
            capsys, "optimise", "a + b", "--level", "O0"
        )
        assert out.strip() == "a + b"


class TestFileCommands:
    def test_run_program(self, capsys, tmp_path):
        script = tmp_path / "hello.hs"
        script.write_text('main = putStr "hi"\n')
        code, out, _ = run_cli(capsys, "run", str(script))
        assert code == 0
        assert out == "hi"

    def test_run_uncaught_exit_code(self, capsys, tmp_path):
        script = tmp_path / "boom.hs"
        script.write_text("main = putStr (showInt (1 `div` 0))\n")
        code, _out, err = run_cli(capsys, "run", str(script))
        assert code == 1
        assert "DivideByZero" in err

    def test_run_with_stdin(self, capsys, tmp_path):
        script = tmp_path / "echo.hs"
        script.write_text(
            "main = getChar >>= (\\c -> putChar c)\n"
        )
        code, out, _ = run_cli(
            capsys, "run", str(script), "--stdin", "z"
        )
        assert out == "z"

    def test_typecheck_file(self, capsys, tmp_path):
        script = tmp_path / "mod.hs"
        script.write_text("double x = x + x\n")
        code, out, _ = run_cli(capsys, "typecheck", str(script))
        assert code == 0
        assert "double :: Int -> Int" in out


class TestDenoteDeep:
    def test_deep_rendering(self, capsys):
        code, out, _ = run_cli(
            capsys, "denote", "[1, 2 `div` 0, 3]", "--deep"
        )
        assert code == 0
        assert out.strip() == "[1, <Bad {DivideByZero}>, 3]"

    def test_shallow_default(self, capsys):
        _c, out, _ = run_cli(capsys, "denote", "[1, 2]")
        assert "Cons" in out


class TestProfile:
    def test_table_default(self, capsys):
        code, out, _ = run_cli(capsys, "profile", "sum [1, 2, 3]")
        assert code == 0
        assert "outcome  6" in out
        assert "machine stats" in out
        assert "steps" in out

    def test_json_format(self, capsys):
        import json

        code, out, _ = run_cli(
            capsys, "profile", "1 + 2", "--format", "json"
        )
        assert code == 0
        data = json.loads(out)
        assert data["outcome"] == "3"
        assert data["machine_stats"]["steps"] == data["events"]["step"]

    def test_denote_layer(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "profile",
            "(1 `div` 0) + raise Overflow",
            "--layer",
            "denote",
        )
        assert code == 0
        assert "DivideByZero" in out
        assert "set-width histogram" in out

    def test_both_layers(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "1 + 2", "--layer", "both"
        )
        assert code == 0
        assert "machine stats" in out
        assert "denotational stats" in out

    def test_trace_file(self, capsys, tmp_path):
        from repro.obs import read_trace

        path = str(tmp_path / "out.jsonl")
        code, out, _ = run_cli(
            capsys, "profile", "1 + 2", "--trace", path
        )
        assert code == 0
        assert path in out
        records = read_trace(path)
        assert any(r["event"] == "step" for r in records)

    def test_strategy_flag(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "profile",
            '(1 `div` 0) + error "Urk"',
            "--strategy",
            "right-to-left",
        )
        assert code == 0
        assert "Urk" in out


class TestLawTypedConvention:
    def test_case_switch_via_cli(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "law",
            "case x of { Tuple2 a b -> "
            "case y of { Tuple2 s t -> a + s } }",
            "case y of { Tuple2 s t -> "
            "case x of { Tuple2 a b -> a + s } }",
        )
        assert code == 0
        assert "identity" in out

    def test_plain_disables_convention(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "law",
            "case x of { Tuple2 a b -> a }",
            "case x of { Tuple2 a b -> a }",
            "--plain",
        )
        # Reflexive, so still identity even with scalar x.
        assert code == 0


class TestFuzz:
    def test_bounded_run_json(self, capsys):
        import json

        code, out, _ = run_cli(
            capsys, "fuzz", "--iterations", "25", "--seed", "0",
            "--format", "json",
        )
        assert code == 0
        data = json.loads(out)
        assert data["iterations"] == 25
        assert data["findings"] == []
        assert data["machine"]["steps"] > 0
        assert set(data["verdicts"]) <= {"agree", "refinement"}
        assert sum(data["case_steps"]["buckets"]) == 25
        assert data["timing"]["cases_per_second"] > 0
        assert data["timing"]["lane_seconds"]["reference"] > 0

    def test_table_format(self, capsys):
        code, out, _ = run_cli(
            capsys, "fuzz", "--iterations", "10", "--seed", "4",
        )
        assert code == 0
        assert "verdicts:" in out
        assert "machine:" in out

    def test_replay_corpus(self, capsys):
        code, out, _ = run_cli(
            capsys, "fuzz", "--replay",
            "tests/fuzz/corpus/regressions.jsonl",
        )
        assert code == 0
        assert "0 mismatches" in out


class TestTop:
    def test_unreachable_service_exits_one(self, capsys):
        code, out, _ = run_cli(
            capsys, "top", "--url", "http://127.0.0.1:1",
            "--iterations", "1", "--no-clear",
        )
        assert code == 1
        assert "unreachable" in out


class TestExplain:
    def test_distinct_raise_sites_per_member(self, capsys, tmp_path):
        script = tmp_path / "two.hs"
        script.write_text('main = (1 `div` 0) + error "boom"\n')
        code, out, _ = run_cli(capsys, "explain", str(script))
        assert code == 0
        # Each member prints its own raise site, and they differ.
        assert "DivideByZero raised at 1:9-18" in out
        assert "UserError 'boom' raised at" in out
        sites = {
            line.rsplit("raised at ", 1)[1].split()[0]
            for line in out.splitlines()
            if "raised at" in line
        }
        assert len(sites) == 2
        assert "observed:" in out

    def test_expression_entry(self, capsys, tmp_path):
        script = tmp_path / "expr.hs"
        script.write_text("main = sum [1, 2 `div` 0, 3]\n")
        code, out, _ = run_cli(capsys, "explain", str(script))
        assert code == 0
        assert "DivideByZero" in out

    def test_normal_value_reported(self, capsys, tmp_path):
        script = tmp_path / "ok.hs"
        script.write_text("main = 1 + 2\n")
        code, out, _ = run_cli(capsys, "explain", str(script))
        assert code == 0
        assert "no exception observed" in out

    def test_compiled_backend(self, capsys, tmp_path):
        script = tmp_path / "two.hs"
        script.write_text('main = (1 `div` 0) + error "boom"\n')
        code, out, _ = run_cli(
            capsys, "explain", str(script), "--backend", "compiled"
        )
        assert code == 0
        assert "DivideByZero" in out


class TestProfileAttribution:
    def test_attribution_table(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "sum [1, 2, 3]", "--attribution"
        )
        assert code == 0
        assert "span attribution" in out

    def test_flame_writes_folded_stacks(self, capsys, tmp_path):
        path = str(tmp_path / "out.folded")
        code, out, _ = run_cli(
            capsys, "profile", "sum [1, 2, 3]", "--flame", path
        )
        assert code == 0
        assert path in out
        lines = (tmp_path / "out.folded").read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("<top>")
            assert int(count) > 0

    def test_compiled_backend_named_in_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "profile", "1 + 2", "--backend", "compiled"
        )
        assert code == 0
        assert "backend  compiled" in out


class TestBench:
    def test_compare_checked_in_seeds_against_themselves(self, capsys):
        code, out, _ = run_cli(
            capsys, "bench", "--records", "benchmarks/records"
        )
        assert code == 0
        assert "0 regression(s)" in out

    def test_regression_exits_one(self, capsys, tmp_path):
        import json as _json

        seed = _json.loads(
            open("benchmarks/records/BENCH_E1.json").read()
        )
        for row in seed["rows"]:
            for key, value in row.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    row[key] = value * 10 + 1
        (tmp_path / "BENCH_E1.json").write_text(_json.dumps(seed))
        code, out, _ = run_cli(
            capsys,
            "bench",
            "--experiments",
            "E1",
            "--records",
            str(tmp_path),
        )
        assert code == 1
        assert "REGRESSION" in out

    def test_missing_seed_errors(self, capsys, tmp_path, monkeypatch):
        code, _out, err = run_cli(
            capsys,
            "bench",
            "--records",
            "benchmarks/records",
            "--seed-dir",
            str(tmp_path),
        )
        assert code == 1
        assert "--update" in err

    def test_json_format(self, capsys):
        import json as _json

        code, out, _ = run_cli(
            capsys,
            "bench",
            "--records",
            "benchmarks/records",
            "--format",
            "json",
        )
        assert code == 0
        data = _json.loads(out)
        assert data["ok"] is True
