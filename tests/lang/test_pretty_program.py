"""Whole-program pretty-printing: data declarations and modules
round-trip through the parser."""

import pytest

from repro.lang.names import alpha_equivalent
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_data_decl, pretty_program

SOURCES = [
    "x = 1\ny = x + 1",
    "data Color = Red | Green | Blue\npick = Red",
    "data Box a = Box a Int\nmk v = Box v 1",
    "data Tree a = Leaf | Node (Tree a) a (Tree a)\nempty = Leaf",
    "f Nil = 0\nf (Cons x xs) = 1 + f xs",
    "apply2 g v = g (g v)",
]


class TestProgramRoundTrip:
    @pytest.mark.parametrize("source", SOURCES)
    def test_roundtrip(self, source):
        program = parse_program(source)
        printed = pretty_program(program)
        reparsed = parse_program(printed)
        assert len(reparsed.binds) == len(program.binds)
        for (name_a, rhs_a), (name_b, rhs_b) in zip(
            program.binds, reparsed.binds
        ):
            assert name_a == name_b
            assert alpha_equivalent(rhs_a, rhs_b), printed
        assert reparsed.data_decls == program.data_decls


class TestDataDeclRendering:
    def test_enum(self):
        program = parse_program("data RGB = R | G | B\nx = R")
        assert (
            pretty_data_decl(program.data_decls[0])
            == "data RGB = R | G | B"
        )

    def test_fields_and_params(self):
        program = parse_program("data P a b = P a b\nx = 1")
        assert (
            pretty_data_decl(program.data_decls[0])
            == "data P a b = P a b"
        )

    def test_nested_field_type(self):
        program = parse_program(
            "data T = T (List Int) (Int -> Int)\nx = 1"
        )
        text = pretty_data_decl(program.data_decls[0])
        assert "(List Int)" in text
        assert "(Int -> Int)" in text
