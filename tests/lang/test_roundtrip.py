"""Pretty-printer round-trip: ``parse(pretty(e))`` is alpha-equivalent
to ``e`` (invariant 5 of DESIGN.md)."""

from hypothesis import given, settings

from repro.lang.names import alpha_equivalent
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty

from tests.genexpr import int_exprs

HAND_WRITTEN = [
    "x",
    "42",
    "-7",
    '"a string"',
    "'c'",
    "\\x -> x + 1",
    "\\f x -> f (f x)",
    "f a b c",
    "1 + 2 * 3 - 4",
    "1 - (2 - 3)",
    "a `div` b `mod` c",
    "a == b",
    "Cons 1 (Cons 2 Nil)",
    "Just (Just 3)",
    "(1, (2, 3))",
    "case xs of { Cons y ys -> y; Nil -> 0 }",
    "case n of { 0 -> 1; _ -> n * 2 }",
    "let { x = 1; y = x + 1 } in y",
    "let { f = \\x -> f x } in f 1",
    "raise DivideByZero",
    "raise (UserError \"boom\")",
    "fix (\\f -> f)",
    "seq a b",
    "mapException (\\e -> e) x",
    "getException (1 `div` 0)",
    "if a then b else c",
    "(case c of { True -> f; False -> g }) x",
]


class TestHandWrittenRoundTrip:
    def test_all_cases(self):
        for source in HAND_WRITTEN:
            expr = parse_expr(source)
            reparsed = parse_expr(pretty(expr))
            assert alpha_equivalent(expr, reparsed), (
                f"round-trip failed for {source!r}: "
                f"pretty = {pretty(expr)!r}"
            )


class TestPropertyRoundTrip:
    @given(int_exprs(depth=4))
    @settings(max_examples=200, deadline=None)
    def test_parse_pretty_roundtrip(self, expr):
        printed = pretty(expr)
        reparsed = parse_expr(printed)
        assert alpha_equivalent(expr, reparsed), printed

    @given(int_exprs(depth=3))
    @settings(max_examples=100, deadline=None)
    def test_pretty_is_stable(self, expr):
        """pretty . parse . pretty == pretty (idempotent rendering)."""
        once = pretty(expr)
        twice = pretty(parse_expr(once))
        assert once == twice
