"""Pattern-match compilation tests: nested patterns -> flat cases,
with semantics preserved (checked against the denotational evaluator).
"""

from repro.core.denote import DenoteContext, denote_expr
from repro.core.domains import Bad, Ok
from repro.core.ordering import sem_equal
from repro.lang.ast import Case, PCon, PVar, PWild
from repro.lang.match import (
    flatten_case_patterns,
    sibling_map,
)
from repro.lang.parser import parse_expr


def _is_flat_case(expr) -> bool:
    if isinstance(expr, Case):
        for alt in expr.alts:
            if isinstance(alt.pattern, PCon):
                if not all(
                    isinstance(p, (PVar, PWild)) for p in alt.pattern.args
                ):
                    return False
    return True


def _all_cases_flat(expr) -> bool:
    from repro.lang.ast import (
        App,
        Con,
        Fix,
        Lam,
        Let,
        PrimOp,
        Raise,
    )

    if isinstance(expr, Case):
        if not _is_flat_case(expr):
            return False
        return _all_cases_flat(expr.scrutinee) and all(
            _all_cases_flat(alt.body) for alt in expr.alts
        )
    if isinstance(expr, Lam):
        return _all_cases_flat(expr.body)
    if isinstance(expr, App):
        return _all_cases_flat(expr.fn) and _all_cases_flat(expr.arg)
    if isinstance(expr, Con):
        return all(_all_cases_flat(a) for a in expr.args)
    if isinstance(expr, Raise):
        return _all_cases_flat(expr.exc)
    if isinstance(expr, PrimOp):
        return all(_all_cases_flat(a) for a in expr.args)
    if isinstance(expr, Fix):
        return _all_cases_flat(expr.fn)
    if isinstance(expr, Let):
        return all(_all_cases_flat(r) for _n, r in expr.binds) and (
            _all_cases_flat(expr.body)
        )
    return True


def _check(source: str, expected):
    """Flatten and denote; compare against expectation."""
    expr = flatten_case_patterns(parse_expr(source))
    assert _all_cases_flat(expr), f"still nested: {expr}"
    value = denote_expr(expr, fuel=50_000)
    if isinstance(expected, int):
        assert value == Ok(expected), f"{source}: {value}"
    else:
        assert isinstance(value, Bad)
        names = {e.name for e in value.excs.finite_members()}
        assert expected in names, f"{source}: {value}"


class TestFlatCasesUntouched:
    def test_flat_case_unchanged(self):
        expr = parse_expr("case xs of { Cons y ys -> y; Nil -> 0 }")
        assert flatten_case_patterns(expr) == expr

    def test_literal_patterns_unchanged(self):
        expr = parse_expr("case n of { 0 -> 1; _ -> 2 }")
        assert flatten_case_patterns(expr) == expr


class TestNestedPatterns:
    def test_nested_constructor(self):
        _check(
            "case Just (Just 5) of { Just (Just y) -> y; _ -> 0 }", 5
        )

    def test_nested_falls_through(self):
        _check(
            "case Just Nothing of { Just (Just y) -> y; _ -> 7 }", 7
        )

    def test_deeply_nested(self):
        _check(
            "case Cons (Tuple2 1 2) Nil of "
            "{ Cons (Tuple2 a b) Nil -> a + b; _ -> 0 }",
            3,
        )

    def test_list_pattern(self):
        _check("case [1, 2] of { [a, b] -> a * 10 + b; _ -> 0 }", 12)

    def test_match_failure_raises(self):
        _check(
            "case Cons 1 (Cons 2 (Cons 3 Nil)) of { [a, b] -> a }",
            "PatternMatchFail",
        )

    def test_literal_inside_constructor(self):
        _check("case Just 3 of { Just 3 -> 1; Just _ -> 2; _ -> 0 }", 1)
        _check("case Just 4 of { Just 3 -> 1; Just _ -> 2; _ -> 0 }", 2)

    def test_sequential_first_match_wins(self):
        _check(
            "case Tuple2 1 2 of "
            "{ Tuple2 1 b -> b; Tuple2 a b -> a + b; _ -> 0 }",
            2,
        )

    def test_fallthrough_between_constructor_groups(self):
        _check(
            "case Cons 9 Nil of "
            "{ Nil -> 0; Cons (Just y) t -> y; _ -> 42 }",
            42,
        )


class TestExhaustivenessHandling:
    def test_exhaustive_bool_gets_no_default(self):
        expr = flatten_case_patterns(
            parse_expr(
                "case p of { Tuple2 (True) b -> 1; Tuple2 (False) b -> 2 }"
            )
        )
        # The inner Bool case must not grow a spurious default
        # alternative: exception-finding mode explores every
        # alternative, and a default would inject PatternMatchFail.
        value = denote_expr(
            flatten_case_patterns(
                parse_expr(
                    "case Tuple2 (raise DivideByZero) 0 of "
                    "{ Tuple2 (True) b -> 1; Tuple2 (False) b -> 2 }"
                )
            ),
            fuel=50_000,
        )
        assert isinstance(value, Bad)
        names = {e.name for e in value.excs.finite_members()}
        assert names == {"DivideByZero"}

    def test_sibling_map_includes_user_decls(self):
        from repro.lang.parser import parse_program

        program = parse_program("data RGB = R | G | B\nx = R")
        siblings = sibling_map(program)
        assert siblings["R"] == {"R", "G", "B"}


class TestSemanticsPreserved:
    CASES = [
        "case Just (Tuple2 1 2) of { Just (Tuple2 a b) -> a - b; "
        "Nothing -> 0 }",
        "case Cons 1 (Cons 2 Nil) of { (a : b : t) -> a + b; _ -> 0 }",
        "case Tuple2 (Just 1) (Just 2) of "
        "{ Tuple2 (Just a) (Just b) -> a + b; _ -> 0 }",
        "case Tuple2 1 (raise Overflow) of { Tuple2 a b -> a }",
    ]

    def test_machine_agrees_with_denotation(self):
        from repro.machine import Machine, Normal, observe
        from repro.machine.values import VInt

        for source in self.CASES:
            expr = flatten_case_patterns(parse_expr(source))
            denoted = denote_expr(expr, fuel=50_000)
            outcome = observe(expr, machine=Machine())
            if isinstance(denoted, Ok):
                assert isinstance(outcome, Normal)
                assert isinstance(outcome.value, VInt)
                assert outcome.value.value == denoted.value
