"""Guards and where clauses: parsing and semantics."""

import pytest

from repro.api import run_io_program
from repro.core.domains import Ok
from tests.conftest import d, exc_names


class TestEquationGuards:
    def test_basic_guards(self):
        source = """
classify n | n < 0 = 0 - 1
           | n == 0 = 0
           | otherwise = 1
main = putStr (showInt (classify 7))
"""
        assert run_io_program(source).stdout == "1"

    def test_guard_order(self):
        source = """
f n | n < 10 = 1
    | n < 100 = 2
    | otherwise = 3
main = putStr (showInt (f 50))
"""
        assert run_io_program(source).stdout == "2"

    def test_guard_falls_to_next_equation(self):
        source = """
g (Just n) | n > 0 = n
g _ = 99
main = putStr (showInt (g (Just 0) + g (Just 5)))
"""
        # Just 0 fails the guard -> next equation -> 99; Just 5 -> 5.
        assert run_io_program(source).stdout == "104"

    def test_all_guards_fail_is_pattern_match_failure(self):
        source = """
h n | n > 100 = n
main = putStr (showInt (h 1))
"""
        result = run_io_program(source)
        assert result.status == "exception"
        assert result.exc.name == "PatternMatchFail"

    def test_guards_see_pattern_bindings(self):
        source = """
pick (Tuple2 a b) | a > b = a
                  | otherwise = b
main = putStr (showInt (pick (Tuple2 3 9)))
"""
        assert run_io_program(source).stdout == "9"

    def test_exceptional_guard_propagates(self):
        value = d(
            "let { f = \\n -> case n of "
            "{ m | (1 `div` 0) == 0 -> 1; _ -> 2 } } in f 5"
        )
        assert "DivideByZero" in exc_names(value)


class TestCaseGuards:
    def test_guarded_alternative(self):
        assert d(
            "case 5 of { n | n < 3 -> 0 | n < 10 -> 1; _ -> 2 }"
        ) == Ok(1)

    def test_guard_failure_tries_next_alt(self):
        assert d(
            "case Just 0 of { Just n | n > 0 -> n; _ -> 42 }"
        ) == Ok(42)

    def test_mixed_guarded_and_plain(self):
        assert d(
            "case 7 of { 1 -> 10; n | even n -> 20; _ -> 30 }"
        ) == Ok(30)
        assert d(
            "case 8 of { 1 -> 10; n | even n -> 20; _ -> 30 }"
        ) == Ok(20)


class TestWhere:
    def test_simple_where(self):
        source = """
area r = pi3 * sq r
  where
    pi3 = 3
    sq x = x * x
main = putStr (showInt (area 10))
"""
        assert run_io_program(source).stdout == "300"

    def test_where_scopes_over_guards(self):
        source = """
grade n | n >= cutoff = 1
        | otherwise = 0
  where cutoff = 60
main = putStr (showInt (grade 75 + grade 40))
"""
        assert run_io_program(source).stdout == "1"

    def test_where_sees_parameters(self):
        source = """
scaled x = double + 1
  where double = x * 2
main = putStr (showInt (scaled 5))
"""
        assert run_io_program(source).stdout == "11"

    def test_where_bindings_recursive(self):
        source = """
run n = count n
  where count k = if k == 0 then 0 else 1 + count (k - 1)
main = putStr (showInt (run 7))
"""
        assert run_io_program(source).stdout == "7"

    def test_where_with_multi_equation_helper(self):
        source = """
describe xs = code xs
  where
    code Nil = 0
    code (y:ys) = 1 + code ys
main = putStr (showInt (describe [1, 2, 3]))
"""
        assert run_io_program(source).stdout == "3"

    def test_where_typechecks(self):
        source = """
norm :: Int -> Int
norm x = shift (abs x)
  where shift v = v + base
        base = 100
main = putStr (showInt (norm (negate 5)))
"""
        assert run_io_program(source, typecheck=True).stdout == "105"
