"""Source spans: stamped by the parser, preserved by every rewrite,
invisible to equality.

The provenance layer (docs/OBSERVABILITY.md, "Provenance &
attribution") depends on three properties tested here:

1. the parser stamps every node it produces with a tight span;
2. saturation, pattern flattening and substitution copy spans onto the
   nodes they rebuild;
3. spans are metadata — ``compare=False`` — so expression equality,
   hashing (exprs are dict keys in the transform layer) and the
   pretty-printer are untouched.
"""

from repro.api import compile_expr
from repro.lang.ast import (
    Case,
    Con,
    Lam,
    Lit,
    PrimOp,
    Raise,
    Span,
    span_of,
    with_span,
)
from repro.lang.parser import parse_expr


class TestSpanBasics:
    def test_span_renders_single_line(self):
        assert str(Span(1, 2, 1, 11)) == "1:2-11"

    def test_span_renders_multi_line(self):
        assert str(Span(1, 2, 3, 4)) == "1:2-3:4"

    def test_with_span_first_stamp_wins(self):
        node = Lit(1)
        with_span(node, Span(1, 1, 1, 2))
        with_span(node, Span(9, 9, 9, 10))
        assert span_of(node) == Span(1, 1, 1, 2)

    def test_spans_do_not_affect_equality_or_hash(self):
        a = with_span(PrimOp("+", (Lit(1), Lit(2))), Span(1, 1, 1, 6))
        b = PrimOp("+", (Lit(1), Lit(2)))
        assert a == b
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_spans_stay_out_of_repr(self):
        a = with_span(Lit(1), Span(1, 1, 1, 2))
        assert "Span" not in repr(a)


class TestParserStamping:
    def test_whole_expression_span(self):
        expr = parse_expr("1 + 2")
        assert span_of(expr) == Span(1, 1, 1, 6)

    def test_operand_spans_are_tight(self):
        expr = parse_expr("(1 `div` 0) + foo")
        # The right operand `foo` spans its own token only.
        assert isinstance(expr, PrimOp)
        assert span_of(expr.args[1]) == Span(1, 15, 1, 18)

    def test_parenthesised_subexpression(self):
        expr = parse_expr("(1 `div` 0) + foo")
        left = expr.args[0]
        assert span_of(left) == Span(1, 2, 1, 11)

    def test_multiline_spans(self):
        expr = parse_expr("1 +\n  2")
        assert span_of(expr) == Span(1, 1, 2, 4)

    def test_case_alternatives_carry_spans(self):
        expr = parse_expr(
            "case b of { True -> 1; False -> 2 }",
            con_arities={"True": 0, "False": 0},
        )
        assert isinstance(expr, Case)
        for alt in expr.alts:
            assert span_of(alt) is not None
            assert span_of(alt.body) is not None

    def test_patterns_carry_spans(self):
        expr = parse_expr(
            "case x of { Just y -> y }", con_arities={"Just": 1}
        )
        assert isinstance(expr, Case)
        assert span_of(expr.alts[0].pattern) is not None

    def test_lambda_and_let(self):
        expr = parse_expr("let { f = \\x -> x + 1 } in f 3")
        assert span_of(expr) is not None
        (name, rhs), = expr.binds
        assert name == "f"
        assert isinstance(rhs, Lam)
        assert span_of(rhs) is not None


class TestRewritePreservation:
    def test_compile_expr_keeps_spans(self):
        # Through parse -> saturate -> flatten.
        expr = compile_expr("(1 `div` 0) + error \"boom\"")
        assert isinstance(expr, PrimOp)
        assert span_of(expr.args[0]) == Span(1, 2, 1, 11)

    def test_flattened_case_keeps_alt_spans(self):
        expr = compile_expr(
            "case xs of { Cons y ys -> y; Nil -> 0 }"
        )
        assert isinstance(expr, Case)
        for alt in expr.alts:
            assert span_of(alt.body) is not None

    def test_saturated_constructor_keeps_span(self):
        expr = compile_expr("Just 1")
        assert isinstance(expr, Con)
        assert span_of(expr) == Span(1, 1, 1, 7)

    def test_raise_site_span_survives_compilation(self):
        expr = compile_expr("raise DivideByZero")
        assert isinstance(expr, Raise)
        assert span_of(expr) == Span(1, 1, 1, 19)
