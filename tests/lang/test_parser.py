"""Parser unit tests: core forms, sugar, programs, errors."""

import pytest

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Fix,
    Lam,
    Let,
    Lit,
    PCon,
    PLit,
    PrimOp,
    PVar,
    PWild,
    Raise,
    Var,
)
from repro.lang.parser import ParseError, parse_expr, parse_program


class TestAtoms:
    def test_variable(self):
        assert parse_expr("x") == Var("x")

    def test_int(self):
        assert parse_expr("42") == Lit(42, "int")

    def test_negative_int_literal_folded(self):
        assert parse_expr("-5") == Lit(-5, "int")

    def test_negate_of_variable(self):
        assert parse_expr("-x") == PrimOp("negate", (Var("x"),))

    def test_string(self):
        assert parse_expr('"hi"') == Lit("hi", "string")

    def test_char(self):
        assert parse_expr("'c'") == Lit("c", "char")

    def test_unit(self):
        assert parse_expr("()") == Con("Unit", (), 0)

    def test_parenthesised(self):
        assert parse_expr("(x)") == Var("x")


class TestOperators:
    def test_precedence(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr == PrimOp(
            "+",
            (Lit(1, "int"), PrimOp("*", (Lit(2, "int"), Lit(3, "int")))),
        )

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr == PrimOp(
            "-",
            (PrimOp("-", (Lit(1, "int"), Lit(2, "int"))), Lit(3, "int")),
        )

    def test_cons_right_associative(self):
        expr = parse_expr("1 : 2 : Nil")
        assert isinstance(expr, Con) and expr.name == "Cons"
        assert isinstance(expr.args[1], Con) and expr.args[1].name == "Cons"

    def test_comparison(self):
        assert parse_expr("a <= b") == PrimOp("<=", (Var("a"), Var("b")))

    def test_backquoted_div(self):
        assert parse_expr("a `div` b") == PrimOp("div", (Var("a"), Var("b")))

    def test_operator_section(self):
        section = parse_expr("(+)")
        assert isinstance(section, Lam)
        body = section.body
        assert isinstance(body, Lam)
        assert isinstance(body.body, PrimOp) and body.body.op == "+"

    def test_unknown_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("a @@ b")


class TestLambdasAndApplication:
    def test_lambda_single(self):
        assert parse_expr("\\x -> x") == Lam("x", Var("x"))

    def test_lambda_curried(self):
        expr = parse_expr("\\x y -> x")
        assert expr == Lam("x", Lam("y", Var("x")))

    def test_application_left_assoc(self):
        expr = parse_expr("f a b")
        assert expr == App(App(Var("f"), Var("a")), Var("b"))

    def test_trailing_lambda_argument(self):
        expr = parse_expr("f \\x -> x")
        assert isinstance(expr, App)
        assert isinstance(expr.arg, Lam)

    def test_lambda_with_pattern(self):
        expr = parse_expr("\\(Tuple2 a b) -> a")
        assert isinstance(expr, Lam)
        assert isinstance(expr.body, Case)


class TestSugar:
    def test_if_desugars_to_case(self):
        expr = parse_expr("if c then 1 else 2")
        assert isinstance(expr, Case)
        assert expr.alts[0].pattern == PCon("True")
        assert expr.alts[1].pattern == PCon("False")

    def test_list_literal(self):
        expr = parse_expr("[1, 2]")
        assert isinstance(expr, Con) and expr.name == "Cons"
        tail = expr.args[1]
        assert isinstance(tail, Con) and tail.name == "Cons"
        assert tail.args[1] == Con("Nil", (), 0)

    def test_empty_list(self):
        assert parse_expr("[]") == Con("Nil", (), 0)

    def test_tuple(self):
        expr = parse_expr("(1, 2)")
        assert expr == Con("Tuple2", (Lit(1, "int"), Lit(2, "int")), 2)

    def test_triple(self):
        expr = parse_expr("(1, 2, 3)")
        assert isinstance(expr, Con) and expr.name == "Tuple3"

    def test_do_notation(self):
        expr = parse_expr("do { x <- getChar; putChar x }")
        assert isinstance(expr, PrimOp) and expr.op == "bindIO"
        assert isinstance(expr.args[1], Lam)
        assert expr.args[1].var == "x"

    def test_do_with_let(self):
        expr = parse_expr("do { let y = 1; returnIO y }")
        assert isinstance(expr, Let)

    def test_do_requires_final_expr(self):
        with pytest.raises(ParseError):
            parse_expr("do { x <- getChar }")


class TestCoreForms:
    def test_raise(self):
        assert parse_expr("raise DivideByZero") == Raise(
            Con("DivideByZero", (), 0)
        )

    def test_fix(self):
        expr = parse_expr("fix f")
        assert expr == Fix(Var("f"))

    def test_let_single(self):
        expr = parse_expr("let { x = 1 } in x")
        assert expr == Let((("x", Lit(1, "int")),), Var("x"))

    def test_let_multiple(self):
        expr = parse_expr("let { x = 1; y = x } in y")
        assert isinstance(expr, Let) and len(expr.binds) == 2

    def test_let_function_clause(self):
        expr = parse_expr("let { f x = x + 1 } in f 3")
        assert isinstance(expr, Let)
        assert isinstance(expr.binds[0][1], Lam)

    def test_case_with_patterns(self):
        expr = parse_expr("case xs of { Cons y ys -> y; Nil -> 0 }")
        assert isinstance(expr, Case)
        assert expr.alts[0].pattern == PCon("Cons", (PVar("y"), PVar("ys")))
        assert expr.alts[1].pattern == PCon("Nil")

    def test_case_literal_pattern(self):
        expr = parse_expr("case n of { 0 -> 1; _ -> 2 }")
        assert expr.alts[0].pattern == PLit(0, "int")
        assert isinstance(expr.alts[1].pattern, PWild)

    def test_case_cons_pattern_sugar(self):
        expr = parse_expr("case xs of { (y:ys) -> y; Nil -> 0 }")
        assert expr.alts[0].pattern == PCon("Cons", (PVar("y"), PVar("ys")))

    def test_empty_case_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("case x of { }")


class TestConstructorSaturation:
    def test_saturated_constructor(self):
        expr = parse_expr("Just 1")
        assert expr == Con("Just", (Lit(1, "int"),), 1)

    def test_unapplied_constructor_eta_expands(self):
        expr = parse_expr("Just")
        assert isinstance(expr, Lam)
        assert isinstance(expr.body, Con) and expr.body.name == "Just"

    def test_partially_applied_cons(self):
        expr = parse_expr("Cons 1")
        assert isinstance(expr, Lam)
        inner = expr.body
        assert isinstance(inner, Con) and len(inner.args) == 2

    def test_oversaturated_constructor_is_application(self):
        # OK has arity 1; the extra argument applies the result.
        expr = parse_expr("OK (\\x -> x) 3")
        assert isinstance(expr, App)
        assert isinstance(expr.fn, Con) and expr.fn.name == "OK"

    def test_unknown_constructor_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("Frob 1")


class TestPrimitiveParsing:
    def test_saturated_prim(self):
        assert parse_expr("seq a b") == PrimOp("seq", (Var("a"), Var("b")))

    def test_undersaturated_prim_eta_expands(self):
        expr = parse_expr("seq a")
        assert isinstance(expr, App)

    def test_oversaturated_prim(self):
        # getException e >>= continuation-style extra arg
        expr = parse_expr("mapException f x")
        assert expr == PrimOp("mapException", (Var("f"), Var("x")))


class TestPrograms:
    def test_simple_program(self):
        program = parse_program("x = 1\ny = x")
        assert [name for name, _ in program.binds] == ["x", "y"]

    def test_multi_equation_function(self):
        program = parse_program(
            "f Nil = 0\nf (Cons x xs) = 1"
        )
        (name, rhs), = program.binds
        assert name == "f"
        assert isinstance(rhs, Lam)
        assert isinstance(rhs.body, Case)
        assert len(rhs.body.alts) == 2

    def test_mixed_arity_equations_rejected(self):
        with pytest.raises(ParseError):
            parse_program("f x = 1\nf x y = 2")

    def test_duplicate_nullary_binding_rejected(self):
        with pytest.raises(ParseError):
            parse_program("x = 1\nx = 2")

    def test_data_declaration(self):
        program = parse_program(
            "data Color = Red | Green | Blue\nc = Red"
        )
        (decl,) = program.data_decls
        assert decl.name == "Color"
        assert [c for c, _ in decl.constructors] == [
            "Red",
            "Green",
            "Blue",
        ]

    def test_data_with_fields_and_params(self):
        program = parse_program("data Box a = Box a Int\nmk x = Box x 1")
        (decl,) = program.data_decls
        assert decl.params == ("a",)
        assert len(decl.constructors[0][1]) == 2

    def test_type_signature_parsed(self):
        program = parse_program("f :: Int -> Int\nf x = x")
        assert program.type_sigs[0][0] == "f"

    def test_own_data_constructors_usable(self):
        program = parse_program(
            "data Pair = MkPair Int Int\np = MkPair 1 2"
        )
        rhs = dict(program.binds)["p"]
        assert isinstance(rhs, Con) and len(rhs.args) == 2

    def test_layout_program(self):
        source = """
f x = case x of
        True -> 1
        False -> 2

g = f True
"""
        program = parse_program(source)
        assert [n for n, _ in program.binds] == ["f", "g"]

    def test_multi_arg_pattern_equations_use_tuple_match(self):
        program = parse_program(
            "f Nil Nil = 0\nf xs ys = 1"
        )
        (_, rhs), = program.binds
        assert isinstance(rhs, Lam)
        assert isinstance(rhs.body, Lam)
        case = rhs.body.body
        assert isinstance(case, Case)
        scrut = case.scrutinee
        assert isinstance(scrut, Con) and scrut.name == "Tuple2"
