"""Name handling: free variables, substitution, alpha-equivalence."""

import pytest
from hypothesis import given, settings

from repro.lang.ast import App, Case, Lam, Let, Lit, PrimOp, Var
from repro.lang.names import (
    NameSupply,
    alpha_equivalent,
    bound_vars,
    free_vars,
    substitute,
)
from repro.lang.parser import parse_expr

from tests.genexpr import int_exprs


class TestFreeVars:
    def test_variable(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_vars(parse_expr("\\x -> x + y")) == {"y"}

    def test_let_binds_recursively(self):
        assert free_vars(parse_expr("let { x = x + y } in x")) == {"y"}

    def test_case_pattern_binds(self):
        expr = parse_expr("case xs of { Cons y ys -> y + z; Nil -> z }")
        assert free_vars(expr) == {"xs", "z"}

    def test_literal_closed(self):
        assert free_vars(Lit(1, "int")) == frozenset()


class TestBoundVars:
    def test_lambda(self):
        assert "x" in bound_vars(parse_expr("\\x -> 1"))

    def test_pattern(self):
        expr = parse_expr("case v of { Cons a b -> 1; Nil -> 2 }")
        assert {"a", "b"} <= bound_vars(expr)


class TestSubstitute:
    def test_simple(self):
        expr = substitute(Var("x"), {"x": Lit(1, "int")})
        assert expr == Lit(1, "int")

    def test_shadowed_not_substituted(self):
        expr = substitute(
            parse_expr("\\x -> x + y"), {"x": Lit(9, "int")}
        )
        assert expr == parse_expr("\\x -> x + y")

    def test_capture_avoided_in_lambda(self):
        # substituting y := x into \x -> y must rename the binder
        expr = substitute(parse_expr("\\x -> y"), {"y": Var("x")})
        assert isinstance(expr, Lam)
        assert expr.var != "x"
        assert expr.body == Var("x")

    def test_capture_avoided_in_case(self):
        expr = substitute(
            parse_expr("case v of { Cons a b -> y; Nil -> 0 }"),
            {"y": Var("a")},
        )
        assert isinstance(expr, Case)
        pat_vars = expr.alts[0].pattern.args
        assert all(pv.name != "a" for pv in pat_vars)
        assert expr.alts[0].body == Var("a")

    def test_capture_avoided_in_let(self):
        expr = substitute(
            parse_expr("let { x = 1 } in y"), {"y": Var("x")}
        )
        assert isinstance(expr, Let)
        assert expr.binds[0][0] != "x"
        assert expr.body == Var("x")

    def test_simultaneous(self):
        expr = substitute(
            parse_expr("x + y"), {"x": Var("y"), "y": Var("x")}
        )
        assert expr == parse_expr("y + x")

    def test_empty_mapping_is_noop(self):
        expr = parse_expr("\\x -> x + y")
        assert substitute(expr, {}) is expr

    @given(int_exprs(depth=3))
    @settings(max_examples=50, deadline=None)
    def test_substituting_fresh_var_preserves_free_vars(self, expr):
        fv = free_vars(expr)
        result = substitute(expr, {"zz_unused": Lit(0, "int")})
        assert free_vars(result) == fv - {"zz_unused"}


class TestAlphaEquivalence:
    def test_identical(self):
        expr = parse_expr("\\x -> x + 1")
        assert alpha_equivalent(expr, expr)

    def test_renamed_lambda(self):
        assert alpha_equivalent(
            parse_expr("\\x -> x"), parse_expr("\\y -> y")
        )

    def test_free_variables_matter(self):
        assert not alpha_equivalent(Var("x"), Var("y"))

    def test_renamed_case_pattern(self):
        assert alpha_equivalent(
            parse_expr("case v of { Cons a b -> a; Nil -> 0 }"),
            parse_expr("case v of { Cons p q -> p; Nil -> 0 }"),
        )

    def test_renamed_let(self):
        assert alpha_equivalent(
            parse_expr("let { x = 1 } in x + z"),
            parse_expr("let { w = 1 } in w + z"),
        )

    def test_structure_matters(self):
        assert not alpha_equivalent(
            parse_expr("\\x -> x"), parse_expr("\\x -> x + 1")
        )

    def test_binder_mixups_rejected(self):
        assert not alpha_equivalent(
            parse_expr("\\x -> \\y -> x"),
            parse_expr("\\x -> \\y -> y"),
        )


class TestNameSupply:
    def test_fresh_names_distinct(self):
        supply = NameSupply()
        names = {supply.fresh() for _ in range(100)}
        assert len(names) == 100

    def test_avoids_seeded(self):
        supply = NameSupply(avoid=["v_0", "v_1"])
        assert supply.fresh() not in ("v_0", "v_1")

    def test_prefix_respected(self):
        supply = NameSupply()
        assert supply.fresh("tmp").startswith("tmp")
