"""Lexer unit tests: tokens, literals, comments, layout."""

import pytest

from repro.lang.lexer import LexError, lex


def kinds(source, top_level=False):
    return [t.kind for t in lex(source, top_level=top_level)]


def values(source, top_level=False):
    return [t.value for t in lex(source, top_level=top_level)][:-1]


class TestBasicTokens:
    def test_identifier(self):
        toks = lex("foo bar'")
        assert toks[0].kind == "IDENT" and toks[0].value == "foo"
        assert toks[1].kind == "IDENT" and toks[1].value == "bar'"

    def test_conid(self):
        toks = lex("Just Nothing")
        assert [t.kind for t in toks[:2]] == ["CONID", "CONID"]

    def test_keywords(self):
        toks = lex("case of let in data raise fix")
        real = [
            t for t in toks[:-1]
            if t.kind not in ("VLBRACE", "VRBRACE", "VSEMI")
        ]
        assert all(t.kind == "KEYWORD" for t in real)
        assert len(real) == 7

    def test_int_literal(self):
        toks = lex("42 0 123456")
        assert [t.value for t in toks[:3]] == [42, 0, 123456]

    def test_operators(self):
        assert values("+ - * == /= <= >= ++ >>= :") == [
            "+", "-", "*", "==", "/=", "<=", ">=", "++", ">>=", ":",
        ]

    def test_backquoted_operator(self):
        toks = lex("a `div` b")
        assert toks[1].kind == "OP" and toks[1].value == "`div`"

    def test_punctuation(self):
        toks = lex("( ) [ ] , ; -> = | \\ ::")
        assert all(t.kind == "PUNCT" for t in toks[:-1])

    def test_arrow_vs_minus(self):
        toks = lex("a -> b - c")
        assert toks[1].kind == "PUNCT" and toks[1].value == "->"
        assert toks[3].kind == "OP" and toks[3].value == "-"


class TestLiterals:
    def test_string_literal(self):
        toks = lex('"hello world"')
        assert toks[0].kind == "STRING" and toks[0].value == "hello world"

    def test_string_escapes(self):
        toks = lex(r'"a\nb\tc\\d\"e"')
        assert toks[0].value == 'a\nb\tc\\d"e'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            lex('"oops')

    def test_char_literal(self):
        toks = lex("'x'")
        assert toks[0].kind == "CHAR" and toks[0].value == "x"

    def test_char_escape(self):
        toks = lex(r"'\n'")
        assert toks[0].value == "\n"

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            lex("'ab")


class TestComments:
    def test_line_comment(self):
        assert values("1 -- comment\n2") == [1, 2]

    def test_block_comment(self):
        assert values("1 {- anything -} 2") == [1, 2]

    def test_nested_block_comment(self):
        assert values("1 {- a {- b -} c -} 2") == [1, 2]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            lex("1 {- oops")


class TestLayout:
    def test_case_layout_inserts_braces(self):
        source = "case x of\n  True -> 1\n  False -> 2"
        ks = kinds(source)
        assert "VLBRACE" in ks
        assert "VSEMI" in ks

    def test_explicit_braces_disable_layout(self):
        source = "case x of { True -> 1; False -> 2 }"
        ks = kinds(source)
        assert "VLBRACE" not in ks
        assert "VSEMI" not in ks

    def test_let_in_closes_block(self):
        source = "let\n  x = 1\n  y = 2\nin x"
        toks = lex(source)
        in_index = next(
            i for i, t in enumerate(toks) if t.value == "in"
        )
        assert toks[in_index - 1].kind == "VRBRACE"

    def test_top_level_semicolons(self):
        source = "a = 1\nb = 2"
        ks = kinds(source, top_level=True)
        assert ks.count("VSEMI") == 1

    def test_continuation_lines_do_not_split(self):
        source = "a = 1 +\n      2\nb = 3"
        ks = kinds(source, top_level=True)
        assert ks.count("VSEMI") == 1

    def test_positions_tracked(self):
        toks = lex("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            lex("a \x01 b")

    def test_in_only_closes_implicit_let(self):
        # An explicit-brace let must not have `in` pop an enclosing
        # (module) layout context — regression for the tree-fold
        # workload.
        source = "main = let { a = 1 } in a\nother = 2"
        ks = [t.kind for t in lex(source, top_level=True)]
        # exactly one top-level separator between the two declarations
        assert ks.count("VSEMI") == 1
        assert "VRBRACE" not in ks[:-2]  # no spurious closes mid-stream

    def test_in_closes_layout_let_inside_explicit_case(self):
        source = "case x of { A -> let\n    a = 1\n  in a; B -> 2 }"
        toks = lex(source)
        in_index = next(
            i for i, t in enumerate(toks) if t.value == "in"
        )
        assert toks[in_index - 1].kind == "VRBRACE"
