"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.api import (
    compile_expr,
    denote_source,
    observe_source,
    run_io_source,
)
from repro.core.denote import DenoteContext, denote
from repro.core.domains import Bad, Ok, SemVal
from repro.core.excset import ExcSet
from repro.machine.strategy import LeftToRight, RightToLeft, Shuffled
from repro.prelude.loader import denote_env, machine_env, prelude_program


@pytest.fixture(scope="session")
def prelude():
    return prelude_program()


def d(source: str, fuel: int = 200_000, ctx: DenoteContext = None) -> SemVal:
    """Denote a source expression with the prelude in scope."""
    return denote_source(source, fuel=fuel, ctx=ctx)


def excs_of(value: SemVal) -> ExcSet:
    assert isinstance(value, Bad), f"expected Bad, got {value}"
    return value.excs


def exc_names(value: SemVal) -> frozenset:
    return frozenset(e.name for e in excs_of(value).finite_members())


def ok_value(value: SemVal):
    assert isinstance(value, Ok), f"expected Ok, got {value}"
    return value.value


STRATEGIES = [LeftToRight(), RightToLeft(), Shuffled(1), Shuffled(7)]
