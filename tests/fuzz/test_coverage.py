"""The feature map: every feature has a fixture that provably sets
it, the map's bookkeeping is exact, and guided mode measurably raises
rare-feature hit rates over uniform generation on the same seed."""

from repro.api import compile_expr
from repro.fuzz.coverage import (
    FEATURES,
    CoverageMap,
    ProbeResult,
    extract_features,
    interrupt_probe,
    structural_features,
    weights_from_coverage,
)
from repro.fuzz.engine import run_fuzz
from repro.fuzz.gen import FuzzCase, GenWeights
from repro.fuzz.oracle import (
    AGREE,
    DIVERGENCE,
    Comparison,
    Observation,
    run_oracle,
)
from repro.lang.pretty import pretty
from repro.obs.sinks import CountingSink


def case_of(source: str, kind: str = "pure", stdin: str = "") -> FuzzCase:
    expr = compile_expr(source)
    return FuzzCase(
        seed=0, kind=kind, expr=expr, source=pretty(expr), stdin=stdin
    )


def features_of(source: str, kind: str = "pure") -> set:
    """Run the full oracle with a per-case sink, then extract — the
    exact plumbing one engine iteration performs."""
    case = case_of(source, kind)
    sink = CountingSink()
    report = run_oracle(case, sink=sink)
    return extract_features(report, sink.counts)


class TestStructuralFeatures:
    def test_catch(self):
        expr = compile_expr(
            'catchIO (ioError Overflow) (\\h -> returnIO 1)'
        )
        found = structural_features(expr)
        assert "struct:catch" in found
        assert "struct:catch-in-catch" not in found

    def test_catch_in_catch_body(self):
        expr = compile_expr(
            "catchIO (catchIO (ioError Overflow) (\\h -> returnIO 1)) "
            "(\\h2 -> returnIO 2)"
        )
        assert "struct:catch-in-catch" in structural_features(expr)

    def test_catch_in_catch_handler(self):
        expr = compile_expr(
            "catchIO (ioError Overflow) "
            "(\\h -> catchIO (returnIO 1) (\\h2 -> returnIO 2))"
        )
        assert "struct:catch-in-catch" in structural_features(expr)

    def test_map_exception(self):
        expr = compile_expr("mapException (\\e -> e) (1 + 2)")
        assert "struct:map-exception" in structural_features(expr)

    def test_knot_via_fix(self):
        expr = compile_expr("fix (\\f -> f)")
        assert "struct:knot" in structural_features(expr)

    def test_knot_via_recursive_let(self):
        expr = compile_expr("let { loop = loop + 1 } in loop")
        assert "struct:knot" in structural_features(expr)

    def test_nonrecursive_let_is_not_a_knot(self):
        expr = compile_expr("let { x = 1 + 2 } in x + x")
        assert "struct:knot" not in structural_features(expr)

    def test_incomplete_case(self):
        expr = compile_expr("case Just 1 of { Just x -> x }")
        assert "struct:incomplete-case" in structural_features(expr)

    def test_complete_case_by_constructors(self):
        expr = compile_expr(
            "case Just 1 of { Just x -> x ; Nothing -> 0 }"
        )
        assert "struct:incomplete-case" not in structural_features(expr)

    def test_complete_case_by_catch_all(self):
        expr = compile_expr("case Just 1 of { Just x -> x ; m -> 0 }")
        assert "struct:incomplete-case" not in structural_features(expr)

    def test_literal_case_without_catch_all_is_incomplete(self):
        expr = compile_expr("case 1 of { 1 -> 10 }")
        assert "struct:incomplete-case" in structural_features(expr)


class TestEventFeatures:
    def test_raise(self):
        assert "event:raise" in features_of('raise (UserError "boom")')

    def test_prim_raise(self):
        assert "event:prim-raise" in features_of("1 `div` 0")

    def test_blackhole(self):
        assert "event:blackhole" in features_of(
            "let { loop = loop + 1 } in loop"
        )

    def test_memo_reraise(self):
        # Section 3.3: the raise-overwritten cell is observable only
        # through IO — two sequential getException probes of the same
        # let-bound cell; the second delivers the memoised exception.
        found = features_of(
            'let { v = raise (UserError "boom") + 1 } in '
            "getException v >>= (\\r -> getException v >>= "
            "(\\r2 -> returnIO 0))",
            kind="io",
        )
        assert "event:memo-reraise" in found

    def test_case_exception_mode(self):
        found = features_of(
            'case raise (UserError "x") of { True -> 1 ; False -> 2 }'
        )
        assert "event:case-exception-mode" in found

    def test_verdict_feature_always_present(self):
        assert "verdict:agree" in features_of("1 + 2")


class TestProbe:
    def test_interrupt_lands_on_long_run(self):
        expr = compile_expr(
            "let { go = \\n -> case n <= 0 of "
            "{ True -> 0 ; False -> go (n - 1) + 1 } } in go 500"
        )
        result = interrupt_probe(expr)
        assert result.delivered
        assert result.violations == []

    def test_interrupt_misses_short_run(self):
        result = interrupt_probe(compile_expr("1 + 2"))
        assert not result.delivered
        assert result.features() == set()

    def test_interrupt_during_force(self):
        # A chain of lets, each forcing the previous: at the probe's
        # step-7 delivery the machine is mid-force.
        source = (
            "let { a = 1 + 1 } in let { b = a + a } in "
            "let { c = b + b } in let { d = c + c } in d"
        )
        result = interrupt_probe(compile_expr(source))
        assert result.delivered
        assert result.during_force
        assert result.violations == []


class TestExtractLaneFeatures:
    def test_warm_fork_disagreement_is_flagged(self):
        case = case_of("1 + 2")
        report = run_oracle(case)
        obs = Observation("machine:warm-fork[ast]", "ok", "3")
        report.comparisons.append(
            Comparison(
                "machine:warm-fork[ast]", DIVERGENCE, "synthetic", obs
            )
        )
        found = extract_features(report, {})
        assert "lane:warm-fork-disagree" in found

    def test_agreeing_warm_fork_is_not_flagged(self):
        report = run_oracle(case_of("1 + 2"))
        assert any(
            c.lane.startswith("machine:warm-fork")
            and c.verdict == AGREE
            for c in report.comparisons
        )
        found = extract_features(report, {})
        assert "lane:warm-fork-disagree" not in found


class TestCoverageMap:
    def test_record_and_rate(self):
        cov = CoverageMap()
        cov.record({"verdict:agree", "struct:catch"})
        cov.record({"verdict:agree"})
        assert cov.iterations == 2
        assert cov.hits["struct:catch"] == 1
        assert cov.rate("struct:catch") == 0.5
        assert cov.rate("event:memo-reraise") == 0.0

    def test_merge_adds(self):
        a, b = CoverageMap(), CoverageMap()
        a.record({"verdict:agree"})
        b.record({"verdict:agree", "struct:knot"})
        b.record({"struct:knot"})
        a.merge(b)
        assert a.iterations == 3
        assert a.hits["verdict:agree"] == 2
        assert a.hits["struct:knot"] == 2

    def test_round_trip(self):
        cov = CoverageMap()
        cov.record({"verdict:agree", "event:raise"})
        again = CoverageMap.from_dict(cov.as_dict())
        assert again.as_dict() == cov.as_dict()

    def test_deficits_only_steerable_features(self):
        cov = CoverageMap()
        for _ in range(100):
            cov.record({"verdict:agree"})
        deficits = cov.deficits()
        assert "event:memo-reraise" in deficits
        assert "struct:catch-in-catch" in deficits
        # verdict features are outcomes, never steered
        assert all(not d.startswith("verdict:") for d in deficits)
        assert all(FEATURES[d].targets for d in deficits)


class TestWeightsFromCoverage:
    def test_saturated_map_keeps_defaults(self):
        cov = CoverageMap()
        for _ in range(10):
            cov.record(set(FEATURES))
        assert weights_from_coverage(cov) == GenWeights()

    def test_deficits_raise_knobs(self):
        cov = CoverageMap()
        for _ in range(100):
            cov.record({"verdict:agree"})
        weights = weights_from_coverage(cov)
        assert weights.shared_memo > 0
        assert weights.nested_catch > 0
        assert weights.arm_weight("catch") > 1.0
        assert not weights.is_default

    def test_prim_raise_deficit_pins_zero_divisors(self):
        cov = CoverageMap()
        for _ in range(100):
            cov.record({"verdict:agree"})
        weights = weights_from_coverage(cov)
        assert weights.div_zero_bias > 0
        assert weights.arm_weight("arith") > 1.0

    def test_steering_threshold_exceeds_reporting_threshold(self):
        """A feature sitting *between* the deficit bar and the steer
        bar keeps its boosts: that hysteresis is what lets guided runs
        settle above DEFICIT_THRESHOLD instead of just below it."""
        from repro.fuzz.coverage import DEFICIT_THRESHOLD, STEER_THRESHOLD

        assert STEER_THRESHOLD > DEFICIT_THRESHOLD
        cov = CoverageMap()
        # 6% prim-raise: above the 5% reporting bar, below the steer bar.
        for i in range(100):
            hit = {"verdict:agree"}
            if i < 6:
                hit.add("event:prim-raise")
            cov.record(hit)
        assert "event:prim-raise" not in cov.deficits()
        assert weights_from_coverage(cov).div_zero_bias > 0

    def test_probe_result_features(self):
        probe = ProbeResult(delivered=True, during_force=True)
        assert probe.features() == {
            "probe:interrupt", "probe:interrupt-during-force"
        }


class TestGuidedBeatsUniform:
    def test_rare_features_rise_on_fixed_seed(self):
        """The acceptance property: on the same master seed, guided
        mode hits the rare §3.3 memo-reraise and catch-inside-catch
        shapes that uniform generation misses.  Both runs are fully
        deterministic, so this pins exact behaviour, not a trend."""
        uniform = run_fuzz(iterations=60, seed=0, probe=False)
        guided = run_fuzz(
            iterations=60, seed=0, probe=False, guided=True,
            retarget_every=20,
        )
        u_hits = uniform.coverage.hits
        g_hits = guided.coverage.hits
        for rare in ("event:memo-reraise", "struct:catch-in-catch"):
            assert g_hits[rare] > u_hits[rare], (
                rare, g_hits[rare], u_hits[rare]
            )
        assert guided.divergences == 0
        assert uniform.divergences == 0

    def test_guided_500_clears_prim_raise_bar(self):
        """The prim-raise regression (the deficit that motivated
        ``div_zero_bias``): a 500-iteration guided run must end with
        the §3.1 checked-primitive raise rate at or above the 5%
        deficit threshold.  Deterministic for the fixed seed."""
        from repro.fuzz.coverage import DEFICIT_THRESHOLD

        summary = run_fuzz(
            iterations=500, seed=0, probe=False, guided=True
        )
        rate = summary.coverage.rate("event:prim-raise")
        assert rate >= DEFICIT_THRESHOLD, f"prim-raise rate {rate:.1%}"
        assert summary.divergences == 0
