"""The differential oracle: known identity / refinement / unsound
triples, lane classification, and seed recording."""

from repro.api import compile_expr
from repro.baselines.fixed_order import fixed_order_ctx
from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracle import (
    AGREE,
    DIVERGENCE,
    REFINEMENT,
    SKIPPED,
    OracleConfig,
    classify_transform_pair,
    run_oracle,
    transform_divergence_predicate,
)
from repro.lang.pretty import pretty
from repro.transform.pedantic import DropSeqOnNonBottom


def case_of(source: str, kind: str = "pure", stdin: str = "") -> FuzzCase:
    expr = compile_expr(source)
    return FuzzCase(
        seed=0, kind=kind, expr=expr, source=pretty(expr), stdin=stdin
    )


def lane_verdicts(report) -> dict:
    return {c.lane: c.verdict for c in report.comparisons}


class TestPureLattice:
    def test_identity_program_agrees_everywhere(self):
        report = run_oracle(case_of("1 + 2"))
        assert report.verdict == AGREE
        assert set(lane_verdicts(report).values()) == {AGREE}

    def test_two_member_set_is_refinement_not_divergence(self):
        """The paper's Section 3.4 program: every machine strategy
        observes *one member* of {DivideByZero, UserError}."""
        report = run_oracle(
            case_of('(1 `div` 0) + (raise (UserError "Urk"))')
        )
        assert report.verdict == REFINEMENT
        verdicts = lane_verdicts(report)
        assert all(
            v == REFINEMENT
            for lane, v in verdicts.items()
            # Semantic lanes only: the warm-fork lanes compare fork vs
            # cold start (not machine vs denotation), and both paths
            # observing the same member is their AGREE.
            if lane.startswith("machine:")
            and not lane.startswith("machine:warm-fork")
        )

    def test_single_member_set_agrees(self):
        report = run_oracle(case_of("seq (raise DivideByZero) 5"))
        assert report.verdict == AGREE

    def test_exval_increased_strictness_is_refinement(self):
        """Section 2.2's first documented flaw: the encoding checks
        arguments when passed, so a lazily discarded exception
        surfaces.  Legal, never a divergence."""
        report = run_oracle(case_of("(\\w -> 3) (1 `div` 0)"))
        verdicts = lane_verdicts(report)
        assert verdicts["exval"] == REFINEMENT
        assert report.verdict == REFINEMENT

    def test_prelude_calls_skip_the_exval_lane(self):
        """No encoded prelude exists; the lane must skip, not produce
        a false positive (found by the fuzzer during bring-up)."""
        report = run_oracle(case_of("sum (Cons 1 Nil)"))
        assert lane_verdicts(report)["exval"] == SKIPPED
        assert report.verdict == AGREE

    def test_tight_knot_is_never_a_divergence(self):
        report = run_oracle(case_of("let { loop = loop + 1 } in loop"))
        assert report.verdict in (AGREE, REFINEMENT)

    def test_pattern_match_failure_agrees(self):
        report = run_oracle(case_of("case Nothing of { Just v -> v }"))
        assert report.verdict == AGREE

    def test_shuffled_seed_recorded_in_observation(self):
        """The historic irreproducibility bug: a shuffled lane's
        observation must carry the strategy seed so any disagreement
        can be re-run."""
        report = run_oracle(case_of("1 + 2"))
        shuffled = [
            c
            for c in report.comparisons
            if "shuffled" in c.lane and c.lane.startswith("machine:")
        ]
        assert shuffled, "no shuffled lanes ran"
        for comparison in shuffled:
            assert comparison.observation.seed is not None
            assert (
                comparison.observation.to_dict()["seed"]
                == comparison.observation.seed
            )

    def test_report_to_dict_is_json_ready(self):
        import json

        report = run_oracle(case_of("1 + 2"))
        encoded = json.dumps(report.to_dict())
        assert "verdict" in encoded


class TestIOLattice:
    def test_plain_output_agrees(self):
        report = run_oracle(case_of('putStr "ok"', kind="io"))
        assert report.verdict == AGREE

    def test_get_exception_on_a_set_agrees(self):
        """An exception-agnostic consumer prints the same constant no
        matter which member each strategy observes."""
        src = (
            "bindIO (getException ((1 `div` 0) + (raise Overflow))) "
            '(\\r -> case r of { OK v -> putStr (showInt v); '
            'Bad e -> seq e (putStr "caught") })'
        )
        report = run_oracle(case_of(src, kind="io"))
        assert report.verdict == AGREE

    def test_catch_forcing_handler_agrees(self):
        src = "catchIO (ioError DivideByZero) (\\e -> seq e (returnIO 1))"
        report = run_oracle(case_of(src, kind="io"))
        assert report.verdict == AGREE


class TestTransformPairs:
    """classify_transform_pair is the §4.5 verdict on a rewrite."""

    def test_identity_pair(self):
        before = compile_expr("1 + 2")
        after = compile_expr("3")
        assert classify_transform_pair(before, after) == AGREE

    def test_refinement_pair(self):
        """Narrowing the exception set is ⊑ (§4.5): legal."""
        before = compile_expr("(1 `div` 0) + (raise Overflow)")
        after = compile_expr("1 `div` 0")
        assert classify_transform_pair(before, after) == REFINEMENT

    def test_unsound_pair(self):
        """Dropping a forced exception changes Bad to Ok: unsound."""
        before = compile_expr("seq (raise DivideByZero) 5")
        after = compile_expr("5")
        assert classify_transform_pair(before, after) == DIVERGENCE

    def test_fixed_order_context(self):
        """Under fixed order, swapping operands picks a different
        member: unsound there, identity under imprecise — the paper's
        central comparison."""
        before = compile_expr("(1 `div` 0) + (raise Overflow)")
        after = compile_expr("(raise Overflow) + (1 `div` 0)")
        assert classify_transform_pair(before, after) == AGREE
        assert (
            classify_transform_pair(
                before, after, ctx_factory=fixed_order_ctx
            )
            == DIVERGENCE
        )


class TestTransformPredicate:
    def test_fires_on_unsound_rule(self):
        predicate = transform_divergence_predicate(DropSeqOnNonBottom())
        assert predicate(compile_expr("seq (raise DivideByZero) 5"))

    def test_quiet_when_rule_does_not_fire(self):
        predicate = transform_divergence_predicate(DropSeqOnNonBottom())
        assert not predicate(compile_expr("1 + 2"))

    def test_quiet_when_rewrite_is_legal(self):
        predicate = transform_divergence_predicate(DropSeqOnNonBottom())
        assert not predicate(compile_expr("seq 1 5"))


class TestConfig:
    def test_per_case_shuffle_varies_with_seed(self):
        config = OracleConfig()
        a = [s.name for s in config.strategies(1)]
        b = [s.name for s in config.strategies(2)]
        assert a != b

    def test_extra_shuffled_can_be_disabled(self):
        config = OracleConfig(extra_shuffled=False)
        assert len(list(config.strategies(1))) == len(
            list(config.strategies(2))
        )
        report = run_oracle(case_of("1 + 2"), config)
        assert "machine:shuffled(per-case)" not in lane_verdicts(report)

    def test_fuel_asymmetry_default(self):
        """The false-positive guard: the reference must bottom out
        before any machine lane does."""
        config = OracleConfig()
        assert config.machine_fuel > 4 * config.denote_fuel


class TestWarmLane:
    """The warm-fork parity lane: snapshot fork vs cold start must be
    byte-identical (outcome, counters, trace events) on every case —
    the serving layer's contract (docs/SERVING.md), fuzzed."""

    def test_warm_lane_runs_on_both_backends_by_default(self):
        report = run_oracle(case_of("sum (enumFromTo 1 5)"))
        verdicts = lane_verdicts(report)
        assert verdicts["machine:warm-fork[ast]"] == AGREE
        assert verdicts["machine:warm-fork[compiled]"] == AGREE

    def test_warm_lane_agrees_on_raises_and_imprecision(self):
        for source in (
            "head Nil",
            "1 `div` 0",
            '(1 `div` 0) + (raise (UserError "Urk"))',
        ):
            verdicts = lane_verdicts(run_oracle(case_of(source)))
            assert verdicts["machine:warm-fork[ast]"] == AGREE, source

    def test_warm_lane_can_be_disabled(self):
        config = OracleConfig(warm_lane=False)
        verdicts = lane_verdicts(run_oracle(case_of("1 + 2"), config))
        assert not any(
            lane.startswith("machine:warm-fork") for lane in verdicts
        )

    def test_warm_lane_follows_compiled_lane_flag(self):
        config = OracleConfig(compiled_lane=False)
        verdicts = lane_verdicts(run_oracle(case_of("1 + 2"), config))
        assert "machine:warm-fork[ast]" in verdicts
        assert "machine:warm-fork[compiled]" not in verdicts
