"""The delta-debugging shrinker: minimality, predicate preservation,
crash tolerance, and the planted-unsound-transform acceptance case."""

from repro.api import compile_expr
from repro.baselines.fixed_order import fixed_order_ctx
from repro.fuzz.shrink import (
    candidates,
    children,
    preorder_paths,
    replace_at,
    shrink,
    subexpr_at,
    with_children,
)
from repro.fuzz.oracle import transform_divergence_predicate
from repro.lang.ast import Con, Expr, Lit, Raise, expr_size
from repro.lang.pretty import pretty
from repro.transform.pedantic import CollapseIdenticalAlts, DropSeqOnNonBottom


def contains_divide_by_zero(expr: Expr) -> bool:
    if isinstance(expr, Raise) and expr.exc == Con("DivideByZero", (), 0):
        return True
    return any(contains_divide_by_zero(child) for child in children(expr))


BIG = (
    "let { a = 1 + 2 } in "
    "case a == 3 of { True -> (\\w -> w * 2) "
    "((raise DivideByZero) + a); False -> 0 }"
)


class TestAstAccess:
    def test_paths_cover_every_node(self):
        expr = compile_expr("(1 + 2) * 3")
        assert len(list(preorder_paths(expr))) == expr_size(expr)

    def test_subexpr_replace_roundtrip(self):
        expr = compile_expr("(1 + 2) * 3")
        for path in preorder_paths(expr):
            node = subexpr_at(expr, path)
            assert replace_at(expr, path, node) == expr

    def test_with_children_identity(self):
        for src in ("1 + 2", "\\w -> w", "case p of { True -> 1; "
                    "False -> 2 }", "let { v = 1 } in v"):
            expr = compile_expr(src)
            assert with_children(expr, children(expr)) == expr

    def test_candidates_strictly_smaller(self):
        expr = compile_expr(BIG)
        for candidate in candidates(expr):
            assert expr_size(candidate) < expr_size(expr)


class TestShrinkLoop:
    def test_minimises_to_the_leaf(self):
        """A 'contains raise DivideByZero' predicate must shrink any
        witness to the bare raise (size 2)."""
        expr = compile_expr(BIG)
        assert contains_divide_by_zero(expr)
        result = shrink(expr, contains_divide_by_zero)
        assert result.final_size == 2
        assert pretty(result.expr) == "raise DivideByZero"
        assert result.reduced

    def test_result_preserves_predicate(self):
        expr = compile_expr(BIG)
        result = shrink(expr, contains_divide_by_zero)
        assert contains_divide_by_zero(result.expr)

    def test_already_minimal_input_is_kept(self):
        expr = compile_expr("raise DivideByZero")
        result = shrink(expr, contains_divide_by_zero)
        assert result.expr == expr
        assert not result.reduced

    def test_crashing_predicate_counts_as_no_repro(self):
        """Type-wrong candidates may crash an evaluator mid-predicate;
        the wrapper must treat that as 'not a repro', not abort."""

        def brittle(expr: Expr) -> bool:
            if isinstance(expr, Lit):
                raise RuntimeError("evaluator fell over")
            return contains_divide_by_zero(expr)

        expr = compile_expr("(raise DivideByZero) + 1")
        result = shrink(expr, brittle)
        assert contains_divide_by_zero(result.expr)

    def test_attempt_budget_respected(self):
        expr = compile_expr(BIG)
        result = shrink(expr, contains_divide_by_zero, max_attempts=3)
        assert result.attempts <= 3


class TestPlantedUnsoundTransform:
    """The acceptance criterion: an unsound rewrite planted in a large
    program is caught by the differential predicate and shrunk to a
    witness of at most 8 AST nodes."""

    def test_drop_seq_caught_and_shrunk(self):
        predicate = transform_divergence_predicate(DropSeqOnNonBottom())
        expr = compile_expr(
            "let { a = 4 * 2 } in "
            "(seq (raise DivideByZero) (a + 1)) * "
            "(case a < 9 of { True -> 1; False -> 2 })"
        )
        assert predicate(expr), "the planted unsoundness must reproduce"
        result = shrink(expr, predicate)
        assert predicate(result.expr)
        assert result.final_size <= 8, pretty(result.expr)

    def test_collapse_alts_caught_and_shrunk(self):
        """The -fno-pedantic-bottoms rule (§5.3): collapsing identical
        alternatives drops the scrutinee's exceptions."""
        predicate = transform_divergence_predicate(CollapseIdenticalAlts())
        expr = compile_expr(
            "1 + (case raise Overflow of { True -> 2 + 3; "
            "False -> 2 + 3 })"
        )
        assert predicate(expr)
        result = shrink(expr, predicate)
        assert predicate(result.expr)
        assert result.final_size <= 8, pretty(result.expr)

    def test_sound_under_fixed_order_is_a_different_story(self):
        """CommutePrimArgs-style reorderings only diverge under the
        fixed-order semantics; the predicate is parameterised by the
        context factory to reproduce the paper's comparison."""
        from repro.fuzz.oracle import classify_transform_pair

        before = compile_expr("(1 `div` 0) + (raise Overflow)")
        after = compile_expr("(raise Overflow) + (1 `div` 0)")
        assert (
            classify_transform_pair(
                before, after, ctx_factory=fixed_order_ctx
            )
            == "divergence"
        )
