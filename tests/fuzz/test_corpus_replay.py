"""Corpus persistence: JSONL roundtrip, dedup-by-shrunk-form, and the
checked-in regression corpus replayed through the full oracle."""

import os

from repro.api import compile_expr
from repro.fuzz.corpus import (
    CorpusEntry,
    append_entries,
    dedup_id,
    load_corpus,
    replay_corpus,
    replay_entry,
    write_corpus,
)
from repro.fuzz.engine import run_fuzz
from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracle import run_oracle
from repro.lang.pretty import pretty

CORPUS = os.path.join(os.path.dirname(__file__), "corpus",
                      "regressions.jsonl")


def entry_for(source: str, kind: str = "pure") -> CorpusEntry:
    expr = compile_expr(source)
    case = FuzzCase(seed=0, kind=kind, expr=expr, source=pretty(expr))
    return CorpusEntry.from_report(run_oracle(case))


class TestPersistence:
    def test_json_roundtrip(self):
        entry = entry_for("1 + 2")
        assert CorpusEntry.from_json(entry.to_json()) == entry

    def test_dedup_id_is_stable(self):
        assert dedup_id("1 + 2") == dedup_id("1 + 2")
        assert dedup_id("1 + 2") != dedup_id("2 + 1")

    def test_write_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        entries = [entry_for("1 + 2"), entry_for("seq 1 2")]
        write_corpus(path, entries)
        assert load_corpus(path) == entries

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        entry = entry_for("1 + 2")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("# a comment\n\n")
            handle.write(entry.to_json() + "\n")
        assert load_corpus(path) == [entry]

    def test_append_dedups_by_id(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        entry = entry_for("1 + 2")
        other = entry_for("seq 1 2")
        assert append_entries(path, [entry]) == [entry]
        assert append_entries(path, [entry, other]) == [other]
        assert load_corpus(path) == [entry, other]


class TestReplay:
    def test_entry_replays_to_recorded_verdict(self):
        entry = entry_for('(1 `div` 0) + (raise (UserError "Urk"))')
        assert entry.verdict == "refinement"
        result = replay_entry(entry)
        assert result.matches

    def test_stale_verdict_detected(self):
        good = entry_for("1 + 2")
        stale = CorpusEntry(
            id=good.id, source=good.source, kind=good.kind,
            stdin=good.stdin, seed=good.seed, verdict="divergence",
            lane=good.lane, reason="planted stale verdict",
        )
        result = replay_entry(stale)
        assert not result.matches
        assert result.to_dict()["expected"] == "divergence"
        assert result.to_dict()["observed"] == "agree"

    def test_unparseable_source_reported_not_raised(self):
        broken = CorpusEntry(
            id="deadbeef00000000", source="let { = }", kind="pure",
            stdin="", seed=0, verdict="agree", lane="", reason="",
        )
        result = replay_entry(broken)
        assert not result.matches
        assert "compile failed" in result.error


class TestCheckedInCorpus:
    """The regression corpus ships with the repo; every entry must
    reproduce its recorded verdict on every build."""

    def test_corpus_exists_and_is_nonempty(self):
        entries = load_corpus(CORPUS)
        assert len(entries) >= 8

    def test_corpus_replays_clean(self):
        results = replay_corpus(CORPUS)
        mismatches = [r.to_dict() for r in results if not r.matches]
        assert mismatches == []

    def test_corpus_covers_both_kinds(self):
        kinds = {entry.kind for entry in load_corpus(CORPUS)}
        assert kinds == {"pure", "io"}

    def test_corpus_ids_match_sources(self):
        for entry in load_corpus(CORPUS):
            assert entry.id == dedup_id(entry.source)


class TestEngine:
    def test_short_run_is_clean_and_deterministic(self):
        a = run_fuzz(iterations=30, seed=0)
        b = run_fuzz(iterations=30, seed=0)
        assert a.divergences == 0
        assert a.verdicts == b.verdicts

    def test_summary_reports_machine_counters(self):
        summary = run_fuzz(iterations=20, seed=1)
        assert summary.machine_steps > 0
        assert summary.machine_allocs > 0
        data = summary.to_dict()
        assert data["machine"]["steps"] == summary.machine_steps

    def test_seconds_budget_stops_the_loop(self):
        summary = run_fuzz(seconds=0.2, seed=0)
        assert summary.iterations > 0
        assert summary.elapsed < 5.0
