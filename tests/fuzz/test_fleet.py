"""Fleet sharding: determinism, jobs-invariance of the merged corpus,
the subprocess worker protocol, and planted-divergence merge plumbing.

The expensive subprocess paths run tiny budgets; the determinism
properties run in-process, which ``run_fleet`` guarantees is
bit-identical to the subprocess fleet (same ``run_shard`` code path,
same merge)."""

import json

from repro.fuzz.fleet import (
    FleetReport,
    ShardSpec,
    run_fleet,
    shard_report,
)


def stable_dict(report: FleetReport) -> dict:
    """Everything except wall-clock fields — the byte-identical part
    of the contract."""
    d = report.to_dict()
    d.pop("elapsed_seconds")
    d.pop("shard_elapsed_seconds")
    d.pop("timing")
    return d


class TestSharding:
    def test_round_robin_partitions_the_index_space(self):
        jobs, iterations = 3, 20
        slices = [
            ShardSpec(
                shard=s, jobs=jobs, seed=0, iterations=iterations
            ).indices()
            for s in range(jobs)
        ]
        merged = sorted(i for chunk in slices for i in chunk)
        assert merged == list(range(iterations))

    def test_shard_runs_only_its_indices(self):
        spec = ShardSpec(
            shard=1, jobs=4, seed=0, iterations=10, probe=False
        )
        payload = shard_report(spec)
        assert payload["shard"] == 1
        # indices 1, 5, 9
        assert payload["summary"]["iterations"] == 3


class TestDeterminism:
    def test_same_seed_same_jobs_byte_identical(self, tmp_path):
        kwargs = dict(
            jobs=3, iterations=15, seed=7, probe=False, shrink=False,
            plant_divergence_every=4, in_process=True,
        )
        first = run_fleet(save_path=str(tmp_path / "a.jsonl"), **kwargs)
        second = run_fleet(save_path=str(tmp_path / "b.jsonl"), **kwargs)
        assert json.dumps(stable_dict(first), sort_keys=True) == \
            json.dumps(stable_dict(second), sort_keys=True)
        assert (tmp_path / "a.jsonl").read_bytes() == \
            (tmp_path / "b.jsonl").read_bytes()

    def test_different_jobs_same_corpus_set(self, tmp_path):
        """Unguided: the round-robin index scheme makes the generated
        case *set* independent of the shard count, so verdict totals
        and the dedup-by-shrunk-form corpus must match exactly."""
        reports = [
            run_fleet(
                jobs=jobs, iterations=12, seed=3, probe=False,
                shrink=False, plant_divergence_every=3,
                in_process=True,
                save_path=str(tmp_path / f"c{jobs}.jsonl"),
            )
            for jobs in (1, 2, 4)
        ]
        baseline = reports[0]
        for other in reports[1:]:
            assert other.verdicts == baseline.verdicts
            assert other.lane_verdicts == baseline.lane_verdicts
            assert [e.id for e in other.corpus] == \
                [e.id for e in baseline.corpus]
            assert other.coverage.as_dict() == \
                baseline.coverage.as_dict()
            # The per-case step histogram is a pure function of the
            # case seeds, so its bucket counts are jobs-invariant too.
            assert other.case_step_buckets == \
                baseline.case_step_buckets
        assert (tmp_path / "c1.jsonl").read_bytes() == \
            (tmp_path / "c2.jsonl").read_bytes() == \
            (tmp_path / "c4.jsonl").read_bytes()

    def test_guided_deterministic_for_fixed_seed_and_jobs(self):
        kwargs = dict(
            jobs=2, iterations=12, seed=0, guided=True, probe=False,
            in_process=True,
        )
        first = run_fleet(**kwargs)
        second = run_fleet(**kwargs)
        assert stable_dict(first) == stable_dict(second)


class TestPlantedMerge:
    def test_planted_divergences_flow_into_merged_corpus(self):
        """A healthy build has zero real divergences, so the merge
        plumbing is proven with planted ones — same philosophy as the
        chaos explorer's planted-unsound self-test."""
        report = run_fleet(
            jobs=2, iterations=10, seed=0, probe=False, shrink=False,
            plant_divergence_every=5, in_process=True,
        )
        # indices 4 and 9 plant
        assert report.divergences == 2
        assert len(report.findings) == 2
        assert [f["seed"] for f in report.findings] == [4, 9]
        assert len(report.corpus) == 2
        assert report.corpus == sorted(
            report.corpus, key=lambda e: e.id
        )
        assert not report.ok

    def test_clean_run_is_ok(self):
        report = run_fleet(
            jobs=2, iterations=6, seed=0, probe=False,
            in_process=True,
        )
        assert report.ok
        assert report.iterations == 6
        assert report.corpus == []

    def test_probe_sample_selection_is_jobs_invariant(self):
        """Probe sampling keys on the *absolute* case index, so the
        set of probed cases — and hence the sampled/total counts —
        is identical under any sharding of the same index range."""
        reports = {
            jobs: run_fleet(
                jobs=jobs, iterations=24, seed=3,
                probe_sample=0.4, in_process=True,
            )
            for jobs in (1, 3)
        }
        one, three = reports[1], reports[3]
        assert one.probe_total == three.probe_total == 24
        assert one.probe_sampled == three.probe_sampled
        # A 0.4 sample of 24 cases should land strictly between the
        # extremes — the selection is a real subset, not all-or-none.
        assert 0 < one.probe_sampled < 24
        assert one.ok and three.ok

    def test_probe_sample_full_fraction_probes_everything(self):
        report = run_fleet(
            jobs=2, iterations=6, seed=0, probe_sample=1.0,
            in_process=True,
        )
        assert report.probe_sampled == report.probe_total == 6


class TestSubprocessFleet:
    def test_worker_protocol_round_trip(self):
        """The real subprocess path: shards spawn as
        ``python -m repro.fuzz.fleet`` workers and their JSON reports
        merge identically to the in-process run."""
        kwargs = dict(jobs=2, iterations=6, seed=1, probe=False)
        sub = run_fleet(**kwargs)
        local = run_fleet(in_process=True, **kwargs)
        assert stable_dict(sub) == stable_dict(local)

    def test_spec_round_trip(self):
        spec = ShardSpec(
            shard=2, jobs=4, seed=9, iterations=100, guided=True,
            shrink=False, max_findings=3, probe=False,
            plant_divergence_every=7,
        )
        assert ShardSpec.from_dict(spec.as_dict()) == spec
