"""The standalone generator: determinism, coverage, feature knobs."""

from repro.fuzz.gen import FuzzCase, GenConfig, generate_case
from repro.lang.ast import expr_size
from repro.lang.parser import parse_expr
from repro.lang.pretty import pretty


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in range(50):
            a = generate_case(seed)
            b = generate_case(seed)
            assert a == b, f"seed {seed} not reproducible"

    def test_seed_is_recorded(self):
        case = generate_case(17)
        assert case.seed == 17

    def test_different_seeds_differ(self):
        sources = {generate_case(seed).source for seed in range(30)}
        assert len(sources) > 20, "seeds collapse to too few programs"

    def test_config_changes_space(self):
        wide = [generate_case(s) for s in range(40)]
        narrow = [
            generate_case(s, GenConfig().pure_only()) for s in range(40)
        ]
        assert any(c.kind == "io" for c in wide)
        assert all(c.kind == "pure" for c in narrow)

    def test_zero_div_zero_bias_keeps_default_stream(self):
        """The stream contract: an explicit 0.0 bias draws the RNG
        exactly like the historical generator, so seeds pin the same
        programs whether or not guidance plumbing touched the config."""
        from repro.fuzz.gen import GenWeights

        explicit = GenConfig(weights=GenWeights(div_zero_bias=0.0))
        for seed in range(60):
            assert generate_case(seed) == generate_case(seed, explicit)

    def test_div_zero_bias_pins_zero_divisors(self):
        from repro.fuzz.gen import GenWeights

        biased = GenConfig(
            weights=GenWeights(
                arms=(("arith", 3.0),), div_zero_bias=1.0
            )
        )
        sources = [
            generate_case(s, biased).source for s in range(120)
        ]
        assert any(
            "`div` 0" in src or "`mod` 0" in src for src in sources
        )


class TestCoverage:
    """Over a few hundred seeds the full AST surface should appear in
    the pretty-printed sources."""

    def setup_method(self):
        self.sources = [generate_case(s).source for s in range(300)]

    def _some(self, needle: str) -> bool:
        return any(needle in src for src in self.sources)

    def test_fix_recursion_appears(self):
        assert self._some("fix ")

    def test_strings_appear(self):
        assert self._some("strLen") or self._some("strAppend")

    def test_user_error_appears(self):
        assert self._some("UserError")

    def test_prelude_calls_appear(self):
        assert self._some("sum ") or self._some("head ")

    def test_catch_appears(self):
        assert self._some("catchIO")

    def test_get_exception_appears(self):
        assert self._some("getException")

    def test_case_appears(self):
        assert self._some("case ")

    def test_map_exception_appears(self):
        assert self._some("mapException")


class TestWellFormed:
    def test_sources_reparse(self):
        """pretty . parse is the identity on generated programs — the
        property the corpus (source-based persistence) relies on."""
        from repro.api import compile_expr

        for seed in range(100):
            case = generate_case(seed)
            reparsed = compile_expr(case.source)
            assert pretty(reparsed) == case.source, f"seed {seed}"

    def test_io_cases_get_stdin(self):
        config = GenConfig(io_fraction=1.0, stdin="xyz")
        case = generate_case(3, config)
        assert case.kind == "io"
        assert case.stdin == "xyz"

    def test_pure_cases_have_no_stdin(self):
        case = generate_case(0, GenConfig().pure_only())
        assert case.stdin == ""

    def test_with_expr_preserves_identity(self):
        case = generate_case(5)
        clone = case.with_expr(case.expr, case.source)
        assert clone == case

    def test_depth_bounds_size(self):
        small = [
            expr_size(generate_case(s, GenConfig(max_depth=2)).expr)
            for s in range(50)
        ]
        large = [
            expr_size(generate_case(s, GenConfig(max_depth=6)).expr)
            for s in range(50)
        ]
        assert sum(small) < sum(large)


class TestHypothesisReexport:
    def test_lazy_reexport(self):
        """PEP 562: the strategies import through repro.fuzz.gen."""
        from repro.fuzz.gen import bool_exprs, int_exprs  # noqa: F401

    def test_tests_genexpr_shim(self):
        import tests.genexpr as shim
        from repro.fuzz import hyp

        assert shim.int_exprs is hyp.int_exprs
        assert shim.bool_exprs is hyp.bool_exprs
