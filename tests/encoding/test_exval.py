"""The explicit ExVal encoding (Section 2.1/2.2): adequacy on the
encodable fragment, and the documented flaws — clutter, cost,
increased strictness."""

import pytest

from repro.api import compile_expr, compile_program
from repro.encoding import (
    EncodeError,
    encode_expr,
    encode_program,
    encoding_overhead,
)
from repro.lang.ast import expr_size
from repro.machine import LeftToRight, Machine
from repro.machine.eval import program_env
from repro.machine.heap import ObjRaise
from repro.machine.values import VCon, VInt
from repro.prelude.loader import machine_env


def run_encoded(source):
    """Encode an expression and run it; decode OK/Bad."""
    expr = encode_expr(compile_expr(source))
    machine = Machine(strategy=LeftToRight())
    env = machine_env(machine)
    value = machine.eval(expr, env)
    assert isinstance(value, VCon)
    if value.name == "OK":
        return ("ok", value.args[0].force(machine))
    assert value.name == "Bad"
    return ("bad", value.args[0].force(machine))


def run_native(source):
    machine = Machine(strategy=LeftToRight())
    env = machine_env(machine)
    try:
        return ("ok", machine.eval(compile_expr(source), env))
    except ObjRaise as err:
        return ("bad", err.exc.name)


class TestAdequacy:
    """Encoded programs compute the same OK/Bad outcome as the native
    machine under left-to-right order."""

    CASES = [
        "1 + 2 * 3",
        "(\\x -> x + x) 4",
        "let { v = 2 + 3 } in v * v",
        "case 2 of { 1 -> 10; 2 -> 20; _ -> 0 }",
        "1 `div` 0",
        "raise Overflow",
        "(1 `div` 0) + raise Overflow",
        "seq 1 5",
        "seq (raise Overflow) 5",
        "case Just 3 of { Just v -> v; Nothing -> 0 }",
        "let { f = \\n -> if n == 0 then 1 else n * f (n - 1) } in f 5",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_agrees_with_native(self, source):
        kind_e, val_e = run_encoded(source)
        kind_n, val_n = run_native(source)
        assert kind_e == kind_n, source
        if kind_e == "ok" and isinstance(val_n, VInt):
            assert isinstance(val_e, VInt)
            assert val_e.value == val_n.value
        if kind_e == "bad":
            assert isinstance(val_e, VCon)
            assert val_e.name == val_n


class TestIncreasedStrictness:
    """Section 2.2, first bullet: "it is very easy to accidentally make
    the program strict, by testing a function argument for errors when
    it is passed instead of when it is used"."""

    def test_discarded_exceptional_argument(self):
        # Native laziness: 3.  Encoding: Bad DivideByZero.
        assert run_native("(\\x -> 3) (1 `div` 0)") == (
            "ok",
            run_native("3")[1],
        )
        kind, val = run_encoded("(\\x -> 3) (1 `div` 0)")
        assert kind == "bad"
        assert val.name == "DivideByZero"

    def test_strict_constructor_fields(self):
        kind, _val = run_encoded("Just (1 `div` 0)")
        assert kind == "bad"
        assert run_native("Just (1 `div` 0)")[0] == "ok"


class TestClutter:
    """Section 2.2: "absolutely intolerable" clutter / code size."""

    def test_size_blowup(self):
        expr = compile_expr("(f x) + (g y)")
        encoded = encode_expr(
            expr, encoded_vars=frozenset(["f", "g", "x", "y"])
        )
        ratio = expr_size(encoded) / expr_size(expr)
        assert ratio > 3.0

    def test_program_overhead(self):
        program = compile_program(
            "f n = if n == 0 then 0 else n + f (n - 1)\n"
            "main = f 10"
        )
        before, after, ratio = encoding_overhead(program)
        assert before < after
        assert ratio > 2.0


class TestEncodedPrograms:
    def test_whole_program(self):
        program = compile_program(
            "double n = n + n\nmain = double (double 3)"
        )
        encoded = encode_program(program)
        machine = Machine()
        env = program_env(encoded, machine, machine_env(machine))
        value = env["main"].force(machine)
        assert isinstance(value, VCon) and value.name == "OK"
        assert value.args[0].force(machine) == VInt(12)

    def test_exception_propagates_as_value(self):
        program = compile_program(
            "boom n = n `div` 0\nmain = boom 1 + 1"
        )
        encoded = encode_program(program)
        machine = Machine()
        env = program_env(encoded, machine, machine_env(machine))
        value = env["main"].force(machine)
        assert value.name == "Bad"

    def test_no_machine_raises_during_encoded_run(self):
        # The whole point: exceptions become ordinary values, so the
        # machine's raise machinery is never exercised.
        program = compile_program("main = (1 `div` 0) + 2")
        encoded = encode_program(program)
        machine = Machine()
        env = program_env(encoded, machine, machine_env(machine))
        env["main"].force(machine)
        assert machine.stats.raises == 0


class TestEncodableFragment:
    def test_io_rejected(self):
        with pytest.raises(EncodeError):
            encode_expr(compile_expr("getException 1"))

    def test_fix_rejected(self):
        with pytest.raises(EncodeError):
            encode_expr(compile_expr("fix (\\x -> x)"))

    def test_map_exception_rejected(self):
        with pytest.raises(EncodeError):
            encode_expr(compile_expr("mapException (\\e -> e) 1"))
