"""Prelude heap snapshots: warm machines by copy-on-write forking.

The serving daemon (repro.serve) used to rebuild the prelude for every
request: ~60 `machine_env` cells allocated, then forced (and, on the
compiled backend, compiled) again and again for identical bindings.
This module captures that work once in a :class:`PreludeSnapshot` and
hands out *forks* — fresh machines that share the snapshot's heap.

Why sharing is sound
--------------------

A heap cell is mutable in exactly one direction: ``UNEVALUATED ->
BLACKHOLE -> (VALUE | RAISE)``, and once a cell reaches ``VALUE`` or
``RAISE`` it is never written again — ``Cell.force`` returns the
memoised value (or re-raises the memoised exception, Section 3.3 of
the paper: "re-evaluation never happens") without touching the cell.
The snapshot therefore *deep-forces* the prelude heap at build time:
every cell reachable from the environment (through constructor fields,
closure captures and IO payloads) is driven to ``VALUE`` or ``RAISE``.
After that the entire structure is immutable, so any number of
machines — even concurrently, from different threads — can read it
without blackhole races, and a fork can share the environment dict
itself (the evaluator copies-on-extend, never mutating a caller's
env).

Why observations stay byte-identical
------------------------------------

Counters and trace events are *per-machine*, and a fork is a fresh
machine: its stats start at zero and its sink/governor/fault plan are
attached by the caller after forking.  The matching cold-path
construction is :meth:`PreludeSnapshot.cold_start`, which performs the
same warm-up on a brand-new heap and then ``reset_stats()`` — so warm
and cold evaluations begin from *the same* heap shape (all prelude
cells memoised) with *the same* zeroed counters and fuel budget.
Every step, allocation, force, raise, trace event, governor poll and
fault-plan consultation thereafter is driven by identical state, which
is what the warm-vs-cold parity suite (tests/machine/test_snapshot.py)
and the fuzz oracle's warm lane pin down.

Stateful strategies (``Shuffled``) are handled by value: the snapshot
records the strategy's pre- and post-warm-up states, forks deep-copy
the post-warm-up state, and ``cold_start`` replays the warm-up from
the pre-warm-up state — so both paths consume the RNG stream from the
same point.  (The prelude's bindings are all lambdas and constructors,
so warm-up runs no strict primitives and consumes no randomness; the
discipline still holds for arbitrary base programs.)
"""

from __future__ import annotations

import copy
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.machine.eval import Env, Machine
from repro.machine.frames import CClosure
from repro.machine.heap import Cell, ObjRaise, _RAISE, _VALUE
from repro.machine.strategy import LeftToRight, Strategy
from repro.machine.values import VCon, VFun, VIO

#: Fuel for the build-time warm-up.  The prelude is ~60 lambda/constant
#: bindings; forcing them costs a few hundred steps.  A generous budget
#: keeps the snapshot usable for larger base programs too.
_WARMUP_FUEL = 2_000_000


def _push_children(value, push) -> None:
    """Enqueue every heap cell reachable from a WHNF value."""
    if isinstance(value, VCon):
        for cell in value.args:
            push(cell)
    elif isinstance(value, CClosure):
        for cell in value.captures:
            push(cell)
    elif isinstance(value, VFun):
        for cell in value.env.values():
            push(cell)
    elif isinstance(value, VIO):
        for cell in value.payload:
            push(cell)


def freeze_env(env: Env, machine: Machine) -> List[Cell]:
    """Force every cell reachable from ``env`` to ``VALUE``/``RAISE``.

    Traversal is a worklist over cells (id-visited, so shared cells are
    forced once): each cell is forced to WHNF, then its value's
    children — constructor fields, closure captures (compiled) or
    captured environments (AST), IO payloads — are enqueued.  A cell
    whose forcing raises is left in its memoised ``RAISE`` state (it,
    too, is immutable from then on).  Returns the frozen cells, in
    traversal order.
    """
    seen = set()
    work: deque = deque()

    def push(cell: Cell) -> None:
        if id(cell) not in seen:
            seen.add(id(cell))
            work.append(cell)

    for cell in env.values():
        push(cell)
    frozen: List[Cell] = []
    while work:
        cell = work.popleft()
        frozen.append(cell)
        try:
            value = cell.force(machine)
        except ObjRaise:
            continue
        _push_children(value, push)
    return frozen


def mutable_cells(env: Env) -> List[Cell]:
    """Reachable cells *not* yet memoised (diagnostic/test helper).

    Empty on a properly frozen environment — the invariant that makes
    cross-thread sharing of a snapshot safe.
    """
    seen = set()
    work: deque = deque()

    def push(cell: Cell) -> None:
        if id(cell) not in seen:
            seen.add(id(cell))
            work.append(cell)

    for cell in env.values():
        push(cell)
    offenders: List[Cell] = []
    while work:
        cell = work.popleft()
        if cell.state not in (_VALUE, _RAISE):
            offenders.append(cell)
            continue
        if cell.state == _VALUE:
            _push_children(cell.value, push)
    return offenders


def warm_machine(
    backend: str = "ast",
    strategy: Optional[Strategy] = None,
    fuel: int = 2_000_000,
    detect_blackholes: bool = True,
) -> Tuple[Machine, Env]:
    """Build a machine whose prelude heap is fully memoised.

    This is the *cold* construction with the warm-path starting state:
    a brand-new machine and environment, warmed by :func:`freeze_env`,
    then rebased (``reset_stats``, fuel restored) so the warm-up itself
    is invisible to the observation that follows.  Both the snapshot's
    forks and this function yield machines in byte-identical states —
    the parity contract the serving layer relies on.
    """
    from repro.prelude.loader import machine_env

    machine = Machine(
        strategy=strategy or LeftToRight(),
        fuel=max(fuel, _WARMUP_FUEL),
        detect_blackholes=detect_blackholes,
        backend=backend,
    )
    env = machine_env(machine)
    freeze_env(env, machine)
    machine.reset_stats()
    machine.fuel = fuel
    return machine, env


class PreludeSnapshot:
    """A frozen prelude heap plus the recipe for warm and cold twins.

    ``build`` pays the setup cost once; ``fork`` is O(1) — a fresh
    machine sharing the immutable environment.  ``cold_start`` rebuilds
    the same state from scratch (for benchmarks and parity checks).
    """

    def __init__(
        self,
        backend: str,
        env: Env,
        strategy_warm: Strategy,
        strategy_cold: Strategy,
    ) -> None:
        self.backend = backend
        self.env = env
        self._strategy_warm = strategy_warm
        self._strategy_cold = strategy_cold

    @classmethod
    def build(
        cls,
        backend: str = "ast",
        strategy: Optional[Strategy] = None,
    ) -> "PreludeSnapshot":
        strategy = strategy or LeftToRight()
        pristine = copy.deepcopy(strategy)
        machine, env = warm_machine(backend=backend, strategy=strategy)
        return cls(
            backend=backend,
            env=env,
            strategy_warm=machine.strategy,
            strategy_cold=pristine,
        )

    def strategy_key(self) -> str:
        """The strategy component of cache keys (repro.serve.cache)."""
        return self._strategy_cold.name

    def fork(
        self,
        fuel: int = 2_000_000,
        detect_blackholes: bool = True,
    ) -> Tuple[Machine, Env]:
        """A fresh machine sharing this snapshot's frozen heap.

        The machine carries no sink, governor, fault plan or
        provenance recorder — callers attach those, mirroring
        :func:`warm_machine`'s post-reset state, so warm and cold
        observations see identical instrumentation windows.

        A stateless strategy (the flag of repro.machine.strategy) is
        *shared* between forks — ``order`` is a pure function, so the
        instance is concurrency-safe; stateful strategies (Shuffled's
        RNG) are copied so each fork consumes its own stream from the
        snapshot's post-warm-up point.
        """
        strategy = self._strategy_warm
        if not strategy.stateless:
            strategy = copy.deepcopy(strategy)
        machine = Machine(
            strategy=strategy,
            fuel=fuel,
            detect_blackholes=detect_blackholes,
            backend=self.backend,
        )
        return machine, self.env

    def cold_start(
        self,
        fuel: int = 2_000_000,
        detect_blackholes: bool = True,
    ) -> Tuple[Machine, Env]:
        """The fork's cold twin: same starting state, fresh heap."""
        return warm_machine(
            backend=self.backend,
            strategy=copy.deepcopy(self._strategy_cold),
            fuel=fuel,
            detect_blackholes=detect_blackholes,
        )


_SNAPSHOTS: Dict[Tuple[str, str], PreludeSnapshot] = {}


def shared_snapshot(
    backend: str = "ast", strategy: Optional[Strategy] = None
) -> PreludeSnapshot:
    """A process-wide snapshot per (backend, strategy) — the fuzz
    oracle's warm lane and ad-hoc callers reuse one build instead of
    re-freezing the prelude per evaluation.  Safe because snapshots
    are immutable once built."""
    strategy = strategy or LeftToRight()
    key = (backend, strategy.name)
    snap = _SNAPSHOTS.get(key)
    if snap is None:
        snap = PreludeSnapshot.build(
            backend=backend, strategy=copy.deepcopy(strategy)
        )
        _SNAPSHOTS[key] = snap
    return snap
