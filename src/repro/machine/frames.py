"""Slot-addressed frames and pruned closures for the compiled backend.

The AST interpreter represents an environment as a string-keyed dict
and copies the *whole* dict on every application and ``let`` — so each
call pays for every binding in scope (including the ~40 prelude
entries), whether the body mentions it or not.  The compiled backend
(:mod:`repro.machine.compile`) replaces that with *frames*: flat
tuples of heap cells, indexed by slot numbers the resolver assigns at
compile time.

Layout discipline (fixed by the resolver, one frame per binder):

* lambda-body frame: ``(argument, captured_0, ..., captured_k)``
* ``let`` frame: ``(bind_0, ..., bind_n, captured_0, ...)`` — the
  bound cells see the frame itself, which ties recursive knots;
* case-alt frame: ``(pattern_bind_0, ..., captured_0, ...)`` — built
  only when the alternative actually binds names; a non-binding
  alternative reuses the scrutinee's frame unchanged;
* ``fix`` frame: ``(knot_cell, captured_0, ...)``.

Captured slices are *pruned*: a closure holds exactly the cells its
body's free variables name (in sorted name order), so a tight inner
lambda does not retain the whole enclosing environment — the space
behaviour STG-style compiled code has, rather than the dict-copy
behaviour of the tree-walker.  Top-level and prelude bindings never
occupy frame slots at all: the compiler bakes their cells in directly
(see ``_var_global`` in repro.machine.compile).
"""

from __future__ import annotations

from repro.machine.values import VFun


class CClosure(VFun):
    """A compiled closure: body code plus its pruned capture tuple.

    Subclasses :class:`VFun` so everything that type-tests for
    function-ness (the IO executor, ``fix``, the fuzz oracle's
    ``ok-fun`` classification) treats both backends' functions alike.
    The AST fields ``body``/``env`` are ``None`` here; application goes
    through ``Machine.bind_cell`` or the compiled App code, never
    through field poking.

    Frame convention: the body code runs on ``(arg,) + captures``.
    """

    __slots__ = ("code", "captures")

    def __init__(self, var: str, code, captures) -> None:
        self.var = var
        self.body = None
        self.env = None
        self.code = code
        self.captures = captures

    def __str__(self) -> str:
        return f"\\{self.var} -> ..."
