"""Observations: running the machine and classifying the outcome.

An observation of an expression is one of

* ``Normal(value)`` — WHNF reached,
* ``Exceptional(exc)`` — the machine encountered ``exc`` first (the
  single representative of the denoted exception set, Section 3.5),
* ``Diverged()`` — fuel ran out.

The bridge to the denotational layer (the soundness property tested in
``tests/integration/test_soundness.py``): if ``observe(e)`` is
``Exceptional(x)`` then ``[e] = Bad s`` with ``x ∈ s``; if it is
``Normal(v)`` then ``[e] = Ok v'`` with ``v`` matching ``v'``; if it is
``Diverged()`` then ``NonTermination ∈ s`` (i.e. ``[e] = ⊥``, since our
denotational ⊥ is the only set containing NonTermination for
machine-generated programs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.excset import Exc
from repro.lang.ast import Expr, Program
from repro.machine.eval import Env, Machine, program_env
from repro.machine.heap import AsyncInterrupt, Cell, MachineDiverged, ObjRaise
from repro.machine.strategy import Strategy
from repro.machine.values import VCon, VFun, VInt, VIO, VStr, Value
from repro.obs.sinks import TraceSink, is_live


@dataclass(frozen=True)
class Normal:
    value: Value

    def __str__(self) -> str:
        return f"Normal({self.value})"


@dataclass(frozen=True)
class Exceptional:
    """The machine hit ``exc`` first (the observed set member).

    ``provenance`` is the raise's journey
    (:class:`repro.obs.provenance.RaiseProvenance`), recorded only
    under ``observe(..., provenance=True)``.  It is ``compare=False``:
    two outcomes observing the same member are equal whether or not
    either carries provenance, so oracle verdicts never see it.
    """

    exc: Exc
    provenance: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def __str__(self) -> str:
        return f"Exceptional({self.exc})"


@dataclass(frozen=True)
class Diverged:
    def __str__(self) -> str:
        return "Diverged"


Outcome = Union[Normal, Exceptional, Diverged]


def _prepare_machine(
    machine: Optional[Machine],
    strategy: Optional[Strategy],
    fuel: int,
    sink: Optional[TraceSink],
    reset_stats: bool,
    backend: str = "ast",
) -> Machine:
    """Shared observation setup: build or recycle a machine.

    Stats lifecycle is explicit (reset-per-observe): a recycled
    machine's counters are zeroed so every observation reports its own
    cost, while the remaining fuel budget and pending async events are
    rebased, not forgotten (see :meth:`Machine.reset_stats`).
    """
    if machine is None:
        return Machine(strategy=strategy, fuel=fuel, sink=sink, backend=backend)
    if reset_stats:
        machine.reset_stats()
    if is_live(sink):
        machine.attach_sink(sink)
    return machine


def observe(
    expr: Expr,
    env: Optional[Env] = None,
    machine: Optional[Machine] = None,
    strategy: Optional[Strategy] = None,
    fuel: int = 2_000_000,
    deep: bool = False,
    sink: Optional[TraceSink] = None,
    reset_stats: bool = True,
    backend: str = "ast",
    provenance: bool = False,
) -> Outcome:
    """Run ``expr`` to WHNF (or, with ``deep=True``, to full normal
    form) and classify the outcome.  ``backend`` selects the evaluator
    when no ``machine`` is passed (docs/PERFORMANCE.md).

    ``provenance=True`` attaches a raise-provenance recorder for this
    observation (detached afterwards): an ``Exceptional`` outcome then
    carries where its member was raised and the force chain that got
    there (docs/OBSERVABILITY.md, "Provenance & attribution")."""
    machine = _prepare_machine(
        machine, strategy, fuel, sink, reset_stats, backend
    )
    if provenance:
        from repro.obs.provenance import ProvenanceRecorder

        machine.attach_provenance(ProvenanceRecorder())
    try:
        # The evaluator never mutates the caller's env dict (App/Let
        # copy-on-extend; the compiled backend only reads it), so no
        # defensive copy is needed here.
        value = machine.eval(expr, env if env is not None else {})
        if deep:
            value = deep_force(value, machine)
        return Normal(value)
    except ObjRaise as err:
        return Exceptional(err.exc, provenance=err.provenance)
    except AsyncInterrupt as err:
        return Exceptional(err.exc, provenance=err.provenance)
    except MachineDiverged:
        return Diverged()
    finally:
        if provenance:
            machine.attach_provenance(None)


def observe_program(
    program: Program,
    entry: str = "main",
    machine: Optional[Machine] = None,
    strategy: Optional[Strategy] = None,
    fuel: int = 2_000_000,
    base: Optional[Env] = None,
    deep: bool = False,
    sink: Optional[TraceSink] = None,
    reset_stats: bool = True,
    backend: str = "ast",
    provenance: bool = False,
) -> Outcome:
    machine = _prepare_machine(
        machine, strategy, fuel, sink, reset_stats, backend
    )
    if provenance:
        from repro.obs.provenance import ProvenanceRecorder

        machine.attach_provenance(ProvenanceRecorder())
    env = program_env(program, machine, base)
    cell = env.get(entry)
    if cell is None:
        raise KeyError(f"no top-level binding {entry!r}")
    try:
        value = cell.force(machine)
        if deep:
            value = deep_force(value, machine)
        return Normal(value)
    except ObjRaise as err:
        return Exceptional(err.exc, provenance=err.provenance)
    except AsyncInterrupt as err:
        return Exceptional(err.exc, provenance=err.provenance)
    except MachineDiverged:
        return Diverged()
    finally:
        if provenance:
            machine.attach_provenance(None)


def deep_force(value: Value, machine: Machine) -> Value:
    """Force a value hyper-strictly (every constructor field).

    This is the "force evaluation of all the elements" operation the
    paper describes for making sure a structure contains no exceptional
    values (Section 3.2).  Exceptions lurking inside fields propagate —
    the first one encountered in field order wins, mirroring a
    ``seq``-chain in the object language.
    """
    if isinstance(value, VCon):
        for cell in value.args:
            deep_force(cell.force(machine), machine)
    return value


def _show_cell(cell: "Cell", machine: Machine, depth: int) -> str:
    """Render a lazy field, showing a lurking exception as <raise x>."""
    try:
        return show_value(cell.force(machine), machine, depth)
    except ObjRaise as err:
        return f"<raise {err.exc}>"
    except MachineDiverged:
        return "<diverges>"


def show_value(value: Value, machine: Machine, depth: int = 50) -> str:
    """Render a machine value for output, forcing as needed.

    Exceptional values lurking inside lazy structure (Section 3.2) are
    rendered as ``<raise x>`` rather than aborting the whole rendering.
    """
    if isinstance(value, VInt):
        return str(value.value)
    if isinstance(value, VStr):
        return repr(value.value)
    if isinstance(value, VFun):
        return "<function>"
    if isinstance(value, VIO):
        return f"<io:{value.tag}>"
    if isinstance(value, VCon):
        if depth <= 0:
            return "..."
        if value.name == "Cons":
            items: List[str] = []
            current: Value = value
            while (
                isinstance(current, VCon)
                and current.name == "Cons"
                and depth > 0
            ):
                items.append(_show_cell(current.args[0], machine, depth - 1))
                try:
                    current = current.args[1].force(machine)
                except ObjRaise as err:
                    items.append(f"<raise {err.exc}>")
                    return "[" + ", ".join(items) + "?"
                depth -= 1
            if isinstance(current, VCon) and current.name == "Nil":
                return "[" + ", ".join(items) + "]"
            return "[" + ", ".join(items) + ", ...]"
        if not value.args:
            return value.name
        inner = " ".join(
            _show_cell(cell, machine, depth - 1) for cell in value.args
        )
        return f"({value.name} {inner})"
    return str(value)
