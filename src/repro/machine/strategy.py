"""Evaluation-order strategies.

The denotational semantics deliberately does not fix the order in which
strict primitives evaluate their arguments — that freedom is the whole
point (Section 3.4).  The machine therefore takes the order from a
pluggable :class:`Strategy`.  Different strategies correspond to the
paper's "recompiled with different optimisation settings" scenario
(Section 3.5): the observed exception may change, but it is always a
member of the denoted set.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple


class Strategy:
    """Decides the evaluation order of strict primitive arguments.

    ``stateless`` declares that :meth:`order` is a pure function of
    ``(op, n)``; the compiled backend (repro.machine.compile) then
    bakes the permutation in at compile time instead of consulting the
    strategy per execution.  Stateful strategies (Shuffled) must leave
    it False so their per-call RNG stream matches the AST backend's.
    """

    name = "abstract"
    stateless = False

    def order(self, op: str, n: int) -> Tuple[int, ...]:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


class LeftToRight(Strategy):
    """The 'obvious' sequential order (what a naive compiler emits)."""

    name = "left-to-right"
    stateless = True

    def order(self, op: str, n: int) -> Tuple[int, ...]:
        return tuple(range(n))


class RightToLeft(Strategy):
    """Arguments last-to-first (e.g. a compiler that pushes arguments
    onto a stack right-to-left and evaluates as it pushes)."""

    name = "right-to-left"
    stateless = True

    def order(self, op: str, n: int) -> Tuple[int, ...]:
        return tuple(reversed(range(n)))


class Shuffled(Strategy):
    """A deterministic pseudo-random order per call site occurrence —
    modelling an optimiser that reorders aggressively.  Deterministic
    given the seed, so runs are reproducible (the paper: "successive
    runs of a program, using the same compiler optimisation level, will
    in practice give the same behaviour")."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        self.name = f"shuffled(seed={seed})"

    def order(self, op: str, n: int) -> Tuple[int, ...]:
        idx = list(range(n))
        self._rng.shuffle(idx)
        return tuple(idx)


ALL_STRATEGIES: Sequence[Strategy] = (
    LeftToRight(),
    RightToLeft(),
    Shuffled(1),
    Shuffled(2),
)


def standard_strategies() -> Sequence[Strategy]:
    """Fresh instances (Shuffled carries RNG state)."""
    return (LeftToRight(), RightToLeft(), Shuffled(1), Shuffled(2))
