"""Fuel-sliced execution: run an evaluation in bounded step slices.

The cooperative scheduler (``repro.serve.scheduler``) needs a
*resumable* entry point on the machine layer: give an evaluation a
bounded number of steps, get back "yielded" instead of a
:class:`~repro.machine.eval.MachineDiverged`, and resume later with
the counters, trace stream, Shuffled RNG and §3.3 thunk states all
exactly where they were.

A restart-from-the-root design cannot deliver that: re-walking the
spine would re-count steps and re-consult stateful strategies, so a
sliced run would stop being byte-comparable to an unsliced one.
Instead the evaluation runs **exactly once**, on a dedicated
continuation thread, and *parks in place* at slice boundaries — the
Python frame stack is the continuation, the same trick the §3.3
BLACKHOLE discipline plays with in-flight thunks.  Two pieces:

:class:`SliceGate`
    attached to a machine via ``Machine.attach_slice_gate``; consulted
    on the slow half of every tick (after the governor poll, before
    the fuel check).  When the granted budget is spent it blocks the
    evaluating thread on a condition variable; when an interrupt is
    pending it delivers it through ``Machine._interrupt`` — the single
    §5.1 delivery path shared with the event plan, the fault injector
    and the resource governor, so a scheduler preemption is
    observationally an ordinary asynchronous signal.

:class:`SliceRunner`
    owns the gate plus the continuation thread running a caller
    thunk (fork machine → attach instrumentation → observe →
    classify).  ``run_slice(steps)`` grants a budget, wakes the
    continuation, and blocks the *calling* thread until the
    evaluation parks again or finishes — so a worker pool driving N
    runners executes at most N slices concurrently, while thousands
    of parked continuations cost only an idle thread each (CPython
    3.11 frames live on the heap, so deep ASTs are as safe parked as
    they are on a request thread).

Parity contract (tests/machine/test_slices.py): a sliced run — any
slice sizes, any interleaving — produces the same outcome, counters,
trace events, RNG stream and provenance as an unsliced run on every
backend, because parking adds no observable event and delivery reuses
``_interrupt`` verbatim.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.excset import Exc

__all__ = [
    "SLICE_DONE",
    "SLICE_YIELDED",
    "SliceGate",
    "SliceRunner",
    "SliceStatus",
    "run_sliced",
]

#: ``run_slice`` verdicts.
SLICE_YIELDED = "yielded"
SLICE_DONE = "done"

# Gate states.
_RUNNING = 0
_PARKED = 1
_FINISHED = 2


class SliceGate:
    """The park/resume rendezvous between one evaluation and the
    worker currently driving it.

    All transitions happen under one condition variable: the
    continuation thread parks itself in :meth:`on_tick` when the step
    counter reaches the granted stop line; :meth:`grant` (called from
    ``SliceRunner.run_slice`` on a worker thread) raises the stop line
    and wakes it.  ``clock`` is the time source for
    :meth:`active_clock` — the *machine-run* clock that excludes
    parked time, which cooperative governors use so a deadline bounds
    evaluation, not queue position (an injected constant clock makes
    trip records fully deterministic)."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._cond = threading.Condition()
        self._state = _RUNNING
        self._stop = 0  # absolute step threshold, like Machine.fuel
        self._steps_at_park = 0
        self._pending: Optional[Exc] = None
        self._clock = clock
        self._active = 0.0
        self._resumed_at = clock()
        self.slices = 0

    # -- machine side (continuation thread) ---------------------------

    def on_tick(self, machine) -> None:
        """The per-tick hook ``Machine._tick_slow`` calls.  Delivers a
        pending interrupt first (mid-slice preemption), then parks
        when the slice budget is spent."""
        if self._pending is not None:
            self._deliver(machine)
        if machine.stats.steps < self._stop:
            return
        with self._cond:
            self._active += self._clock() - self._resumed_at
            self._steps_at_park = machine.stats.steps
            self._state = _PARKED
            self.slices += 1
            self._cond.notify_all()
            while self._state == _PARKED and self._pending is None:
                self._cond.wait()
            self._resumed_at = self._clock()
        if self._pending is not None:
            self._deliver(machine)

    def _deliver(self, machine) -> None:
        with self._cond:
            exc, self._pending = self._pending, None
        if exc is not None:
            machine._interrupt(exc)  # raises AsyncInterrupt

    def finish(self, steps: Optional[int] = None) -> None:
        """Mark the evaluation complete (called by the runner's
        continuation thread, success or failure alike)."""
        with self._cond:
            self._active += self._clock() - self._resumed_at
            self._resumed_at = self._clock()
            if steps is not None:
                self._steps_at_park = steps
            self._state = _FINISHED
            self._cond.notify_all()

    # -- scheduler side (worker thread) -------------------------------

    def grant(self, steps: int) -> int:
        """Raise the stop line by ``steps`` from the last park point
        and wake the continuation.  Returns the park-point baseline
        the caller should measure the slice against."""
        with self._cond:
            base = self._steps_at_park
            self._stop = base + max(1, steps)
            if self._state == _PARKED:
                self._state = _RUNNING
                self._cond.notify_all()
            return base

    def wait_not_running(self) -> int:
        """Block until the continuation parks or finishes; returns the
        gate state at that point."""
        with self._cond:
            while self._state == _RUNNING:
                self._cond.wait()
            return self._state

    def interrupt(self, exc: Exc) -> None:
        """Schedule a one-shot §5.1 interrupt.  Delivered at the next
        tick if the evaluation is mid-slice, or immediately on wake-up
        if it is parked (the parked continuation resumes just to
        unwind).  A no-op once the evaluation has finished."""
        with self._cond:
            if self._state == _FINISHED:
                return
            self._pending = exc
            self._cond.notify_all()

    def active_clock(self) -> float:
        """Accumulated *running* time: the wall clock minus every
        parked interval.  Monotonic; safe to call from the
        continuation thread (the only poller) while running."""
        with self._cond:
            if self._state == _RUNNING:
                return self._active + (self._clock() - self._resumed_at)
            return self._active

    @property
    def parked_steps(self) -> int:
        with self._cond:
            return self._steps_at_park

    @property
    def finished(self) -> bool:
        with self._cond:
            return self._state == _FINISHED


@dataclass
class SliceStatus:
    """What one ``run_slice`` call observed."""

    state: str  # SLICE_YIELDED | SLICE_DONE
    steps: int  # steps executed during this slice

    @property
    def done(self) -> bool:
        return self.state == SLICE_DONE


class SliceRunner:
    """One evaluation, sliced.

    ``thunk`` is the whole unit of work (machine construction,
    instrumentation, evaluation, classification); it receives the
    runner's :class:`SliceGate` and must attach it to its machine
    *before* evaluation begins (``machine.attach_slice_gate(gate)``) —
    otherwise the first "slice" simply runs to completion.  The thunk
    executes exactly once, on a lazily started daemon thread; its
    return value lands in :attr:`result`, its exception in
    :attr:`error`, and :meth:`finish` re-raises or returns
    accordingly.

    Setting :attr:`machine` (usually from inside the thunk) lets the
    runner report exact step counts for the final partial slice."""

    def __init__(
        self,
        thunk: Callable[[SliceGate], Any],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.gate = SliceGate(clock=clock)
        self._thunk = thunk
        self._thread: Optional[threading.Thread] = None
        self._start_lock = threading.Lock()
        self.machine = None
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: Optional completion callback, invoked (with the runner) on
        #: the continuation thread after the gate reports finished —
        #: how a scheduler learns a parked task self-completed (e.g.
        #: an interrupt delivered on wake-up) without polling.
        self.on_done: Optional[Callable[["SliceRunner"], None]] = None

    @classmethod
    def for_machine(
        cls,
        machine,
        thunk: Callable[[], Any],
        clock: Callable[[], float] = time.monotonic,
    ) -> "SliceRunner":
        """Convenience for an already-built machine: attaches the gate
        and wraps a zero-argument thunk."""
        runner = cls(lambda _gate: thunk(), clock=clock)
        runner.machine = machine
        machine.attach_slice_gate(runner.gate)
        return runner

    def _main(self) -> None:
        steps = None
        try:
            self.result = self._thunk(self.gate)
        except BaseException as err:  # delivered to the waiter
            self.error = err
        finally:
            if self.machine is not None:
                steps = self.machine.stats.steps
            self.gate.finish(steps)
            if self.on_done is not None:
                self.on_done(self)

    def run_slice(self, steps: int) -> SliceStatus:
        """Grant ``steps`` and drive the evaluation until it parks
        again or completes.  Blocks the calling thread for the
        duration of the slice (a worker pool of W threads therefore
        executes at most W slices at once)."""
        if self.gate.finished:
            return SliceStatus(state=SLICE_DONE, steps=0)
        base = self.gate.grant(steps)
        self._ensure_started()
        state = self.gate.wait_not_running()
        executed = self.gate.parked_steps - base
        if state == _FINISHED:
            return SliceStatus(state=SLICE_DONE, steps=max(0, executed))
        return SliceStatus(state=SLICE_YIELDED, steps=executed)

    def _ensure_started(self) -> None:
        with self._start_lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._main,
                    name="repro-slice",
                    daemon=True,
                )
                self._thread.start()

    def interrupt(self, exc: Exc) -> None:
        """Mid-slice §5.1 preemption: deliver ``exc`` through the
        machine's ordinary interrupt path at the next step boundary.

        Also starts the continuation if it never got a first slice —
        a queued-but-never-scheduled evaluation must still be able to
        unwind (the first tick delivers the pending interrupt, so only
        ~one step executes before the unwind)."""
        self.gate.interrupt(exc)
        if not self.gate.finished:
            self._ensure_started()

    def finish(self) -> Any:
        """Join the continuation and surface the thunk's outcome —
        returns its result or re-raises its exception.  Only valid
        after a ``run_slice`` reported done."""
        if self._thread is not None:
            self._thread.join()
        if self.error is not None:
            raise self.error
        return self.result


def run_sliced(
    machine,
    thunk: Callable[[], Any],
    slice_steps: int,
) -> Any:
    """Drive ``thunk`` on ``machine`` to completion in fixed-size
    slices — the single-evaluation harness the parity tests (and the
    chaos schedule axis' building blocks) use.  Semantically identical
    to calling ``thunk()`` directly; the only difference is *when* the
    steps happen."""
    runner = SliceRunner.for_machine(machine, thunk)
    while not runner.run_slice(slice_steps).done:
        pass
    return runner.finish()
