"""Weak-head-normal-form values of the operational machine.

Unlike the denotational domain, there is no ``Bad`` constructor here:
"an exceptional value behaves as a first class value, but it is never
explicitly represented as such" (Section 3.3).  Exceptions travel as
Python exceptions (:class:`repro.machine.heap.ObjRaise`) — the analogue
of stack trimming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.machine.heap import Cell


class Value:
    """Base class of machine values (always in WHNF)."""

    __slots__ = ()


@dataclass(frozen=True)
class VInt(Value):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VStr(Value):
    """Characters (length 1) and strings share this representation;
    the type checker keeps them apart statically."""

    value: str

    def __str__(self) -> str:
        return repr(self.value)


class VCon(Value):
    """A constructor applied to heap cells (lazy fields)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple["Cell", ...] = ()) -> None:
        self.name = name
        self.args = args

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}<{len(self.args)}>"


class VFun(Value):
    """A closure: one parameter (lambdas are curried), a body and the
    captured environment."""

    __slots__ = ("var", "body", "env")

    def __init__(self, var: str, body, env) -> None:
        self.var = var
        self.body = body
        self.env = env

    def __str__(self) -> str:
        return f"\\{self.var} -> ..."


class VIO(Value):
    """An unperformed IO action (dispatched by :mod:`repro.io.run`)."""

    __slots__ = ("tag", "payload")

    def __init__(self, tag: str, payload: Tuple["Cell", ...] = ()) -> None:
        self.tag = tag
        self.payload = payload

    def __str__(self) -> str:
        return f"IO<{self.tag}>"


class VMVar(Value):
    """A reference to an MVar (concurrency extension; identity is the
    slot index in the executor's MVar table)."""

    __slots__ = ("ref",)

    def __init__(self, ref: int) -> None:
        self.ref = ref

    def __str__(self) -> str:
        return f"MVar#{self.ref}"
