"""Weak-head-normal-form values of the operational machine.

Unlike the denotational domain, there is no ``Bad`` constructor here:
"an exceptional value behaves as a first class value, but it is never
explicitly represented as such" (Section 3.3).  Exceptions travel as
Python exceptions (:class:`repro.machine.heap.ObjRaise`) — the analogue
of stack trimming.
"""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.machine.heap import Cell


class Value:
    """Base class of machine values (always in WHNF)."""

    __slots__ = ()


class VInt(Value):
    """A machine integer.  Immutable by convention; hand-rolled rather
    than a dataclass because these are the hottest allocations the
    machine makes (one per arithmetic result)."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __eq__(self, other) -> bool:
        if other.__class__ is VInt:
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value,))

    def __repr__(self) -> str:
        return f"VInt(value={self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


#: Interned instances for small non-negative results, shared by the
#: hot arithmetic paths (the superinstruction backend indexes this
#: directly).  Safe because a ``VInt`` is immutable and compared by
#: value everywhere — object identity is not observable.
SMALL_INT_LIMIT = 2048
SMALL_INTS = tuple(VInt(i) for i in range(SMALL_INT_LIMIT))


class VStr(Value):
    """Characters (length 1) and strings share this representation;
    the type checker keeps them apart statically."""

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __eq__(self, other) -> bool:
        if other.__class__ is VStr:
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value,))

    def __repr__(self) -> str:
        return f"VStr(value={self.value!r})"

    def __str__(self) -> str:
        return repr(self.value)


class VCon(Value):
    """A constructor applied to heap cells (lazy fields)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple["Cell", ...] = ()) -> None:
        self.name = name
        self.args = args

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}<{len(self.args)}>"


class VFun(Value):
    """A closure: one parameter (lambdas are curried), a body and the
    captured environment."""

    __slots__ = ("var", "body", "env")

    def __init__(self, var: str, body, env) -> None:
        self.var = var
        self.body = body
        self.env = env

    def __str__(self) -> str:
        return f"\\{self.var} -> ..."


class VIO(Value):
    """An unperformed IO action (dispatched by :mod:`repro.io.run`)."""

    __slots__ = ("tag", "payload")

    def __init__(self, tag: str, payload: Tuple["Cell", ...] = ()) -> None:
        self.tag = tag
        self.payload = payload

    def __str__(self) -> str:
        return f"IO<{self.tag}>"


class VMVar(Value):
    """A reference to an MVar (concurrency extension; identity is the
    slot index in the executor's MVar table)."""

    __slots__ = ("ref",)

    def __init__(self, ref: int) -> None:
        self.ref = ref

    def __str__(self) -> str:
        return f"MVar#{self.ref}"
