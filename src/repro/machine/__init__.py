"""The operational layer: a lazy graph-reduction interpreter.

This is "the implementation" the paper contrasts with its semantic
model (Section 3.3): exceptional values are never represented
explicitly; ``raise`` trims the evaluation stack (here: propagates a
Python exception), overwriting every thunk under evaluation with
``raise ex`` on the way out, and thunks are blackholed on entry (which
enables the Section 5.2 "detectable bottoms" behaviour).

Which exception an execution *observes* depends on the evaluation
strategy (the order primitives evaluate their arguments) — that is the
imprecision.  The soundness property linking the two layers is property
tested: any observed exception is a member of the denoted exception
set.
"""

from repro.machine.values import VCon, VFun, VInt, VIO, VStr, Value
from repro.machine.heap import Cell, MachineDiverged, ObjRaise
from repro.machine.strategy import (
    LeftToRight,
    RightToLeft,
    Shuffled,
    Strategy,
)
from repro.machine.eval import BACKENDS, Machine, MachineStats, StatsSnapshot
from repro.machine.compile import CompiledMachine
from repro.machine.superop import SuperMachine
from repro.machine.frames import CClosure
from repro.machine.observe import (
    Diverged,
    Exceptional,
    Normal,
    Outcome,
    deep_force,
    observe,
    observe_program,
)

__all__ = [
    "BACKENDS",
    "CClosure",
    "Cell",
    "CompiledMachine",
    "Diverged",
    "Exceptional",
    "LeftToRight",
    "Machine",
    "MachineDiverged",
    "MachineStats",
    "Normal",
    "ObjRaise",
    "Outcome",
    "RightToLeft",
    "Shuffled",
    "StatsSnapshot",
    "Strategy",
    "SuperMachine",
    "VCon",
    "VFun",
    "VIO",
    "VInt",
    "VStr",
    "Value",
    "deep_force",
    "observe",
    "observe_program",
]
