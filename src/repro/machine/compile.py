"""Compile-to-closures backend: the lazy machine's fast path.

``Machine(backend="compiled")`` lowers each expression ONCE into a tree
of Python closures before running it, instead of re-``isinstance``-
dispatching on every AST node at every step.  The pipeline:

* a **resolver** computes, at each binder, the free variables of the
  scope being built and assigns every binding a fixed slot index;
* **environments become frames** — flat tuples of heap cells indexed
  by those slots (:mod:`repro.machine.frames`) — instead of
  string-keyed dicts copied wholesale on every application;
* **closures capture only their pruned free-variable slice**, in
  sorted name order, so application builds a frame of exactly
  ``1 + len(captures)`` slots;
* **top-level and prelude bindings resolve at compile time**: the
  compiler bakes the global environment's cells (built once per
  machine by ``machine_env``/``program_env``) directly into the
  generated code, so a global reference costs an attribute load, not a
  dict lookup;
* the **driver is an explicit work-loop**: application, ``let`` and
  case-alternative *tails* return a ``(code, frame)`` continuation to
  :func:`_run` instead of recursing, so spine-tail-recursive object
  programs use O(1) Python stack and the compiled path does not need
  the AST backend's 200k ``sys.setrecursionlimit`` bump.

The observable contract is the AST backend's, **exactly**: the same
``Cell`` heap (so ``ObjRaise`` trimming, thunk memoisation,
blackholing and async-resume semantics are shared code, not
re-implementations), the same strategy-ordered strict primitives
(stateful strategies like ``Shuffled`` are consulted per execution;
stateless ones are baked at compile time), the same fuel/async-event
ticks, and the same ``MachineStats`` counters and ``TraceSink`` event
stream node for node.  "Tracing is free when off" survives: every
generated code object gates its slow path on the machine's single
pre-computed ``_slow`` boolean (tracing, governor or fault plan
attached) and guards emission with ``_tracing``, just like the
interpreter.

``tests/machine/test_backends.py`` pins outcome + counter parity and
``benchmarks/bench_compiled.py`` (E13) records the speedup.
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Optional, Tuple

from repro.core.excset import DIVIDE_BY_ZERO, OVERFLOW, PATTERN_MATCH_FAIL
from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PCon,
    PLit,
    PrimOp,
    PVar,
    PWild,
    Raise,
    Var,
)
from repro.lang.names import free_vars
from repro.lang.ops import INT_MAX, INT_MIN
from repro.machine.eval import Machine, MachineError, _IO_TAGS
from repro.machine.frames import CClosure
from repro.machine.heap import Cell, ObjRaise
from repro.machine.values import VCon, VInt, VIO, VStr, Value
from repro.obs.events import ALLOC, PRIM_RAISE, RAISE

# A code object: called with (machine, frame), returns either a Value
# or a (code, frame) continuation for the work-loop to enter.
Code = Callable[["Machine", tuple], object]


def _run(machine: Machine, code: Code, frame) -> Value:
    """The work-loop.  Tails (application bodies, let bodies, case-alt
    bodies, ``seq``'s second argument) come back as ``(code, frame)``
    pairs and are entered iteratively — the compiled analogue of the
    interpreter's ``continue`` into its dispatch loop, minus the
    Python stack frame per step.  Hot generated code inlines this loop
    at each nested-evaluation site; this function is the entry point
    for cold paths."""
    result = code(machine, frame)
    while result.__class__ is tuple:
        code, frame = result
        result = code(machine, frame)
    return result


# -- generated tuple constructors ---------------------------------------
#
# Frames are built from slot picks out of the enclosing frame (plus
# pattern/let bindings).  A genexpr-into-tuple per construction costs a
# generator frame per element; since the slot lists are fixed at
# compile time we generate a direct constructor instead, e.g.
# ``lambda a, f: (a[0], a[2], f[1])``.


def _capturer(cap_src: Tuple[int, ...]):
    """f -> the pruned capture tuple."""
    parts = ", ".join(f"f[{j}]" for j in cap_src)
    return eval(f"lambda f: ({parts},)")


def _binder1(cap_src: Tuple[int, ...]):
    """(cell, f) -> frame with one binding in slot 0."""
    parts = ", ".join(["c"] + [f"f[{j}]" for j in cap_src])
    return eval(f"lambda c, f: ({parts},)")


def _picker(field_idx: Tuple[int, ...], cap_src: Tuple[int, ...]):
    """(constructor args, f) -> case-alt frame."""
    parts = ", ".join(
        [f"a[{i}]" for i in field_idx] + [f"f[{j}]" for j in cap_src]
    )
    return eval(f"lambda a, f: ({parts},)")


def _let_framer(n_binds: int, cap_src: Tuple[int, ...]):
    """(bind cells, f) -> let frame."""
    parts = ", ".join(
        [f"c[{i}]" for i in range(n_binds)] + [f"f[{j}]" for j in cap_src]
    )
    return eval(f"lambda c, f: ({parts},)")


# -- specialised strict appliers ----------------------------------------
#
# The interpreter funnels every strict primitive through the
# `_apply_prim` string-compare chain.  The compiler knows the op at
# compile time, so binary arithmetic and comparisons get direct
# appliers.  Semantics (error messages, overflow/zero checks) mirror
# `Machine._apply_prim`/`_arith` exactly.


def _mk_arith(op: str, fn) -> Callable[[Value, Value], Value]:
    def apply(a: Value, b: Value) -> Value:
        if a.__class__ is not VInt or b.__class__ is not VInt:
            raise MachineError(f"{op} on non-integers")
        result = fn(a.value, b.value)
        if not (INT_MIN < result < INT_MAX):
            raise ObjRaise(OVERFLOW)
        return VInt(result)

    return apply


def _mk_divmod(op: str, fn) -> Callable[[Value, Value], Value]:
    def apply(a: Value, b: Value) -> Value:
        if a.__class__ is not VInt or b.__class__ is not VInt:
            raise MachineError(f"{op} on non-integers")
        if b.value == 0:
            raise ObjRaise(DIVIDE_BY_ZERO)
        result = fn(a.value, b.value)
        if not (INT_MIN < result < INT_MAX):
            raise ObjRaise(OVERFLOW)
        return VInt(result)

    return apply


_TRUE = VCon("True")
_FALSE = VCon("False")


def _mk_cmp(op: str, fn) -> Callable[[Value, Value], Value]:
    def apply(a: Value, b: Value) -> Value:
        if a.__class__ is VInt and b.__class__ is VInt:
            return _TRUE if fn(a.value, b.value) else _FALSE
        av = a.value if isinstance(a, (VInt, VStr)) else None
        bv = b.value if isinstance(b, (VInt, VStr)) else None
        if av is None or bv is None:
            raise MachineError(f"{op} compares base values only")
        return _TRUE if fn(av, bv) else _FALSE

    return apply


_APPLY2: Dict[str, Callable[[Value, Value], Value]] = {
    "+": _mk_arith("+", operator.add),
    "-": _mk_arith("-", operator.sub),
    "*": _mk_arith("*", operator.mul),
    "div": _mk_divmod("div", operator.floordiv),
    "mod": _mk_divmod("mod", operator.mod),
    "==": _mk_cmp("==", operator.eq),
    "/=": _mk_cmp("/=", operator.ne),
    "<": _mk_cmp("<", operator.lt),
    "<=": _mk_cmp("<=", operator.le),
    ">": _mk_cmp(">", operator.gt),
    ">=": _mk_cmp(">=", operator.ge),
}


# -- the resolver/compiler ----------------------------------------------


class _Compiler:
    """Lowers one expression against a fixed global environment.

    ``scope`` maps every *lexically* bound name in the current frame to
    its slot index; names absent from the scope resolve through the
    global dict (baked at compile time) or compile to an
    unbound-variable raise.  Binders (Lam/Let/Case-alt/Fix) start a new
    frame: their own bindings take the low slots and the pruned
    captured slice fills the rest, so the generated capture code is a
    tuple-build of exactly the cells the body names.
    """

    __slots__ = ("glob", "strategy")

    def __init__(self, glob: Dict[str, Cell], strategy) -> None:
        self.glob = glob
        self.strategy = strategy

    # Captured-variable resolution: the sorted free names of `body`
    # that live in the current scope, minus `bound`.
    def _captures(self, exprs, bound, scope) -> Tuple[list, Tuple[int, ...]]:
        frees: set = set()
        for e in exprs:
            frees |= free_vars(e)
        names = sorted(n for n in frees - bound if n in scope)
        return names, tuple(scope[n] for n in names)

    def compile(self, expr: Expr, scope: Dict[str, int]) -> Code:
        code = self._compile_node(expr, scope)
        # Generated code objects carry their AST node's source span as
        # a function attribute: `Cell.force` reads `expr.span` off the
        # cell's payload for FORCE events and provenance chains, and
        # the payload here is the code object, not the AST node.  This
        # is what makes span attribution backend-invariant.
        code.span = expr.span
        return code

    def _compile_node(self, expr: Expr, scope: Dict[str, int]) -> Code:
        if isinstance(expr, Var):
            return self._compile_var(expr.name, scope)
        if isinstance(expr, Lit):
            if expr.kind == "int":
                value: Value = VInt(int(expr.value))
            else:
                value = VStr(str(expr.value))

            def lit_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                return value

            return lit_code
        if isinstance(expr, Lam):
            return self._compile_lam(expr, scope)
        if isinstance(expr, App):
            return self._compile_app(expr, scope)
        if isinstance(expr, Con):
            return self._compile_con(expr, scope)
        if isinstance(expr, Case):
            return self._compile_case(expr, scope)
        if isinstance(expr, Raise):
            return self._compile_raise(expr, scope)
        if isinstance(expr, PrimOp):
            return self._compile_prim(expr, scope)
        if isinstance(expr, Fix):
            return self._compile_fix(expr, scope)
        if isinstance(expr, Let):
            return self._compile_let(expr, scope)
        raise MachineError(f"eval: unknown expression {expr!r}")

    def _compile_var(self, name: str, scope: Dict[str, int]) -> Code:
        idx = scope.get(name)
        if idx is not None:
            # The `state == 2` (_VALUE) test is `Cell.force`'s own
            # memoised fast path, inlined to skip three Python frames
            # per re-read of an already-forced binding.
            def local_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                cell = f[idx]
                if cell.state == 2:
                    return cell.value
                return cell.force(m)

            return local_code
        cell = self.glob.get(name)
        if cell is not None:

            def global_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                if cell.state == 2:
                    return cell.value
                return cell.force(m)

            return global_code

        def unbound_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            raise MachineError(f"unbound variable {name!r}")

        return unbound_code

    def _compile_lam(self, expr: Lam, scope: Dict[str, int]) -> Code:
        names, cap_src = self._captures((expr.body,), {expr.var}, scope)
        body_scope = {expr.var: 0}
        for i, n in enumerate(names):
            body_scope[n] = i + 1
        body_code = self.compile(expr.body, body_scope)
        var = expr.var
        if not cap_src:
            closure = CClosure(var, body_code, ())

            def lam_code0(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                return closure

            return lam_code0
        capture = _capturer(cap_src)

        def lam_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            return CClosure(var, body_code, capture(f))

        return lam_code

    def _compile_app(self, expr: App, scope: Dict[str, int]) -> Code:
        fn_code = self.compile(expr.fn, scope)
        arg_code = self.compile(expr.arg, scope)

        def app_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            fn = fn_code(m, f)
            while fn.__class__ is tuple:
                c, fr = fn
                fn = c(m, fr)
            if fn.__class__ is not CClosure:
                raise MachineError(f"applied non-function {fn}")
            st.allocations += 1
            if m._tracing:
                m.sink.emit(ALLOC, kind="thunk")
            return fn.code, (Cell(arg_code, f),) + fn.captures

        return app_code

    def _compile_con(self, expr: Con, scope: Dict[str, int]) -> Code:
        name = expr.name
        arg_codes = tuple(self.compile(a, scope) for a in expr.args)
        if not arg_codes:
            con = VCon(name)

            def con_code0(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.allocations += 1
                if m._tracing:
                    m.sink.emit(ALLOC, kind="con")
                return con

            return con_code0

        n_args = len(arg_codes)
        if n_args == 1:
            (c0,) = arg_codes

            def con_code1(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.allocations += 2
                if m._tracing:
                    m.sink.emit(ALLOC, kind="con")
                    m.sink.emit(ALLOC, kind="thunk")
                return VCon(name, (Cell(c0, f),))

            return con_code1
        if n_args == 2:
            c0, c1 = arg_codes

            def con_code2(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.allocations += 3
                if m._tracing:
                    m.sink.emit(ALLOC, kind="con")
                    m.sink.emit(ALLOC, kind="thunk")
                    m.sink.emit(ALLOC, kind="thunk")
                return VCon(name, (Cell(c0, f), Cell(c1, f)))

            return con_code2

        def con_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            st.allocations += 1 + n_args
            if m._tracing:
                m.sink.emit(ALLOC, kind="con")
                for _ in arg_codes:
                    m.sink.emit(ALLOC, kind="thunk")
            return VCon(name, tuple(Cell(c, f) for c in arg_codes))

        return con_code

    def _compile_case(self, expr: Case, scope: Dict[str, int]) -> Code:
        scrut_code = self.compile(expr.scrutinee, scope)
        alt_codes = tuple(
            self._compile_alt(alt, scope) for alt in expr.alts
        )
        span = expr.span

        def case_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            scrut = scrut_code(m, f)
            while scrut.__class__ is tuple:
                c, fr = scrut
                scrut = c(m, fr)
            for try_alt in alt_codes:
                res = try_alt(m, f, scrut)
                if res is not None:
                    return res
            st.raises += 1
            if m._tracing:
                m.sink.emit(RAISE, exc=PATTERN_MATCH_FAIL.name, span=span)
            err = ObjRaise(PATTERN_MATCH_FAIL)
            if m._prov is not None:
                m._prov.annotate(err, span, st)
            raise err

        return case_code

    def _compile_alt(self, alt, scope: Dict[str, int]):
        """Compile one alternative to ``try_alt(m, f, scrut)`` returning
        ``None`` on mismatch or a ``(body_code, frame)`` continuation on
        match.  Non-binding alternatives reuse the incoming frame — the
        compiled mirror of the interpreter skipping its env copy when
        the binding dict is empty."""
        pattern, body = alt.pattern, alt.body

        if isinstance(pattern, PWild):
            body_code = self.compile(body, scope)

            def try_wild(m, f, scrut):
                return body_code, f

            return try_wild

        if isinstance(pattern, PVar):
            bname = pattern.name
            names, cap_src = self._captures((body,), {bname}, scope)
            body_scope = {bname: 0}
            for i, n in enumerate(names):
                body_scope[n] = i + 1
            body_code = self.compile(body, body_scope)
            bind = _binder1(cap_src)

            def try_var(m, f, scrut):
                return body_code, bind(Cell.ready(scrut), f)

            return try_var

        if isinstance(pattern, PLit):
            lit = pattern.value
            body_code = self.compile(body, scope)

            def try_lit(m, f, scrut):
                if isinstance(scrut, (VInt, VStr)):
                    if scrut.value == lit:
                        return body_code, f
                    return None
                raise MachineError("literal pattern against non-literal")

            return try_lit

        if isinstance(pattern, PCon):
            cname = pattern.name
            nested = any(
                not isinstance(sub, (PVar, PWild)) for sub in pattern.args
            )
            if nested:
                # Flattening happens upstream; mirror the interpreter's
                # runtime error if a nested pattern slips through — but
                # only after the constructor matches, as `_match` does.
                def try_nested(m, f, scrut):
                    if not isinstance(scrut, VCon) or scrut.name != cname:
                        return None
                    raise MachineError(
                        "nested pattern reached the machine; run "
                        "flatten_case_patterns first"
                    )

                return try_nested
            take = tuple(
                (i, sub.name)
                for i, sub in enumerate(pattern.args)
                if isinstance(sub, PVar)
            )
            if not take:
                body_code = self.compile(body, scope)

                def try_con0(m, f, scrut):
                    if not isinstance(scrut, VCon) or scrut.name != cname:
                        return None
                    return body_code, f

                return try_con0
            bound = {n for _i, n in take}
            names, cap_src = self._captures((body,), bound, scope)
            body_scope = {}
            # Later bindings of a repeated name win, matching the
            # interpreter's dict-update semantics.
            for slot, (_i, n) in enumerate(take):
                body_scope[n] = slot
            k = len(take)
            for j, n in enumerate(names):
                body_scope[n] = k + j
            body_code = self.compile(body, body_scope)
            field_idx = tuple(i for i, _n in take)
            pick = _picker(field_idx, cap_src)

            def try_con(m, f, scrut):
                if not isinstance(scrut, VCon) or scrut.name != cname:
                    return None
                return body_code, pick(scrut.args, f)

            return try_con

        raise MachineError(f"unknown pattern {pattern!r}")

    def _compile_raise(self, expr: Raise, scope: Dict[str, int]) -> Code:
        exc_code = self.compile(expr.exc, scope)
        span = expr.span

        def raise_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            value = _run(m, exc_code, f)
            st.raises += 1
            exc = m.exc_of_value(value)
            if m._tracing:
                m.sink.emit(RAISE, exc=exc.name, span=span)
            err = ObjRaise(exc)
            if m._prov is not None:
                m._prov.annotate(err, span, st)
            raise err

        return raise_code

    def _compile_fix(self, expr: Fix, scope: Dict[str, int]) -> Code:
        fn_code = self.compile(expr.fn, scope)

        def fix_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            fn = _run(m, fn_code, f)
            if fn.__class__ is not CClosure:
                raise MachineError("fix of a non-function")
            # The knot cell computes the body with itself bound to the
            # recursive variable: fix f = f (fix f).
            knot = Cell(None, None)
            knot.expr = fn.code
            knot.env = (knot,) + fn.captures
            return knot.force(m)

        return fix_code

    def _compile_let(self, expr: Let, scope: Dict[str, int]) -> Code:
        names = [name for name, _rhs in expr.binds]
        bound = set(names)
        sub_exprs = tuple(rhs for _n, rhs in expr.binds) + (expr.body,)
        cap_names, cap_src = self._captures(sub_exprs, bound, scope)
        inner_scope: Dict[str, int] = {}
        # Later duplicate binders shadow earlier ones, as dict insert
        # order does in the interpreter.
        for i, n in enumerate(names):
            inner_scope[n] = i
        k = len(names)
        for j, n in enumerate(cap_names):
            inner_scope[n] = k + j
        rhs_codes = tuple(
            self.compile(rhs, inner_scope) for _n, rhs in expr.binds
        )
        body_code = self.compile(expr.body, inner_scope)
        n_binds = len(rhs_codes)
        frame_of = _let_framer(n_binds, cap_src)

        def let_code(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            st.allocations += n_binds
            if m._tracing:
                for _ in rhs_codes:
                    m.sink.emit(ALLOC, kind="thunk")
            cells = [Cell(rc, None) for rc in rhs_codes]
            frame = frame_of(cells, f)
            # Recursive scope: the cells must see the frame they sit in.
            for c in cells:
                c.env = frame
            return body_code, frame

        return let_code

    def _compile_prim(self, expr: PrimOp, scope: Dict[str, int]) -> Code:
        op = expr.op

        tag = _IO_TAGS.get(op)
        if tag is not None:
            arg_codes = tuple(self.compile(a, scope) for a in expr.args)

            def io_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.prim_ops += 1
                st.allocations += len(arg_codes)
                if m._tracing:
                    for _ in arg_codes:
                        m.sink.emit(ALLOC, kind="thunk")
                return VIO(tag, tuple(Cell(c, f) for c in arg_codes))

            return io_code
        if op in ("getChar", "newEmptyMVar", "yieldIO"):
            vio_tag = "yield" if op == "yieldIO" else op

            def nullary_io_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.prim_ops += 1
                return VIO(vio_tag)

            return nullary_io_code

        if op == "seq":
            first_code = self.compile(expr.args[0], scope)
            second_code = self.compile(expr.args[1], scope)

            def seq_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.prim_ops += 1
                _run(m, first_code, f)
                return second_code, f

            return seq_code

        if op == "mapException":
            fn_code = self.compile(expr.args[0], scope)
            arg_code = self.compile(expr.args[1], scope)

            map_span = expr.span

            def map_exc_code(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.prim_ops += 1
                try:
                    return _run(m, arg_code, f)
                except ObjRaise as err:
                    fn = _run(m, fn_code, f)
                    if not isinstance(fn, CClosure):
                        raise MachineError(
                            "mapException: non-function mapper"
                        )
                    mapped = _run(
                        m,
                        fn.code,
                        (Cell.ready(m.value_of_exc(err.exc)),) + fn.captures,
                    )
                    new_err = ObjRaise(m.exc_of_value(mapped))
                    if m._prov is not None:
                        m._prov.annotate(new_err, map_span, st)
                    raise new_err from None

            return map_exc_code

        # Strict primitives: arguments in strategy order, first
        # exception propagating (Section 3.5).  Stateless strategies
        # are baked at compile time; stateful ones (Shuffled) consult
        # the strategy per execution so the RNG stream matches the
        # interpreter call for call.
        arg_codes = tuple(self.compile(a, scope) for a in expr.args)
        n = len(arg_codes)
        apply2 = _APPLY2.get(op) if n == 2 else None
        prim_span = expr.span
        # Provenance and tracing: exceptions *propagating* out of
        # argument evaluation keep their tighter annotation and emit no
        # event here (the inner raise already did); exceptions
        # *originated* by the application itself (div-by-zero, overflow
        # from ⊕) get this PrimOp's span and — under a live sink — the
        # distinct `prim-raise` event, mirroring the interpreter
        # byte-for-byte.  The try/excepts are free on the no-raise path
        # (3.11 zero-cost exception tables), and the handlers guard on
        # the same precomputed `m._prov`/`m._tracing` the interpreter
        # uses.
        if self.strategy.stateless:
            order = self.strategy.order(op, n)
            if apply2 is not None and order == (0, 1):
                c0, c1 = arg_codes

                def strict_lr(m, f):
                    st = m.stats
                    st.steps += 1
                    if m._slow or m._events or st.steps > m.fuel:
                        m._tick_slow()
                    st.prim_ops += 1
                    try:
                        a = c0(m, f)
                        while a.__class__ is tuple:
                            c, fr = a
                            a = c(m, fr)
                        b = c1(m, f)
                        while b.__class__ is tuple:
                            c, fr = b
                            b = c(m, fr)
                    except ObjRaise as err:
                        if m._prov is not None:
                            m._prov.annotate(err, prim_span, m.stats)
                        raise
                    try:
                        return apply2(a, b)
                    except ObjRaise as err:
                        if m._tracing:
                            m.sink.emit(
                                PRIM_RAISE,
                                exc=err.exc.name,
                                span=prim_span,
                            )
                        if m._prov is not None:
                            m._prov.annotate(err, prim_span, m.stats)
                        raise

                return strict_lr
            if apply2 is not None and order == (1, 0):
                c0, c1 = arg_codes

                def strict_rl(m, f):
                    st = m.stats
                    st.steps += 1
                    if m._slow or m._events or st.steps > m.fuel:
                        m._tick_slow()
                    st.prim_ops += 1
                    try:
                        b = c1(m, f)
                        while b.__class__ is tuple:
                            c, fr = b
                            b = c(m, fr)
                        a = c0(m, f)
                        while a.__class__ is tuple:
                            c, fr = a
                            a = c(m, fr)
                    except ObjRaise as err:
                        if m._prov is not None:
                            m._prov.annotate(err, prim_span, m.stats)
                        raise
                    try:
                        return apply2(a, b)
                    except ObjRaise as err:
                        if m._tracing:
                            m.sink.emit(
                                PRIM_RAISE,
                                exc=err.exc.name,
                                span=prim_span,
                            )
                        if m._prov is not None:
                            m._prov.annotate(err, prim_span, m.stats)
                        raise

                return strict_rl

            def strict_static(m, f):
                st = m.stats
                st.steps += 1
                if m._slow or m._events or st.steps > m.fuel:
                    m._tick_slow()
                st.prim_ops += 1
                values = [None] * n
                try:
                    for i in order:
                        values[i] = _run(m, arg_codes[i], f)
                except ObjRaise as err:
                    if m._prov is not None:
                        m._prov.annotate(err, prim_span, m.stats)
                    raise
                try:
                    return m._apply_prim(op, values)
                except ObjRaise as err:
                    if m._tracing:
                        m.sink.emit(
                            PRIM_RAISE, exc=err.exc.name, span=prim_span
                        )
                    if m._prov is not None:
                        m._prov.annotate(err, prim_span, m.stats)
                    raise

            return strict_static

        def strict_dynamic(m, f):
            st = m.stats
            st.steps += 1
            if m._slow or m._events or st.steps > m.fuel:
                m._tick_slow()
            st.prim_ops += 1
            values = [None] * n
            try:
                for i in m.strategy.order(op, n):
                    values[i] = _run(m, arg_codes[i], f)
            except ObjRaise as err:
                if m._prov is not None:
                    m._prov.annotate(err, prim_span, m.stats)
                raise
            try:
                return m._apply_prim(op, values)
            except ObjRaise as err:
                if m._tracing:
                    m.sink.emit(
                        PRIM_RAISE, exc=err.exc.name, span=prim_span
                    )
                if m._prov is not None:
                    m._prov.annotate(err, prim_span, m.stats)
                raise

        return strict_dynamic


def compile_top(
    expr: Expr, glob: Optional[Dict[str, Cell]], strategy
) -> Code:
    """Lower ``expr`` against the global environment ``glob`` (a
    name -> Cell dict: prelude and/or top-level program bindings).
    Global cells are baked into the generated code, so the result is
    specific to one machine's environment — cells memoise, so each
    binding is compiled at most once per machine."""
    return _Compiler(glob or {}, strategy).compile(expr, {})


class CompiledMachine(Machine):
    """The ``backend="compiled"`` machine.

    Everything observable — heap cells, stats, sinks, strategies,
    primitive semantics, exception conversion — is inherited from
    :class:`Machine`; only *how expressions run* differs.  ``eval``
    dispatches on what it is handed: an AST :class:`Expr` (with a dict
    environment) is lowered by :func:`compile_top` first; an
    already-compiled code object (with a frame) — the payload of cells
    this backend allocates — enters the work-loop directly.
    """

    def __init__(
        self,
        strategy=None,
        fuel: int = 2_000_000,
        detect_blackholes: bool = True,
        event_plan=None,
        sink=None,
        *,
        backend: str = "compiled",
    ) -> None:
        if backend != "compiled":
            raise ValueError(
                f"CompiledMachine only supports backend='compiled', "
                f"got {backend!r}"
            )
        super().__init__(
            strategy,
            fuel,
            detect_blackholes,
            event_plan,
            sink,
            backend="compiled",
        )

    def eval(self, expr, env) -> Value:
        if isinstance(expr, Expr):
            expr, env = compile_top(expr, env, self.strategy), ()
        # _run, inlined: eval is the per-force entry point (Cell.force
        # calls it), so one fewer Python frame matters here.
        result = expr(self, env)
        while result.__class__ is tuple:
            code, frame = result
            result = code(self, frame)
        return result

    def bind_cell(self, fn, arg_cell: Cell) -> Cell:
        return Cell(fn.code, (arg_cell,) + fn.captures)
