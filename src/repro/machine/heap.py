"""Heap cells: memoised thunks with blackholing and raise-overwriting.

This implements the Section 3.3 machinery faithfully:

* on entry a thunk is overwritten with a **black hole** (avoiding the
  "celebrated space leak" and detecting some loops, Section 5.2);
* if evaluation of a thunk is abandoned by ``raise ex``, the thunk is
  overwritten with ``raise ex`` so re-evaluation raises the *same*
  exception again ("which is as it should be");
* on success the thunk is overwritten with its value.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.excset import Exc, NON_TERMINATION
from repro.obs.events import BLACKHOLE_ENTER, FORCE, FORCE_END, MEMO_RERAISE

if TYPE_CHECKING:
    from repro.machine.eval import Machine
    from repro.machine.values import Value


class ObjRaise(Exception):
    """An object-language exception in flight (the stack trim).

    ``provenance`` is observability metadata (a
    :class:`repro.obs.provenance.RaiseProvenance`), attached only when
    a recorder is active; the class-level default keeps the common
    constructor free of an extra store.  It travels with the Python
    exception, never with the semantic :class:`Exc` value.
    """

    provenance = None

    def __init__(self, exc: Exc) -> None:
        super().__init__(str(exc))
        self.exc = exc


class AsyncInterrupt(Exception):
    """An asynchronous event (Section 5.1) delivered mid-evaluation.

    Unlike :class:`ObjRaise` it does NOT overwrite thunks with
    ``raise ex``: the paper notes thunks must instead be overwritten
    with a "resumable continuation".  We model that by resetting
    in-flight thunks to their unevaluated state, so evaluation can be
    retried later — the behavioural content of resumability.
    """

    provenance = None

    def __init__(self, exc: Exc) -> None:
        super().__init__(str(exc))
        self.exc = exc


class MachineDiverged(Exception):
    """Fuel exhausted: the machine would run forever."""


# Cell states
_UNEVALUATED = 0
_BLACKHOLE = 1
_VALUE = 2
_RAISE = 3


class Cell:
    """One heap cell holding a lazily evaluated expression."""

    __slots__ = ("state", "expr", "env", "value", "exc")

    def __init__(self, expr, env) -> None:
        self.state = _UNEVALUATED
        self.expr = expr
        self.env = env
        self.value: Optional["Value"] = None
        self.exc: Optional[Exc] = None

    @staticmethod
    def ready(value: "Value") -> "Cell":
        cell = Cell.__new__(Cell)
        cell.state = _VALUE
        cell.expr = None
        cell.env = None
        cell.value = value
        cell.exc = None
        return cell

    @staticmethod
    def raising(exc: Exc) -> "Cell":
        cell = Cell.__new__(Cell)
        cell.state = _RAISE
        cell.expr = None
        cell.env = None
        cell.value = None
        cell.exc = exc
        return cell

    def force(self, machine: "Machine") -> "Value":
        state = self.state
        if state == _VALUE:
            assert self.value is not None
            return self.value
        if state == _RAISE:
            assert self.exc is not None
            if machine._tracing:
                machine.sink.emit(MEMO_RERAISE, exc=self.exc.name)
            err = ObjRaise(self.exc)
            # A raising cell's `value` slot is unused; it smuggles the
            # original raise's provenance so a memoised re-raise still
            # explains itself (re-evaluation never happens, §3.3, so
            # the original record IS this raise's provenance).
            if self.value is not None:
                err.provenance = self.value
            raise err
        if state == _BLACKHOLE:
            # Re-entering a thunk under evaluation: a loop.  Section 5.2
            # permits (but does not require) reporting NonTermination.
            if machine._tracing:
                machine.sink.emit(
                    BLACKHOLE_ENTER, reported=machine.detect_blackholes
                )
            if machine.detect_blackholes:
                err = ObjRaise(NON_TERMINATION)
                if machine._prov is not None:
                    machine._prov.annotate(
                        err, getattr(self.expr, "span", None), machine.stats
                    )
                raise err
            raise MachineDiverged("re-entered a black hole")
        expr, env = self.expr, self.env
        self.state = _BLACKHOLE
        stats = machine.stats
        stats.thunks_forced += 1
        stats.force_depth += 1
        if stats.force_depth > stats.max_force_depth:
            stats.max_force_depth = stats.force_depth
        prov = machine._prov
        if machine._tracing:
            # `decision` is the strategy-decision clock (the number of
            # strict primitives executed so far — the same index raise
            # provenance records): it says which decision preceded the
            # demand that entered this frame.  Cell.force is shared by
            # every backend and the prim_ops counters are in lockstep,
            # so the annotation is backend-invariant by construction.
            machine.sink.emit(
                FORCE,
                depth=stats.force_depth,
                span=getattr(expr, "span", None),
                decision=stats.prim_ops,
            )
        if prov is not None:
            prov.stack.append(getattr(expr, "span", None))
        try:
            value = machine.eval(expr, env)
        except ObjRaise as err:
            # Overwrite with `raise ex` (Section 3.3).
            self.state = _RAISE
            self.exc = err.exc
            self.expr = None
            self.env = None
            self.value = err.provenance
            raise
        except AsyncInterrupt:
            # Resumable continuation (Section 5.1): restore the thunk.
            self.state = _UNEVALUATED
            self.expr = expr
            self.env = env
            raise
        except MachineDiverged:
            self.state = _UNEVALUATED
            self.expr = expr
            self.env = env
            raise
        finally:
            if prov is not None:
                prov.stack.pop()
            if machine._tracing:
                machine.sink.emit(FORCE_END, depth=stats.force_depth)
            stats.force_depth -= 1
        self.state = _VALUE
        self.value = value
        self.expr = None
        self.env = None
        return value
