"""Profile-guided superinstructions: fuse hot step sequences into
single Python frames.

``Machine(backend="super")`` is the second-generation compiled backend.
The closure backend (repro.machine.compile) already lowers each AST
node to one Python closure; its remaining cost is the *call* per node
— every semantic step still crosses a Python frame boundary.  This
module fuses the recurring step shapes into one generated Python
function per fusion site, so a hot region executes several virtual
machine steps without leaving a single Python frame:

* **saturated-prim-then-case** — ``case a ⊕ b of …`` evaluates the
  scrutinee primitive, both operands, the alternative dispatch *and*
  the matching alternative's body inline (the shape every
  ``if``/comparison desugars to);
* **force-then-apply** — ``f x`` resolves the function inline — a
  variable is one cell read, a nested application recurses — instead
  of calling a function-position closure;
* **let-chain-then-tail-call** — consecutive ``let`` frames allocate
  and tie their cells in one pass, then run the final body's first
  transition inline;
* **memoised-cell-read-then-prim** — primitive operands that are
  literals, variables, constructors, applications or further
  primitives are evaluated inline (a literal costs one constant load,
  a forced variable one state test), not through operand closures.

Inlining is recursive and budgeted (:data:`_INLINE_BUDGET` virtual
steps per generated function); past the budget, or for shapes outside
the catalogue, operands fall back to compiled sub-codes, so generated
programs are a mix of fused and plain closures sharing one calling
convention.

The soundness discipline is the **virtual step boundary**: a fused
frame replays the *exact* per-step tick of the unfused backends —
``steps += 1`` plus the slow-path test — at every point where an
unfused closure would have ticked.  Counters, trace events, Shuffled
RNG draws (stateful strategies are consulted once per primitive
execution, at the same point in the sequence) and asynchronous
interrupt/fault delivery points are therefore byte-identical to the
AST and compiled backends; the parity suite and the chaos sweeps gate
this for free (tests/machine/test_backends.py, repro.chaos).

**Constant folding through memoised cells**: a heap cell is immutable
once it reaches the ``VALUE`` state (Section 3.3 — re-evaluation never
happens), so a global cell *proven forced at compile time* — every
prelude cell when compiling against a :class:`PreludeSnapshot`'s
deep-forced heap — is baked into the generated code as a constant
(for an applied function, its code and captures bake too).  The
virtual step for the variable read still ticks; only the cell
indirection disappears, so observations are unchanged.

**Profile-guided selection**: fusion is all-on by default (fusing is a
compile-time decision with no runtime cost when wrong).  Given a
SpanProfiler folded-stack profile (``repro profile --flame``, or the
CLI's ``--profile-in``), :func:`span_heat` classifies each span as hot
or cold by its share of leaf-frame steps, and the compiler fuses hot
regions while lowering cold ones exactly as the compiled backend would
— spans absent from the profile inherit their enclosing region's
decision.

``benchmarks/bench_superop.py`` (E18) records the speedup; the fusion
catalogue and the boundary contract are documented in
docs/PERFORMANCE.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Let,
    Lit,
    PCon,
    PLit,
    PVar,
    PWild,
    PrimOp,
    Var,
)
from repro.core.excset import DIVIDE_BY_ZERO, OVERFLOW, PATTERN_MATCH_FAIL
from repro.lang.ops import INT_MAX, INT_MIN
from repro.machine.compile import (
    _APPLY2,
    _FALSE,
    _TRUE,
    _binder1,
    _let_framer,
    _picker,
    _Compiler,
    Code,
    CompiledMachine,
)
from repro.machine.eval import Machine, MachineError
from repro.machine.frames import CClosure
from repro.machine.heap import Cell, ObjRaise
from repro.machine.values import (
    SMALL_INT_LIMIT,
    SMALL_INTS,
    VCon,
    VInt,
    VStr,
)
from repro.obs.attribution import ROOT
from repro.obs.events import ALLOC, PRIM_RAISE, RAISE

#: Fusion-site counters a SuperMachine aggregates (see
#: :meth:`SuperMachine.fusion_report`).
_FUSION_KINDS = ("prim", "case", "app", "con", "let-chain", "folded-cells")

#: A span's share of leaf-frame steps at or above which it counts as
#: hot (``span_heat``'s default).
HOT_FRACTION = 0.01

#: Upper bound on inlined virtual steps per generated function — a
#: guard on generated-code size (and `exec` compile time), not a
#: semantic limit: past it, sub-expressions compile to their own
#: (possibly fused) codes and are called.
_INLINE_BUDGET = 48


def span_heat(
    folded: Iterable[str], fraction: float = HOT_FRACTION
) -> Dict[str, bool]:
    """Classify spans from folded flamegraph lines as hot or cold.

    Each folded line is ``frame;frame;... count``; the count is
    attributed to the *leaf* frame (the span whose own steps those
    are).  Decision-index decorations (``@d<N>``) are stripped, so
    profiles recorded with or without them steer identically.  Returns
    ``{span_label: is_hot}`` — labels absent from the profile are not
    in the map (the compiler lets them inherit the enclosing region's
    decision).
    """
    totals: Dict[str, int] = {}
    grand = 0
    for line in folded:
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        try:
            n = int(count)
        except ValueError:
            continue
        if not stack:
            continue
        leaf = stack.split(";")[-1].rsplit("@d", 1)[0]
        totals[leaf] = totals.get(leaf, 0) + n
        grand += n
    if grand <= 0:
        return {}
    cut = grand * fraction
    return {label: total >= cut for label, total in totals.items()}


def load_profile(path: str, fraction: float = HOT_FRACTION) -> Dict[str, bool]:
    """Read a ``.folded`` file (``repro profile --flame``) into a heat
    map for ``Machine(backend="super", profile=...)``."""
    with open(path, "r", encoding="utf-8") as fh:
        return span_heat(fh, fraction=fraction)


# -- the fused-code emitter ---------------------------------------------
#
# Fused sites are generated as Python source and exec'd once at compile
# time — the same technique the compiled backend uses for its frame
# constructors (`_capturer` etc.), scaled up to whole step sequences.
# Every object a template references is bound into the generated
# function's globals under a fresh name; only integers, small string
# literals and generated identifiers appear in the source text.

_BASE_NS = {
    "Cell": Cell,
    "CClosure": CClosure,
    "ObjRaise": ObjRaise,
    "MachineError": MachineError,
    "VCon": VCon,
    "VInt": VInt,
    "_VIS": (VInt, VStr),
    "_VC": SMALL_INTS,
    "_VCN": SMALL_INT_LIMIT,
    "_TRUE": _TRUE,
    "_FALSE": _FALSE,
    "_IMIN": INT_MIN,
    "_IMAX": INT_MAX,
    "OVF": OVERFLOW,
    "DBZ": DIVIDE_BY_ZERO,
    "ALLOC": ALLOC,
    "RAISE": RAISE,
    "PRIM_RAISE": PRIM_RAISE,
    "PMF": PATTERN_MATCH_FAIL,
}

#: Ops whose applier bodies inline into generated source (mirroring
#: `_mk_arith`/`_mk_divmod`/`_mk_cmp` exactly — same checks, same
#: error objects, same messages).
_INLINE_ARITH = {"+": "+", "-": "-", "*": "*"}
_INLINE_DIVMOD = {"div": "//", "mod": "%"}
_INLINE_CMP = {
    "==": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

#: Source-text → code-object memo for generated fused functions.  The
#: generated *source* is deterministic in (expr shape, baked strategy
#: order, fusion decisions) — every environment-dependent value lives
#: in the per-function constant namespace under a positional `_k<N>`
#: name, never in the text — so identical text compiles to an
#: identical code object and `compile()` (the dominant cost of
#: `compile_super` on small programs) is paid once per shape.
_CODE_CACHE: Dict[str, object] = {}


class _Emit:
    """Accumulates source lines + a constant namespace for one fused
    function.  ``ops`` counts inlined virtual steps against
    :data:`_INLINE_BUDGET`."""

    __slots__ = ("lines", "ns", "_n", "ops")

    def __init__(self) -> None:
        self.lines: list = []
        self.ns: dict = dict(_BASE_NS)
        self._n = 0
        self.ops = 0

    def fresh(self, hint: str = "t") -> str:
        self._n += 1
        return f"_{hint}{self._n}"

    def const(self, value, hint: str = "k") -> str:
        name = self.fresh(hint)
        self.ns[name] = value
        return name

    def emit(self, text: str, indent: int = 1) -> None:
        pad = "    " * indent
        for ln in text.split("\n"):
            self.lines.append(pad + ln if ln else ln)

    def tick(self, indent: int = 1) -> None:
        # THE virtual step boundary: the exact inlined tick every
        # unfused closure performs (repro.machine.compile), repeated
        # inside fused frames so interrupts, faults, fuel exhaustion
        # and STEP events land at identical step counts.  `_sl`/`_fu`
        # are frame-entry snapshots (see `build`).
        self.ops += 1
        self.emit("st.steps += 1", indent)
        self.emit("if _sl or st.steps > _fu:", indent)
        self.emit("    m._tick_slow()", indent)

    def drain(self, dest: str, indent: int) -> None:
        # The work-loop tail drain, inlined (compiled backend's
        # `while x.__class__ is tuple` idiom).
        self.emit(f"while {dest}.__class__ is tuple:", indent)
        self.emit(f"    _tc, _tf = {dest}", indent)
        self.emit(f"    {dest} = _tc(m, _tf)", indent)

    def build(self) -> Code:
        # The slow-path predicate and the fuel ceiling are snapshotted
        # at frame entry.  This is observation-preserving: `_slow`
        # only changes via attach_* calls, never mid-evaluation;
        # `_events` delivery raises AsyncInterrupt (unwinding this
        # frame), so a stale True merely re-runs the same no-op slow
        # path the unfused tick would take; and `grant_fuel` happens
        # only under a governor, which forces `_slow` (hence `_sl`)
        # True, making every tick consult the live fuel via
        # `_tick_slow` exactly as the unfused backends do.
        body = "\n".join(self.lines) or "    pass"
        src = (
            "def _fused(m, f):\n"
            "    st = m.stats\n"
            "    _sl = m._slow or bool(m._events)\n"
            "    _fu = m.fuel\n" + body + "\n"
        )
        code = _CODE_CACHE.get(src)
        if code is None:
            code = _CODE_CACHE[src] = compile(src, "<superop>", "exec")
        exec(code, self.ns)
        return self.ns.pop("_fused")


class _SuperCompiler(_Compiler):
    """The fusing lowering.  Shapes outside the catalogue (and regions
    a profile marks cold) defer to the base compiler, so generated
    programs are a mix of fused and plain closures sharing one calling
    convention."""

    __slots__ = ("heat", "_fuse_active", "counters")

    def __init__(
        self,
        glob: Dict[str, Cell],
        strategy,
        heat: Optional[Dict[str, bool]] = None,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(glob, strategy)
        self.heat = heat
        self.counters = (
            counters
            if counters is not None
            else dict.fromkeys(_FUSION_KINDS, 0)
        )
        # With no profile everything fuses; with one, the root region
        # follows `<top>`'s verdict (hot unless measured cold).
        self._fuse_active = True if heat is None else heat.get(ROOT, True)

    def _count(self, kind: str) -> None:
        self.counters[kind] = self.counters.get(kind, 0) + 1

    def compile(self, expr: Expr, scope: Dict[str, int]) -> Code:
        heat = self.heat
        if heat is None:
            return super().compile(expr, scope)
        span = getattr(expr, "span", None)
        label = str(span) if span is not None else None
        prev = self._fuse_active
        if label is not None and label in heat:
            self._fuse_active = heat[label]
        try:
            return super().compile(expr, scope)
        finally:
            self._fuse_active = prev

    # -- operand inlining (memoised-cell-read-then-prim) ----------------

    def _emit_whnf(
        self, em: _Emit, expr: Expr, scope: Dict[str, int], dest: str,
        ind: int,
    ) -> None:
        """Inline WHNF evaluation of ``expr`` into local ``dest``,
        replaying the exact tick/read sequence of the closure the base
        compiler would have called.  Literals, variables, primitives,
        applications and constructors inline (the latter three within
        budget); anything else evaluates through its own (possibly
        fused) compiled code, draining work-loop tails as the base
        operand path does."""
        if isinstance(expr, Lit):
            if expr.kind == "int":
                value = VInt(int(expr.value))
            else:
                value = VStr(str(expr.value))
            k = em.const(value)
            em.tick(ind)
            em.emit(f"{dest} = {k}", ind)
            return
        if isinstance(expr, Var):
            idx = scope.get(expr.name)
            if idx is not None:
                em.tick(ind)
                c = em.fresh("c")
                em.emit(f"{c} = f[{idx}]", ind)
                em.emit(f"if {c}.state == 2:", ind)
                em.emit(f"    {dest} = {c}.value", ind)
                em.emit("else:", ind)
                em.emit(f"    {dest} = {c}.force(m)", ind)
                return
            cell = self.glob.get(expr.name)
            if cell is not None:
                if cell.state == 2:
                    # Constant-folded: the cell is memoised and
                    # therefore immutable; the read's virtual step
                    # still ticks, only the indirection is gone.
                    k = em.const(cell.value)
                    em.tick(ind)
                    em.emit(f"{dest} = {k}", ind)
                    self._count("folded-cells")
                    return
                g = em.const(cell, "g")
                em.tick(ind)
                em.emit(f"if {g}.state == 2:", ind)
                em.emit(f"    {dest} = {g}.value", ind)
                em.emit("else:", ind)
                em.emit(f"    {dest} = {g}.force(m)", ind)
                return
            # Unbound name: the generic fallback below compiles to the
            # base unbound-variable raise.
        elif em.ops < _INLINE_BUDGET:
            if self._prim_fusable(expr):
                self._emit_prim(em, expr, scope, dest, ind)
                return
            if isinstance(expr, App):
                self._emit_app(em, expr, scope, ind, dest=dest)
                return
            if isinstance(expr, Con):
                self._emit_con(em, expr, scope, dest, ind)
                return
        code = self.compile(expr, scope)
        e = em.const(code, "e")
        em.emit(f"{dest} = {e}(m, f)", ind)
        em.drain(dest, ind)

    # -- fused strict primitives ----------------------------------------

    def _prim_fusable(self, expr) -> bool:
        return (
            isinstance(expr, PrimOp)
            and len(expr.args) == 2
            and expr.op in _APPLY2
        )

    def _emit_prim(
        self, em: _Emit, expr: PrimOp, scope: Dict[str, int], dest: str,
        ind: int,
    ) -> None:
        """The fused body of a saturated binary primitive: tick,
        strategy-ordered inline operand evaluation, direct apply —
        with the base backend's exact provenance/trace handling on
        both the propagating and the originating raise paths."""
        op = expr.op
        a, b = em.fresh("a"), em.fresh("b")
        ksp = em.const(expr.span, "sp")
        em.tick(ind)
        em.emit("st.prim_ops += 1", ind)
        em.emit("try:", ind)
        if self.strategy.stateless:
            order = self.strategy.order(op, 2)
            pairs = ((expr.args[0], a), (expr.args[1], b))
            for i in order:
                self._emit_whnf(em, pairs[i][0], scope, pairs[i][1], ind + 1)
        else:
            # Stateful strategies draw per execution, exactly once,
            # at the same point the unfused `strict_dynamic` does.
            o = em.fresh("o")
            em.emit(f"{o} = m.strategy.order({op!r}, 2)", ind + 1)
            em.emit(f"if {o}[0] == 0:", ind + 1)
            self._emit_whnf(em, expr.args[0], scope, a, ind + 2)
            self._emit_whnf(em, expr.args[1], scope, b, ind + 2)
            em.emit("else:", ind + 1)
            self._emit_whnf(em, expr.args[1], scope, b, ind + 2)
            self._emit_whnf(em, expr.args[0], scope, a, ind + 2)
        em.emit("except ObjRaise as _err:", ind)
        em.emit("    if m._prov is not None:", ind)
        em.emit(f"        m._prov.annotate(_err, {ksp}, m.stats)", ind)
        em.emit("    raise", ind)
        em.emit("try:", ind)
        # The applier body, inlined for arithmetic and comparisons —
        # identical checks, error objects and messages to the
        # `_APPLY2` closures the compiled backend calls.
        if op in _INLINE_ARITH:
            pyop = _INLINE_ARITH[op]
            msg = f"{op} on non-integers"
            em.emit(f"    if {a}.__class__ is VInt and {b}.__class__ is VInt:", ind)
            em.emit(f"        _v = {a}.value {pyop} {b}.value", ind)
            em.emit("        if _IMIN < _v < _IMAX:", ind)
            em.emit(
                f"            {dest} = _VC[_v] "
                f"if 0 <= _v < {SMALL_INT_LIMIT} else VInt(_v)",
                ind,
            )
            em.emit("        else:", ind)
            em.emit("            raise ObjRaise(OVF)", ind)
            em.emit("    else:", ind)
            em.emit(f"        raise MachineError({msg!r})", ind)
        elif op in _INLINE_DIVMOD:
            pyop = _INLINE_DIVMOD[op]
            msg = f"{op} on non-integers"
            em.emit(f"    if {a}.__class__ is VInt and {b}.__class__ is VInt:", ind)
            em.emit(f"        if {b}.value == 0:", ind)
            em.emit("            raise ObjRaise(DBZ)", ind)
            em.emit(f"        _v = {a}.value {pyop} {b}.value", ind)
            em.emit("        if _IMIN < _v < _IMAX:", ind)
            em.emit(
                f"            {dest} = _VC[_v] "
                f"if 0 <= _v < {SMALL_INT_LIMIT} else VInt(_v)",
                ind,
            )
            em.emit("        else:", ind)
            em.emit("            raise ObjRaise(OVF)", ind)
            em.emit("    else:", ind)
            em.emit(f"        raise MachineError({msg!r})", ind)
        elif op in _INLINE_CMP:
            pyop = _INLINE_CMP[op]
            kap = em.const(_APPLY2[op], "ap")
            em.emit(f"    if {a}.__class__ is VInt and {b}.__class__ is VInt:", ind)
            em.emit(
                f"        {dest} = _TRUE if {a}.value {pyop} {b}.value "
                f"else _FALSE",
                ind,
            )
            em.emit("    else:", ind)
            em.emit(f"        {dest} = {kap}({a}, {b})", ind)
        else:
            kap = em.const(_APPLY2[op], "ap")
            em.emit(f"    {dest} = {kap}({a}, {b})", ind)
        em.emit("except ObjRaise as _err:", ind)
        em.emit("    if m._tracing:", ind)
        em.emit(
            f"        m.sink.emit(PRIM_RAISE, exc=_err.exc.name, "
            f"span={ksp})",
            ind,
        )
        em.emit("    if m._prov is not None:", ind)
        em.emit(f"        m._prov.annotate(_err, {ksp}, m.stats)", ind)
        em.emit("    raise", ind)
        self._count("prim")

    def _compile_prim(self, expr: PrimOp, scope: Dict[str, int]) -> Code:
        if not (self._fuse_active and self._prim_fusable(expr)):
            return super()._compile_prim(expr, scope)
        em = _Emit()
        dest = em.fresh("r")
        self._emit_prim(em, expr, scope, dest, 1)
        em.emit(f"return {dest}")
        return em.build()

    # -- fused applications (force-then-apply) ---------------------------

    def _emit_app(
        self, em: _Emit, expr: App, scope: Dict[str, int], ind: int,
        dest: Optional[str] = None,
    ) -> None:
        """The fused application transition: tick, resolve the
        function inline, allocate the argument thunk, then either
        tail-return the continuation (``dest is None``) or run it to
        WHNF into ``dest``."""
        arg_code = self.compile(expr.arg, scope)
        kargc = em.const(arg_code, "argc")
        em.tick(ind)  # the App node's step
        fn = expr.fn
        target = None
        if isinstance(fn, Var) and fn.name not in scope:
            cell = self.glob.get(fn.name)
            if (
                cell is not None
                and cell.state == 2
                and isinstance(cell.value, CClosure)
            ):
                # Constant-folded target: the callee closure is
                # memoised, so its code and captures are compile-time
                # constants (and the non-function check is discharged
                # statically).  The variable read's step still ticks.
                em.tick(ind)
                kcode = em.const(cell.value.code, "code")
                kcaps = em.const(cell.value.captures, "caps")
                self._count("folded-cells")
                target = (kcode, f"(Cell({kargc}, f),) + {kcaps}")
        if target is None:
            fv = em.fresh("fn")
            self._emit_whnf(em, fn, scope, fv, ind)
            em.emit(f"if {fv}.__class__ is not CClosure:", ind)
            em.emit(
                f'    raise MachineError(f"applied non-function {{{fv}}}")',
                ind,
            )
            target = (f"{fv}.code", f"(Cell({kargc}, f),) + {fv}.captures")
        em.emit("st.allocations += 1", ind)
        em.emit("if m._tracing:", ind)
        em.emit('    m.sink.emit(ALLOC, kind="thunk")', ind)
        self._count("app")
        code_src, frame_src = target
        if dest is None:
            em.emit(f"return {code_src}, {frame_src}", ind)
        else:
            em.emit(f"{dest} = {code_src}(m, {frame_src})", ind)
            em.drain(dest, ind)

    def _compile_app(self, expr: App, scope: Dict[str, int]) -> Code:
        if not self._fuse_active:
            return super()._compile_app(expr, scope)
        em = _Emit()
        self._emit_app(em, expr, scope, 1, dest=None)
        return em.build()

    # -- inline constructor allocation -----------------------------------

    def _emit_con(
        self, em: _Emit, expr: Con, scope: Dict[str, int], dest: str,
        ind: int,
    ) -> None:
        arg_codes = tuple(self.compile(a, scope) for a in expr.args)
        n = len(arg_codes)
        em.tick(ind)
        if n == 0:
            # The base backend shares one VCon per nullary-Con site;
            # baking a constant matches it exactly.
            k = em.const(VCon(expr.name))
            em.emit("st.allocations += 1", ind)
            em.emit("if m._tracing:", ind)
            em.emit('    m.sink.emit(ALLOC, kind="con")', ind)
            em.emit(f"{dest} = {k}", ind)
        else:
            em.emit(f"st.allocations += {1 + n}", ind)
            em.emit("if m._tracing:", ind)
            em.emit('    m.sink.emit(ALLOC, kind="con")', ind)
            for _ in range(n):
                em.emit('    m.sink.emit(ALLOC, kind="thunk")', ind)
            cells = ", ".join(
                f"Cell({em.const(c, 'cc')}, f)" for c in arg_codes
            )
            em.emit(f"{dest} = VCon({expr.name!r}, ({cells},))", ind)
        self._count("con")

    # -- tail emission ----------------------------------------------------

    def _emit_tail(
        self, em: _Emit, expr: Expr, scope: Dict[str, int], ind: int
    ) -> None:
        """Emit ``expr`` in tail position: catalogue shapes run inline
        and return their value (applications tail-return their
        continuation for the work loop); anything else returns its
        compiled code with the current frame, exactly as the base
        backend's alternative/let bodies do."""
        if isinstance(expr, (Lit, Var)):
            dest = em.fresh("r")
            self._emit_whnf(em, expr, scope, dest, ind)
            em.emit(f"return {dest}", ind)
            return
        if em.ops < _INLINE_BUDGET:
            if self._prim_fusable(expr):
                dest = em.fresh("r")
                self._emit_prim(em, expr, scope, dest, ind)
                em.emit(f"return {dest}", ind)
                return
            if isinstance(expr, App):
                self._emit_app(em, expr, scope, ind, dest=None)
                return
            if isinstance(expr, Con):
                dest = em.fresh("r")
                self._emit_con(em, expr, scope, dest, ind)
                em.emit(f"return {dest}", ind)
                return
        kb = em.const(self.compile(expr, scope), "b")
        em.emit(f"return {kb}, f", ind)

    # -- fused case (saturated-prim-then-case) ---------------------------

    def _compile_case(self, expr: Case, scope: Dict[str, int]) -> Code:
        if not self._fuse_active:
            return super()._compile_case(expr, scope)
        for alt in expr.alts:
            pattern = alt.pattern
            if isinstance(pattern, PCon) and any(
                not isinstance(sub, (PVar, PWild)) for sub in pattern.args
            ):
                # Nested patterns are flattened upstream; if one slips
                # through, the base code path owns the error report.
                return super()._compile_case(expr, scope)
        em = _Emit()
        scrut = em.fresh("scrut")
        em.tick()  # the case node's own step
        self._emit_whnf(em, expr.scrutinee, scope, scrut, 1)
        for alt in expr.alts:
            if self._emit_alt(em, alt, scope, scrut):
                break  # unconditional match: later alts are dead
        ksp = em.const(expr.span, "sp")
        em.emit("st.raises += 1")
        em.emit("if m._tracing:")
        em.emit(
            f"    m.sink.emit(RAISE, exc={PATTERN_MATCH_FAIL.name!r}, "
            f"span={ksp})"
        )
        em.emit("_err = ObjRaise(PMF)")
        em.emit("if m._prov is not None:")
        em.emit(f"    m._prov.annotate(_err, {ksp}, st)")
        em.emit("raise _err")
        self._count("case")
        return em.build()

    def _emit_alt(self, em: _Emit, alt, scope, scrut: str) -> bool:
        """Emit one alternative's inline dispatch (guard, binder frame,
        body in tail position).  Returns True when the alternative
        matches unconditionally (PWild/PVar)."""
        pattern, body = alt.pattern, alt.body

        if isinstance(pattern, PWild):
            self._emit_tail(em, body, scope, 1)
            return True

        if isinstance(pattern, PVar):
            bname = pattern.name
            names, cap_src = self._captures((body,), {bname}, scope)
            body_scope = {bname: 0}
            for i, n in enumerate(names):
                body_scope[n] = i + 1
            kbind = em.const(_binder1(cap_src), "bind")
            em.emit(f"f = {kbind}(Cell.ready({scrut}), f)")
            self._emit_tail(em, body, body_scope, 1)
            return True

        if isinstance(pattern, PLit):
            em.emit(f"if isinstance({scrut}, _VIS):")
            em.emit(f"    if {scrut}.value == {pattern.value!r}:")
            self._emit_tail(em, body, scope, 3)
            em.emit("else:")
            em.emit(
                '    raise MachineError('
                '"literal pattern against non-literal")'
            )
            return False

        # PCon (flat: every sub-pattern is PVar or PWild — checked by
        # the caller before fusing).
        cname = pattern.name
        take = tuple(
            (i, sub.name)
            for i, sub in enumerate(pattern.args)
            if isinstance(sub, PVar)
        )
        if not take:
            em.emit(
                f"if isinstance({scrut}, VCon) and "
                f"{scrut}.name == {cname!r}:"
            )
            self._emit_tail(em, body, scope, 2)
            return False
        bound = {n for _i, n in take}
        names, cap_src = self._captures((body,), bound, scope)
        body_scope: Dict[str, int] = {}
        for slot, (_i, n) in enumerate(take):
            body_scope[n] = slot
        k = len(take)
        for j, n in enumerate(names):
            body_scope[n] = k + j
        kpick = em.const(
            _picker(tuple(i for i, _n in take), cap_src), "pick"
        )
        em.emit(
            f"if isinstance({scrut}, VCon) and {scrut}.name == {cname!r}:"
        )
        em.emit(f"    f = {kpick}({scrut}.args, f)")
        self._emit_tail(em, body, body_scope, 2)
        return False

    # -- fused let chains (let-chain-then-tail-call) ----------------------

    def _compile_let(self, expr: Let, scope: Dict[str, int]) -> Code:
        if not self._fuse_active:
            return super()._compile_let(expr, scope)
        em = _Emit()
        cur: Expr = expr
        cur_scope = scope
        while isinstance(cur, Let) and (cur is expr or self._let_hot(cur)):
            names = [name for name, _rhs in cur.binds]
            bound = set(names)
            sub_exprs = tuple(rhs for _n, rhs in cur.binds) + (cur.body,)
            cap_names, cap_src = self._captures(sub_exprs, bound, cur_scope)
            inner_scope: Dict[str, int] = {}
            for i, n in enumerate(names):
                inner_scope[n] = i
            k = len(names)
            for j, n in enumerate(cap_names):
                inner_scope[n] = k + j
            rhs_codes = tuple(
                self.compile(rhs, inner_scope) for _n, rhs in cur.binds
            )
            n_binds = len(rhs_codes)
            krhs = em.const(rhs_codes, "rhs")
            kframer = em.const(_let_framer(n_binds, cap_src), "framer")
            em.tick()
            em.emit(f"st.allocations += {n_binds}")
            em.emit("if m._tracing:")
            for _ in range(n_binds):
                em.emit('    m.sink.emit(ALLOC, kind="thunk")')
            cv = em.fresh("cells")
            em.emit(f"{cv} = [Cell(_rc, None) for _rc in {krhs}]")
            em.emit(f"f = {kframer}({cv}, f)")
            em.emit(f"for _c in {cv}:")
            em.emit("    _c.env = f")
            cur_scope = inner_scope
            cur = cur.body
        self._emit_tail(em, cur, cur_scope, 1)
        self._count("let-chain")
        return em.build()

    def _let_hot(self, expr: Let) -> bool:
        if self.heat is None:
            return True
        span = getattr(expr, "span", None)
        if span is None:
            return self._fuse_active
        return self.heat.get(str(span), self._fuse_active)

    # -- constant-folded variable reads ----------------------------------

    def _compile_var(self, name: str, scope: Dict[str, int]) -> Code:
        if self._fuse_active and name not in scope:
            cell = self.glob.get(name)
            if cell is not None and cell.state == 2:
                value = cell.value

                def folded_var(m, f):
                    st = m.stats
                    st.steps += 1
                    if m._slow or m._events or st.steps > m.fuel:
                        m._tick_slow()
                    return value

                self._count("folded-cells")
                return folded_var
        return super()._compile_var(name, scope)


def compile_super(
    expr: Expr,
    glob: Optional[Dict[str, Cell]],
    strategy,
    heat: Optional[Dict[str, bool]] = None,
    counters: Optional[Dict[str, int]] = None,
) -> Code:
    """Lower ``expr`` with superinstruction fusion against the global
    environment ``glob`` — the fusing analogue of
    :func:`repro.machine.compile.compile_top`."""
    return _SuperCompiler(glob or {}, strategy, heat, counters).compile(
        expr, {}
    )


Profile = Union[None, Dict[str, bool], str, Iterable[str]]


def normalize_profile(profile: Profile) -> Optional[Dict[str, bool]]:
    """Accept the forms ``Machine(backend="super", profile=...)``
    takes: ``None`` (fuse everything), a heat map from
    :func:`span_heat`, a path to a ``.folded`` file, or an iterable of
    folded lines."""
    if profile is None:
        return None
    if isinstance(profile, dict):
        return dict(profile)
    if isinstance(profile, str):
        return load_profile(profile)
    return span_heat(profile)


class SuperMachine(CompiledMachine):
    """The ``backend="super"`` machine.

    Observable behaviour is pinned to :class:`Machine` — same heap,
    counters, events, strategies and interrupt points; only the
    lowering differs (fused frames instead of one closure per node).
    ``profile`` optionally narrows fusion to profile-hot spans; see
    :func:`normalize_profile` for the accepted forms.
    """

    def __init__(
        self,
        strategy=None,
        fuel: int = 2_000_000,
        detect_blackholes: bool = True,
        event_plan=None,
        sink=None,
        *,
        backend: str = "super",
        profile: Profile = None,
    ) -> None:
        if backend != "super":
            raise ValueError(
                f"SuperMachine only supports backend='super', "
                f"got {backend!r}"
            )
        Machine.__init__(
            self,
            strategy,
            fuel,
            detect_blackholes,
            event_plan,
            sink,
            backend="super",
        )
        self._heat = normalize_profile(profile)
        self.fusion_stats: Dict[str, int] = dict.fromkeys(_FUSION_KINDS, 0)

    def fusion_report(self) -> Dict[str, int]:
        """How many sites each fusion shape claimed across every
        compilation this machine has run (diagnostics; not part of the
        observable contract)."""
        return dict(self.fusion_stats)

    def eval(self, expr, env):
        if isinstance(expr, Expr):
            expr, env = (
                compile_super(
                    expr, env, self.strategy, self._heat, self.fusion_stats
                ),
                (),
            )
        result = expr(self, env)
        while result.__class__ is tuple:
            code, frame = result
            result = code(self, frame)
        return result
