"""The lazy graph-reduction evaluator.

Call-by-need: function arguments and constructor fields are heap cells
(thunks) that memoise on first force.  ``raise`` is implemented exactly
as Section 3.3 sketches: it "simply trims the stack" — here by raising
:class:`repro.machine.heap.ObjRaise` — and the cells under evaluation
are overwritten with ``raise ex`` as it unwinds (see ``Cell.force``).
The efficiency claim reproduced by E1 falls out of this design: code
that does not raise never touches any of the exception machinery.
"""

from __future__ import annotations

import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.excset import (
    DIVIDE_BY_ZERO,
    Exc,
    NON_TERMINATION,
    OVERFLOW,
    PATTERN_MATCH_FAIL,
    user_error,
)
from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PLit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
)
from repro.lang.ops import INT_MAX, INT_MIN
from repro.machine.heap import (
    AsyncInterrupt,
    Cell,
    MachineDiverged,
    ObjRaise,
)
from repro.machine.strategy import LeftToRight, Strategy
from repro.machine.values import VCon, VFun, VInt, VIO, VStr, Value
from repro.obs.events import (
    ALLOC,
    ASYNC_INTERRUPT,
    FUEL_GRANT,
    PRIM_RAISE,
    RAISE,
    STEP,
)
from repro.obs.sinks import TraceSink, is_live

Env = Dict[str, Cell]

BACKENDS = ("ast", "compiled", "super")

_MIN_RECURSION_LIMIT = 200_000


def _ensure_recursion_headroom() -> None:
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)


# Lazy IO constructors: primop name -> VIO tag.  Shared with the
# compiled backend (repro.machine.compile) so the two stay in lockstep.
_IO_TAGS = {
    "returnIO": "return",
    "bindIO": "bind",
    "putChar": "putChar",
    "putStr": "putStr",
    "getException": "getException",
    "ioError": "ioError",
    "catchIO": "catch",
    "forkIO": "fork",
    "newMVar": "newMVar",
    "takeMVar": "takeMVar",
    "putMVar": "putMVar",
}


_STAT_FIELDS = (
    "steps",
    "allocations",
    "thunks_forced",
    "raises",
    "prim_ops",
    "force_depth",
    "max_force_depth",
)


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable point-in-time copy of :class:`MachineStats`.

    Benchmarks and the profiler hold snapshots, never the live
    (mutating) counters, so a recorded row cannot drift if the machine
    keeps running.
    """

    steps: int = 0
    allocations: int = 0
    thunks_forced: int = 0
    raises: int = 0
    prim_ops: int = 0
    force_depth: int = 0
    max_force_depth: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _STAT_FIELDS}


@dataclass(slots=True)
class MachineStats:
    """Operation counters, the measurement substrate for E1/E2/E4.

    ``max_force_depth`` is the deepest chain of nested thunk forcings —
    the machine analogue of stack build-up from long chains of lazy
    accumulators, which strictness-driven call-by-value flattens (E4).

    Lifecycle: counters belong to one observation.  A fresh machine
    starts at zero; reusing a machine across observations goes through
    :meth:`Machine.reset_stats` (which also rebases the fuel budget and
    pending async events, so only the *counters* restart).  Consumers
    that need a stable record take :meth:`snapshot`.
    """

    steps: int = 0
    allocations: int = 0
    thunks_forced: int = 0
    raises: int = 0
    prim_ops: int = 0
    force_depth: int = 0
    max_force_depth: int = 0

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            self.steps,
            self.allocations,
            self.thunks_forced,
            self.raises,
            self.prim_ops,
            self.force_depth,
            self.max_force_depth,
        )

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in _STAT_FIELDS}


class MachineError(Exception):
    """An ill-typed program reached the machine."""


class Machine:
    """The evaluator.

    Parameters
    ----------
    strategy:
        Evaluation order for strict primitive arguments (the
        imprecision knob).
    fuel:
        Step budget; exhaustion raises :class:`MachineDiverged`.
    detect_blackholes:
        Section 5.2: report a re-entered thunk as ``NonTermination``
        (True) or genuinely diverge (False).
    event_plan:
        Optional mapping step-number -> asynchronous :class:`Exc`
        (Section 5.1): when the step counter passes such a step the
        event is raised as an :class:`AsyncInterrupt`.
    sink:
        Optional :class:`repro.obs.sinks.TraceSink` receiving
        structured events (the observability decoration).  ``None``
        and the null sink are equivalent: emission sites compile to a
        single pre-computed boolean test, so untraced runs execute the
        same instruction sequence as a sink-less machine ("tracing is
        free when off" — benchmarks/bench_trace_overhead.py).
    backend:
        ``"ast"`` (default) walks the AST directly; ``"compiled"``
        lowers each expression once to a tree of Python closures over
        slot-addressed frames (repro.machine.compile) before running
        it; ``"super"`` additionally fuses hot step sequences into
        single Python frames (repro.machine.superop), checking
        interrupts at every virtual step boundary.  All backends
        satisfy the same observation contract — identical outcomes,
        counters and trace events (docs/PERFORMANCE.md,
        tests/machine/test_backends.py).
    """

    def __new__(cls, *args, **kwargs):
        if cls is Machine:
            backend = kwargs.get("backend", "ast")
            if backend == "compiled":
                from repro.machine.compile import CompiledMachine

                return super().__new__(CompiledMachine)
            if backend == "super":
                from repro.machine.superop import SuperMachine

                return super().__new__(SuperMachine)
        return super().__new__(cls)

    def __init__(
        self,
        strategy: Optional[Strategy] = None,
        fuel: int = 2_000_000,
        detect_blackholes: bool = True,
        event_plan: Optional[Dict[int, Exc]] = None,
        sink: Optional[TraceSink] = None,
        *,
        backend: str = "ast",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend = backend
        if backend == "ast":
            # The compiled backend runs tails in an explicit work-loop
            # and needs no extra Python stack; only the tree-walker
            # recurses per spine node.
            _ensure_recursion_headroom()
        self.strategy = strategy or LeftToRight()
        self.fuel = fuel
        self.detect_blackholes = detect_blackholes
        self.stats = MachineStats()
        self._events = deque(sorted(event_plan.items())) if event_plan else deque()
        self.sink = sink
        self._tracing = is_live(sink)
        self._prov = None
        self._governor = None
        self._fault = None
        self._gate = None
        # Combined slow-path switch: True when *any* per-step consumer
        # (trace sink, resource governor, fault plan) is attached.  The
        # hot tick tests this one boolean, so a bare machine pays the
        # seed's exact instruction sequence — attaching a governor costs
        # nothing more than attaching a sink did.
        self._slow = self._tracing

    # -- observability ----------------------------------------------------

    def attach_sink(self, sink: Optional[TraceSink]) -> None:
        """Attach (or detach, with None/null) a trace sink."""
        self.sink = sink
        self._tracing = is_live(sink)
        self._recompute_slow()

    def attach_governor(self, governor) -> None:
        """Attach (or detach, with None) a per-request resource governor
        (:class:`repro.serve.governor.ResourceGovernor`-shaped: any
        object with ``poll(machine) -> Optional[Exc]``).

        The governor is consulted on the slow half of each tick; a
        non-None result is delivered as a Section 5.1 asynchronous
        interrupt (``Timeout``/``HeapOverflow`` are *fictitious
        exceptions* in the paper's sense — outcomes of the observation,
        not members computed by the semantics)."""
        self._governor = governor
        self._recompute_slow()

    def attach_fault_plan(self, plan) -> None:
        """Attach (or detach, with None) a chaos fault plan
        (:class:`repro.chaos.faults.FaultPlan`-shaped: any object with
        ``on_step(machine) -> Optional[Exc]``).  Consulted at step
        boundaries, exactly like the Section 5.1 event plan — injected
        faults are asynchronous interrupts, never silent corruption."""
        self._fault = plan
        self._recompute_slow()

    def attach_slice_gate(self, gate) -> None:
        """Attach (or detach, with None) a cooperative slice gate
        (:class:`repro.machine.slices.SliceGate`-shaped: any object
        with ``on_tick(machine)``).

        The gate is consulted on the slow half of each tick, *after*
        the governor poll and *before* the fuel check: when the
        granted slice budget is spent it parks the evaluation in place
        (the Python frame stack *is* the continuation) instead of
        raising divergence, and it may deliver a pending Section 5.1
        interrupt through :meth:`_interrupt` — the same path the event
        plan, fault injector and governor use, so a scheduler's
        preemption is observationally an ordinary async signal."""
        self._gate = gate
        self._recompute_slow()

    def _recompute_slow(self) -> None:
        self._slow = bool(
            self._tracing
            or self._governor is not None
            or self._fault is not None
            or self._gate is not None
        )

    def attach_provenance(self, recorder) -> None:
        """Attach (or detach, with None) a raise-provenance recorder
        (:class:`repro.obs.provenance.ProvenanceRecorder`).

        Same discipline as :meth:`attach_sink`: the raising sites guard
        on one precomputed attribute (``self._prov``), so a machine
        without a recorder runs the seed's instruction sequence."""
        self._prov = recorder

    def reset_stats(self) -> StatsSnapshot:
        """Start a fresh observation on this machine: zero the
        counters, returning a snapshot of the old ones.

        The *semantic* state is rebased, not reset: the remaining fuel
        budget and the pending async event plan are expressed relative
        to the new step counter, so a ``grant_fuel`` allowance or a
        scheduled interrupt survives the reset unchanged.  (Fuel is an
        absolute step threshold — see :meth:`grant_fuel` — so without
        rebasing, a reset would silently inflate the budget.)
        """
        old = self.stats.snapshot()
        consumed = old.steps
        self.fuel -= consumed
        if self._events:
            self._events = deque(
                (max(1, at - consumed), exc) for at, exc in self._events
            )
        self.stats = MachineStats()
        return old

    # -- stepping -------------------------------------------------------

    def _tick(self) -> None:
        # Hot path: one increment and one (usually false) test.  The
        # compiled backend inlines this exact sequence per node, so the
        # two backends count steps identically.
        self.stats.steps += 1
        if self._slow or self._events or self.stats.steps > self.fuel:
            self._tick_slow()

    def _tick_slow(self) -> None:
        """The rare-path half of a step: trace emission, async event
        delivery, fault injection, governor polling and fuel
        exhaustion.  ``stats.steps`` has already been incremented by
        the caller."""
        if self._tracing:
            self.sink.emit(STEP, n=self.stats.steps)
        if self._events and self.stats.steps >= self._events[0][0]:
            _step, exc = self._events.popleft()
            self._interrupt(exc)
        if self._fault is not None:
            exc = self._fault.on_step(self)
            if exc is not None:
                self._interrupt(exc)
        if self._governor is not None:
            exc = self._governor.poll(self)
            if exc is not None:
                self._interrupt(exc)
        if self._gate is not None:
            self._gate.on_tick(self)
        if self.stats.steps > self.fuel:
            raise MachineDiverged(
                f"fuel exhausted after {self.stats.steps} steps"
            )

    def _interrupt(self, exc: Exc) -> None:
        """Deliver ``exc`` as a Section 5.1 asynchronous interrupt at
        the current step — the single delivery path shared by the event
        plan, the fault injector and the resource governor, so all
        three are observationally indistinguishable from a real
        asynchronous signal."""
        if self._tracing:
            self.sink.emit(
                ASYNC_INTERRUPT, exc=exc.name, at=self.stats.steps
            )
        err = AsyncInterrupt(exc)
        if self._prov is not None:
            # Async events have no raise *site*; the force chain
            # still records where evaluation was interrupted.
            self._prov.annotate(err, None, self.stats)
        raise err

    def alloc(self, expr: Expr, env: Env) -> Cell:
        self.stats.allocations += 1
        if self._tracing:
            self.sink.emit(ALLOC, kind="thunk")
        return Cell(expr, env)

    def grant_fuel(self, extra: int) -> None:
        """Extend the step budget — used by the Section 5.1 timeout
        monitor after aborting a too-long evaluation, so the program's
        continuation gets a fresh allowance."""
        self.fuel = self.stats.steps + extra
        if self._tracing:
            self.sink.emit(FUEL_GRANT, extra=extra, budget=self.fuel)

    def bind_cell(self, fn: VFun, arg_cell: Cell) -> Cell:
        """A cell that, when forced, runs ``fn``'s body with
        ``arg_cell`` bound to its parameter — the backend-neutral
        application primitive.  The IO executor and the concurrency
        scheduler apply continuations through this instead of poking
        closure internals, so they work unchanged on both backends."""
        env = dict(fn.env)
        env[fn.var] = arg_cell
        return Cell(fn.body, env)

    # -- evaluation -------------------------------------------------------

    def eval(self, expr: Expr, env: Env) -> Value:
        """Evaluate to weak head normal form."""
        while True:
            self._tick()
            if isinstance(expr, Var):
                cell = env.get(expr.name)
                if cell is None:
                    raise MachineError(f"unbound variable {expr.name!r}")
                return cell.force(self)
            if isinstance(expr, Lit):
                if expr.kind == "int":
                    return VInt(int(expr.value))
                return VStr(str(expr.value))
            if isinstance(expr, Lam):
                return VFun(expr.var, expr.body, env)
            if isinstance(expr, App):
                fn = self.eval(expr.fn, env)
                if not isinstance(fn, VFun):
                    raise MachineError(f"applied non-function {fn}")
                arg = self.alloc(expr.arg, env)
                env = dict(fn.env)
                env[fn.var] = arg
                expr = fn.body
                continue  # tail-call into the body
            if isinstance(expr, Con):
                self.stats.allocations += 1
                if self._tracing:
                    self.sink.emit(ALLOC, kind="con")
                return VCon(
                    expr.name,
                    tuple(self.alloc(a, env) for a in expr.args),
                )
            if isinstance(expr, Case):
                scrut = self.eval(expr.scrutinee, env)
                matched = None
                for alt in expr.alts:
                    bindings = self._match(alt.pattern, scrut)
                    if bindings is not None:
                        matched = (alt.body, bindings)
                        break
                if matched is None:
                    self.stats.raises += 1
                    if self._tracing:
                        self.sink.emit(
                            RAISE,
                            exc=PATTERN_MATCH_FAIL.name,
                            span=expr.span,
                        )
                    err = ObjRaise(PATTERN_MATCH_FAIL)
                    if self._prov is not None:
                        self._prov.annotate(err, expr.span, self.stats)
                    raise err
                body, bindings = matched
                if bindings:
                    env = dict(env)
                    env.update(bindings)
                expr = body
                continue
            if isinstance(expr, Raise):
                value = self.eval(expr.exc, env)
                self.stats.raises += 1
                exc = self.exc_of_value(value)
                if self._tracing:
                    self.sink.emit(RAISE, exc=exc.name, span=expr.span)
                err = ObjRaise(exc)
                if self._prov is not None:
                    self._prov.annotate(err, expr.span, self.stats)
                raise err
            if isinstance(expr, PrimOp):
                return self._prim(expr, env)
            if isinstance(expr, Fix):
                fn = self.eval(expr.fn, env)
                if not isinstance(fn, VFun):
                    raise MachineError("fix of a non-function")
                knot = Cell(None, None)
                inner = dict(fn.env)
                inner[fn.var] = knot
                knot.expr = fn.body
                knot.env = inner
                # The knot cell computes the body with itself bound to
                # the recursive variable: fix f = f (fix f).
                return knot.force(self)
            if isinstance(expr, Let):
                env = dict(env)
                for name, rhs in expr.binds:
                    env[name] = self.alloc(rhs, env)
                # Recursive scope: the cells must see the extended env.
                for name, _rhs in expr.binds:
                    env[name].env = env
                expr = expr.body
                continue
            raise MachineError(f"eval: unknown expression {expr!r}")

    # -- pattern matching --------------------------------------------------

    def _match(
        self, pattern: Pattern, value: Value
    ) -> Optional[Dict[str, Cell]]:
        if isinstance(pattern, PWild):
            return {}
        if isinstance(pattern, PVar):
            return {pattern.name: Cell.ready(value)}
        if isinstance(pattern, PLit):
            if isinstance(value, VInt):
                return {} if value.value == pattern.value else None
            if isinstance(value, VStr):
                return {} if value.value == pattern.value else None
            raise MachineError("literal pattern against non-literal")
        if isinstance(pattern, PCon):
            if not isinstance(value, VCon) or value.name != pattern.name:
                return None
            bindings: Dict[str, Cell] = {}
            for sub, cell in zip(pattern.args, value.args):
                if isinstance(sub, PVar):
                    bindings[sub.name] = cell
                elif not isinstance(sub, PWild):
                    raise MachineError(
                        "nested pattern reached the machine; run "
                        "flatten_case_patterns first"
                    )
            return bindings
        raise MachineError(f"unknown pattern {pattern!r}")

    # -- exceptions ---------------------------------------------------------

    def exc_of_value(self, value: Value) -> Exc:
        """Convert an ``Exception``-typed machine value to an Exc."""
        if not isinstance(value, VCon):
            raise MachineError(f"raise applied to non-Exception {value}")
        if value.name == "UserError":
            msg = value.args[0].force(self) if value.args else VStr("")
            if not isinstance(msg, VStr):
                raise MachineError("UserError message is not a string")
            return user_error(msg.value)
        synchronous = value.name not in (
            "NonTermination",
            "ControlC",
            "Timeout",
            "StackOverflow",
            "HeapOverflow",
        )
        return Exc(value.name, synchronous=synchronous)

    def value_of_exc(self, exc: Exc) -> VCon:
        if exc.arg is not None:
            return VCon(exc.name, (Cell.ready(VStr(exc.arg)),))
        return VCon(exc.name)

    # -- primitives ----------------------------------------------------------

    def _prim(self, expr: PrimOp, env: Env) -> Value:
        op = expr.op
        self.stats.prim_ops += 1

        # Lazy IO constructors.
        tag = _IO_TAGS.get(op)
        if tag is not None:
            return VIO(tag, tuple(self.alloc(a, env) for a in expr.args))
        if op == "getChar":
            return VIO("getChar")
        if op == "newEmptyMVar":
            return VIO("newEmptyMVar")
        if op == "yieldIO":
            return VIO("yield")

        if op == "seq":
            self.eval(expr.args[0], env)
            return self.eval(expr.args[1], env)

        if op == "mapException":
            return self._map_exception(expr, env)

        # Strict primitives: evaluate arguments in strategy order.  The
        # *first* exception encountered propagates — this is the single
        # representative of the denoted set (Section 3.5).
        n = len(expr.args)
        values: List[Optional[Value]] = [None] * n
        if self._prov is None and not self._tracing:
            for idx in self.strategy.order(op, n):
                values[idx] = self.eval(expr.args[idx], env)
            return self._apply_prim(op, values)
        # Recording/tracing path.  Two raise origins are distinguished:
        # an exception *propagating* out of argument evaluation (its
        # provenance already annotated at a tighter site; no event —
        # the inner raise already emitted one), versus one *originated*
        # by the application itself (div-by-zero, overflow from ⊕) —
        # those are annotated with this PrimOp's span and emit the
        # distinct `prim-raise` event, never `raise` (the latter stays
        # in lockstep with stats.raises).
        try:
            for idx in self.strategy.order(op, n):
                values[idx] = self.eval(expr.args[idx], env)
        except ObjRaise as err:
            if self._prov is not None:
                self._prov.annotate(err, expr.span, self.stats)
            raise
        try:
            return self._apply_prim(op, values)
        except ObjRaise as err:
            if self._tracing:
                self.sink.emit(
                    PRIM_RAISE, exc=err.exc.name, span=expr.span
                )
            if self._prov is not None:
                self._prov.annotate(err, expr.span, self.stats)
            raise

    def _map_exception(self, expr: PrimOp, env: Env) -> Value:
        """``mapException f e``: force ``e``; apply ``f`` to the sole
        representative of the set if an exception comes out
        (Section 5.4's implementation reading)."""
        fn_expr, arg_expr = expr.args
        try:
            return self.eval(arg_expr, env)
        except ObjRaise as err:
            fn = self.eval(fn_expr, env)
            if not isinstance(fn, VFun):
                raise MachineError("mapException: non-function mapper")
            inner = dict(fn.env)
            inner[fn.var] = Cell.ready(self.value_of_exc(err.exc))
            mapped = self.eval(fn.body, inner)
            new_err = ObjRaise(self.exc_of_value(mapped))
            if self._prov is not None:
                # The image exception is a *new* member: its site is
                # the mapException application itself.
                self._prov.annotate(new_err, expr.span, self.stats)
            raise new_err from None

    def _apply_prim(self, op: str, values: List[Optional[Value]]) -> Value:
        if op in ("+", "-", "*", "div", "mod"):
            a, b = values
            if not isinstance(a, VInt) or not isinstance(b, VInt):
                raise MachineError(f"{op} on non-integers")
            return self._arith(op, a.value, b.value)
        if op in ("uadd", "usub", "umul", "udiv", "umod"):
            a, b = values
            if not isinstance(a, VInt) or not isinstance(b, VInt):
                raise MachineError(f"{op} on non-integers")
            if op == "uadd":
                return VInt(a.value + b.value)
            if op == "usub":
                return VInt(a.value - b.value)
            if op == "umul":
                return VInt(a.value * b.value)
            if b.value == 0:
                raise MachineError(
                    f"{op} by zero: the encoding must guard divisors"
                )
            if op == "udiv":
                return VInt(a.value // b.value)
            return VInt(a.value % b.value)
        if op == "unegate":
            (a,) = values
            assert isinstance(a, VInt)
            return VInt(-a.value)
        if op == "negate":
            (a,) = values
            if not isinstance(a, VInt):
                raise MachineError("negate on a non-integer")
            if not (INT_MIN < -a.value < INT_MAX):
                raise ObjRaise(OVERFLOW)
            return VInt(-a.value)
        if op in ("==", "/=", "<", "<=", ">", ">="):
            a, b = values
            av = a.value if isinstance(a, (VInt, VStr)) else None
            bv = b.value if isinstance(b, (VInt, VStr)) else None
            if av is None or bv is None:
                raise MachineError(f"{op} compares base values only")
            result = {
                "==": av == bv,
                "/=": av != bv,
                "<": av < bv,
                "<=": av <= bv,
                ">": av > bv,
                ">=": av >= bv,
            }[op]
            return VCon("True" if result else "False")
        if op == "strAppend":
            a, b = values
            assert isinstance(a, VStr) and isinstance(b, VStr)
            return VStr(a.value + b.value)
        if op == "strLen":
            (a,) = values
            assert isinstance(a, VStr)
            return VInt(len(a.value))
        if op == "showInt":
            (a,) = values
            assert isinstance(a, VInt)
            return VStr(str(a.value))
        if op == "ord":
            (a,) = values
            assert isinstance(a, VStr)
            return VInt(ord(a.value))
        if op == "chr":
            (a,) = values
            assert isinstance(a, VInt)
            if not (0 <= a.value < 0x110000):
                raise ObjRaise(OVERFLOW)
            return VStr(chr(a.value))
        raise MachineError(f"unknown primitive {op!r}")

    def _arith(self, op: str, a: int, b: int) -> Value:
        if op == "+":
            result = a + b
        elif op == "-":
            result = a - b
        elif op == "*":
            result = a * b
        else:
            if b == 0:
                raise ObjRaise(DIVIDE_BY_ZERO)
            result = a // b if op == "div" else a % b
        if not (INT_MIN < result < INT_MAX):
            raise ObjRaise(OVERFLOW)
        return VInt(result)


def program_env(
    program: Program, machine: Machine, base: Optional[Env] = None
) -> Env:
    """Build the mutually recursive top-level environment."""
    env: Env = dict(base) if base else {}
    for name, rhs in program.binds:
        env[name] = machine.alloc(rhs, env)
    for name, _rhs in program.binds:
        env[name].env = env
    return env
