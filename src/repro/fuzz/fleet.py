"""Fleet-scale fuzzing: shard the differential loop across worker
processes, deterministically.

The sharding scheme is chosen so determinism is a *theorem*, not a
hope:

* the master seed and a case **index** fully determine a case — case
  ``j`` always uses generator seed ``master + j``, exactly as the
  single-process loop does;
* shard ``i`` of ``J`` runs the round-robin index slice
  ``i, i+J, i+2J, ...`` — so the **union** of indices (and therefore
  the set of generated cases) is independent of ``J``;
* merging is pure bookkeeping: verdict and lane counts sum, coverage
  maps add, findings sort by case seed, and the corpus deduplicates
  by shrunk form and sorts by id.

Consequences the tests in ``tests/fuzz/test_fleet.py`` pin: the same
master seed with the same ``--jobs`` produces a byte-identical merged
corpus and verdict table; *different* ``--jobs`` still produce the
identical dedup-by-shrunk-form corpus set (unguided — guided runs
retarget per shard, so their case streams legitimately depend on the
shard count, while remaining deterministic for a fixed
``(seed, jobs)``).

Workers are plain subprocesses speaking JSON — spec on stdin, report
on stdout (``python -m repro.fuzz.fleet``) — the same pattern
``repro bench --jobs`` uses, so a crash in one shard is an error
report, not a lost evening.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.corpus import CorpusEntry, append_entries
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.engine import FuzzSummary, run_fuzz, step_quantiles
from repro.fuzz.gen import GenConfig
from repro.fuzz.oracle import DIVERGENCE, OracleConfig


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs, JSON-serialisable."""

    shard: int
    jobs: int
    seed: int
    iterations: int
    guided: bool = False
    shrink: bool = True
    max_findings: int = 10
    probe: bool = True
    probe_sample: float = 1.0
    plant_divergence_every: Optional[int] = None
    gen: Optional[dict] = None  # GenConfig.as_dict(), None = defaults
    oracle: Optional[dict] = None  # OracleConfig fields, None = defaults

    def indices(self) -> List[int]:
        """This shard's round-robin slice of ``[0, iterations)``."""
        return list(range(self.shard, self.iterations, self.jobs))

    def as_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(raw: dict) -> "ShardSpec":
        return ShardSpec(
            shard=int(raw["shard"]),
            jobs=int(raw["jobs"]),
            seed=int(raw["seed"]),
            iterations=int(raw["iterations"]),
            guided=bool(raw.get("guided", False)),
            shrink=bool(raw.get("shrink", True)),
            max_findings=int(raw.get("max_findings", 10)),
            probe=bool(raw.get("probe", True)),
            probe_sample=float(raw.get("probe_sample", 1.0)),
            plant_divergence_every=raw.get("plant_divergence_every"),
            gen=raw.get("gen"),
            oracle=raw.get("oracle"),
        )


def run_shard(spec: ShardSpec) -> FuzzSummary:
    """One shard's loop, in-process."""
    gen_config = (
        GenConfig.from_dict(spec.gen) if spec.gen else GenConfig()
    )
    oracle_config = (
        OracleConfig(**spec.oracle) if spec.oracle else OracleConfig()
    )
    return run_fuzz(
        seed=spec.seed,
        gen_config=gen_config,
        oracle_config=oracle_config,
        shrink_findings=spec.shrink,
        max_findings=spec.max_findings,
        guided=spec.guided,
        probe=spec.probe,
        probe_sample=spec.probe_sample,
        indices=spec.indices(),
        plant_divergence_every=spec.plant_divergence_every,
    )


def shard_report(spec: ShardSpec) -> dict:
    """The worker's JSON payload: the summary plus the shard's corpus
    entries (built from the shrunk findings, so the merge deduplicates
    by shrunk form exactly as single-process ``--save`` does)."""
    summary = run_shard(spec)
    return {
        "shard": spec.shard,
        "summary": summary.to_dict(),
        "corpus": [
            asdict(CorpusEntry.from_report(finding.shrunk))
            for finding in summary.findings
        ],
    }


@dataclass
class FleetReport:
    """The merged outcome of one fleet run."""

    seed: int
    jobs: int
    iterations: int = 0
    guided: bool = False
    elapsed: float = 0.0
    verdicts: Dict[str, int] = field(default_factory=dict)
    lane_verdicts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    machine_steps: int = 0
    machine_raises: int = 0
    machine_allocs: int = 0
    #: Element-wise sum of the shards' per-case step histograms —
    #: jobs-invariant, because the union of case seeds is (the bucket
    #: counts sum over disjoint index sets).
    case_step_buckets: List[int] = field(default_factory=list)
    #: Wall-clock per oracle lane, summed over shards; lives in the
    #: poppable ``timing`` block of :meth:`to_dict`.
    lane_seconds: Dict[str, float] = field(default_factory=dict)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    probe_violations: List[str] = field(default_factory=list)
    #: Probed vs probe-eligible case counts summed over shards; a
    #: fixed seed yields the same pair under any ``jobs`` (the
    #: selection keys on absolute case indices).
    probe_sampled: int = 0
    probe_total: int = 0
    findings: List[dict] = field(default_factory=list)
    corpus: List[CorpusEntry] = field(default_factory=list)
    corpus_added: int = 0
    shard_elapsed: List[float] = field(default_factory=list)
    shard_iterations: List[int] = field(default_factory=list)

    @property
    def divergences(self) -> int:
        return self.verdicts.get(DIVERGENCE, 0)

    @property
    def ok(self) -> bool:
        return self.divergences == 0 and not self.probe_violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": self.jobs,
            "iterations": self.iterations,
            "guided": self.guided,
            "elapsed_seconds": round(self.elapsed, 3),
            "shard_elapsed_seconds": [
                round(t, 3) for t in self.shard_elapsed
            ],
            # Wall clock, summed over shards — tests pop this key (and
            # the two elapsed keys above) before byte comparison.
            "timing": {
                "cases_per_second": (
                    round(self.iterations / self.elapsed, 3)
                    if self.elapsed
                    else 0.0
                ),
                "shard_cases_per_second": [
                    round(iters / t, 3) if t else 0.0
                    for iters, t in zip(
                        self.shard_iterations, self.shard_elapsed
                    )
                ],
                "lane_seconds": {
                    lane: round(spent, 6)
                    for lane, spent in sorted(self.lane_seconds.items())
                },
            },
            "verdicts": dict(sorted(self.verdicts.items())),
            "lanes": {
                lane: dict(sorted(counts.items()))
                for lane, counts in sorted(self.lane_verdicts.items())
            },
            "machine": {
                "steps": self.machine_steps,
                "raises": self.machine_raises,
                "allocs": self.machine_allocs,
            },
            # Deterministic and jobs-invariant (bucket counts sum over
            # disjoint shard index sets).
            "case_steps": {
                "buckets": list(self.case_step_buckets),
                "quantiles": step_quantiles(self.case_step_buckets),
            },
            "coverage": self.coverage.as_dict(),
            "probe_violations": list(self.probe_violations),
            "probe_sampled": self.probe_sampled,
            "probe_total": self.probe_total,
            "corpus": [asdict(entry) for entry in self.corpus],
            "corpus_added": self.corpus_added,
            "findings": self.findings,
            "ok": self.ok,
        }


def _merge_shard(report: FleetReport, payload: dict) -> None:
    summary = payload["summary"]
    report.iterations += summary["iterations"]
    report.shard_elapsed.append(summary["elapsed_seconds"])
    report.shard_iterations.append(summary["iterations"])
    for verdict, count in summary["verdicts"].items():
        report.verdicts[verdict] = (
            report.verdicts.get(verdict, 0) + count
        )
    for lane, counts in summary["lanes"].items():
        merged = report.lane_verdicts.setdefault(lane, {})
        for verdict, count in counts.items():
            merged[verdict] = merged.get(verdict, 0) + count
    machine = summary["machine"]
    report.machine_steps += machine["steps"]
    report.machine_raises += machine["raises"]
    report.machine_allocs += machine["allocs"]
    buckets = summary.get("case_steps", {}).get("buckets", [])
    if buckets:
        if not report.case_step_buckets:
            report.case_step_buckets = [0] * len(buckets)
        for i, count in enumerate(buckets):
            report.case_step_buckets[i] += count
    for lane, spent in (
        summary.get("timing", {}).get("lane_seconds", {}).items()
    ):
        report.lane_seconds[lane] = (
            report.lane_seconds.get(lane, 0.0) + spent
        )
    report.coverage.merge(CoverageMap.from_dict(summary["coverage"]))
    report.probe_violations.extend(summary["probe_violations"])
    report.probe_sampled += summary.get("probe_sampled", 0)
    report.probe_total += summary.get("probe_total", 0)
    report.findings.extend(summary["findings"])
    for raw in payload["corpus"]:
        report.corpus.append(CorpusEntry(**raw))


def _finalise(report: FleetReport, save_path: Optional[str]) -> None:
    """Deterministic ordering, then optional corpus persistence."""
    report.findings.sort(key=lambda f: f["seed"])
    unique: Dict[str, CorpusEntry] = {}
    for entry in report.corpus:
        unique.setdefault(entry.id, entry)
    report.corpus = [unique[i] for i in sorted(unique)]
    if save_path and report.corpus:
        report.corpus_added = len(
            append_entries(save_path, report.corpus)
        )


def _worker_env() -> dict:
    """The child's environment: inherit, but make sure the ``repro``
    package the parent imported is on the child's path (the CLI may
    have been launched from anywhere)."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


def run_fleet(
    jobs: int,
    iterations: int,
    seed: int = 0,
    guided: bool = False,
    shrink: bool = True,
    max_findings: int = 10,
    probe: bool = True,
    probe_sample: float = 1.0,
    plant_divergence_every: Optional[int] = None,
    gen_config: Optional[GenConfig] = None,
    oracle_config: Optional[dict] = None,
    save_path: Optional[str] = None,
    in_process: bool = False,
) -> FleetReport:
    """Shard ``iterations`` cases over ``jobs`` workers and merge.

    ``in_process`` runs the shards sequentially in this interpreter —
    bit-identical to the subprocess fleet (the tests rely on that),
    just without the parallelism.
    """
    import time

    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    specs = [
        ShardSpec(
            shard=shard,
            jobs=jobs,
            seed=seed,
            iterations=iterations,
            guided=guided,
            shrink=shrink,
            max_findings=max_findings,
            probe=probe,
            probe_sample=probe_sample,
            plant_divergence_every=plant_divergence_every,
            gen=gen_config.as_dict() if gen_config else None,
            oracle=oracle_config,
        )
        for shard in range(jobs)
    ]
    report = FleetReport(seed=seed, jobs=jobs, guided=guided)
    started = time.monotonic()
    if in_process or jobs == 1:
        payloads = [shard_report(spec) for spec in specs]
    else:
        payloads = _spawn_workers(specs)
    for payload in payloads:
        _merge_shard(report, payload)
    report.elapsed = time.monotonic() - started
    _finalise(report, save_path)
    return report


def _spawn_workers(specs: List[ShardSpec]) -> List[dict]:
    """One subprocess per shard (the ``repro bench --jobs`` pattern:
    a thread pool of blocking ``subprocess.run`` calls), results
    returned in shard order regardless of completion order."""
    from concurrent.futures import ThreadPoolExecutor

    env = _worker_env()

    def run_one(spec: ShardSpec) -> dict:
        completed = subprocess.run(
            [sys.executable, "-m", "repro.fuzz.fleet"],
            input=json.dumps(spec.as_dict()).encode("utf-8"),
            capture_output=True,
            env=env,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"fuzz shard {spec.shard}/{spec.jobs} failed "
                f"(exit {completed.returncode}):\n"
                + completed.stderr.decode("utf-8", "replace")
            )
        return json.loads(completed.stdout.decode("utf-8"))

    with ThreadPoolExecutor(max_workers=len(specs)) as pool:
        return list(pool.map(run_one, specs))


def _worker_main() -> int:
    """``python -m repro.fuzz.fleet``: spec JSON on stdin, report JSON
    on stdout.  Everything else (tracebacks included) goes to stderr,
    so a crash surfaces as the parent's RuntimeError."""
    spec = ShardSpec.from_dict(json.load(sys.stdin))
    payload = shard_report(spec)
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(_worker_main())
