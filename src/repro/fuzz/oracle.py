"""The multi-way differential oracle.

Every generated program is run through several evaluators and each
lane's outcome is compared against a *reference*:

* pure programs — the imprecise denotational semantics (Section 4) is
  the reference; lanes are the lazy machine under every standard
  strategy plus a per-case ``Shuffled`` with a recorded seed, the
  explicit ``ExVal`` encoding (Section 2), the fixed-order baseline
  (Sections 3.4/6), and the compile-to-closures and superinstruction
  backends (docs/PERFORMANCE.md) under the default strategy —
  classified against the denotation exactly like the AST machine, so
  any behavioural drift in either compiler surfaces as a divergence
  here;
* IO programs — the left-to-right executor run is the reference and
  the other strategies are the lanes (the denotational reference for
  IO is the Section 4.4 LTS, already property-tested in
  ``tests/io/test_transition.py``), plus the compiled and super
  backends under the reference strategy.

Each comparison lands on a three-point lattice:

* ``agree`` — identical observables;
* ``refinement`` — different observables, but legal under a documented
  contract: the machine observed *one member* of the denoted exception
  set (Section 3.5), the fixed-order denotation refines the imprecise
  one (``⊑``, Section 4.5), the ``ExVal`` encoding exercised its
  documented increased strictness (Section 2.2), or the reference is
  the fuel-bounded ⊥ approximation (below everything);
* ``divergence`` — a genuine disagreement no contract licenses; the
  engine shrinks and persists these.

``skipped`` marks lanes that could not run (unencodable fragment, fuel
exhaustion in a non-reference lane); it never influences the verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.fixed_order import fixed_order_ctx
from repro.core.denote import (
    DenoteContext,
    denote,
    ensure_recursion_headroom,
)
from repro.core.domains import (
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    SemVal,
    is_bottom,
)
from repro.core.excset import Exc, NON_TERMINATION, OVERFLOW
from repro.core.ordering import refines, sem_equal
from repro.encoding.exval import EncodeError, encode_expr
from repro.fuzz.gen import FuzzCase
from repro.io.run import IOExecutor, IOResult, IORunError
from repro.lang.ast import Expr
from repro.lang.names import free_vars
from repro.machine.eval import Machine
from repro.machine.heap import (
    AsyncInterrupt,
    Cell,
    MachineDiverged,
    ObjRaise,
)
from repro.machine.strategy import Shuffled, Strategy, standard_strategies
from repro.machine.values import VCon, VFun, VInt, VIO, VStr, Value
from repro.prelude.loader import denote_env, machine_env
from repro.transform.base import Transformation, rewrite_everywhere

AGREE = "agree"
REFINEMENT = "refinement"
DIVERGENCE = "divergence"
SKIPPED = "skipped"

_RANK = {AGREE: 0, REFINEMENT: 1, DIVERGENCE: 2}


@dataclass(frozen=True)
class Observation:
    """One lane's outcome, with enough detail to reproduce it.

    ``seed`` records the RNG seed of a ``Shuffled`` strategy lane so a
    disagreement is re-runnable (the historic irreproducibility bug —
    see docs/FUZZING.md).  ``exc`` and ``payload`` carry the raw
    objects for classification; only the printable fields are
    serialised.
    """

    lane: str
    kind: str  # ok | ok-con | ok-fun | ok-io | exc | diverged | skipped
    detail: str = ""
    seed: Optional[int] = None
    stdout: Optional[str] = None
    exc: Optional[Exc] = field(default=None, compare=False)
    payload: object = field(default=None, compare=False)

    def to_dict(self) -> dict:
        out = {"lane": self.lane, "kind": self.kind, "detail": self.detail}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.stdout is not None:
            out["stdout"] = self.stdout
        return out


@dataclass(frozen=True)
class Comparison:
    """One lane classified against the reference."""

    lane: str
    verdict: str
    reason: str
    observation: Observation

    def to_dict(self) -> dict:
        return {
            "lane": self.lane,
            "verdict": self.verdict,
            "reason": self.reason,
            "observation": self.observation.to_dict(),
        }


@dataclass
class OracleReport:
    """All lanes of one case, with the worst verdict pre-computed.

    ``lane_seconds`` is wall-clock spent per lane (the ``reference``
    key covers the denotation / reference run).  It is deliberately
    *excluded* from :meth:`to_dict`: corpus entries and fleet payloads
    must stay byte-identical across runs, so timing travels only
    through the engine's aggregate ``timing`` block.
    """

    case: FuzzCase
    reference: Observation
    comparisons: List[Comparison]
    lane_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def verdict(self) -> str:
        worst = AGREE
        for comparison in self.comparisons:
            rank = _RANK.get(comparison.verdict)
            if rank is not None and rank > _RANK[worst]:
                worst = comparison.verdict
        return worst

    @property
    def worst_comparison(self) -> Optional[Comparison]:
        worst = None
        for comparison in self.comparisons:
            rank = _RANK.get(comparison.verdict)
            if rank is None:
                continue
            if worst is None or rank > _RANK[worst.verdict]:
                worst = comparison
        return worst

    def to_dict(self) -> dict:
        return {
            "seed": self.case.seed,
            "kind": self.case.kind,
            "source": self.case.source,
            "verdict": self.verdict,
            "reference": self.reference.to_dict(),
            "comparisons": [c.to_dict() for c in self.comparisons],
        }


@dataclass(frozen=True)
class OracleConfig:
    """Fuel budgets and lane knobs.

    The machine gets much more fuel than the denotational reference so
    that when fuel *does* run out, it is the reference that bottoms
    out first — and a ⊥ reference classifies every lane as refinement
    (⊥ is below everything), never as a false divergence.
    """

    denote_fuel: int = 50_000
    machine_fuel: int = 400_000
    exval_fuel: int = 600_000
    io_fuel: int = 400_000
    extra_shuffled: bool = True
    compiled_lane: bool = True
    super_lane: bool = True
    warm_lane: bool = True

    def strategies(self, seed: int) -> Sequence[Strategy]:
        base = list(standard_strategies())
        if self.extra_shuffled:
            base.append(Shuffled(1_000 + seed % 9_973))
        return base


# -- helpers -------------------------------------------------------------


def _safe_denote(expr: Expr, env, ctx: DenoteContext) -> SemVal:
    ensure_recursion_headroom()
    try:
        return denote(expr, env, ctx)
    except RecursionError:
        return BOTTOM


def _value_observation(lane: str, value: Value,
                       seed: Optional[int]) -> Observation:
    if isinstance(value, VInt):
        return Observation(lane, "ok", str(value.value), seed=seed,
                           payload=value.value)
    if isinstance(value, VStr):
        return Observation(lane, "ok", repr(value.value), seed=seed,
                           payload=value.value)
    if isinstance(value, VCon):
        return Observation(lane, "ok-con", value.name, seed=seed,
                           payload=value.name)
    if isinstance(value, VFun):
        return Observation(lane, "ok-fun", "<function>", seed=seed)
    if isinstance(value, VIO):
        return Observation(lane, "ok-io", value.tag, seed=seed,
                           payload=value.tag)
    return Observation(lane, "ok", str(value), seed=seed)


def _machine_observation(
    expr: Expr, strategy: Strategy, fuel: int, sink,
    lane: Optional[str] = None, backend: str = "ast",
) -> Observation:
    machine = Machine(strategy=strategy, fuel=fuel, sink=sink,
                      backend=backend)
    env = machine_env(machine)
    if lane is None:
        lane = f"machine:{strategy.name}"
    seed = getattr(strategy, "seed", None)
    try:
        value = machine.eval(expr, env)
    except (ObjRaise, AsyncInterrupt) as err:
        return Observation(lane, "exc", str(err.exc), seed=seed,
                           exc=err.exc)
    except (MachineDiverged, RecursionError):
        return Observation(lane, "diverged", seed=seed)
    return _value_observation(lane, value, seed)


def _warm_lane_observation(maker, lane: str, expr: Expr, fuel: int):
    """Run ``expr`` on a machine built by ``maker`` (snapshot.fork or
    snapshot.cold_start) with a private counting sink; returns the
    observation plus the counter block and trace-event totals."""
    from repro.obs.sinks import CountingSink

    machine, env = maker(fuel=fuel)
    counting = CountingSink()
    machine.attach_sink(counting)
    try:
        value = machine.eval(expr, env)
        obs = _value_observation(lane, value, None)
    except (ObjRaise, AsyncInterrupt) as err:
        obs = Observation(lane, "exc", str(err.exc), exc=err.exc)
    except (MachineDiverged, RecursionError):
        obs = Observation(lane, "diverged")
    return obs, machine.stats.as_dict(), counting.as_dict()


def _classify_warm_lane(
    expr: Expr, config: OracleConfig, backend: str
) -> Comparison:
    """The serving layer's parity contract as a fuzz lane: a machine
    forked from the shared prelude snapshot must be *byte-identical*
    to a cold-built one — same outcome, same counter block, same
    trace-event totals — on every generated program
    (docs/SERVING.md).  Unlike the semantic lanes, any difference at
    all is a divergence: no refinement contract licenses the warm path
    changing even one counter."""
    from repro.machine.snapshot import shared_snapshot

    lane = f"machine:warm-fork[{backend}]"
    snapshot = shared_snapshot(backend=backend)
    warm = _warm_lane_observation(
        snapshot.fork, lane, expr, config.machine_fuel
    )
    cold = _warm_lane_observation(
        snapshot.cold_start, lane, expr, config.machine_fuel
    )
    (w_obs, w_stats, w_events) = warm
    (c_obs, c_stats, c_events) = cold
    if (w_obs.kind, w_obs.detail) != (c_obs.kind, c_obs.detail):
        return Comparison(
            lane,
            DIVERGENCE,
            f"fork observed {w_obs.kind}:{w_obs.detail} but cold "
            f"start observed {c_obs.kind}:{c_obs.detail}",
            w_obs,
        )
    if w_stats != c_stats:
        return Comparison(
            lane,
            DIVERGENCE,
            f"counter mismatch: fork {w_stats} vs cold {c_stats}",
            w_obs,
        )
    if w_events != c_events:
        return Comparison(
            lane,
            DIVERGENCE,
            f"trace-event mismatch: fork {w_events} vs cold "
            f"{c_events}",
            w_obs,
        )
    return Comparison(
        lane,
        AGREE,
        "fork and cold start byte-identical "
        "(outcome, counters, events)",
        w_obs,
    )


def _semval_matches(denoted_value: object, obs: Observation) -> bool:
    """Does a machine observation match a normal denotation (at the
    same granularity the soundness property uses: exact base values,
    constructor names, function/IO-ness)?"""
    if isinstance(denoted_value, ConVal):
        return obs.kind == "ok-con" and obs.payload == denoted_value.name
    if isinstance(denoted_value, FunVal):
        return obs.kind == "ok-fun"
    if isinstance(denoted_value, IOVal):
        return obs.kind == "ok-io"
    return obs.kind == "ok" and obs.payload == denoted_value


def _singleton(excs) -> bool:
    return excs.is_finite() and len(excs.finite_members()) == 1


def _classify_machine_lane(
    denoted: SemVal, obs: Observation
) -> Comparison:
    lane = obs.lane
    if is_bottom(denoted):
        if obs.kind == "diverged":
            return Comparison(lane, AGREE, "both ⊥", obs)
        return Comparison(
            lane,
            REFINEMENT,
            "reference is the fuel-bounded ⊥ approximation; "
            "every behaviour refines ⊥",
            obs,
        )
    if isinstance(denoted, Ok):
        if obs.kind.startswith("ok"):
            if _semval_matches(denoted.value, obs):
                return Comparison(lane, AGREE, "same normal value", obs)
            return Comparison(
                lane,
                DIVERGENCE,
                f"machine computed {obs.detail} but denotation is "
                f"{denoted}",
                obs,
            )
        if obs.kind == "exc":
            return Comparison(
                lane,
                DIVERGENCE,
                f"machine raised {obs.detail} but denotation is "
                f"{denoted}",
                obs,
            )
        return Comparison(
            lane,
            DIVERGENCE,
            f"machine diverged but denotation is {denoted}",
            obs,
        )
    assert isinstance(denoted, Bad)
    excs = denoted.excs
    if obs.kind == "exc":
        assert obs.exc is not None
        if obs.exc in excs:
            if _singleton(excs):
                return Comparison(
                    lane, AGREE, "the single denoted exception", obs
                )
            return Comparison(
                lane,
                REFINEMENT,
                f"one member of the denoted set {excs} (§3.5)",
                obs,
            )
        return Comparison(
            lane,
            DIVERGENCE,
            f"machine raised {obs.detail} ∉ denoted set {excs}",
            obs,
        )
    if obs.kind == "diverged":
        if NON_TERMINATION in excs:
            return Comparison(
                lane,
                REFINEMENT,
                "NonTermination is a member of the denoted set",
                obs,
            )
        return Comparison(
            lane,
            DIVERGENCE,
            f"machine diverged but NonTermination ∉ {excs}",
            obs,
        )
    return Comparison(
        lane,
        DIVERGENCE,
        f"machine computed {obs.detail} but denotation is Bad {excs}",
        obs,
    )


def _classify_exval_lane(
    expr: Expr, denoted: SemVal, config: OracleConfig, sink
) -> Comparison:
    lane = "exval"
    free = free_vars(expr)
    if free:
        # Prelude calls resolve to *unencoded* definitions, which return
        # raw values where the encoding expects ExVals — no encoded
        # prelude exists, so the fragment is closed terms only.
        obs = Observation(lane, "skipped", f"free prelude vars {sorted(free)}")
        return Comparison(
            lane, SKIPPED,
            "prelude calls are outside the encodable fragment", obs,
        )
    try:
        encoded = encode_expr(expr)
    except EncodeError as err:
        obs = Observation(lane, "skipped", str(err))
        return Comparison(lane, SKIPPED, "outside the encodable fragment",
                          obs)
    machine = Machine(fuel=config.exval_fuel, sink=sink)
    env = machine_env(machine)
    try:
        value = machine.eval(encoded, env)
        if not isinstance(value, VCon) or value.name not in ("OK", "Bad"):
            obs = Observation(lane, "exc", f"non-ExVal result {value}")
            return Comparison(
                lane, DIVERGENCE,
                "encoded program did not return an ExVal", obs
            )
        payload = value.args[0].force(machine)
    except (MachineDiverged, RecursionError):
        obs = Observation(lane, "diverged")
        return Comparison(
            lane, SKIPPED,
            "encoded run exhausted its fuel (the encoding's overhead is "
            "the point of E2)", obs,
        )
    except (ObjRaise, AsyncInterrupt) as err:
        if err.exc.name == "NonTermination":
            obs = Observation(lane, "diverged", str(err.exc), exc=err.exc)
            return Comparison(
                lane, SKIPPED,
                "blackhole: divergence is the one failure the value "
                "encoding cannot capture", obs,
            )
        obs = Observation(lane, "exc", str(err.exc), exc=err.exc)
        return Comparison(
            lane, DIVERGENCE,
            f"encoded program raised {err.exc} natively", obs,
        )
    if value.name == "OK":
        obs = _value_observation(lane, payload, None)
        if is_bottom(denoted):
            return Comparison(
                lane, REFINEMENT,
                "reference is the fuel-bounded ⊥ approximation", obs,
            )
        if isinstance(denoted, Ok):
            if _semval_matches(denoted.value, obs):
                return Comparison(lane, AGREE, "same normal value", obs)
            return Comparison(
                lane, DIVERGENCE,
                f"encoded OK {obs.detail} but denotation is {denoted}",
                obs,
            )
        assert isinstance(denoted, Bad)
        if OVERFLOW in denoted.excs:
            return Comparison(
                lane, SKIPPED,
                "overflow checking is elided by the encoding baseline "
                "(DESIGN.md)", obs,
            )
        return Comparison(
            lane, DIVERGENCE,
            f"encoded OK {obs.detail} but denotation is Bad "
            f"{denoted.excs} — the encoding forces strictly more, it "
            "can never succeed where the lazy semantics fails", obs,
        )
    # value.name == "Bad"
    exc = machine.exc_of_value(payload)
    obs = Observation(lane, "exc", str(exc), exc=exc)
    if is_bottom(denoted):
        return Comparison(
            lane, REFINEMENT,
            "reference is the fuel-bounded ⊥ approximation", obs,
        )
    if isinstance(denoted, Bad):
        if exc in denoted.excs:
            if _singleton(denoted.excs):
                return Comparison(
                    lane, AGREE, "the single denoted exception", obs
                )
            return Comparison(
                lane, REFINEMENT,
                f"one member of the denoted set {denoted.excs}", obs,
            )
    return Comparison(
        lane, REFINEMENT,
        "legal increased strictness of the encoding (§2.2): arguments "
        "are checked when passed, so the encoding may fail where the "
        "lazy semantics succeeds, or meet a different fault first", obs,
    )


def _classify_fixed_lane(
    expr: Expr, denoted: SemVal, config: OracleConfig, sink
) -> Comparison:
    lane = "fixed-order"
    ctx = fixed_order_ctx(config.denote_fuel)
    if sink is not None:
        # Re-derive the tracing flag: it was compiled from the sink in
        # __post_init__, before this sink existed.
        ctx.sink = sink
        ctx.__post_init__()
    fixed = _safe_denote(expr, denote_env(ctx), ctx)
    obs = Observation(lane, "denote", str(fixed))
    if is_bottom(fixed) and not is_bottom(denoted):
        return Comparison(
            lane, SKIPPED,
            "fixed-order evaluation exhausted its fuel", obs,
        )
    if sem_equal(denoted, fixed):
        return Comparison(lane, AGREE, "identical denotations", obs)
    if refines(denoted, fixed):
        return Comparison(
            lane, REFINEMENT,
            "fixed order commits to one evaluation path, so its "
            "exception set is a subset (⊑, §4.5)", obs,
        )
    return Comparison(
        lane, DIVERGENCE,
        f"fixed-order denotation {fixed} is not a refinement of "
        f"imprecise {denoted}", obs,
    )


# -- IO lane -------------------------------------------------------------


def _io_observation(
    case: FuzzCase, strategy: Strategy, fuel: int, sink,
    lane: Optional[str] = None, backend: str = "ast",
) -> Observation:
    machine = Machine(strategy=strategy, fuel=fuel, sink=sink,
                      backend=backend)
    env = machine_env(machine)
    if lane is None:
        lane = f"io:{strategy.name}"
    seed = getattr(strategy, "seed", None)
    executor = IOExecutor(machine=machine, stdin=case.stdin)
    try:
        result: IOResult = executor.run_cell(Cell(case.expr, env))
    except IORunError as err:
        return Observation(lane, "skipped", f"ill-formed IO: {err}",
                           seed=seed)
    except RecursionError:
        return Observation(lane, "diverged", seed=seed)
    if result.status == "ok":
        base = _value_observation(lane, result.value, seed)
        return Observation(
            lane, base.kind, base.detail, seed=seed,
            stdout=result.stdout, payload=base.payload,
        )
    if result.status == "exception":
        return Observation(lane, "exc", str(result.exc), seed=seed,
                           stdout=result.stdout, exc=result.exc)
    return Observation(lane, "diverged", seed=seed, stdout=result.stdout)


def _classify_io_lane(
    reference: Observation, obs: Observation
) -> Comparison:
    lane = obs.lane
    if obs.kind == "skipped" or reference.kind == "skipped":
        return Comparison(lane, SKIPPED, "lane could not run", obs)
    ref_ok = reference.kind.startswith("ok")
    obs_ok = obs.kind.startswith("ok")
    if ref_ok and obs_ok:
        if (reference.stdout == obs.stdout
                and reference.kind == obs.kind
                and reference.payload == obs.payload):
            return Comparison(lane, AGREE, "same value and output", obs)
        return Comparison(
            lane, DIVERGENCE,
            f"strategies disagree on a normal run: "
            f"{reference.kind}/{reference.stdout!r} vs "
            f"{obs.kind}/{obs.stdout!r}", obs,
        )
    if reference.kind == "exc" and obs.kind == "exc":
        if reference.exc == obs.exc and reference.stdout == obs.stdout:
            return Comparison(lane, AGREE, "same exception and output",
                              obs)
        return Comparison(
            lane, REFINEMENT,
            "a different member of the denoted exception set surfaced "
            "(§3.5: recompiling may change which exception is raised)",
            obs,
        )
    if reference.kind == "diverged" and obs.kind == "diverged":
        return Comparison(lane, AGREE, "both diverged", obs)
    if {"exc", "diverged"} == {reference.kind, obs.kind}:
        return Comparison(
            lane, REFINEMENT,
            "⊥'s exception set contains both NonTermination and every "
            "synchronous exception, so an exception under one strategy "
            "and divergence under another are both legal members", obs,
        )
    return Comparison(
        lane, DIVERGENCE,
        f"one strategy completed normally, another did not: reference "
        f"{reference.kind} vs {obs.kind}", obs,
    )


# -- entry points --------------------------------------------------------


def run_oracle(
    case: FuzzCase,
    config: Optional[OracleConfig] = None,
    sink=None,
) -> OracleReport:
    """Run every lane for one case and classify the outcomes."""
    if config is None:
        config = OracleConfig()
    if case.kind == "io":
        return _run_io_oracle(case, config, sink)
    return _run_pure_oracle(case, config, sink)


def _run_pure_oracle(
    case: FuzzCase, config: OracleConfig, sink
) -> OracleReport:
    # The sink must go through the constructor: ``_tracing`` is
    # computed in ``__post_init__``, so assigning ``ctx.sink`` after
    # the fact would silently drop every denote-layer event.
    lane_seconds: Dict[str, float] = {}
    comparisons: List[Comparison] = []

    def timed(thunk: Callable[[], Comparison]) -> None:
        lane_started = time.perf_counter()
        comparison = thunk()
        lane_seconds[comparison.lane] = (
            lane_seconds.get(comparison.lane, 0.0)
            + time.perf_counter()
            - lane_started
        )
        comparisons.append(comparison)

    started = time.perf_counter()
    ctx = DenoteContext(fuel=config.denote_fuel, sink=sink)
    denoted = _safe_denote(case.expr, denote_env(ctx), ctx)
    reference = Observation("denote", "denote", str(denoted))
    lane_seconds["reference"] = time.perf_counter() - started
    strategies = list(config.strategies(case.seed))
    for index, strategy in enumerate(strategies):
        # The per-case shuffle gets a stable lane label so summaries
        # aggregate; its exact seed lives in the observation.
        lane = f"machine:{strategy.name}"
        if config.extra_shuffled and index == len(strategies) - 1:
            lane = "machine:shuffled(per-case)"
        timed(lambda: _classify_machine_lane(denoted, _machine_observation(
            case.expr, strategy, config.machine_fuel, sink, lane
        )))
    if config.compiled_lane:
        # The compiled backend runs under the *default* strategy, so it
        # must land on the same verdict as the machine:left-to-right
        # lane above — the differential check on the compiler itself.
        timed(lambda: _classify_machine_lane(denoted, _machine_observation(
            case.expr, strategies[0], config.machine_fuel, sink,
            "machine:compiled", backend="compiled",
        )))
    if config.super_lane:
        # Same differential again for the superinstruction backend:
        # fused frames must not change the observed member of the
        # exception set (docs/PERFORMANCE.md, "Superinstructions").
        timed(lambda: _classify_machine_lane(denoted, _machine_observation(
            case.expr, strategies[0], config.machine_fuel, sink,
            "machine:super", backend="super",
        )))
    if config.warm_lane:
        # The warm serving path's parity contract, checked as its own
        # differential: fork-vs-cold must be byte-identical, not just
        # semantically equivalent.
        timed(lambda: _classify_warm_lane(case.expr, config, "ast"))
        if config.compiled_lane:
            timed(
                lambda: _classify_warm_lane(case.expr, config, "compiled")
            )
        if config.super_lane:
            timed(
                lambda: _classify_warm_lane(case.expr, config, "super")
            )
    timed(lambda: _classify_exval_lane(case.expr, denoted, config, sink))
    timed(lambda: _classify_fixed_lane(case.expr, denoted, config, sink))
    return OracleReport(case, reference, comparisons, lane_seconds)


def _run_io_oracle(
    case: FuzzCase, config: OracleConfig, sink
) -> OracleReport:
    lane_seconds: Dict[str, float] = {}
    comparisons: List[Comparison] = []

    def timed(thunk: Callable[[], Comparison]) -> None:
        lane_started = time.perf_counter()
        comparison = thunk()
        lane_seconds[comparison.lane] = (
            lane_seconds.get(comparison.lane, 0.0)
            + time.perf_counter()
            - lane_started
        )
        comparisons.append(comparison)

    strategies = list(config.strategies(case.seed))
    started = time.perf_counter()
    reference = _io_observation(case, strategies[0], config.io_fuel, sink)
    lane_seconds["reference"] = time.perf_counter() - started
    for index, strategy in enumerate(strategies[1:], start=1):
        lane = f"io:{strategy.name}"
        if config.extra_shuffled and index == len(strategies) - 1:
            lane = "io:shuffled(per-case)"
        timed(lambda: _classify_io_lane(reference, _io_observation(
            case, strategy, config.io_fuel, sink, lane
        )))
    if config.compiled_lane:
        # Same strategy as the reference run, different evaluator: any
        # disagreement (beyond §3.5's exception-choice refinement) is a
        # compiler bug, not a strategy effect.
        timed(lambda: _classify_io_lane(reference, _io_observation(
            case, strategies[0], config.io_fuel, sink, "io:compiled",
            backend="compiled",
        )))
    if config.super_lane:
        timed(lambda: _classify_io_lane(reference, _io_observation(
            case, strategies[0], config.io_fuel, sink, "io:super",
            backend="super",
        )))
    return OracleReport(case, reference, comparisons, lane_seconds)


# -- transform differentials ---------------------------------------------


def classify_transform_pair(
    before: Expr,
    after: Expr,
    ctx_factory: Optional[Callable[[int], DenoteContext]] = None,
    fuel: int = 30_000,
) -> str:
    """Classify a rewrite ``before -> after`` on closed expressions:
    ``agree`` (identity), ``refinement`` (legitimate, ``⊑``) or
    ``divergence`` (unsound) — the §4.5 verdict, computed directly on
    the two denotations under the chosen semantics."""
    factory = ctx_factory or (lambda f: DenoteContext(fuel=f))
    ctx_a = factory(fuel)
    denoted_before = _safe_denote(before, denote_env(ctx_a), ctx_a)
    ctx_b = factory(fuel)
    denoted_after = _safe_denote(after, denote_env(ctx_b), ctx_b)
    if sem_equal(denoted_before, denoted_after):
        return AGREE
    if refines(denoted_before, denoted_after):
        return REFINEMENT
    return DIVERGENCE


def divergence_predicate(
    case: FuzzCase,
    config: Optional[OracleConfig] = None,
    sink=None,
) -> Callable[[Expr], bool]:
    """The shrink predicate for a divergent case: does the oracle still
    report a genuine divergence on a candidate expression?"""
    from repro.lang.pretty import pretty

    def predicate(expr: Expr) -> bool:
        trial = case.with_expr(expr, pretty(expr))
        return run_oracle(trial, config, sink).verdict == DIVERGENCE

    return predicate


def transform_divergence_predicate(
    rule: Transformation,
    ctx_factory: Optional[Callable[[int], DenoteContext]] = None,
    fuel: int = 30_000,
) -> Callable[[Expr], bool]:
    """The shrink predicate for an unsound transformation: does
    applying ``rule`` everywhere still change the denotation
    illegally?"""

    def predicate(expr: Expr) -> bool:
        rewritten = rewrite_everywhere(expr, rule)
        if rewritten == expr:
            return False
        return (
            classify_transform_pair(expr, rewritten, ctx_factory, fuel)
            == DIVERGENCE
        )

    return predicate
