"""The fuzz loop: generate → oracle → (shrink → persist) → summarise.

Budgeted by iteration count or wall-clock seconds, seeded for exact
reproducibility, and wired through the observability layer: one
:class:`~repro.obs.sinks.CountingSink` is attached to every machine
and denotational context the oracle builds, so a fuzz run reports
machine steps, raises and allocations for free (the same counters
``python -m repro profile`` reports — docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.fuzz.corpus import CorpusEntry, append_entries
from repro.fuzz.coverage import (
    CoverageMap,
    extract_features,
    interrupt_probe,
    weights_from_coverage,
)
from repro.fuzz.gen import FuzzCase, GenConfig, generate_case
from repro.fuzz.oracle import (
    DIVERGENCE,
    Comparison,
    OracleConfig,
    OracleReport,
    divergence_predicate,
    run_oracle,
)
from repro.fuzz.shrink import ShrinkResult, shrink
from repro.lang.ast import expr_size
from repro.lang.pretty import pretty
from repro.obs.events import ALLOC, RAISE, STEP
from repro.obs.sinks import CountingSink
from repro.obs.telemetry import STEP_BUCKETS, Histogram, percentile_from_counts


@dataclass
class Finding:
    """One genuine divergence, before and after shrinking."""

    original: OracleReport
    shrunk: OracleReport
    shrink_result: ShrinkResult

    def to_dict(self) -> dict:
        return {
            "seed": self.original.case.seed,
            "original_source": self.original.case.source,
            "original_size": self.shrink_result.original_size,
            "shrunk_source": self.shrunk.case.source,
            "shrunk_size": self.shrink_result.final_size,
            "shrink_attempts": self.shrink_result.attempts,
            "report": self.shrunk.to_dict(),
        }


def step_quantiles(counts: Sequence[int]) -> Dict[str, float]:
    """p50/p95/p99 machine steps per case, re-derived from the
    :data:`STEP_BUCKETS` bucket counts — deterministic because the
    counts are (integer arithmetic plus fixed interpolation)."""
    bounds = list(STEP_BUCKETS) + [math.inf]
    if not counts:
        counts = [0] * len(bounds)
    return {
        label: round(percentile_from_counts(bounds, counts, q), 3)
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
    }


@dataclass
class FuzzSummary:
    """Aggregated outcome of one fuzz run."""

    seed: int
    iterations: int = 0
    elapsed: float = 0.0
    guided: bool = False
    verdicts: Dict[str, int] = field(default_factory=dict)
    lane_verdicts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    findings: List[Finding] = field(default_factory=list)
    machine_steps: int = 0
    machine_raises: int = 0
    machine_allocs: int = 0
    #: Per-case machine-step histogram over :data:`STEP_BUCKETS` —
    #: ``len(STEP_BUCKETS) + 1`` bucket counts (last is +Inf).  A pure
    #: function of the case seeds, so shards merge by element-wise sum
    #: and the fleet total is identical under any ``--jobs``.
    case_step_buckets: List[int] = field(default_factory=list)
    #: Wall-clock seconds per oracle lane (plus ``reference``) — wall
    #: time, so it lives under the poppable ``timing`` block only.
    lane_seconds: Dict[str, float] = field(default_factory=dict)
    corpus_added: int = 0
    coverage: CoverageMap = field(default_factory=CoverageMap)
    probe_violations: List[str] = field(default_factory=list)
    #: Cases the (possibly sampled) interrupt probe actually ran on,
    #: vs cases that were eligible — equal unless ``probe_sample < 1``.
    probe_sampled: int = 0
    probe_total: int = 0

    @property
    def divergences(self) -> int:
        return self.verdicts.get(DIVERGENCE, 0)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "elapsed_seconds": round(self.elapsed, 3),
            "guided": self.guided,
            "verdicts": dict(sorted(self.verdicts.items())),
            "lanes": {
                lane: dict(sorted(counts.items()))
                for lane, counts in sorted(self.lane_verdicts.items())
            },
            "machine": {
                "steps": self.machine_steps,
                "raises": self.machine_raises,
                "allocs": self.machine_allocs,
            },
            # Deterministic: bucket counts are a pure function of the
            # case seeds (the byte-identical and jobs-invariance tests
            # cover this field).
            "case_steps": {
                "buckets": list(self.case_step_buckets),
                "quantiles": step_quantiles(self.case_step_buckets),
            },
            # Wall clock: everything here varies run to run, so tests
            # pop this single key before byte comparison.
            "timing": {
                "cases_per_second": (
                    round(self.iterations / self.elapsed, 3)
                    if self.elapsed
                    else 0.0
                ),
                "lane_seconds": {
                    lane: round(spent, 6)
                    for lane, spent in sorted(self.lane_seconds.items())
                },
            },
            "corpus_added": self.corpus_added,
            "coverage": self.coverage.as_dict(),
            "probe_violations": list(self.probe_violations),
            "probe_sampled": self.probe_sampled,
            "probe_total": self.probe_total,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def run_fuzz(
    iterations: Optional[int] = None,
    seconds: Optional[float] = None,
    seed: int = 0,
    gen_config: Optional[GenConfig] = None,
    oracle_config: Optional[OracleConfig] = None,
    save_path: Optional[str] = None,
    shrink_findings: bool = True,
    max_findings: int = 10,
    guided: bool = False,
    retarget_every: int = 25,
    probe: bool = True,
    probe_sample: float = 1.0,
    indices: Optional[Sequence[int]] = None,
    plant_divergence_every: Optional[int] = None,
) -> FuzzSummary:
    """Run the differential loop until the budget is spent.

    ``iterations`` and ``seconds`` may be combined; whichever runs out
    first stops the loop (default: 200 iterations).  Case ``i`` uses
    generator seed ``seed + i``, so any individual case can be
    regenerated without re-running the loop.  After ``max_findings``
    divergences the run stops early — a broken build would otherwise
    spend its whole budget shrinking.

    Every iteration feeds the feature map (docs/FUZZING.md): a
    per-case counting sink is diffed into the coverage record, the
    program is walked for structural features, and (unless ``probe``
    is off) the interrupt probe re-runs the case with ``ControlC``
    scheduled at two small fixed steps.  With ``guided`` on, the
    generator weights are recomputed from coverage deficits every
    ``retarget_every`` iterations — deterministic for a fixed seed and
    iteration sequence, since the map itself is.

    ``indices`` runs exactly those case indices (case ``j`` still uses
    generator seed ``seed + j``) — the fleet's sharding hook: shard
    ``i`` of ``J`` takes indices ``i, i+J, i+2J, ...`` so the *union*
    of case seeds is independent of the shard count.

    ``probe_sample`` runs the probe on a seeded fraction of cases:
    case ``j`` is probed iff a PRNG keyed on ``(seed, j)`` — the
    *absolute* case index, not the loop position — draws below the
    fraction.  The selection is therefore a pure function of the base
    seed, identical under any ``--jobs`` sharding of the same index
    range.

    ``plant_divergence_every`` appends a synthetic divergent
    comparison to every ``n``-th case's report (by absolute index, so
    shards plant identically).  Like the chaos explorer's planted
    plant, it exists so merge/dedup plumbing can be tested on a build
    whose real divergence count is — as it should be — zero.
    """
    if iterations is None and seconds is None:
        iterations = len(indices) if indices is not None else 200
    if gen_config is None:
        gen_config = GenConfig()
    if oracle_config is None:
        oracle_config = OracleConfig()
    base_weights = gen_config.weights
    sink = CountingSink()
    step_hist = Histogram(
        "fuzz_case_steps",
        "machine steps per fuzz case",
        buckets=STEP_BUCKETS,
    )
    summary = FuzzSummary(seed=seed, guided=guided)
    coverage = summary.coverage
    started = time.monotonic()
    pos = 0
    while True:
        if indices is not None and pos >= len(indices):
            break
        if iterations is not None and pos >= iterations:
            break
        if seconds is not None and time.monotonic() - started >= seconds:
            break
        if len(summary.findings) >= max_findings:
            break
        if guided and pos and pos % retarget_every == 0:
            gen_config = replace(
                gen_config,
                weights=weights_from_coverage(coverage, base_weights),
            )
        index = indices[pos] if indices is not None else pos
        case = generate_case(seed + index, gen_config)
        case_sink = CountingSink()
        report = run_oracle(case, oracle_config, sink=case_sink)
        if plant_divergence_every and (
            index % plant_divergence_every == plant_divergence_every - 1
        ):
            report.comparisons.append(
                Comparison(
                    "plant",
                    DIVERGENCE,
                    "planted divergence (fleet merge self-test)",
                    report.reference,
                )
            )
        probe_this = probe and (
            probe_sample >= 1.0
            or random.Random(seed * 1_000_003 + index).random()
            < probe_sample
        )
        if probe:
            summary.probe_total += 1
            summary.probe_sampled += 1 if probe_this else 0
        probe_result = interrupt_probe(case.expr) if probe_this else None
        coverage.record(
            extract_features(report, case_sink.counts, probe_result)
        )
        if probe_result is not None and probe_result.violations:
            summary.probe_violations.extend(
                f"seed {case.seed}: {violation}"
                for violation in probe_result.violations
            )
        _tally(summary, report)
        step_hist.observe(case_sink.count(STEP))
        for lane, spent in report.lane_seconds.items():
            summary.lane_seconds[lane] = (
                summary.lane_seconds.get(lane, 0.0) + spent
            )
        for event, count in case_sink.counts.items():
            sink.counts[event] = sink.counts.get(event, 0) + count
        if report.verdict == DIVERGENCE:
            summary.findings.append(
                _handle_divergence(
                    case, report, oracle_config, shrink_findings
                )
            )
        pos += 1
    summary.iterations = pos
    summary.elapsed = time.monotonic() - started
    summary.machine_steps = sink.count(STEP)
    summary.machine_raises = sink.count(RAISE)
    summary.machine_allocs = sink.count(ALLOC)
    summary.case_step_buckets = step_hist.bucket_counts()
    if save_path and summary.findings:
        added = append_entries(
            save_path,
            [
                CorpusEntry.from_report(finding.shrunk)
                for finding in summary.findings
            ],
        )
        summary.corpus_added = len(added)
    return summary


def _tally(summary: FuzzSummary, report: OracleReport) -> None:
    summary.verdicts[report.verdict] = (
        summary.verdicts.get(report.verdict, 0) + 1
    )
    for comparison in report.comparisons:
        lane = summary.lane_verdicts.setdefault(comparison.lane, {})
        lane[comparison.verdict] = lane.get(comparison.verdict, 0) + 1


def _handle_divergence(
    case: FuzzCase,
    report: OracleReport,
    oracle_config: OracleConfig,
    shrink_findings: bool,
) -> Finding:
    """Minimise a divergent case (the shrink predicate re-runs the
    full oracle, so the witness keeps disagreeing for the same
    reason-class it was found with)."""
    if not shrink_findings:
        identity = ShrinkResult(
            expr=case.expr,
            original_size=expr_size(case.expr),
            final_size=expr_size(case.expr),
            accepted=0,
            attempts=0,
        )
        return Finding(report, report, identity)
    predicate = divergence_predicate(case, oracle_config)
    result = shrink(case.expr, predicate)
    shrunk_case = case.with_expr(result.expr, pretty(result.expr))
    shrunk_report = run_oracle(shrunk_case, oracle_config)
    return Finding(report, shrunk_report, result)
