"""Delta-debugging shrinker: minimise a program preserving a predicate.

Given an expression on which some disagreement predicate holds (for
the engine: "the oracle still reports a genuine divergence"), the
shrinker greedily tries smaller candidate replacements at every
position until no candidate anywhere is accepted — the classic ddmin
loop specialised to ASTs.

Candidates at a node, most aggressive first:

* minimal leaves (``0``, ``1``, ``True``, ``False``,
  ``raise DivideByZero``) — type-wrong replacements are harmless
  because the predicate wrapper treats any evaluator error as "does
  not reproduce";
* the node's own sub-expressions (hoisting a child over its parent);
* structural reductions: drop a ``case`` alternative, drop a ``let``
  binding, shorten a string literal, strip a ``Raise`` payload to a
  bare constructor.

The walk is deterministic (preorder positions, candidates ordered by
AST size), so a given divergence always shrinks to the same witness —
which is what makes corpus dedup-by-shrunk-form work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Raise,
    Var,
    expr_size,
)

Path = Tuple[int, ...]


# -- generic AST access --------------------------------------------------


def children(expr: Expr) -> List[Expr]:
    """Direct sub-expressions, in a stable order."""
    if isinstance(expr, Lam):
        return [expr.body]
    if isinstance(expr, App):
        return [expr.fn, expr.arg]
    if isinstance(expr, Con):
        return list(expr.args)
    if isinstance(expr, Case):
        return [expr.scrutinee] + [alt.body for alt in expr.alts]
    if isinstance(expr, Raise):
        return [expr.exc]
    if isinstance(expr, PrimOp):
        return list(expr.args)
    if isinstance(expr, Fix):
        return [expr.fn]
    if isinstance(expr, Let):
        return [rhs for _n, rhs in expr.binds] + [expr.body]
    return []


def with_children(expr: Expr, new: Sequence[Expr]) -> Expr:
    """Rebuild ``expr`` with replaced sub-expressions (same shape)."""
    if isinstance(expr, Lam):
        return Lam(expr.var, new[0])
    if isinstance(expr, App):
        return App(new[0], new[1])
    if isinstance(expr, Con):
        return Con(expr.name, tuple(new), expr.arity)
    if isinstance(expr, Case):
        alts = tuple(
            Alt(alt.pattern, body)
            for alt, body in zip(expr.alts, new[1:])
        )
        return Case(new[0], alts)
    if isinstance(expr, Raise):
        return Raise(new[0])
    if isinstance(expr, PrimOp):
        return PrimOp(expr.op, tuple(new))
    if isinstance(expr, Fix):
        return Fix(new[0])
    if isinstance(expr, Let):
        binds = tuple(
            (name, rhs)
            for (name, _old), rhs in zip(expr.binds, new[:-1])
        )
        return Let(binds, new[-1])
    return expr


def subexpr_at(expr: Expr, path: Path) -> Expr:
    for index in path:
        expr = children(expr)[index]
    return expr


def replace_at(expr: Expr, path: Path, new: Expr) -> Expr:
    if not path:
        return new
    kids = children(expr)
    kids[path[0]] = replace_at(kids[path[0]], path[1:], new)
    return with_children(expr, kids)


def preorder_paths(expr: Expr) -> Iterator[Path]:
    """Every position in the tree, root first."""

    def go(e: Expr, path: Path) -> Iterator[Path]:
        yield path
        for index, child in enumerate(children(e)):
            yield from go(child, path + (index,))

    return go(expr, ())


# -- candidate generation ------------------------------------------------

_MINIMAL_LEAVES: Tuple[Expr, ...] = (
    Lit(0, "int"),
    Lit(1, "int"),
    Con("True", (), 0),
    Con("False", (), 0),
    Raise(Con("DivideByZero", (), 0)),
)


def _structural_candidates(expr: Expr) -> List[Expr]:
    out: List[Expr] = []
    if isinstance(expr, Case) and len(expr.alts) > 1:
        for drop in range(len(expr.alts)):
            alts = expr.alts[:drop] + expr.alts[drop + 1:]
            out.append(Case(expr.scrutinee, alts))
    if isinstance(expr, Let) and len(expr.binds) > 1:
        for drop in range(len(expr.binds)):
            binds = expr.binds[:drop] + expr.binds[drop + 1:]
            out.append(Let(binds, expr.body))
    if isinstance(expr, Lit) and expr.kind == "string" and expr.value:
        out.append(Lit("", "string"))
        if len(expr.value) > 1:
            out.append(Lit(expr.value[0], "string"))
    if isinstance(expr, Raise) and not isinstance(
        expr.exc, Con
    ):
        out.append(Raise(Con("DivideByZero", (), 0)))
    if (
        isinstance(expr, Raise)
        and isinstance(expr.exc, Con)
        and expr.exc.args
    ):
        out.append(Raise(Con("DivideByZero", (), 0)))
    return out


def candidates(expr: Expr) -> List[Expr]:
    """Strictly smaller replacements for ``expr``, smallest first."""
    size = expr_size(expr)
    seen = set()
    out: List[Expr] = []
    pool: List[Expr] = []
    pool.extend(_MINIMAL_LEAVES)
    pool.extend(children(expr))
    pool.extend(_structural_candidates(expr))
    for candidate in pool:
        if candidate == expr or expr_size(candidate) >= size:
            continue
        if candidate in seen:
            continue
        seen.add(candidate)
        out.append(candidate)
    out.sort(key=expr_size)
    return out


# -- the shrink loop -----------------------------------------------------


@dataclass
class ShrinkResult:
    """The minimised expression plus loop accounting."""

    expr: Expr
    original_size: int
    final_size: int
    accepted: int
    attempts: int

    @property
    def reduced(self) -> bool:
        return self.final_size < self.original_size


def shrink(
    expr: Expr,
    predicate: Callable[[Expr], bool],
    max_attempts: int = 5_000,
) -> ShrinkResult:
    """Greedy fixpoint minimisation of ``expr`` under ``predicate``.

    The predicate is wrapped: any Python exception it raises (a
    type-wrong candidate crashing an evaluator, a free variable, ...)
    counts as "predicate does not hold", so candidate generation never
    needs to be type-aware.  The input expression is assumed to
    satisfy the predicate; the result always does.
    """

    def holds(candidate: Expr) -> bool:
        try:
            return bool(predicate(candidate))
        except Exception:  # noqa: BLE001 — any crash = not a repro
            return False

    original_size = expr_size(expr)
    attempts = 0
    accepted = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for path in preorder_paths(expr):
            if attempts >= max_attempts:
                break
            node = subexpr_at(expr, path)
            for candidate in candidates(node):
                if attempts >= max_attempts:
                    break
                attempts += 1
                trial = replace_at(expr, path, candidate)
                if holds(trial):
                    expr = trial
                    accepted += 1
                    improved = True
                    break
            if improved:
                break
    return ShrinkResult(
        expr=expr,
        original_size=original_size,
        final_size=expr_size(expr),
        accepted=accepted,
        attempts=attempts,
    )
