"""Seeded, reproducible program generation over the full AST surface.

Two front ends share one grammar:

* :func:`generate_case` — a pure ``random.Random`` generator used by
  the standalone fuzz engine.  Deterministic for a fixed seed (tested
  in ``tests/fuzz/test_gen.py``), no Hypothesis dependency, so
  ``python -m repro fuzz`` can run as a long-lived workload.
* The Hypothesis strategies (``int_exprs``, ``bool_exprs``,
  ``io_exprs``) used by the property tests — defined in
  :mod:`repro.fuzz.hyp` and re-exported lazily from here (PEP 562), so
  importing the fuzz engine never pulls Hypothesis in.

The generated space covers what ``tests/genexpr.py`` historically
omitted: ``Fix``-based recursion, string literals and string
primitives, ``UserError`` payloads, prelude calls, and IO programs
with ``catchIO``/``getException``.  Every program is closed relative
to the prelude environment and well-typed by construction.

One deliberate constraint: generated exception *handlers* (``catchIO``
handlers, ``getException`` consumers, ``mapException`` functions) are
exception-agnostic — they may force the exception value but never
branch on its identity.  Different strategies legitimately observe
different members of a denoted exception set (Section 3.5), so a
handler that printed the member's name would make cross-strategy
stdout incomparable and every such program a false positive.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PCon,
    PrimOp,
    PVar,
    PWild,
    Raise,
    Var,
    app_chain,
)

#: Nullary exception constructors the generator raises directly.
EXC_CONS: Tuple[str, ...] = ("DivideByZero", "Overflow", "PatternMatchFail")

#: Messages for ``UserError`` payloads (small pool keeps dedup useful).
USER_ERROR_MESSAGES: Tuple[str, ...] = ("Urk", "boom", "fuzz")

#: String literals fed to string primitives and ``putStr``.
STRING_POOL: Tuple[str, ...] = ("", "a", "ok", "fuzz")


def raise_con(name: str) -> Expr:
    """``raise C`` for a nullary exception constructor."""
    return Raise(Con(name, (), 0))


def raise_user_error(message: str) -> Expr:
    """``raise (UserError "message")``."""
    return Raise(Con("UserError", (Lit(message, "string"),), 1))


def if_bool(cond: Expr, then_e: Expr, else_e: Expr) -> Expr:
    """``if cond then then_e else else_e`` in flattened-case form."""
    return Case(
        cond,
        (Alt(PCon("True"), then_e), Alt(PCon("False"), else_e)),
    )


def bounded_countdown(
    fn_name: str, var: str, base: Expr, step: Expr, start: int
) -> Expr:
    """A guaranteed-terminating ``Fix`` shape::

        fix (\\fn -> \\var -> if var <= 0 then base
                              else step + fn (var - 1)) start

    ``base`` and ``step`` may themselves raise or diverge; the
    recursion itself is bounded by ``start``.
    """
    body = if_bool(
        PrimOp("<=", (Var(var), Lit(0, "int"))),
        base,
        PrimOp(
            "+",
            (
                step,
                App(Var(fn_name), PrimOp("-", (Var(var), Lit(1, "int")))),
            ),
        ),
    )
    return App(Fix(Lam(fn_name, Lam(var, body))), Lit(start, "int"))


#: Default probability that the ``Fix`` arm emits the tight knot.
KNOT_BIAS_DEFAULT = 0.15

#: Default probability that a ``case`` over Maybe omits its ``Nothing``
#: alternative (pattern-match failure, Section 2).
OMIT_NOTHING_DEFAULT = 0.2


@dataclass(frozen=True)
class GenWeights:
    """Bias knobs for coverage-guided generation (docs/FUZZING.md).

    The *default* instance is stream-compatible with the historical
    generator: every knob at its default makes the generator consume
    its ``random.Random`` exactly as it always has, so a seed pins the
    same program whether or not guidance is wired in.  Non-default
    knobs change the choice distribution (and hence the stream) — that
    is the point of guided mode.

    ``arms`` maps grammar-arm names to weight multipliers (absent
    means 1.0); the scalar knobs steer specific rare shapes:

    * ``knot_bias`` — probability the ``fix`` arm emits the tight
      knot (blackhole / detectable ⊥);
    * ``omit_nothing`` — probability a Maybe ``case`` drops its
      ``Nothing`` alternative (``PatternMatchFail``);
    * ``nested_catch`` — probability a ``catchIO`` body is itself
      another ``catchIO`` (catch-inside-catch);
    * ``shared_memo`` — weight of the shared-memoised-raise IO arm
      (a let-bound raising cell probed twice, so the second force is
      a §3.3 memoised re-raise) — the arm only exists when > 0;
    * ``io_bias`` — overrides ``GenConfig.io_fraction`` when set, so
      guidance can steer toward (or away from) IO cases;
    * ``div_zero_bias`` — probability a ``div``/``mod`` arm pins its
      divisor to literal ``0`` (a guaranteed §3.1 checked-primitive
      raise once both operands are demanded).  Boosting ``arm:arith``
      alone barely moves the prim-raise rate: random divisors are
      almost never zero, so the deficit-retarget path steers this
      knob instead.
    """

    arms: Tuple[Tuple[str, float], ...] = ()
    knot_bias: float = KNOT_BIAS_DEFAULT
    omit_nothing: float = OMIT_NOTHING_DEFAULT
    nested_catch: float = 0.0
    shared_memo: float = 0.0
    io_bias: Optional[float] = None
    div_zero_bias: float = 0.0

    def arm_weight(self, name: str) -> float:
        for arm, weight in self.arms:
            if arm == name:
                return weight
        return 1.0

    @property
    def is_default(self) -> bool:
        return self == GenWeights()

    def as_dict(self) -> dict:
        return {
            "arms": {name: weight for name, weight in self.arms},
            "knot_bias": self.knot_bias,
            "omit_nothing": self.omit_nothing,
            "nested_catch": self.nested_catch,
            "shared_memo": self.shared_memo,
            "io_bias": self.io_bias,
            "div_zero_bias": self.div_zero_bias,
        }

    @staticmethod
    def from_dict(raw: dict) -> "GenWeights":
        return GenWeights(
            arms=tuple(sorted(raw.get("arms", {}).items())),
            knot_bias=raw.get("knot_bias", KNOT_BIAS_DEFAULT),
            omit_nothing=raw.get("omit_nothing", OMIT_NOTHING_DEFAULT),
            nested_catch=raw.get("nested_catch", 0.0),
            shared_memo=raw.get("shared_memo", 0.0),
            io_bias=raw.get("io_bias"),
            div_zero_bias=raw.get("div_zero_bias", 0.0),
        )


@dataclass(frozen=True)
class GenConfig:
    """Size and feature knobs for the generator.

    ``io_fraction`` of cases are IO programs (performed through the
    executor and compared across strategies); the rest are pure
    ``Int``-typed expressions compared against the denotational
    reference.  Feature flags gate the corresponding grammar arms so a
    run can be narrowed when triaging.  ``weights`` biases the grammar
    for coverage-guided runs; the default is stream-compatible with
    the unweighted generator (see :class:`GenWeights`).
    """

    max_depth: int = 5
    io_fraction: float = 0.25
    allow_fix: bool = True
    allow_strings: bool = True
    allow_prelude: bool = True
    allow_io: bool = True
    allow_catch: bool = True
    stdin: str = "ab"
    weights: GenWeights = GenWeights()

    def pure_only(self) -> "GenConfig":
        return replace(self, allow_io=False, io_fraction=0.0)

    def as_dict(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "io_fraction": self.io_fraction,
            "allow_fix": self.allow_fix,
            "allow_strings": self.allow_strings,
            "allow_prelude": self.allow_prelude,
            "allow_io": self.allow_io,
            "allow_catch": self.allow_catch,
            "stdin": self.stdin,
            "weights": self.weights.as_dict(),
        }

    @staticmethod
    def from_dict(raw: dict) -> "GenConfig":
        return GenConfig(
            max_depth=raw.get("max_depth", 5),
            io_fraction=raw.get("io_fraction", 0.25),
            allow_fix=raw.get("allow_fix", True),
            allow_strings=raw.get("allow_strings", True),
            allow_prelude=raw.get("allow_prelude", True),
            allow_io=raw.get("allow_io", True),
            allow_catch=raw.get("allow_catch", True),
            stdin=raw.get("stdin", "ab"),
            weights=GenWeights.from_dict(raw.get("weights", {})),
        )


@dataclass(frozen=True)
class FuzzCase:
    """One generated program plus everything needed to reproduce it."""

    seed: int
    kind: str  # "pure" | "io"
    expr: Expr
    source: str
    stdin: str = ""

    def with_expr(self, expr: Expr, source: str) -> "FuzzCase":
        return FuzzCase(self.seed, self.kind, expr, source, self.stdin)


class _Gen:
    """The random-walk grammar.  All choices go through ``self.rng``
    so a seed pins the whole program."""

    def __init__(self, rng: random.Random, config: GenConfig) -> None:
        self.rng = rng
        self.config = config
        self.weights = config.weights
        self._arm_weights = dict(self.weights.arms)
        self._fresh = 0

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh}"

    def _pick(self, arms):
        """Choose one ``(name, fn)`` arm.  Unweighted runs use
        ``rng.choice`` — the historical single-``randrange`` stream —
        so default-weight generation is bit-identical to the
        pre-guidance generator; weighted runs draw once via
        ``rng.choices``."""
        if not self._arm_weights:
            return self.rng.choice(arms)[1]
        weights = [
            max(self._arm_weights.get(name, 1.0), 0.0)
            for name, _ in arms
        ]
        if not any(weights):
            return self.rng.choice(arms)[1]
        return self.rng.choices(arms, weights=weights, k=1)[0][1]

    # -- leaves ---------------------------------------------------------

    def int_leaf(self, env: Tuple[str, ...]) -> Expr:
        roll = self.rng.randrange(10)
        if env and roll < 3:
            return Var(self.rng.choice(env))
        if roll < 7:
            return Lit(self.rng.randint(-20, 20), "int")
        if roll == 7 and self.config.allow_strings:
            return raise_user_error(self.rng.choice(USER_ERROR_MESSAGES))
        if roll == 8 and self.config.allow_strings:
            return PrimOp("strLen", (self.string_expr(0),))
        return raise_con(self.rng.choice(EXC_CONS))

    def string_expr(self, depth: int) -> Expr:
        if depth <= 0 or self.rng.random() < 0.5:
            return Lit(self.rng.choice(STRING_POOL), "string")
        roll = self.rng.randrange(3)
        if roll == 0:
            return PrimOp(
                "strAppend",
                (self.string_expr(depth - 1), self.string_expr(depth - 1)),
            )
        if roll == 1:
            return PrimOp("showInt", (self.int_expr(depth - 1, ()),))
        return raise_con(self.rng.choice(EXC_CONS))

    # -- Int-typed expressions ------------------------------------------

    def int_expr(self, depth: int, env: Tuple[str, ...]) -> Expr:
        if depth <= 0:
            return self.int_leaf(env)
        arms = [
            ("arith", self._arm_arith),
            ("let", self._arm_let),
            ("beta", self._arm_beta),
            ("case_bool", self._arm_case_bool),
            ("case_pair", self._arm_case_pair),
            ("case_maybe", self._arm_case_maybe),
            ("case_list", self._arm_case_list),
            ("seq", self._arm_seq),
            ("leaf", self._arm_leafish),
        ]
        if self.config.allow_fix:
            arms.append(("fix", self._arm_fix))
        if self.config.allow_prelude:
            arms.append(("prelude", self._arm_prelude))
        if self.config.allow_strings:
            arms.append(("map_exception", self._arm_map_exception))
        return self._pick(arms)(depth, env)

    def _arm_leafish(self, depth: int, env: Tuple[str, ...]) -> Expr:
        return self.int_leaf(env)

    def _arm_arith(self, depth: int, env: Tuple[str, ...]) -> Expr:
        op = self.rng.choice(("+", "-", "*", "div", "mod"))
        lhs = self.int_expr(depth - 1, env)
        # The guard keeps the default RNG stream untouched: with the
        # knob at 0.0 no extra draw happens, so unguided seeds pin the
        # exact historical programs (GenWeights stream contract).
        bias = self.weights.div_zero_bias
        if (
            bias > 0.0
            and op in ("div", "mod")
            and self.rng.random() < bias
        ):
            return PrimOp(op, (lhs, Lit(0, "int")))
        return PrimOp(op, (lhs, self.int_expr(depth - 1, env)))

    def _arm_let(self, depth: int, env: Tuple[str, ...]) -> Expr:
        name = self.fresh("v")
        rhs = self.int_expr(depth - 1, env)
        body = self.int_expr(depth - 1, env + (name,))
        return Let(((name, rhs),), body)

    def _arm_beta(self, depth: int, env: Tuple[str, ...]) -> Expr:
        name = self.fresh("x")
        body = self.int_expr(depth - 1, env + (name,))
        arg = self.int_expr(depth - 1, env)
        return App(Lam(name, body), arg)

    def _arm_case_bool(self, depth: int, env: Tuple[str, ...]) -> Expr:
        return if_bool(
            self.bool_expr(depth - 1, env),
            self.int_expr(depth - 1, env),
            self.int_expr(depth - 1, env),
        )

    def _arm_case_pair(self, depth: int, env: Tuple[str, ...]) -> Expr:
        a, b = self.fresh("a"), self.fresh("b")
        scrut = Con(
            "Tuple2",
            (self.int_expr(depth - 1, env), self.int_expr(depth - 1, env)),
            2,
        )
        body = self.int_expr(depth - 1, env + (a, b))
        return Case(
            scrut, (Alt(PCon("Tuple2", (PVar(a), PVar(b))), body),)
        )

    def _arm_case_maybe(self, depth: int, env: Tuple[str, ...]) -> Expr:
        v = self.fresh("m")
        if self.rng.random() < 0.5:
            scrut = Con("Just", (self.int_expr(depth - 1, env),), 1)
        else:
            scrut = Con("Nothing", (), 0)
        just_body = self.int_expr(depth - 1, env + (v,))
        alts = [Alt(PCon("Just", (PVar(v),)), just_body)]
        # Occasionally omit the Nothing alternative so pattern-match
        # failure (a built-in cause of failure, Section 2) is exercised.
        if self.rng.random() < 1.0 - self.weights.omit_nothing:
            alts.append(
                Alt(PCon("Nothing"), self.int_expr(depth - 1, env))
            )
        return Case(scrut, tuple(alts))

    def _arm_case_list(self, depth: int, env: Tuple[str, ...]) -> Expr:
        h, t = self.fresh("h"), self.fresh("t")
        scrut = self.list_expr(depth - 1, env)
        alts = (
            Alt(PCon("Nil"), self.int_expr(depth - 1, env)),
            Alt(
                PCon("Cons", (PVar(h), PVar(t))),
                self.int_expr(depth - 1, env + (h,)),
            ),
        )
        return Case(scrut, alts)

    def _arm_seq(self, depth: int, env: Tuple[str, ...]) -> Expr:
        return PrimOp(
            "seq",
            (self.int_expr(depth - 1, env), self.int_expr(depth - 1, env)),
        )

    def _arm_fix(self, depth: int, env: Tuple[str, ...]) -> Expr:
        if self.rng.random() < self.weights.knot_bias:
            # The tight knot: denotationally ⊥, operationally a loop
            # (or a detectable blackhole).
            name = self.fresh("loop")
            return Let(
                ((name, PrimOp("+", (Var(name), Lit(1, "int")))),),
                Var(name),
            )
        return bounded_countdown(
            self.fresh("f"),
            self.fresh("n"),
            base=self.int_expr(depth - 2 if depth > 1 else 0, env),
            step=self.int_expr(depth - 2 if depth > 1 else 0, env),
            start=self.rng.randint(0, 6),
        )

    def _arm_prelude(self, depth: int, env: Tuple[str, ...]) -> Expr:
        roll = self.rng.randrange(4)
        if roll == 0:
            return App(Var("head"), self.list_expr(depth - 1, env))
        if roll == 1:
            return App(Var("sum"), self.list_expr(depth - 1, env))
        if roll == 2:
            return app_chain(
                Var("const"),
                self.int_expr(depth - 1, env),
                self.int_expr(depth - 1, env),
            )
        return App(Var("id"), self.int_expr(depth - 1, env))

    def _arm_map_exception(self, depth: int, env: Tuple[str, ...]) -> Expr:
        e = self.fresh("e")
        # Exception-agnostic mappers only (see module docstring).
        handler = self.rng.choice(
            (
                Lam(e, Var(e)),
                Lam(e, Con("Overflow", (), 0)),
                Lam(
                    e,
                    Con(
                        "UserError",
                        (Lit(self.rng.choice(USER_ERROR_MESSAGES),
                              "string"),),
                        1,
                    ),
                ),
            )
        )
        return PrimOp(
            "mapException", (handler, self.int_expr(depth - 1, env))
        )

    def list_expr(self, depth: int, env: Tuple[str, ...]) -> Expr:
        items = self.rng.randrange(4)
        out: Expr = Con("Nil", (), 0)
        for _ in range(items):
            head = self.int_expr(max(depth - 1, 0), env)
            out = Con("Cons", (head, out), 2)
        return out

    def bool_expr(self, depth: int, env: Tuple[str, ...]) -> Expr:
        roll = self.rng.randrange(4)
        if depth <= 0 or roll == 0:
            return Con(self.rng.choice(("True", "False")), (), 0)
        if roll == 1:
            return raise_con(self.rng.choice(EXC_CONS))
        op = self.rng.choice(("==", "<", "<=", ">", ">="))
        return PrimOp(
            op,
            (self.int_expr(depth - 1, env), self.int_expr(depth - 1, env)),
        )

    # -- IO-typed expressions -------------------------------------------

    def io_expr(self, depth: int, env: Tuple[str, ...]) -> Expr:
        if depth <= 0:
            return self.io_leaf(env)
        arms = [
            ("bind", self._io_arm_bind),
            ("putstr", self._io_arm_putstr),
            ("get_exception", self._io_arm_get_exception),
            ("io_leaf", self._io_arm_leafish),
        ]
        if self.config.allow_catch:
            arms.append(("catch", self._io_arm_catch))
        if self.weights.shared_memo > 0:
            arms.append(("shared_memo", self._io_arm_shared_memo))
        return self._pick(arms)(depth, env)

    def io_leaf(self, env: Tuple[str, ...]) -> Expr:
        roll = self.rng.randrange(4)
        if roll == 0:
            return PrimOp("returnIO", (self.int_leaf(env),))
        if roll == 1:
            return PrimOp("putStr", (Lit(self.rng.choice(STRING_POOL),
                                          "string"),))
        if roll == 2:
            return PrimOp(
                "ioError", (Con(self.rng.choice(EXC_CONS), (), 0),)
            )
        return PrimOp("returnIO", (Lit(self.rng.randint(-9, 9), "int"),))

    def _io_arm_leafish(self, depth: int, env: Tuple[str, ...]) -> Expr:
        return self.io_leaf(env)

    def _io_arm_bind(self, depth: int, env: Tuple[str, ...]) -> Expr:
        first = self.io_expr(depth - 1, env)
        v = self.fresh("r")
        rest = self.io_expr(depth - 1, env)
        if self.rng.random() < 0.4:
            # Force the delivered value before continuing (``seq`` on a
            # Unit/Int/String is always well-typed).
            rest = PrimOp("seq", (Var(v), rest))
        return PrimOp("bindIO", (first, Lam(v, rest)))

    def _io_arm_putstr(self, depth: int, env: Tuple[str, ...]) -> Expr:
        payload = self.rng.randrange(3)
        if payload == 0:
            text: Expr = Lit(self.rng.choice(STRING_POOL), "string")
        elif payload == 1:
            text = PrimOp("showInt", (self.int_expr(depth - 1, env),))
        else:
            text = self.string_expr(depth - 1)
        return PrimOp("putStr", (text,))

    def _io_arm_get_exception(
        self, depth: int, env: Tuple[str, ...]
    ) -> Expr:
        v, err, r = self.fresh("v"), self.fresh("err"), self.fresh("r")
        probe = self.int_expr(depth - 1, env)
        # Exception-agnostic consumer: print the OK payload, a constant
        # on Bad (never the member's name — see module docstring).
        consumer = Lam(
            r,
            Case(
                Var(r),
                (
                    Alt(
                        PCon("OK", (PVar(v),)),
                        PrimOp("putStr", (PrimOp("showInt", (Var(v),)),)),
                    ),
                    Alt(
                        PCon("Bad", (PVar(err),)),
                        PrimOp(
                            "seq",
                            (
                                Var(err),
                                PrimOp("putStr", (Lit("caught", "string"),)),
                            ),
                        ),
                    ),
                ),
            ),
        )
        return PrimOp(
            "bindIO", (PrimOp("getException", (probe,)), consumer)
        )

    def _io_arm_shared_memo(self, depth: int, env: Tuple[str, ...]) -> Expr:
        """A §3.3 memoised re-raise, by construction: one let-bound
        raising cell probed by two consecutive ``getException``s.  The
        first probe forces the cell (the raise is memoised into it);
        the second forces it again and the machine re-delivers the
        recorded exception without re-evaluation — the ``memo-reraise``
        event the coverage map hunts.  Both probes are
        exception-agnostic (module docstring), so every strategy
        prints the same output."""
        v, r1 = self.fresh("v"), self.fresh("r")
        if self.rng.random() < 0.5:
            rhs: Expr = raise_con(self.rng.choice(EXC_CONS))
        else:
            rhs = raise_user_error(self.rng.choice(USER_ERROR_MESSAGES))
        if self.rng.random() < 0.5:
            # Let the raising cell sit under a little arithmetic so the
            # force chain is non-trivial.
            rhs = PrimOp("+", (rhs, Lit(self.rng.randint(-5, 5), "int")))
        first = PrimOp("getException", (Var(v),))
        second = PrimOp(
            "bindIO",
            (
                PrimOp("getException", (Var(v),)),
                self._agnostic_exval_consumer(),
            ),
        )
        return Let(
            ((v, rhs),),
            PrimOp("bindIO", (first, Lam(r1, second))),
        )

    def _agnostic_exval_consumer(self) -> Expr:
        """An exception-agnostic ``ExVal`` consumer (see
        :meth:`_io_arm_get_exception` and the module docstring)."""
        v, err = self.fresh("v"), self.fresh("err")
        return Lam(
            v,
            Case(
                Var(v),
                (
                    Alt(
                        PCon("OK", (PVar(err),)),
                        PrimOp("putStr", (PrimOp("showInt", (Var(err),)),)),
                    ),
                    Alt(
                        PCon("Bad", (PWild(),)),
                        PrimOp("putStr", (Lit("caught", "string"),)),
                    ),
                ),
            ),
        )

    def _io_arm_catch(self, depth: int, env: Tuple[str, ...]) -> Expr:
        e = self.fresh("exc")
        if (
            self.weights.nested_catch > 0
            and depth > 1
            and self.rng.random() < self.weights.nested_catch
        ):
            # Catch-inside-catch: the rare handler shape sequential
            # disjunction desugars to (Kwon & Kang, PAPERS.md).
            body = self._io_arm_catch(depth - 1, env)
        else:
            body = self.io_expr(depth - 1, env)
        handler_roll = self.rng.randrange(3)
        if handler_roll == 0:
            handler: Expr = Lam(
                e, PrimOp("putStr", (Lit("handled", "string"),))
            )
        elif handler_roll == 1:
            handler = Lam(e, PrimOp("returnIO", (Lit(0, "int"),)))
        else:
            handler = Lam(
                e,
                PrimOp(
                    "seq",
                    (Var(e), PrimOp("returnIO", (Lit(1, "int"),))),
                ),
            )
        return PrimOp("catchIO", (body, handler))


def generate_expr(
    rng: random.Random, config: GenConfig, kind: str
) -> Expr:
    """One expression of the requested kind (``"pure"`` or ``"io"``)."""
    gen = _Gen(rng, config)
    if kind == "io":
        return gen.io_expr(config.max_depth, ())
    return gen.int_expr(config.max_depth, ())


def generate_case(
    seed: int, config: Optional[GenConfig] = None
) -> FuzzCase:
    """The program for ``seed`` — deterministic, side-effect free."""
    from repro.lang.pretty import pretty

    if config is None:
        config = GenConfig()
    rng = random.Random(seed)
    io_fraction = config.io_fraction
    if config.weights.io_bias is not None:
        io_fraction = config.weights.io_bias
    is_io = config.allow_io and rng.random() < io_fraction
    kind = "io" if is_io else "pure"
    expr = generate_expr(rng, config, kind)
    return FuzzCase(
        seed=seed,
        kind=kind,
        expr=expr,
        source=pretty(expr),
        stdin=config.stdin if is_io else "",
    )


_HYPOTHESIS_NAMES = ("int_exprs", "bool_exprs", "io_exprs", "string_exprs")


def __getattr__(name: str):
    """Lazy re-export of the Hypothesis strategies (PEP 562).

    ``from repro.fuzz.gen import int_exprs`` works wherever Hypothesis
    is installed, while the standalone engine never imports it.
    """
    if name in _HYPOTHESIS_NAMES:
        from repro.fuzz import hyp

        return getattr(hyp, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
