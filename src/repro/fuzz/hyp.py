"""Hypothesis strategies over the widened generator grammar.

Historically ``tests/genexpr.py`` held these; they now live beside the
standalone fuzz generator so there is exactly one grammar to maintain
(``tests/genexpr.py`` re-exports from :mod:`repro.fuzz.gen`).  Compared
with the historical strategies the space is wider: ``Fix``-based
bounded recursion, ``UserError`` payloads carrying string literals,
string primitives (``strLen``/``strAppend``/``showInt``) producing
``Int`` sub-terms, and IO programs wrapped in ``catchIO``.

Generated terms remain closed and well-typed-by-construction *without*
the prelude in scope — the soundness and transformation properties
evaluate them against empty environments — so exceptions are built
from raw ``Raise``/constructor nodes, never via prelude ``error``.

This module is the only place in ``repro.fuzz`` that imports
Hypothesis; the engine proper stays dependency-free.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.fuzz.gen import (
    EXC_CONS,
    STRING_POOL,
    USER_ERROR_MESSAGES,
    bounded_countdown,
    if_bool,
    raise_con,
    raise_user_error,
)
from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Lam,
    Let,
    Lit,
    PCon,
    PrimOp,
    PVar,
    Raise,
    Var,
)


@st.composite
def string_exprs(draw, depth: int = 2):
    """A String-typed expression (literal, append, show, or a raise)."""
    if depth <= 0:
        return Lit(draw(st.sampled_from(STRING_POOL)), "string")
    choice = draw(st.integers(min_value=0, max_value=3))
    if choice == 0:
        return Lit(draw(st.sampled_from(STRING_POOL)), "string")
    if choice == 1:
        left = draw(string_exprs(depth=depth - 1))
        right = draw(string_exprs(depth=depth - 1))
        return PrimOp("strAppend", (left, right))
    if choice == 2:
        return PrimOp("showInt", (draw(int_exprs(depth=depth - 1)),))
    return draw(st.sampled_from(EXC_CONS).map(raise_con))


@st.composite
def int_exprs(draw, depth: int = 4, env: tuple = ()):
    """An Int-typed expression; ``env`` lists Int variables in scope."""
    if depth <= 0:
        leaves = [
            st.integers(min_value=-20, max_value=20).map(
                lambda n: Lit(n, "int")
            )
        ]
        if env:
            leaves.append(st.sampled_from(env).map(Var))
        leaves.append(st.sampled_from(EXC_CONS).map(raise_con))
        leaves.append(
            st.sampled_from(USER_ERROR_MESSAGES).map(raise_user_error)
        )
        return draw(st.one_of(*leaves))
    choice = draw(st.integers(min_value=0, max_value=11))
    if choice <= 2:
        return draw(int_exprs(depth=0, env=env))
    if choice == 3:
        op = draw(st.sampled_from(["+", "-", "*", "div"]))
        left = draw(int_exprs(depth=depth - 1, env=env))
        right = draw(int_exprs(depth=depth - 1, env=env))
        return PrimOp(op, (left, right))
    if choice == 4:
        # let binding
        name = f"v{draw(st.integers(min_value=0, max_value=3))}_{depth}"
        rhs = draw(int_exprs(depth=depth - 1, env=env))
        body = draw(int_exprs(depth=depth - 1, env=env + (name,)))
        return Let(((name, rhs),), body)
    if choice == 5:
        # beta redex
        name = f"x{depth}"
        body = draw(int_exprs(depth=depth - 1, env=env + (name,)))
        arg = draw(int_exprs(depth=depth - 1, env=env))
        return App(Lam(name, body), arg)
    if choice == 6:
        # case on Bool
        cond = draw(bool_exprs(depth=depth - 1, env=env))
        then_e = draw(int_exprs(depth=depth - 1, env=env))
        else_e = draw(int_exprs(depth=depth - 1, env=env))
        return if_bool(cond, then_e, else_e)
    if choice == 7:
        # case on a pair
        name_a = f"a{depth}"
        name_b = f"b{depth}"
        fst = draw(int_exprs(depth=depth - 1, env=env))
        snd = draw(int_exprs(depth=depth - 1, env=env))
        body = draw(
            int_exprs(depth=depth - 1, env=env + (name_a, name_b))
        )
        return Case(
            Con("Tuple2", (fst, snd), 2),
            (Alt(PCon("Tuple2", (PVar(name_a), PVar(name_b))), body),),
        )
    if choice == 8:
        # seq
        first = draw(int_exprs(depth=depth - 1, env=env))
        second = draw(int_exprs(depth=depth - 1, env=env))
        return PrimOp("seq", (first, second))
    if choice == 9:
        # Fix: a bounded countdown whose base/step may themselves fail,
        # or (rarely) the tight diverging knot.
        if draw(st.booleans()):
            base = draw(int_exprs(depth=0, env=env))
            step = draw(int_exprs(depth=0, env=env))
            start = draw(st.integers(min_value=0, max_value=4))
            return bounded_countdown(
                f"f{depth}", f"n{depth}", base, step, start
            )
        return Let(
            (("loop_v", PrimOp("+", (Var("loop_v"), Lit(1, "int")))),),
            Var("loop_v"),
        )
    if choice == 10:
        # a string-derived Int
        return PrimOp("strLen", (draw(string_exprs(depth=depth - 1)),))
    return draw(int_exprs(depth=depth - 1, env=env))


@st.composite
def bool_exprs(draw, depth: int = 2, env: tuple = ()):
    choice = draw(st.integers(min_value=0, max_value=3))
    if depth <= 0 or choice == 0:
        return Con(draw(st.sampled_from(["True", "False"])), (), 0)
    if choice == 1:
        return draw(st.sampled_from(EXC_CONS).map(raise_con))
    op = draw(st.sampled_from(["==", "<", "<="]))
    left = draw(int_exprs(depth=depth - 1, env=env))
    right = draw(int_exprs(depth=depth - 1, env=env))
    return PrimOp(op, (left, right))


@st.composite
def io_exprs(draw, depth: int = 3):
    """An ``IO``-typed program, possibly wrapped in ``catchIO``.

    Handlers are exception-agnostic (they may ``seq`` the exception
    value, never branch on it) so observations stay comparable across
    strategies — the same constraint the standalone generator obeys.
    """
    if depth <= 0:
        leaf = draw(st.integers(min_value=0, max_value=2))
        if leaf == 0:
            return PrimOp(
                "returnIO",
                (Lit(draw(st.integers(min_value=-9, max_value=9)),
                     "int"),),
            )
        if leaf == 1:
            return PrimOp(
                "putStr", (Lit(draw(st.sampled_from(STRING_POOL)),
                               "string"),)
            )
        return PrimOp(
            "ioError", (Con(draw(st.sampled_from(EXC_CONS)), (), 0),)
        )
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return draw(io_exprs(depth=0))
    if choice == 1:
        first = draw(io_exprs(depth=depth - 1))
        rest = draw(io_exprs(depth=depth - 1))
        var = f"r{depth}"
        return PrimOp("bindIO", (first, Lam(var, rest)))
    if choice == 2:
        return PrimOp(
            "putStr",
            (PrimOp("showInt", (draw(int_exprs(depth=depth - 1)),)),),
        )
    if choice == 3:
        probe = draw(int_exprs(depth=depth - 1))
        var, err = f"v{depth}", f"e{depth}"
        consumer = Lam(
            var,
            Case(
                Var(var),
                (
                    Alt(
                        PCon("OK", (PVar(var + "k"),)),
                        PrimOp(
                            "putStr",
                            (PrimOp("showInt", (Var(var + "k"),)),),
                        ),
                    ),
                    Alt(
                        PCon("Bad", (PVar(err),)),
                        PrimOp("putStr", (Lit("caught", "string"),)),
                    ),
                ),
            ),
        )
        return PrimOp(
            "bindIO", (PrimOp("getException", (probe,)), consumer)
        )
    body = draw(io_exprs(depth=depth - 1))
    handler_kind = draw(st.integers(min_value=0, max_value=1))
    if handler_kind == 0:
        handler: Expr = Lam(
            "exc", PrimOp("putStr", (Lit("handled", "string"),))
        )
    else:
        handler = Lam("exc", PrimOp("returnIO", (Lit(0, "int"),)))
    return PrimOp("catchIO", (body, handler))
