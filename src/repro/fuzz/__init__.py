"""Differential fuzzing: mechanically hunting for disagreements.

The paper's central claim (Section 4.5) is that the imprecise
semantics validates a whole algebra of transformations that any
fixed-order semantics breaks.  This package checks the claim the
brute-force way: a seeded program generator (:mod:`repro.fuzz.gen`)
feeds a multi-way differential oracle (:mod:`repro.fuzz.oracle`) that
runs every program through the denotational semantics, the lazy
machine under several strategies, the explicit ``ExVal`` encoding and
the fixed-order baseline, classifying each pairwise outcome on the
lattice *agree* / *legal refinement* / *genuine divergence*.  Any
genuine divergence is minimised by a delta-debugging shrinker
(:mod:`repro.fuzz.shrink`) and persisted to a JSONL regression corpus
(:mod:`repro.fuzz.corpus`).  The whole loop is driven by
:mod:`repro.fuzz.engine` and exposed as ``python -m repro fuzz``.

The package is deliberately independent of pytest so it can run as a
long-lived workload; the Hypothesis strategies the property tests use
are re-exported lazily from :mod:`repro.fuzz.gen` (one generator, two
front ends).  See docs/FUZZING.md for the oracle lattice and a worked
triage session.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    append_entries,
    dedup_id,
    load_corpus,
    replay_corpus,
    replay_entry,
    write_corpus,
)
from repro.fuzz.engine import FuzzSummary, run_fuzz
from repro.fuzz.gen import FuzzCase, GenConfig, generate_case
from repro.fuzz.oracle import (
    AGREE,
    DIVERGENCE,
    Comparison,
    Observation,
    OracleConfig,
    OracleReport,
    REFINEMENT,
    SKIPPED,
    classify_transform_pair,
    divergence_predicate,
    run_oracle,
    transform_divergence_predicate,
)
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "AGREE",
    "Comparison",
    "CorpusEntry",
    "DIVERGENCE",
    "FuzzCase",
    "FuzzSummary",
    "GenConfig",
    "Observation",
    "OracleConfig",
    "OracleReport",
    "REFINEMENT",
    "SKIPPED",
    "ShrinkResult",
    "append_entries",
    "classify_transform_pair",
    "dedup_id",
    "divergence_predicate",
    "generate_case",
    "load_corpus",
    "replay_corpus",
    "replay_entry",
    "run_fuzz",
    "run_oracle",
    "shrink",
    "transform_divergence_predicate",
    "write_corpus",
]
