"""JSONL corpus persistence: dedup-by-shrunk-form and replay.

Every genuine divergence the engine finds is shrunk first and then
recorded as one JSON object per line.  The entry id is a hash of the
*shrunk* pretty-printed source, so re-discoveries of the same minimal
witness deduplicate across runs regardless of the seed that found
them.  Replaying a corpus re-parses each source, re-runs the full
oracle, and checks that the recorded verdict still holds — the
regression test in ``tests/fuzz/test_corpus_replay.py`` runs the
checked-in corpus on every CI build.

The format is append-friendly and diff-friendly::

    {"id": "9be9cbe0c96ae0b3", "source": "...", "kind": "pure",
     "stdin": "", "seed": 17, "verdict": "divergence",
     "lane": "machine:shuffled(seed=1)", "reason": "..."}
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional

from repro.fuzz.gen import FuzzCase
from repro.fuzz.oracle import OracleConfig, OracleReport, run_oracle


def dedup_id(source: str) -> str:
    """Stable id of a (shrunk) source form."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CorpusEntry:
    """One persisted finding (or planted regression seed)."""

    id: str
    source: str
    kind: str  # "pure" | "io"
    stdin: str
    seed: int
    verdict: str  # the oracle verdict replay must reproduce
    lane: str  # worst lane when recorded
    reason: str  # human classification note

    @staticmethod
    def from_report(report: OracleReport) -> "CorpusEntry":
        worst = report.worst_comparison
        return CorpusEntry(
            id=dedup_id(report.case.source),
            source=report.case.source,
            kind=report.case.kind,
            stdin=report.case.stdin,
            seed=report.case.seed,
            verdict=report.verdict,
            lane=worst.lane if worst else "",
            reason=worst.reason if worst else "",
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "CorpusEntry":
        raw = json.loads(line)
        return CorpusEntry(
            id=raw["id"],
            source=raw["source"],
            kind=raw.get("kind", "pure"),
            stdin=raw.get("stdin", ""),
            seed=int(raw.get("seed", 0)),
            verdict=raw["verdict"],
            lane=raw.get("lane", ""),
            reason=raw.get("reason", ""),
        )


def load_corpus(path: str) -> List[CorpusEntry]:
    entries: List[CorpusEntry] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(CorpusEntry.from_json(line))
    return entries


def write_corpus(path: str, entries: Iterable[CorpusEntry]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(entry.to_json() + "\n")


def append_entries(
    path: str, entries: Iterable[CorpusEntry]
) -> List[CorpusEntry]:
    """Append entries not already present (dedup by id); returns the
    ones actually written."""
    try:
        existing = {entry.id for entry in load_corpus(path)}
    except FileNotFoundError:
        existing = set()
    added: List[CorpusEntry] = []
    with open(path, "a", encoding="utf-8") as handle:
        for entry in entries:
            if entry.id in existing:
                continue
            handle.write(entry.to_json() + "\n")
            existing.add(entry.id)
            added.append(entry)
    return added


# -- replay --------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of re-running one corpus entry."""

    entry: CorpusEntry
    report: Optional[OracleReport]
    error: str = ""

    @property
    def matches(self) -> bool:
        return (
            self.report is not None
            and self.report.verdict == self.entry.verdict
        )

    def to_dict(self) -> dict:
        out = {
            "id": self.entry.id,
            "source": self.entry.source,
            "expected": self.entry.verdict,
            "observed": self.report.verdict if self.report else None,
            "matches": self.matches,
        }
        if self.error:
            out["error"] = self.error
        return out


def case_of_entry(entry: CorpusEntry) -> FuzzCase:
    """Recompile an entry's source into a runnable case."""
    from repro.api import compile_expr

    expr = compile_expr(entry.source)
    return FuzzCase(
        seed=entry.seed,
        kind=entry.kind,
        expr=expr,
        source=entry.source,
        stdin=entry.stdin,
    )


def replay_entry(
    entry: CorpusEntry,
    config: Optional[OracleConfig] = None,
    sink=None,
) -> ReplayResult:
    """Re-run one entry's oracle and compare against the recorded
    verdict."""
    try:
        case = case_of_entry(entry)
    except Exception as err:  # noqa: BLE001 — stale syntax is a finding
        return ReplayResult(entry, None, error=f"compile failed: {err}")
    report = run_oracle(case, config, sink)
    return ReplayResult(entry, report)


def replay_corpus(
    path: str,
    config: Optional[OracleConfig] = None,
    sink=None,
) -> List[ReplayResult]:
    return [
        replay_entry(entry, config, sink) for entry in load_corpus(path)
    ]
