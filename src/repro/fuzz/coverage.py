"""The feature map: what one fuzz iteration *exercised*, and how to
steer the generator toward what it didn't.

The paper's semantics is relational, so plain line coverage says
nothing useful about a differential fuzzer — two runs through the same
code can exercise entirely different *semantic* territory (a memoised
re-raise vs a first raise, an interrupt landing inside a force vs
between forces).  This module defines the territory explicitly: a
small, fixed table of **features** over

* the oracle verdict of the iteration (agree / refinement /
  divergence / skipped),
* the trace-event mix a per-case :class:`~repro.obs.sinks.CountingSink`
  observed (blackhole entry, memoised re-raise §3.3, checked-⊕ raise,
  exception-finding ``case`` mode §4.3),
* structural shapes of the generated program (``catchIO``,
  catch-inside-catch, ``mapException``, recursive knots, incomplete
  ``case`` alternatives), and
* an **interrupt probe**: a cheap re-run with an asynchronous
  exception scheduled at a small fixed step, recording whether the
  interrupt landed at all and whether it landed *during a force* — the
  Section 5.1 resumability path the uniform generator rarely holds
  open long enough to hit.

A :class:`CoverageMap` counts, per feature, how many iterations set
it.  :func:`weights_from_coverage` turns the rare features (hit rate
below a threshold) into :class:`~repro.fuzz.gen.GenWeights` knob
settings via each feature's declared ``targets`` — the deficit
feedback loop ``repro fuzz --guided`` runs every few iterations.

Everything here is deterministic: no clocks, no fresh randomness.
Given the same iterations in the same order, the map and the derived
weights are identical — the property the fleet's shard-determinism
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.excset import CONTROL_C
from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    PCon,
    PLit,
    PrimOp,
    Raise,
    Var,
)
from repro.obs.events import (
    ASYNC_INTERRUPT,
    BLACKHOLE_ENTER,
    CASE_EXCEPTION_MODE_ENTER,
    FORCE,
    FORCE_END,
    MEMO_RERAISE,
    PRIM_RAISE,
    RAISE,
)

#: Default hit-rate below which a feature counts as deficient.
DEFICIT_THRESHOLD = 0.05

#: Steering hysteresis: guided retargeting keeps a deficient feature's
#: boosts applied until its rate *comfortably* clears the reported
#: deficit bar.  Without the margin the feedback loop equilibrates
#: just below DEFICIT_THRESHOLD — each retarget that crosses the bar
#: switches the boost off, the rate decays, and the run ends a shade
#: under the threshold it was steering toward.
STEER_THRESHOLD = DEFICIT_THRESHOLD * 1.5

#: Steps the interrupt probe schedules ``ControlC`` at.  Small on
#: purpose: delivery halts evaluation, so each probe run costs at most
#: this many machine steps.  Two points — one early, one later — so
#: both shallow and deep force stacks get a chance to be interrupted.
PROBE_STEPS: Tuple[int, ...] = (7, 49)


@dataclass(frozen=True)
class FeatureSpec:
    """One row of the feature map.

    ``targets`` is the steering table: ``(knob, value)`` pairs applied
    by :func:`weights_from_coverage` when this feature is deficient.
    A knob is either a scalar :class:`~repro.fuzz.gen.GenWeights`
    field name (``knot_bias``, ``omit_nothing``, ``nested_catch``,
    ``shared_memo``, ``io_bias``, ``div_zero_bias``) or
    ``arm:<name>`` for a grammar-arm weight.  Values are merged by ``max`` so several deficits can pull
    the same knob without fighting.
    """

    name: str
    kind: str  # "verdict" | "event" | "struct" | "probe" | "lane"
    description: str
    targets: Tuple[Tuple[str, float], ...] = ()


_F = FeatureSpec

FEATURES: Dict[str, FeatureSpec] = {
    spec.name: spec
    for spec in (
        # -- oracle verdicts (never steered: they are outcomes) --------
        _F("verdict:agree", "verdict", "all lanes agreed exactly"),
        _F("verdict:refinement", "verdict",
           "some lane exercised the §4.5 refinement order"),
        _F("verdict:divergence", "verdict",
           "some lane broke the soundness contract"),
        _F("verdict:skipped", "verdict", "some lane could not run"),
        # -- trace-event mix ------------------------------------------
        _F("event:raise", "event", "an explicit raise trimmed the stack"),
        _F("event:prim-raise", "event",
           "a checked primitive (§3.1 ⊕) raised",
           # arm:arith alone cannot fix this deficit — random divisors
           # are almost never zero — so the retarget also pins a
           # fraction of div/mod divisors to literal 0.  0.6 because a
           # pinned divisor only fires when the division is actually
           # demanded and its left operand lands a value, which
           # discounts the per-case incidence roughly fourfold.
           targets=(("arm:arith", 2.0), ("div_zero_bias", 0.6))),
        _F("event:blackhole", "event",
           "a thunk under evaluation was re-entered (§5.2)",
           targets=(("knot_bias", 0.5), ("arm:fix", 3.0))),
        _F("event:memo-reraise", "event",
           "a raise-overwritten cell re-delivered its exception (§3.3)",
           targets=(("shared_memo", 1.0), ("io_bias", 0.7))),
        _F("event:case-exception-mode", "event",
           "case entered exception-finding mode (§4.3)",
           targets=(("arm:case_maybe", 2.0), ("arm:case_list", 2.0))),
        # -- structural shapes ----------------------------------------
        _F("struct:catch", "struct", "program contains catchIO",
           targets=(("arm:catch", 2.0), ("io_bias", 0.7))),
        _F("struct:catch-in-catch", "struct",
           "a catchIO nested inside another catchIO (the rare handler "
           "shape sequential-disjunction papers study)",
           targets=(("nested_catch", 0.6), ("arm:catch", 3.0),
                    ("io_bias", 0.7))),
        _F("struct:map-exception", "struct",
           "program contains mapException (§3.5)",
           targets=(("arm:map_exception", 2.0),)),
        _F("struct:knot", "struct",
           "recursive knot: fix, or a let binding referring to its own "
           "binding group",
           targets=(("knot_bias", 0.5), ("arm:fix", 2.0),
                    ("arm:let", 1.5))),
        _F("struct:incomplete-case", "struct",
           "a case whose alternatives provably miss a constructor "
           "(PatternMatchFail reachable, §2)",
           targets=(("omit_nothing", 0.6), ("arm:case_maybe", 2.0))),
        # -- interrupt probe ------------------------------------------
        _F("probe:interrupt", "probe",
           "the probe's ControlC landed before evaluation finished",
           targets=(("arm:fix", 1.5), ("arm:let", 1.5))),
        _F("probe:interrupt-during-force", "probe",
           "the probe's ControlC landed inside an in-flight force "
           "(§5.1 resumable-continuation path)",
           targets=(("knot_bias", 0.4), ("arm:fix", 2.0),
                    ("arm:seq", 1.5))),
        # -- lane disagreement classes --------------------------------
        _F("lane:warm-fork-disagree", "lane",
           "a warm-fork lane differed from cold start (serving parity "
           "contract violated — always a finding)"),
    )
}

#: Feature names in declaration order (the stable report order).
FEATURE_NAMES: Tuple[str, ...] = tuple(FEATURES)

_EVENT_FEATURES: Tuple[Tuple[str, str], ...] = (
    (RAISE, "event:raise"),
    (PRIM_RAISE, "event:prim-raise"),
    (BLACKHOLE_ENTER, "event:blackhole"),
    (MEMO_RERAISE, "event:memo-reraise"),
    (CASE_EXCEPTION_MODE_ENTER, "event:case-exception-mode"),
)

#: Constructor universes of the prelude data types the generator uses;
#: a case over one of these whose PCon alternatives cover a *strict
#: subset* (and has no catch-all) can raise PatternMatchFail.
_CON_UNIVERSE: Dict[str, frozenset] = {}
for _cons in (
    frozenset({"True", "False"}),
    frozenset({"Just", "Nothing"}),
    frozenset({"Cons", "Nil"}),
    frozenset({"Tuple2"}),
    frozenset({"OK", "Bad"}),
):
    for _name in _cons:
        _CON_UNIVERSE[_name] = _cons


# -- structural features --------------------------------------------------


def _children(expr: Expr) -> List[Expr]:
    if isinstance(expr, Lam):
        return [expr.body]
    if isinstance(expr, App):
        return [expr.fn, expr.arg]
    if isinstance(expr, Con):
        return list(expr.args)
    if isinstance(expr, Case):
        return [expr.scrutinee] + [alt.body for alt in expr.alts]
    if isinstance(expr, Raise):
        return [expr.exc]
    if isinstance(expr, PrimOp):
        return list(expr.args)
    if isinstance(expr, Fix):
        return [expr.fn]
    if isinstance(expr, Let):
        return [rhs for _, rhs in expr.binds] + [expr.body]
    return []


def _mentions(expr: Expr, names: Set[str]) -> bool:
    """Does any ``Var`` in ``expr`` refer to one of ``names``?  (No
    shadowing analysis: the generator's names are globally fresh, and
    for hand-written programs a shadowed false positive merely counts
    a knot that isn't one — coverage stays a heuristic, never an
    oracle.)"""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var) and node.name in names:
            return True
        stack.extend(_children(node))
    return False


def _case_incomplete(case: Case) -> bool:
    cons: Set[str] = set()
    literal_alts = 0
    for alt in case.alts:
        pattern = alt.pattern
        if isinstance(pattern, PCon):
            cons.add(pattern.name)
        elif isinstance(pattern, PLit):
            literal_alts += 1
        else:
            return False  # PVar / PWild catch-all: complete
    if literal_alts and not cons:
        return True  # literal universes are infinite
    if not cons:
        return False
    universe = _CON_UNIVERSE.get(next(iter(cons)))
    if universe is None:
        return False
    return cons < universe


def structural_features(expr: Expr) -> Set[str]:
    """The ``struct:*`` features of one program, by a single AST walk.
    ``catch_depth`` tracks enclosing ``catchIO`` nodes so nesting is
    detected wherever it occurs (body or handler)."""
    found: Set[str] = set()
    stack: List[Tuple[Expr, int]] = [(expr, 0)]
    while stack:
        node, catch_depth = stack.pop()
        child_depth = catch_depth
        if isinstance(node, PrimOp):
            if node.op == "catchIO":
                found.add("struct:catch")
                if catch_depth > 0:
                    found.add("struct:catch-in-catch")
                child_depth = catch_depth + 1
            elif node.op == "mapException":
                found.add("struct:map-exception")
        elif isinstance(node, Fix):
            found.add("struct:knot")
        elif isinstance(node, Let):
            bound = {name for name, _ in node.binds}
            if any(_mentions(rhs, bound) for _, rhs in node.binds):
                found.add("struct:knot")
        elif isinstance(node, Case):
            if _case_incomplete(node):
                found.add("struct:incomplete-case")
        for child in _children(node):
            stack.append((child, child_depth))
    return found


# -- the interrupt probe --------------------------------------------------


@dataclass
class ProbeResult:
    """What the interrupt probe observed for one case."""

    delivered: bool = False
    during_force: bool = False
    violations: List[str] = field(default_factory=list)

    def features(self) -> Set[str]:
        found: Set[str] = set()
        if self.delivered:
            found.add("probe:interrupt")
        if self.during_force:
            found.add("probe:interrupt-during-force")
        return found


class _ProbeSink:
    """Count force depth and capture it at the interrupt's delivery.

    ``FORCE_END`` runs in a ``finally`` *after* the interrupt unwinds
    through it, so the depth at delivery is exactly
    ``#force − #force-end`` at the moment ``async-interrupt`` fires.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.interrupted = False
        self.depth_at_interrupt = 0

    def emit(self, name: str, **fields) -> None:
        if name == FORCE:
            self.depth += 1
        elif name == FORCE_END:
            self.depth -= 1
        elif name == ASYNC_INTERRUPT:
            self.interrupted = True
            self.depth_at_interrupt = self.depth

    def close(self) -> None:
        pass


def interrupt_probe(
    expr: Expr,
    fuel: int = 200_000,
    steps: Tuple[int, ...] = PROBE_STEPS,
    backend: str = "ast",
) -> ProbeResult:
    """Re-run ``expr`` once per probe step with ``ControlC`` scheduled
    there, recording delivery, force-depth at delivery, and any
    soundness violation (a delivered interrupt whose outcome is not
    the interrupt itself — pure evaluation has no handler to convert
    it, exactly the chaos explorer's invariant at two fixed points).
    Cheap by construction: delivery halts the machine, so each run
    costs at most ``max(steps)`` ticks plus environment setup.
    """
    from repro.machine.eval import Machine
    from repro.machine.observe import Exceptional, observe
    from repro.prelude.loader import machine_env

    result = ProbeResult()
    for k in steps:
        sink = _ProbeSink()
        machine = Machine(
            fuel=fuel, event_plan={k: CONTROL_C}, sink=sink,
            backend=backend,
        )
        env = machine_env(machine)
        try:
            outcome = observe(expr, env=env, machine=machine)
        except RecursionError:
            continue
        if not sink.interrupted:
            continue  # evaluation finished before step k
        result.delivered = True
        if sink.depth_at_interrupt > 0:
            result.during_force = True
        if not (
            isinstance(outcome, Exceptional)
            and outcome.exc == CONTROL_C
        ):
            result.violations.append(
                f"step {k}: interrupt delivered but observed {outcome}"
            )
    return result


# -- feature extraction ---------------------------------------------------


def extract_features(
    report,
    counts: Optional[Dict[str, int]] = None,
    probe: Optional[ProbeResult] = None,
) -> Set[str]:
    """All features one iteration set: the oracle ``report``'s verdict
    and lane classes, the per-case sink ``counts`` (event deltas for
    this case only), the program's structure, and the probe result."""
    found: Set[str] = {f"verdict:{report.verdict}"}
    if counts:
        for event, feature in _EVENT_FEATURES:
            if counts.get(event, 0) > 0:
                found.add(feature)
    found |= structural_features(report.case.expr)
    for comparison in report.comparisons:
        if (comparison.lane.startswith("machine:warm-fork")
                and comparison.verdict != "agree"):
            found.add("lane:warm-fork-disagree")
    if probe is not None:
        found |= probe.features()
    return found


# -- the coverage map -----------------------------------------------------


class CoverageMap:
    """Per-feature hit counts over a run (or a merged fleet)."""

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {name: 0 for name in FEATURE_NAMES}
        self.iterations = 0

    def record(self, features: Iterable[str]) -> None:
        self.iterations += 1
        for feature in features:
            if feature in self.hits:
                self.hits[feature] += 1

    def merge(self, other: "CoverageMap") -> None:
        self.iterations += other.iterations
        for name, count in other.hits.items():
            self.hits[name] = self.hits.get(name, 0) + count

    def rate(self, name: str) -> float:
        if self.iterations == 0:
            return 0.0
        return self.hits.get(name, 0) / self.iterations

    def deficits(
        self, threshold: float = DEFICIT_THRESHOLD
    ) -> List[str]:
        """Steerable features hit by fewer than ``threshold`` of
        iterations, in declaration order."""
        return [
            name
            for name in FEATURE_NAMES
            if FEATURES[name].targets and self.rate(name) < threshold
        ]

    def as_dict(self) -> dict:
        return {
            "iterations": self.iterations,
            "hits": {name: self.hits.get(name, 0)
                     for name in FEATURE_NAMES},
        }

    @staticmethod
    def from_dict(raw: dict) -> "CoverageMap":
        cov = CoverageMap()
        cov.iterations = int(raw.get("iterations", 0))
        for name, count in raw.get("hits", {}).items():
            cov.hits[name] = int(count)
        return cov


# -- deficit feedback -----------------------------------------------------

_SCALAR_KNOBS = (
    "knot_bias", "omit_nothing", "nested_catch", "shared_memo",
    "io_bias", "div_zero_bias",
)


def weights_from_coverage(
    coverage: CoverageMap,
    base=None,
    threshold: float = STEER_THRESHOLD,
):
    """Fold the coverage deficits into a :class:`GenWeights`.

    Starting from ``base`` (default: the stream-compatible defaults),
    every deficient feature's targets are applied; scalar knobs and
    arm weights both merge by ``max``, so the result is independent of
    deficit order.  With no deficits the result *is* ``base`` — guided
    mode on a saturated map generates exactly the uniform stream.
    Steering uses :data:`STEER_THRESHOLD` (1.5× the reporting bar) so
    rates settle *above* :data:`DEFICIT_THRESHOLD`, not at it.
    """
    from repro.fuzz.gen import GenWeights

    if base is None:
        base = GenWeights()
    scalars: Dict[str, Optional[float]] = {
        knob: getattr(base, knob) for knob in _SCALAR_KNOBS
    }
    arms: Dict[str, float] = dict(base.arms)
    for name in coverage.deficits(threshold):
        for knob, value in FEATURES[name].targets:
            if knob.startswith("arm:"):
                arm = knob[4:]
                arms[arm] = max(arms.get(arm, 1.0), value)
            else:
                current = scalars.get(knob)
                scalars[knob] = value if current is None else max(
                    current, value
                )
    return GenWeights(
        arms=tuple(sorted(arms.items())),
        knot_bias=scalars["knot_bias"],
        omit_nothing=scalars["omit_nothing"],
        nested_catch=scalars["nested_catch"],
        shared_memo=scalars["shared_memo"],
        io_bias=scalars["io_bias"],
        div_zero_bias=scalars["div_zero_bias"],
    )
