"""The object language: a lazy mini-Haskell.

This package implements the surface language on which the paper's
semantics is defined.  The core expression forms (``Var``, ``Lit``,
``Lam``, ``App``, constructors, ``Case``, ``Raise``, primitives, ``Fix``)
mirror Figure 1 of the paper exactly; the parser additionally supports
convenience sugar (``let``, ``if``, operator syntax, multi-equation
function definitions, ``do`` notation) which desugars onto the core.
"""

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    DataDecl,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PCon,
    PLit,
    Pattern,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
)
from repro.lang.lexer import LexError, lex
from repro.lang.names import NameSupply, free_vars, substitute
from repro.lang.parser import ParseError, parse_expr, parse_program
from repro.lang.pretty import pretty

__all__ = [
    "Alt",
    "App",
    "Case",
    "Con",
    "DataDecl",
    "Expr",
    "Fix",
    "Lam",
    "Let",
    "LexError",
    "Lit",
    "NameSupply",
    "ParseError",
    "PCon",
    "PLit",
    "Pattern",
    "PrimOp",
    "Program",
    "PVar",
    "PWild",
    "Raise",
    "Var",
    "free_vars",
    "lex",
    "parse_expr",
    "parse_program",
    "pretty",
    "substitute",
]
