"""Token definitions for the lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# Token kinds:
#   IDENT   lower-case identifier
#   CONID   upper-case identifier (constructor / type name)
#   INT     integer literal
#   CHAR    character literal
#   STRING  string literal
#   OP      operator symbol (also backquoted identifiers `div`)
#   PUNCT   punctuation: ( ) [ ] { } , ; \ -> <- = | :: @
#   KEYWORD let in case of data do if then else raise fix where type
#   VLBRACE / VRBRACE / VSEMI   virtual layout tokens
#   EOF

KEYWORDS = frozenset(
    [
        "let",
        "in",
        "case",
        "of",
        "data",
        "do",
        "if",
        "then",
        "else",
        "raise",
        "fix",
        "where",
        "type",
    ]
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: Union[str, int]
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"
