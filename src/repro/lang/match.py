"""Pattern-match compilation: nested patterns -> flat cases.

The paper's core language (Figure 1) has flat patterns only
(``C x1 ... xn``).  The surface language allows nesting
(``f (Just (x:xs)) = ...``); this module compiles any ``Case`` whose
alternatives use nested patterns into a tree of flat cases, with
sequential match semantics and ``raise PatternMatchFail`` fall-through
(pattern-match failure is one of the paper's built-in failure causes,
Section 2).

The compiler is the standard column-wise matrix algorithm.  Fall-through
join points are bound in ``let``s (they are lazy, so the failure
continuation costs nothing unless reached), and an explicit default
alternative is omitted when a constructor group is exhaustive — this
matters for the exception-finding mode of Section 4.3, which explores
*every* alternative of a case on an exceptional scrutinee: a spurious
default would add a spurious ``PatternMatchFail`` to denotations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PLit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
    copy_span,
)
from repro.lang.names import NameSupply, bound_vars, free_vars, substitute
from repro.lang.parser import BUILTIN_CON_ARITY

# Sibling sets for the built-in data types, used to detect exhaustive
# matches.  User `data` declarations extend this via `sibling_map`.
BUILTIN_SIBLINGS: Dict[str, FrozenSet[str]] = {}
for _group in (
    ("True", "False"),
    ("Unit",),
    ("Nil", "Cons"),
    ("Nothing", "Just"),
    ("OK", "Bad"),
    ("Tuple2",),
    ("Tuple3",),
    ("Tuple4",),
    (
        "DivideByZero",
        "Overflow",
        "UserError",
        "PatternMatchFail",
        "NonTermination",
        "ControlC",
        "Timeout",
        "StackOverflow",
        "HeapOverflow",
    ),
):
    for _name in _group:
        BUILTIN_SIBLINGS[_name] = frozenset(_group)


def sibling_map(program: Optional[Program] = None) -> Dict[str, FrozenSet[str]]:
    """Constructor -> full set of constructors of its data type."""
    result = dict(BUILTIN_SIBLINGS)
    if program is not None:
        for decl in program.data_decls:
            names = frozenset(cname for cname, _ in decl.constructors)
            for cname, _ in decl.constructors:
                result[cname] = names
    return result


def _is_flat(pattern: Pattern) -> bool:
    if isinstance(pattern, (PVar, PWild, PLit)):
        return True
    if isinstance(pattern, PCon):
        return all(isinstance(p, (PVar, PWild)) for p in pattern.args)
    return False


def _fail() -> Expr:
    # A fresh node per use: fall-through raises may later be stamped
    # with the span of the case they belong to, so they must never be
    # shared between expressions (let alone globally).
    return Raise(Con("PatternMatchFail", (), 0))


_Row = Tuple[List[Pattern], Expr]


class _MatchCompiler:
    def __init__(
        self,
        siblings: Dict[str, FrozenSet[str]],
        arities: Dict[str, int],
        supply: NameSupply,
    ) -> None:
        self.siblings = siblings
        self.arities = arities
        self.supply = supply

    def compile_case(self, scrut: Expr, alts: Sequence[Alt]) -> Expr:
        if isinstance(scrut, Var):
            var = scrut.name
            wrap = lambda e: e  # noqa: E731
        else:
            var = self.supply.fresh("scrut")
            wrap = lambda e, v=var, s=scrut: Let(((v, s),), e)  # noqa: E731
        rows: List[_Row] = [([alt.pattern], alt.body) for alt in alts]
        return wrap(self.match([var], rows, _fail()))

    def match(
        self, vars_: List[str], rows: List[_Row], default: Expr
    ) -> Expr:
        if not rows:
            return default
        if not vars_:
            return rows[0][1]
        # Split into maximal runs of rows whose first column has the
        # same kind (variable-like vs constructor vs literal).
        runs: List[Tuple[str, List[_Row]]] = []
        for pats, body in rows:
            kind = (
                "var"
                if isinstance(pats[0], (PVar, PWild))
                else "lit"
                if isinstance(pats[0], PLit)
                else "con"
            )
            if runs and runs[-1][0] == kind:
                runs[-1][1].append((pats, body))
            else:
                runs.append((kind, [(pats, body)]))
        result = default
        for kind, run in reversed(runs):
            result = self._compile_run(kind, run, vars_, result)
        return result

    def _join(self, default: Expr, build):
        """Bind the failure continuation once if it is non-trivial."""
        if isinstance(default, (Var, Raise)):
            return build(default)
        name = self.supply.fresh("fail")
        return Let(((name, default),), build(Var(name)))

    def _compile_run(
        self, kind: str, run: List[_Row], vars_: List[str], default: Expr
    ) -> Expr:
        head, rest_vars = vars_[0], vars_[1:]
        if kind == "var":
            new_rows: List[_Row] = []
            for pats, body in run:
                first = pats[0]
                if isinstance(first, PVar):
                    body = substitute(body, {first.name: Var(head)})
                new_rows.append((pats[1:], body))
            return self.match(rest_vars, new_rows, default)
        if kind == "lit":
            def build_lit(join: Expr) -> Expr:
                groups: List[Tuple[PLit, List[_Row]]] = []
                for pats, body in run:
                    lit = pats[0]
                    assert isinstance(lit, PLit)
                    for existing, grp in groups:
                        if existing == lit:
                            grp.append((pats[1:], body))
                            break
                    else:
                        groups.append((lit, [(pats[1:], body)]))
                alts = tuple(
                    Alt(lit, self.match(rest_vars, grp, join))
                    for lit, grp in groups
                ) + (Alt(PWild(), join),)
                return Case(Var(head), alts)

            return self._join(default, build_lit)

        # constructor run
        def build_con(join: Expr) -> Expr:
            groups: List[Tuple[str, List[Tuple[List[Pattern], _Row]]]] = []
            for pats, body in run:
                con = pats[0]
                assert isinstance(con, PCon)
                subpats = list(con.args)
                for name, grp in groups:
                    if name == con.name:
                        grp.append((subpats, (pats[1:], body)))
                        break
                else:
                    groups.append((con.name, [(subpats, (pats[1:], body))]))
            alts: List[Alt] = []
            for name, grp in groups:
                arity = self.arities.get(
                    name, BUILTIN_CON_ARITY.get(name)
                )
                if arity is None:
                    arity = len(grp[0][0])
                fresh = [self.supply.fresh("m") for _ in range(arity)]
                sub_rows: List[_Row] = [
                    (subpats + pats, body)
                    for subpats, (pats, body) in grp
                ]
                alts.append(
                    Alt(
                        PCon(name, tuple(PVar(f) for f in fresh)),
                        self.match(fresh + rest_vars, sub_rows, join),
                    )
                )
            covered = frozenset(name for name, _ in groups)
            siblings = self.siblings.get(next(iter(covered)))
            exhaustive = siblings is not None and covered >= siblings
            if not exhaustive:
                alts.append(Alt(PWild(), join))
            return Case(Var(head), tuple(alts))

        return self._join(default, build_con)


def flatten_case_patterns(
    expr: Expr,
    siblings: Optional[Dict[str, FrozenSet[str]]] = None,
    arities: Optional[Dict[str, int]] = None,
    supply: Optional[NameSupply] = None,
) -> Expr:
    """Rewrite every ``Case`` with nested patterns into flat cases."""
    if siblings is None:
        siblings = BUILTIN_SIBLINGS
    if arities is None:
        arities = dict(BUILTIN_CON_ARITY)
    if supply is None:
        supply = NameSupply(avoid=free_vars(expr) | bound_vars(expr))
    compiler = _MatchCompiler(siblings, arities, supply)
    return _flatten(expr, compiler)


def _flatten(expr: Expr, compiler: _MatchCompiler) -> Expr:
    # Flattening rebuilds the tree; each rebuilt node inherits the span
    # of the node it replaces so raise provenance survives desugaring.
    return copy_span(_flatten_node(expr, compiler), expr)


def _flatten_node(expr: Expr, compiler: _MatchCompiler) -> Expr:
    if isinstance(expr, (Var, Lit)):
        return expr
    if isinstance(expr, Lam):
        return Lam(expr.var, _flatten(expr.body, compiler))
    if isinstance(expr, App):
        return App(_flatten(expr.fn, compiler), _flatten(expr.arg, compiler))
    if isinstance(expr, Con):
        return Con(
            expr.name,
            tuple(_flatten(a, compiler) for a in expr.args),
            expr.arity,
        )
    if isinstance(expr, Case):
        scrut = _flatten(expr.scrutinee, compiler)
        alts = tuple(
            copy_span(Alt(alt.pattern, _flatten(alt.body, compiler)), alt)
            for alt in expr.alts
        )
        if all(_is_flat(alt.pattern) for alt in alts):
            return Case(scrut, alts)
        return compiler.compile_case(scrut, alts)
    if isinstance(expr, Raise):
        return Raise(_flatten(expr.exc, compiler))
    if isinstance(expr, PrimOp):
        return PrimOp(
            expr.op, tuple(_flatten(a, compiler) for a in expr.args)
        )
    if isinstance(expr, Fix):
        return Fix(_flatten(expr.fn, compiler))
    if isinstance(expr, Let):
        return Let(
            tuple(
                (name, _flatten(rhs, compiler)) for name, rhs in expr.binds
            ),
            _flatten(expr.body, compiler),
        )
    raise TypeError(f"flatten: unknown expression {expr!r}")


def flatten_program(program: Program) -> Program:
    """Flatten every top-level binding of a program."""
    siblings = sibling_map(program)
    arities = dict(BUILTIN_CON_ARITY)
    for decl in program.data_decls:
        for cname, cargs in decl.constructors:
            arities[cname] = len(cargs)
    binds = tuple(
        (name, flatten_case_patterns(rhs, siblings, arities))
        for name, rhs in program.binds
    )
    return Program(program.data_decls, binds, program.type_sigs)
