"""Pretty-printer for the object language.

The output is valid surface syntax: ``parse_expr(pretty(e))`` is
alpha-equivalent to ``e`` (a property test in
``tests/lang/test_roundtrip.py`` checks exactly this).  Blocks are
printed with explicit braces and semicolons so the output is immune to
layout ambiguity.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.ast import (
    App,
    Case,
    Con,
    DataDecl,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PLit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Var,
    unfold_lam,
)
from repro.lang.ops import OPERATORS, PRIM_TABLE

# Inverse of the operator table, for printing PrimOps infix.
_PRIM_TO_OP: Dict[str, str] = {}
for _op, (_prec, _assoc, _target) in OPERATORS.items():
    _kind, _, _name = _target.partition(":")
    if _kind == "prim" and _name not in _PRIM_TO_OP:
        _PRIM_TO_OP[_name] = _op

# Precedence levels for printing: atom = 11, application = 10,
# operators use their table precedence, lambda/let/case = 0.
_ATOM = 11
_APP = 10


def _escape_string(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )


def _escape_char(ch: str) -> str:
    return {"\n": "\\n", "\t": "\\t", "\\": "\\\\", "'": "\\'"}.get(ch, ch)


def pretty_pattern(pattern: Pattern, prec: int = 0) -> str:
    if isinstance(pattern, PVar):
        return pattern.name
    if isinstance(pattern, PWild):
        return "_"
    if isinstance(pattern, PLit):
        if pattern.kind == "char":
            return f"'{_escape_char(str(pattern.value))}'"
        return str(pattern.value)
    if isinstance(pattern, PCon):
        if not pattern.args:
            return pattern.name
        inner = " ".join(pretty_pattern(p, _ATOM) for p in pattern.args)
        text = f"{pattern.name} {inner}"
        return f"({text})" if prec >= _APP else text
    raise TypeError(f"pretty_pattern: unknown pattern {pattern!r}")


def pretty(expr: Expr, prec: int = 0) -> str:
    """Render an expression as parseable surface syntax."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Lit):
        if expr.kind == "string":
            return f'"{_escape_string(str(expr.value))}"'
        if expr.kind == "char":
            return f"'{_escape_char(str(expr.value))}'"
        value = int(expr.value)
        if value < 0:
            text = str(value)
            return f"({text})" if prec >= _APP else text
        return str(value)
    if isinstance(expr, Lam):
        params, body = unfold_lam(expr)
        text = f"\\{' '.join(params)} -> {pretty(body)}"
        return f"({text})" if prec > 0 else text
    if isinstance(expr, App):
        text = f"{pretty(expr.fn, _APP - 1)} {pretty(expr.arg, _APP)}"
        return f"({text})" if prec >= _APP else text
    if isinstance(expr, Con):
        if not expr.args:
            return expr.name
        inner = " ".join(pretty(a, _APP) for a in expr.args)
        text = f"{expr.name} {inner}"
        return f"({text})" if prec >= _APP else text
    if isinstance(expr, Case):
        alts = "; ".join(
            f"{pretty_pattern(alt.pattern)} -> {pretty(alt.body)}"
            for alt in expr.alts
        )
        text = f"case {pretty(expr.scrutinee)} of {{ {alts} }}"
        return f"({text})" if prec > 0 else text
    if isinstance(expr, Raise):
        text = f"raise {pretty(expr.exc, _ATOM)}"
        return f"({text})" if prec >= _APP else text
    if isinstance(expr, Fix):
        text = f"fix {pretty(expr.fn, _ATOM)}"
        return f"({text})" if prec >= _APP else text
    if isinstance(expr, PrimOp):
        op = _PRIM_TO_OP.get(expr.op)
        if op is not None and len(expr.args) == 2:
            op_prec, assoc, _target = OPERATORS[op]
            left_prec = op_prec if assoc == "left" else op_prec + 1
            right_prec = op_prec if assoc == "right" else op_prec + 1
            symbol = op  # backquoted ops print as written: `div`
            text = (
                f"{pretty(expr.args[0], left_prec)} {symbol} "
                f"{pretty(expr.args[1], right_prec)}"
            )
            return f"({text})" if prec > op_prec else text
        if not expr.args:
            return expr.op
        inner = " ".join(pretty(a, _APP) for a in expr.args)
        text = f"{expr.op} {inner}"
        return f"({text})" if prec >= _APP else text
    if isinstance(expr, Let):
        binds = "; ".join(
            f"{name} = {pretty(rhs)}" for name, rhs in expr.binds
        )
        text = f"let {{ {binds} }} in {pretty(expr.body)}"
        return f"({text})" if prec > 0 else text
    raise TypeError(f"pretty: unknown expression {expr!r}")


def pretty_data_decl(decl: DataDecl) -> str:
    def syn_type(t: object, prec: int = 0) -> str:
        from repro.lang.syntax_types import STCon, STFun, STVar

        if isinstance(t, STVar):
            return t.name
        if isinstance(t, STCon):
            if not t.args:
                return t.name
            inner = " ".join(syn_type(a, 1) for a in t.args)
            text = f"{t.name} {inner}"
            return f"({text})" if prec > 0 else text
        if isinstance(t, STFun):
            text = f"{syn_type(t.arg, 1)} -> {syn_type(t.result)}"
            return f"({text})" if prec > 0 else text
        return str(t)

    cons = " | ".join(
        name + "".join(f" {syn_type(arg, 1)}" for arg in args)
        for name, args in decl.constructors
    )
    params = "".join(f" {p}" for p in decl.params)
    return f"data {decl.name}{params} = {cons}"


def pretty_program(program: Program) -> str:
    """Render a whole module, one declaration per line."""
    lines = [pretty_data_decl(d) for d in program.data_decls]
    lines.extend(
        f"{name} = {pretty(rhs)}" for name, rhs in program.binds
    )
    return "\n".join(lines) + "\n"
