"""Syntactic (unelaborated) types, as written in source programs.

These are produced by the parser for ``data`` declarations and type
signatures; :mod:`repro.types` elaborates them into semantic types.
Keeping them separate avoids a dependency cycle between the parser and
the type checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class SynType:
    __slots__ = ()


@dataclass(frozen=True)
class STVar(SynType):
    name: str


@dataclass(frozen=True)
class STCon(SynType):
    """A type constructor applied to arguments: ``Maybe a``, ``Int``,
    ``List a`` (written ``[a]``), ``TupleN a b ...``, ``IO a``."""

    name: str
    args: Tuple[SynType, ...] = ()


@dataclass(frozen=True)
class STFun(SynType):
    arg: SynType
    result: SynType
