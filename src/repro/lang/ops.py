"""The primitive operation table.

Primitives are the operations the denotational semantics treats
specially (Section 4.2 gives ``+`` as the representative example; the
others follow the same two-clause scheme: combine normal values when
both arguments are normal, union the exception sets otherwise).

``seq`` is the paper's Section 3.2 mechanism for forcing values out of
lazy structures; its semantics is that of ``case a of _ -> b``, i.e. the
branch exceptions are unioned in exception-finding mode.

IO primitives (``returnIO``, ``bindIO``, ``getChar``, ``putChar``,
``putStr``, ``getException``, ``randomRIO``) construct IO-action values;
they are interpreted by :mod:`repro.io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# Two's-complement bounds used by the paper's overflow-checking addition
# (Section 4.2: -2^31 < v1 + v2 < 2^31).
INT_MIN = -(2 ** 31)
INT_MAX = 2 ** 31


@dataclass(frozen=True)
class PrimInfo:
    """Static description of one primitive.

    ``strict_in`` lists the argument positions the primitive evaluates
    (all strict primitives union exception sets over those positions).
    ``is_io`` marks primitives whose result is an IO action.
    ``commutes`` marks binary primitives that are semantically
    commutative under the imprecise semantics (used by E3).
    """

    name: str
    arity: int
    strict_in: Tuple[int, ...]
    is_io: bool = False
    commutes: bool = False


_PRIMS = [
    # arithmetic
    PrimInfo("+", 2, (0, 1), commutes=True),
    PrimInfo("-", 2, (0, 1)),
    PrimInfo("*", 2, (0, 1), commutes=True),
    PrimInfo("div", 2, (0, 1)),
    PrimInfo("mod", 2, (0, 1)),
    PrimInfo("negate", 1, (0,)),
    # comparison (on integers and characters)
    PrimInfo("==", 2, (0, 1), commutes=True),
    PrimInfo("/=", 2, (0, 1), commutes=True),
    PrimInfo("<", 2, (0, 1)),
    PrimInfo("<=", 2, (0, 1)),
    PrimInfo(">", 2, (0, 1)),
    PrimInfo(">=", 2, (0, 1)),
    # strings
    PrimInfo("strAppend", 2, (0, 1)),
    PrimInfo("strLen", 1, (0,)),
    PrimInfo("showInt", 1, (0,)),
    PrimInfo("ord", 1, (0,)),
    PrimInfo("chr", 1, (0,)),
    # unchecked arithmetic: used by the explicit ExVal encoding
    # (repro.encoding), whose whole point is that failures are ordinary
    # values — so its primitives must never raise.  udiv/umod require a
    # non-zero divisor (the encoding emits an explicit guard).
    PrimInfo("uadd", 2, (0, 1), commutes=True),
    PrimInfo("usub", 2, (0, 1)),
    PrimInfo("umul", 2, (0, 1), commutes=True),
    PrimInfo("udiv", 2, (0, 1)),
    PrimInfo("umod", 2, (0, 1)),
    PrimInfo("unegate", 1, (0,)),
    # forcing
    PrimInfo("seq", 2, (0,)),
    # exceptions (pure layer)
    PrimInfo("mapException", 2, ()),
    # IO layer — these build IO actions lazily, so they are non-strict
    PrimInfo("returnIO", 1, (), is_io=True),
    PrimInfo("bindIO", 2, (), is_io=True),
    PrimInfo("getChar", 0, (), is_io=True),
    PrimInfo("putChar", 1, (), is_io=True),
    PrimInfo("putStr", 1, (), is_io=True),
    PrimInfo("getException", 1, (), is_io=True),
    PrimInfo("ioError", 1, (), is_io=True),
    # Extension (not in the paper; the direction its Section 6
    # comparison points at, adopted by the 2001 follow-up work):
    # handle exceptions escaping from an IO *action*.
    PrimInfo("catchIO", 2, (), is_io=True),
    # Concurrency extension (Section 4.4: "scales to other extensions,
    # such as adding concurrency to the language [16]" — Concurrent
    # Haskell).  Interpreted by repro.io.concurrent.
    PrimInfo("forkIO", 1, (), is_io=True),
    PrimInfo("newMVar", 1, (), is_io=True),
    PrimInfo("newEmptyMVar", 0, (), is_io=True),
    PrimInfo("takeMVar", 1, (), is_io=True),
    PrimInfo("putMVar", 2, (), is_io=True),
    PrimInfo("yieldIO", 0, (), is_io=True),
]

PRIM_TABLE: Dict[str, PrimInfo] = {p.name: p for p in _PRIMS}


def prim_info(name: str) -> PrimInfo:
    try:
        return PRIM_TABLE[name]
    except KeyError:
        raise KeyError(f"unknown primitive: {name!r}") from None


def is_prim(name: str) -> bool:
    return name in PRIM_TABLE


# Surface-syntax operator table: (precedence, associativity, target).
# Associativity: "left" | "right" | "none".  The target is either a
# primitive name ("prim:NAME"), a prelude function ("var:NAME") or a
# constructor ("con:NAME").
OPERATORS: Dict[str, Tuple[int, str, str]] = {
    "$": (0, "right", "var:apply"),
    ">>=": (1, "left", "prim:bindIO"),
    ">>": (1, "left", "var:thenIO"),
    "||": (2, "right", "var:or"),
    "&&": (3, "right", "var:and"),
    "==": (4, "none", "prim:=="),
    "/=": (4, "none", "prim:/="),
    "<": (4, "none", "prim:<"),
    "<=": (4, "none", "prim:<="),
    ">": (4, "none", "prim:>"),
    ">=": (4, "none", "prim:>="),
    ":": (5, "right", "con:Cons"),
    "++": (5, "right", "var:append"),
    "+": (6, "left", "prim:+"),
    "-": (6, "left", "prim:-"),
    "*": (7, "left", "prim:*"),
    "`div`": (7, "left", "prim:div"),
    "`mod`": (7, "left", "prim:mod"),
    ".": (9, "right", "var:compose"),
}

OP_SYMBOLS = sorted(
    (op for op in OPERATORS if not op.startswith("`")),
    key=len,
    reverse=True,
)
