"""Recursive-descent parser for the object language.

Produces the core AST of :mod:`repro.lang.ast`.  Sugar handled here:

* ``if c then t else e``      ->  ``case c of {True -> t; False -> e}``
* operator syntax             ->  ``PrimOp`` / prelude calls / ``Con``
* list literals ``[a,b]``     ->  ``Cons a (Cons b Nil)``
* tuples ``(a, b)``           ->  ``Tuple2 a b`` (up to ``Tuple4``)
* multi-equation definitions  ->  one lambda + ``case`` with sequential
                                  match and ``raise PatternMatchFail``
                                  fall-through (Section 2's built-in
                                  pattern-match failure)
* ``do`` notation             ->  ``bindIO`` chains (Section 3.5's IO
                                  monad)
* operator sections ``(+)``   ->  eta-expanded lambdas

Constructor references start unsaturated; :func:`saturate` eta-expands
them using declared arities so that every ``Con`` node downstream is
fully applied (the form the denotational semantics of Section 4.2 is
defined on).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    DataDecl,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PLit,
    PrimOp,
    Program,
    PVar,
    PWild,
    Raise,
    Span,
    Var,
    app_chain,
    copy_span,
    lam_chain,
    pattern_vars,
    with_span,
)
from repro.lang.lexer import lex
from repro.lang.names import NameSupply, free_vars
from repro.lang.ops import OPERATORS, PRIM_TABLE
from repro.lang.syntax_types import STCon, STFun, STVar, SynType
from repro.lang.tokens import Token

# Arities of the constructors that are baked into the language (the
# prelude re-declares the data types for the type checker, but the
# parser needs arities even when parsing expressions stand-alone).
BUILTIN_CON_ARITY: Dict[str, int] = {
    "True": 0,
    "False": 0,
    "Unit": 0,
    "Nil": 0,
    "Cons": 2,
    "Nothing": 0,
    "Just": 1,
    "OK": 1,
    "Bad": 1,
    "Tuple2": 2,
    "Tuple3": 3,
    "Tuple4": 4,
    # data Exception (Section 3.1, extended with the asynchronous
    # constructors of Section 5.1 and NonTermination of Section 4.1)
    "DivideByZero": 0,
    "Overflow": 0,
    "UserError": 1,
    "PatternMatchFail": 0,
    "NonTermination": 0,
    "ControlC": 0,
    "Timeout": 0,
    "StackOverflow": 0,
    "HeapOverflow": 0,
}


from dataclasses import dataclass as _dataclass


@_dataclass(frozen=True)
class _Rhs:
    """A parsed right-hand side: guard alternatives plus where-binds.

    ``guards`` is a non-empty tuple of ``(guard, body)`` pairs; a
    ``None`` guard is an unguarded ``=`` (always taken).
    """

    guards: Tuple[Tuple[Optional[Expr], Expr], ...]
    where_binds: Tuple[Tuple[str, Expr], ...] = ()


class ParseError(Exception):
    def __init__(self, message: str, token: Optional[Token] = None) -> None:
        if token is not None:
            message = f"{token.line}:{token.col}: {message} (at {token.value!r})"
        super().__init__(message)


class _TokenStream:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}", self.peek())
        return self.next()

    def skip_semis(self) -> None:
        while self.at("VSEMI") or self.at("PUNCT", ";"):
            self.next()


class _Parser:
    def __init__(
        self, tokens: List[Token], unit: Optional[str] = None
    ) -> None:
        self.ts = _TokenStream(tokens)
        self.supply = NameSupply()
        # Compilation unit stamped into every span this parse builds
        # (None for user input; "prelude" for the prelude, etc.) —
        # see repro.lang.units.
        self.unit = unit

    # ------------------------------------------------------------------
    # Programs

    def parse_program(self) -> Program:
        data_decls: List[DataDecl] = []
        sigs: List[Tuple[str, SynType]] = []
        # name -> list of (patterns, rhs) clauses, in source order
        clauses: Dict[str, List[Tuple[List[Pattern], Expr]]] = {}
        order: List[str] = []
        ts = self.ts
        ts.skip_semis()
        while not ts.at("EOF"):
            if ts.at("KEYWORD", "data"):
                data_decls.append(self._data_decl())
            elif ts.at("KEYWORD", "type"):
                self._type_synonym_decl()  # parsed and ignored
            elif ts.at("IDENT") and ts.peek(1).kind == "PUNCT" and ts.peek(
                1
            ).value == "::":
                name = ts.next().value
                ts.next()  # ::
                sigs.append((str(name), self._type()))
            elif ts.at("IDENT") or ts.at("PUNCT", "("):
                name, pats, rhs = self._equation()
                if name not in clauses:
                    clauses[name] = []
                    order.append(name)
                clauses[name].append((pats, rhs))
            else:
                raise ParseError("expected a declaration", ts.peek())
            if not ts.at("EOF"):
                if ts.at("VSEMI") or ts.at("PUNCT", ";") or ts.at("VRBRACE"):
                    ts.skip_semis()
                    while ts.at("VRBRACE"):
                        ts.next()
                        ts.skip_semis()
                else:
                    raise ParseError(
                        "expected end of declaration", ts.peek()
                    )
        binds = tuple(
            (name, self._compile_clauses(name, clauses[name]))
            for name in order
        )
        return Program(tuple(data_decls), binds, tuple(sigs))

    def _data_decl(self) -> DataDecl:
        ts = self.ts
        ts.expect("KEYWORD", "data")
        name = str(ts.expect("CONID").value)
        params: List[str] = []
        while ts.at("IDENT"):
            params.append(str(ts.next().value))
        ts.expect("PUNCT", "=")
        constructors: List[Tuple[str, Tuple[SynType, ...]]] = []
        while True:
            cname = str(ts.expect("CONID").value)
            cargs: List[SynType] = []
            while self._at_atype_start():
                cargs.append(self._atype())
            constructors.append((cname, tuple(cargs)))
            if ts.at("PUNCT", "|"):
                ts.next()
            else:
                break
        return DataDecl(name, tuple(params), tuple(constructors))

    def _type_synonym_decl(self) -> None:
        ts = self.ts
        ts.expect("KEYWORD", "type")
        ts.expect("CONID")
        while ts.at("IDENT"):
            ts.next()
        ts.expect("PUNCT", "=")
        self._type()

    def _equation(self) -> Tuple[str, List[Pattern], "_Rhs"]:
        """Parse one equation: patterns, guards (``| g = e`` chains)
        and an optional ``where`` block."""
        ts = self.ts
        name = str(ts.expect("IDENT").value)
        pats: List[Pattern] = []
        while not (ts.at("PUNCT", "=") or ts.at("PUNCT", "|")):
            pats.append(self._apattern())
        guards: List[Tuple[Optional[Expr], Expr]] = []
        if ts.at("PUNCT", "|"):
            while ts.at("PUNCT", "|"):
                ts.next()
                guard = self.parse_expr()
                ts.expect("PUNCT", "=")
                guards.append((guard, self.parse_expr()))
        else:
            ts.expect("PUNCT", "=")
            guards.append((None, self.parse_expr()))
        where_binds: Tuple[Tuple[str, Expr], ...] = ()
        if ts.at("KEYWORD", "where"):
            ts.next()
            where_binds = self._where_block()
        return name, pats, _Rhs(tuple(guards), where_binds)

    def _where_block(self) -> Tuple[Tuple[str, Expr], ...]:
        """A block of equations after ``where``."""
        ts = self.ts
        self._open_block()
        clauses: Dict[str, List[Tuple[List[Pattern], _Rhs]]] = {}
        order: List[str] = []
        while True:
            ts.skip_semis()
            if self._close_block_if_done():
                break
            name, pats, rhs = self._equation()
            if name not in clauses:
                clauses[name] = []
                order.append(name)
            clauses[name].append((pats, rhs))
            if not (ts.at("VSEMI") or ts.at("PUNCT", ";")):
                self._close_block()
                break
        return tuple(
            (name, self._compile_clauses(name, clauses[name]))
            for name in order
        )

    def _clause_body(self, rhs: "_Rhs", fallthrough: Expr) -> Expr:
        """One clause's right-hand side: guards test in order, falling
        through to ``fallthrough``; where-bindings scope over guards
        and bodies alike."""
        body = fallthrough
        for guard, expr in reversed(rhs.guards):
            if guard is None:
                body = expr
            else:
                body = Case(
                    guard,
                    (
                        Alt(PCon("True"), expr),
                        Alt(PCon("False"), body),
                    ),
                )
        if rhs.where_binds:
            body = Let(rhs.where_binds, body)
        return body

    def _compile_clauses(
        self, name: str, clauses: List[Tuple[List[Pattern], "_Rhs"]]
    ) -> Expr:
        arity = len(clauses[0][0])
        for pats, _ in clauses:
            if len(pats) != arity:
                raise ParseError(
                    f"equations for {name!r} have differing arities"
                )
        fail: Expr = Raise(Con("PatternMatchFail", (), 0))
        if arity == 0:
            if len(clauses) != 1:
                raise ParseError(f"multiple bindings for {name!r}")
            return self._clause_body(clauses[0][1], fail)
        has_guards = any(
            rhs.guards[0][0] is not None or len(rhs.guards) > 1
            for _pats, rhs in clauses
        )
        # Fast path: a single clause whose patterns are all variables or
        # wildcards becomes a plain curried lambda.
        if len(clauses) == 1 and not has_guards and all(
            isinstance(p, (PVar, PWild)) for p in clauses[0][0]
        ):
            pats, rhs = clauses[0]
            params = tuple(
                p.name if isinstance(p, PVar) else self.supply.fresh("_w")
                for p in pats
            )
            return lam_chain(params, self._clause_body(rhs, fail))
        params = tuple(self.supply.fresh("arg") for _ in range(arity))
        if arity == 1:
            scrut: Expr = Var(params[0])
            mk_pattern = lambda pats: pats[0]  # noqa: E731
        else:
            tup = f"Tuple{arity}"
            if tup not in BUILTIN_CON_ARITY:
                raise ParseError(
                    f"functions of arity {arity} with non-variable "
                    "patterns are not supported (max 4)"
                )
            scrut = Con(tup, tuple(Var(p) for p in params), arity)
            mk_pattern = lambda pats, t=tup: PCon(t, tuple(pats))  # noqa: E731

        if not has_guards:
            # Flat case: sequential matching, PatternMatchFail on
            # fall-through (no default alternative needed).
            alts = tuple(
                Alt(mk_pattern(pats), self._clause_body(rhs, fail))
                for pats, rhs in clauses
            )
            return lam_chain(params, Case(scrut, alts))

        # Guarded clauses: a guard failure must fall through to the
        # NEXT clause, so compile a chain of cases with join points.
        def build(index: int) -> Expr:
            if index == len(clauses):
                return fail
            pats, rhs = clauses[index]
            rest = build(index + 1)
            join = self.supply.fresh("next")
            body = self._clause_body(rhs, Var(join))
            return Let(
                ((join, rest),),
                Case(
                    scrut,
                    (
                        Alt(mk_pattern(pats), body),
                        Alt(PWild(), Var(join)),
                    ),
                ),
            )

        return lam_chain(params, build(0))

    # ------------------------------------------------------------------
    # Types

    def _type(self) -> SynType:
        left = self._btype()
        if self.ts.at("PUNCT", "->"):
            self.ts.next()
            return STFun(left, self._type())
        return left

    def _btype(self) -> SynType:
        ts = self.ts
        if ts.at("CONID"):
            name = str(ts.next().value)
            args: List[SynType] = []
            while self._at_atype_start():
                args.append(self._atype())
            return STCon(name, tuple(args))
        return self._atype()

    def _at_atype_start(self) -> bool:
        ts = self.ts
        return (
            ts.at("CONID")
            or ts.at("IDENT")
            or ts.at("PUNCT", "(")
            or ts.at("PUNCT", "[")
        )

    def _atype(self) -> SynType:
        ts = self.ts
        if ts.at("CONID"):
            return STCon(str(ts.next().value))
        if ts.at("IDENT"):
            return STVar(str(ts.next().value))
        if ts.at("PUNCT", "["):
            ts.next()
            inner = self._type()
            ts.expect("PUNCT", "]")
            return STCon("List", (inner,))
        if ts.at("PUNCT", "("):
            ts.next()
            if ts.at("PUNCT", ")"):
                ts.next()
                return STCon("Unit")
            first = self._type()
            if ts.at("PUNCT", ","):
                items = [first]
                while ts.at("PUNCT", ","):
                    ts.next()
                    items.append(self._type())
                ts.expect("PUNCT", ")")
                return STCon(f"Tuple{len(items)}", tuple(items))
            ts.expect("PUNCT", ")")
            return first
        raise ParseError("expected a type", ts.peek())

    # ------------------------------------------------------------------
    # Expressions

    def parse_expr(self) -> Expr:
        ts = self.ts
        if ts.at("PUNCT", "\\"):
            ts.next()
            pats: List[Pattern] = []
            while not ts.at("PUNCT", "->"):
                pats.append(self._apattern())
            ts.expect("PUNCT", "->")
            body = self.parse_expr()
            return self._lambda_from_patterns(pats, body)
        if ts.at("KEYWORD", "let"):
            return self._let_expr()
        if ts.at("KEYWORD", "if"):
            ts.next()
            cond = self.parse_expr()
            ts.expect("KEYWORD", "then")
            then_e = self.parse_expr()
            ts.expect("KEYWORD", "else")
            else_e = self.parse_expr()
            return Case(
                cond,
                (Alt(PCon("True"), then_e), Alt(PCon("False"), else_e)),
            )
        if ts.at("KEYWORD", "case"):
            return self._case_expr()
        if ts.at("KEYWORD", "do"):
            return self._do_expr()
        return self._op_expr(0)

    def _lambda_from_patterns(
        self, pats: List[Pattern], body: Expr
    ) -> Expr:
        result = body
        for pat in reversed(pats):
            if isinstance(pat, PVar):
                result = Lam(pat.name, result)
            elif isinstance(pat, PWild):
                result = Lam(self.supply.fresh("_w"), result)
            else:
                fresh = self.supply.fresh("arg")
                result = Lam(
                    fresh, Case(Var(fresh), (Alt(pat, result),))
                )
        return result

    def _let_expr(self) -> Expr:
        ts = self.ts
        ts.expect("KEYWORD", "let")
        self._open_block()
        clauses: Dict[str, List[Tuple[List[Pattern], Expr]]] = {}
        order: List[str] = []
        while True:
            ts.skip_semis()
            if self._close_block_if_done():
                break
            name, pats, rhs = self._equation()
            if name not in clauses:
                clauses[name] = []
                order.append(name)
            clauses[name].append((pats, rhs))
            if not (ts.at("VSEMI") or ts.at("PUNCT", ";")):
                self._close_block()
                break
        ts.expect("KEYWORD", "in")
        body = self.parse_expr()
        binds = tuple(
            (name, self._compile_clauses(name, clauses[name]))
            for name in order
        )
        return Let(binds, body)

    def _case_expr(self) -> Expr:
        ts = self.ts
        ts.expect("KEYWORD", "case")
        scrut = self.parse_expr()
        ts.expect("KEYWORD", "of")
        self._open_block()
        # raw alternatives: (pattern, guards) where guards follows the
        # _Rhs convention (None guard = unguarded ->).
        raw: List[Tuple[Pattern, Tuple[Tuple[Optional[Expr], Expr], ...]]] = []
        while True:
            ts.skip_semis()
            if self._close_block_if_done():
                break
            pat = self._pattern()
            guards: List[Tuple[Optional[Expr], Expr]] = []
            if ts.at("PUNCT", "|"):
                while ts.at("PUNCT", "|"):
                    ts.next()
                    guard = self.parse_expr()
                    ts.expect("PUNCT", "->")
                    guards.append((guard, self.parse_expr()))
            else:
                ts.expect("PUNCT", "->")
                guards.append((None, self.parse_expr()))
            raw.append((pat, tuple(guards)))
            if not (ts.at("VSEMI") or ts.at("PUNCT", ";")):
                self._close_block()
                break
        if not raw:
            raise ParseError("case expression with no alternatives", ts.peek())
        if all(
            len(guards) == 1 and guards[0][0] is None
            for _pat, guards in raw
        ):
            return Case(
                scrut,
                tuple(
                    with_span(Alt(pat, guards[0][1]), pat.span)
                    for pat, guards in raw
                ),
            )
        # Guarded alternatives: bind the scrutinee once and compile a
        # fall-through chain (a guard failure tries the NEXT alt).
        scrut_name = self.supply.fresh("scrut")

        def build(index: int) -> Expr:
            if index == len(raw):
                return Raise(Con("PatternMatchFail", (), 0))
            pat, guards = raw[index]
            rest = build(index + 1)
            join = self.supply.fresh("next")
            body: Expr = Var(join)
            for guard, expr in reversed(guards):
                if guard is None:
                    body = expr
                else:
                    body = Case(
                        guard,
                        (
                            Alt(PCon("True"), expr),
                            Alt(PCon("False"), body),
                        ),
                    )
            return Let(
                ((join, rest),),
                Case(
                    Var(scrut_name),
                    (Alt(pat, body), Alt(PWild(), Var(join))),
                ),
            )

        return Let(((scrut_name, scrut),), build(0))

    def _do_expr(self) -> Expr:
        ts = self.ts
        ts.expect("KEYWORD", "do")
        self._open_block()
        stmts: List[Tuple[str, object, Optional[Expr]]] = []
        while True:
            ts.skip_semis()
            if self._close_block_if_done():
                break
            if ts.at("KEYWORD", "let"):
                ts.next()
                # A do-let is a single binding; the lexer still opens a
                # layout block after `let`, so consume its virtual
                # braces around the equation.
                had_brace = ts.at("VLBRACE") or ts.at("PUNCT", "{")
                if had_brace:
                    ts.next()
                name, pats, rhs = self._equation()
                if had_brace and (ts.at("VRBRACE") or ts.at("PUNCT", "}")):
                    ts.next()
                stmts.append(("let", name, self._compile_clauses(name, [(pats, rhs)])))
            elif (
                ts.at("IDENT")
                and ts.peek(1).kind == "PUNCT"
                and ts.peek(1).value == "<-"
            ):
                name = str(ts.next().value)
                ts.next()  # <-
                stmts.append(("bind", name, self.parse_expr()))
            else:
                stmts.append(("expr", None, self.parse_expr()))
            if not (ts.at("VSEMI") or ts.at("PUNCT", ";")):
                self._close_block()
                break
        if not stmts or stmts[-1][0] != "expr":
            raise ParseError(
                "the last statement of a do block must be an expression",
                ts.peek(),
            )
        result = stmts[-1][2]
        assert isinstance(result, Expr)
        for kind, name, expr in reversed(stmts[:-1]):
            assert isinstance(expr, Expr)
            if kind == "let":
                assert isinstance(name, str)
                result = Let(((name, expr),), result)
            elif kind == "bind":
                assert isinstance(name, str)
                result = PrimOp("bindIO", (expr, Lam(name, result)))
            else:
                dummy = self.supply.fresh("_w")
                result = PrimOp("bindIO", (expr, Lam(dummy, result)))
        return result

    def _open_block(self) -> None:
        ts = self.ts
        if ts.at("VLBRACE") or ts.at("PUNCT", "{"):
            ts.next()
        else:
            raise ParseError("expected a block", ts.peek())

    def _close_block_if_done(self) -> bool:
        ts = self.ts
        if ts.at("VRBRACE") or ts.at("PUNCT", "}"):
            ts.next()
            return True
        if ts.at("KEYWORD", "in") or ts.at("EOF"):
            return True
        return False

    def _close_block(self) -> None:
        ts = self.ts
        if ts.at("VRBRACE") or ts.at("PUNCT", "}"):
            ts.next()

    # Operator-precedence parsing -------------------------------------

    def _op_expr(self, min_prec: int) -> Expr:
        left = self._operand()
        ts = self.ts
        while ts.at("OP"):
            op = str(ts.peek().value)
            if op not in OPERATORS:
                raise ParseError(f"unknown operator {op!r}", ts.peek())
            prec, assoc, _target = OPERATORS[op]
            if prec < min_prec:
                break
            ts.next()
            next_min = prec + 1 if assoc in ("left", "none") else prec
            right = self._op_expr(next_min)
            left = _apply_operator(op, left, right)
        return left

    def _operand(self) -> Expr:
        ts = self.ts
        if ts.at("OP", "-"):
            ts.next()
            operand = self._operand()
            if isinstance(operand, Lit) and operand.kind == "int":
                return Lit(-int(operand.value), "int")
            return PrimOp("negate", (operand,))
        # An operand is an application chain of atoms; trailing lambdas
        # / lets / cases are allowed as the final argument (Haskell's
        # "extends as far to the right as possible" rule).
        if ts.at("IDENT") and str(ts.peek().value) in PRIM_TABLE:
            name = str(ts.next().value)
            info = PRIM_TABLE[name]
            args = []
            while self._at_atom_start():
                args.append(self._atom())
            if (
                ts.at("PUNCT", "\\")
                or ts.at("KEYWORD", "let")
                or ts.at("KEYWORD", "if")
                or ts.at("KEYWORD", "case")
                or ts.at("KEYWORD", "do")
            ):
                args.append(self.parse_expr())
            if len(args) >= info.arity:
                prim = PrimOp(name, tuple(args[: info.arity]))
                return app_chain(prim, *args[info.arity :])
            return app_chain(_prim_reference(name), *args)
        atom = self._atom()
        args: List[Expr] = []
        while self._at_atom_start():
            args.append(self._atom())
        if (
            ts.at("PUNCT", "\\")
            or ts.at("KEYWORD", "let")
            or ts.at("KEYWORD", "if")
            or ts.at("KEYWORD", "case")
            or ts.at("KEYWORD", "do")
        ):
            args.append(self.parse_expr())
        return app_chain(atom, *args)

    def _at_atom_start(self) -> bool:
        ts = self.ts
        return (
            ts.at("IDENT")
            or ts.at("CONID")
            or ts.at("INT")
            or ts.at("CHAR")
            or ts.at("STRING")
            or ts.at("PUNCT", "(")
            or ts.at("PUNCT", "[")
        )

    def _atom(self) -> Expr:
        ts = self.ts
        if ts.at("IDENT"):
            name = str(ts.next().value)
            if name in PRIM_TABLE:
                return _prim_reference(name)
            return Var(name)
        if ts.at("CONID"):
            return Con(str(ts.next().value), (), -1)
        if ts.at("INT"):
            return Lit(int(ts.next().value), "int")
        if ts.at("CHAR"):
            return Lit(str(ts.next().value), "char")
        if ts.at("STRING"):
            return Lit(str(ts.next().value), "string")
        if ts.at("PUNCT", "["):
            ts.next()
            items: List[Expr] = []
            if not ts.at("PUNCT", "]"):
                items.append(self.parse_expr())
                while ts.at("PUNCT", ","):
                    ts.next()
                    items.append(self.parse_expr())
            ts.expect("PUNCT", "]")
            result: Expr = Con("Nil", (), 0)
            for item in reversed(items):
                result = Con("Cons", (item, result), 2)
            return result
        if ts.at("PUNCT", "("):
            ts.next()
            if ts.at("PUNCT", ")"):
                ts.next()
                return Con("Unit", (), 0)
            if ts.at("OP") and ts.peek(1).kind == "PUNCT" and ts.peek(
                1
            ).value == ")":
                op = str(ts.next().value)
                ts.next()
                if op not in OPERATORS:
                    raise ParseError(f"unknown operator {op!r}")
                return _operator_section(op)
            first = self.parse_expr()
            if ts.at("PUNCT", ","):
                items = [first]
                while ts.at("PUNCT", ","):
                    ts.next()
                    items.append(self.parse_expr())
                ts.expect("PUNCT", ")")
                tup = f"Tuple{len(items)}"
                if tup not in BUILTIN_CON_ARITY:
                    raise ParseError(f"tuples of size {len(items)} unsupported")
                return Con(tup, tuple(items), len(items))
            ts.expect("PUNCT", ")")
            return first
        if ts.at("KEYWORD", "raise"):
            # raise takes an atomic argument (write parentheses around
            # compound exceptions: raise (UserError msg)); the raise
            # form itself behaves as an atom, so it composes with
            # application and operators: `raise X + 0` is (raise X) + 0.
            ts.next()
            return Raise(self._atom())
        if ts.at("KEYWORD", "fix"):
            ts.next()
            return Fix(self._atom())
        raise ParseError("expected an expression", ts.peek())

    # ------------------------------------------------------------------
    # Patterns

    def _pattern(self) -> Pattern:
        left = self._bpattern()
        if self.ts.at("OP", ":"):
            self.ts.next()
            right = self._pattern()
            return PCon("Cons", (left, right))
        return left

    def _bpattern(self) -> Pattern:
        ts = self.ts
        if ts.at("CONID"):
            name = str(ts.next().value)
            args: List[Pattern] = []
            while self._at_apattern_start():
                args.append(self._apattern())
            return PCon(name, tuple(args))
        return self._apattern()

    def _at_apattern_start(self) -> bool:
        ts = self.ts
        return (
            ts.at("IDENT")
            or ts.at("CONID")
            or ts.at("INT")
            or ts.at("CHAR")
            or ts.at("PUNCT", "(")
            or ts.at("PUNCT", "[")
        )

    def _apattern(self) -> Pattern:
        ts = self.ts
        if ts.at("IDENT"):
            name = str(ts.next().value)
            if name == "_":
                return PWild()
            return PVar(name)
        if ts.at("CONID"):
            return PCon(str(ts.next().value))
        if ts.at("INT"):
            return PLit(int(ts.next().value), "int")
        if ts.at("CHAR"):
            return PLit(str(ts.next().value), "char")
        if ts.at("PUNCT", "["):
            ts.next()
            items: List[Pattern] = []
            if not ts.at("PUNCT", "]"):
                items.append(self._pattern())
                while ts.at("PUNCT", ","):
                    ts.next()
                    items.append(self._pattern())
            ts.expect("PUNCT", "]")
            result: Pattern = PCon("Nil")
            for item in reversed(items):
                result = PCon("Cons", (item, result))
            return result
        if ts.at("PUNCT", "("):
            ts.next()
            if ts.at("PUNCT", ")"):
                ts.next()
                return PCon("Unit")
            first = self._pattern()
            if ts.at("PUNCT", ","):
                items = [first]
                while ts.at("PUNCT", ","):
                    ts.next()
                    items.append(self._pattern())
                ts.expect("PUNCT", ")")
                return PCon(f"Tuple{len(items)}", tuple(items))
            ts.expect("PUNCT", ")")
            return first
        raise ParseError("expected a pattern", ts.peek())


# ----------------------------------------------------------------------
# Source-span stamping
#
# Rather than thread positions through every production by hand, the
# node-producing parser methods are wrapped: each records the token at
# which it started and, if the node it returns has no span yet, stamps
# the region up to the last consumed token.  Inner productions run
# first, so a node keeps the *tightest* span that describes it; outer
# wrappers only stamp nodes that inner calls built fresh (operator
# applications, sugar expansions).  Spans live in compare=False fields,
# so this changes no equality, hashing, or oracle behaviour.


def _token_end_col(tok: Token) -> int:
    width = len(str(tok.value))
    if tok.kind in ("STRING", "CHAR"):
        width += 2  # the surrounding quotes
    return tok.col + max(width, 1)


def _spanned(method):
    def wrapper(self, *args, **kwargs):
        ts = self.ts
        start_pos = ts.pos
        start = ts.peek()
        node = method(self, *args, **kwargs)
        if node.span is None:
            end_idx = ts.pos - 1
            end = ts.tokens[end_idx] if end_idx >= start_pos else start
            object.__setattr__(
                node,
                "span",
                Span(
                    start.line,
                    start.col,
                    end.line,
                    _token_end_col(end),
                    unit=self.unit,
                ),
            )
        return node

    wrapper.__name__ = method.__name__
    wrapper.__qualname__ = method.__qualname__
    return wrapper


for _name in (
    "parse_expr",
    "_op_expr",
    "_operand",
    "_atom",
    "_let_expr",
    "_case_expr",
    "_do_expr",
    "_pattern",
    "_bpattern",
    "_apattern",
):
    setattr(_Parser, _name, _spanned(getattr(_Parser, _name)))
del _name


def _prim_reference(name: str) -> Expr:
    """Eta-expand a primitive used in non-applied position."""
    info = PRIM_TABLE[name]
    params = tuple(f"_p{i}" for i in range(info.arity))
    return lam_chain(params, PrimOp(name, tuple(Var(p) for p in params)))


def _apply_operator(op: str, left: Expr, right: Expr) -> Expr:
    _prec, _assoc, target = OPERATORS[op]
    kind, _, name = target.partition(":")
    if kind == "prim":
        return PrimOp(name, (left, right))
    if kind == "con":
        arity = BUILTIN_CON_ARITY[name]
        return Con(name, (left, right), arity)
    return app_chain(Var(name), left, right)


def _operator_section(op: str) -> Expr:
    _prec, _assoc, target = OPERATORS[op]
    kind, _, name = target.partition(":")
    if kind == "prim":
        return lam_chain(
            ("_l", "_r"), PrimOp(name, (Var("_l"), Var("_r")))
        )
    if kind == "con":
        arity = BUILTIN_CON_ARITY[name]
        return lam_chain(
            ("_l", "_r"), Con(name, (Var("_l"), Var("_r")), arity)
        )
    return Var(name)


# ----------------------------------------------------------------------
# Constructor saturation


def saturate(expr: Expr, arities: Dict[str, int]) -> Expr:
    """Replace unsaturated constructor references with saturated ``Con``
    nodes, eta-expanding partially applied constructors.

    After this pass, every ``Con`` node has ``len(args) == arity``.
    """
    supply = NameSupply(avoid=free_vars(expr))
    return _saturate(expr, arities, supply)


def _lookup_arity(name: str, arities: Dict[str, int]) -> int:
    if name in arities:
        return arities[name]
    if name in BUILTIN_CON_ARITY:
        return BUILTIN_CON_ARITY[name]
    raise ParseError(f"unknown constructor {name!r}")


def _saturate(expr: Expr, arities: Dict[str, int], supply: NameSupply) -> Expr:
    # Saturation rebuilds nodes; keep each rebuilt node anchored to the
    # source region of the node it replaces.
    return copy_span(_saturate_node(expr, arities, supply), expr)


def _saturate_node(
    expr: Expr, arities: Dict[str, int], supply: NameSupply
) -> Expr:
    if isinstance(expr, (Var, Lit)):
        return expr
    if isinstance(expr, App):
        # Collect the application spine to saturate constructor heads.
        spine: List[Expr] = []
        head = expr
        while isinstance(head, App):
            spine.append(head.arg)
            head = head.fn
        spine.reverse()
        if isinstance(head, Con) and len(head.args) == 0:
            arity = _lookup_arity(head.name, arities)
            args = [_saturate(a, arities, supply) for a in spine]
            if len(args) >= arity:
                sat = Con(head.name, tuple(args[:arity]), arity)
                result: Expr = sat
                for extra in args[arity:]:
                    result = App(result, extra)
                return result
            missing = [supply.fresh("eta") for _ in range(arity - len(args))]
            sat = Con(
                head.name,
                tuple(args) + tuple(Var(m) for m in missing),
                arity,
            )
            return lam_chain(tuple(missing), sat)
        return App(
            _saturate(expr.fn, arities, supply),
            _saturate(expr.arg, arities, supply),
        )
    if isinstance(expr, Con):
        arity = _lookup_arity(expr.name, arities)
        args = tuple(_saturate(a, arities, supply) for a in expr.args)
        if len(args) == arity:
            return Con(expr.name, args, arity)
        if len(args) == 0:
            missing = [supply.fresh("eta") for _ in range(arity)]
            return lam_chain(
                tuple(missing),
                Con(expr.name, tuple(Var(m) for m in missing), arity),
            )
        raise ParseError(
            f"constructor {expr.name!r} applied to {len(args)} of "
            f"{arity} arguments"
        )
    if isinstance(expr, Lam):
        return Lam(expr.var, _saturate(expr.body, arities, supply))
    if isinstance(expr, Case):
        return Case(
            _saturate(expr.scrutinee, arities, supply),
            tuple(
                copy_span(
                    Alt(alt.pattern, _saturate(alt.body, arities, supply)),
                    alt,
                )
                for alt in expr.alts
            ),
        )
    if isinstance(expr, Raise):
        return Raise(_saturate(expr.exc, arities, supply))
    if isinstance(expr, PrimOp):
        return PrimOp(
            expr.op,
            tuple(_saturate(a, arities, supply) for a in expr.args),
        )
    if isinstance(expr, Fix):
        return Fix(_saturate(expr.fn, arities, supply))
    if isinstance(expr, Let):
        return Let(
            tuple(
                (name, _saturate(rhs, arities, supply))
                for name, rhs in expr.binds
            ),
            _saturate(expr.body, arities, supply),
        )
    raise TypeError(f"saturate: unknown expression {expr!r}")


# ----------------------------------------------------------------------
# Entry points


def parse_expr(
    source: str,
    con_arities: Optional[Dict[str, int]] = None,
    unit: Optional[str] = None,
) -> Expr:
    """Parse a single expression.  ``unit`` names the compilation unit
    stamped into spans (see :mod:`repro.lang.units`)."""
    tokens = lex(source, top_level=False)
    parser = _Parser(tokens, unit=unit)
    expr = parser.parse_expr()
    tok = parser.ts.peek()
    while tok.kind in ("VRBRACE", "VSEMI"):
        parser.ts.next()
        tok = parser.ts.peek()
    if tok.kind != "EOF":
        raise ParseError("trailing input after expression", tok)
    arities = dict(BUILTIN_CON_ARITY)
    if con_arities:
        arities.update(con_arities)
    return saturate(expr, arities)


def parse_program(
    source: str,
    con_arities: Optional[Dict[str, int]] = None,
    unit: Optional[str] = None,
) -> Program:
    """Parse a module: data declarations + top-level bindings.
    ``unit`` names the compilation unit stamped into spans (see
    :mod:`repro.lang.units`)."""
    tokens = lex(source, top_level=True)
    parser = _Parser(tokens, unit=unit)
    program = parser.parse_program()
    arities = dict(BUILTIN_CON_ARITY)
    if con_arities:
        arities.update(con_arities)
    for decl in program.data_decls:
        for cname, cargs in decl.constructors:
            arities[cname] = len(cargs)
    binds = tuple(
        (name, saturate(rhs, arities)) for name, rhs in program.binds
    )
    return Program(program.data_decls, binds, program.type_sigs)
