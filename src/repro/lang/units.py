"""The compilation-unit source registry.

Spans are ``(unit, region)`` pairs (:class:`repro.lang.ast.Span`): the
coordinates are local to one compilation unit, and ``unit`` names which
one.  This module is the other half of that pair — a process-wide table
mapping unit names to their source text, so any tool holding a span can
resolve the line it points at.  ``repro explain`` uses it to quote the
prelude line behind a prelude-introduced raise (e.g. ``error``'s
``raise``) instead of leaving the reader to guess what
``prelude:23:13`` says.

Registration is idempotent and the registry is deliberately tiny: the
prelude registers itself when loaded, and embedders (the evaluation
service, tests) may register additional named units.  Unregistered
units resolve to nothing — a span is still printable without its
source, just less helpful.
"""

from __future__ import annotations

from typing import Dict, List, Optional

_SOURCES: Dict[str, str] = {}


def register_unit(name: str, source: str) -> None:
    """Register (or re-register) the source text of a named unit."""
    _SOURCES[name] = source


def unit_source(name: str) -> Optional[str]:
    """The full source text of a registered unit, or None."""
    return _SOURCES.get(name)


def registered_units() -> List[str]:
    return sorted(_SOURCES)


def source_line(unit: Optional[str], line: int) -> Optional[str]:
    """Line ``line`` (1-based) of ``unit``'s source, or None when the
    unit is unregistered or the line is out of range."""
    if unit is None:
        return None
    source = _SOURCES.get(unit)
    if source is None:
        return None
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return None
