"""Lexer with a simplified Haskell-style layout algorithm.

The layout rule implemented here is the pragmatic subset needed for the
paper's programs and the prelude:

* after ``of``, ``do`` and ``let`` (when not immediately followed by an
  explicit ``{``) a *layout context* opens at the column of the next
  token; a virtual ``{`` is emitted;
* a line beginning at exactly that column emits a virtual ``;``;
* a line beginning left of that column closes the context (virtual
  ``}``) — repeatedly, until the column is inside some open context;
* ``in`` closes a pending ``let`` context;
* the whole module is a layout context at the column of its first token,
  so top-level declarations are ``;``-separated.

Explicit ``{ ; }`` always work and disable layout for that block.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ops import OP_SYMBOLS
from repro.lang.tokens import KEYWORDS, Token


class LexError(Exception):
    """Raised on malformed input."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


_SYMBOL_CHARS = set("!#$%&*+./<=>?@\\^|-~:")


def _raw_tokens(source: str) -> List[Token]:
    """Tokenise without layout processing."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\n\r":
            advance()
            continue
        if source.startswith("--", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        if source.startswith("{-", i):
            depth = 1
            advance(2)
            while i < n and depth:
                if source.startswith("{-", i):
                    depth += 1
                    advance(2)
                elif source.startswith("-}", i):
                    depth -= 1
                    advance(2)
                else:
                    advance()
            if depth:
                raise LexError("unterminated block comment", line, col)
            continue
        start_line, start_col = line, col
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(
                Token("INT", int(source[i:j]), start_line, start_col)
            )
            advance(j - i)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_'"):
                j += 1
            word = source[i:j]
            advance(j - i)
            if word in KEYWORDS:
                tokens.append(Token("KEYWORD", word, start_line, start_col))
            elif word[0].isupper():
                tokens.append(Token("CONID", word, start_line, start_col))
            else:
                tokens.append(Token("IDENT", word, start_line, start_col))
            continue
        if ch == '"':
            advance()
            chars = []
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    advance()
                    if i >= n:
                        break
                    esc = source[i]
                    chars.append(
                        {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(
                            esc, esc
                        )
                    )
                    advance()
                else:
                    chars.append(source[i])
                    advance()
            if i >= n:
                raise LexError(
                    "unterminated string literal", start_line, start_col
                )
            advance()  # closing quote
            tokens.append(
                Token("STRING", "".join(chars), start_line, start_col)
            )
            continue
        if ch == "'":
            advance()
            if i < n and source[i] == "\\":
                advance()
                if i >= n:
                    raise LexError(
                        "unterminated char literal", start_line, start_col
                    )
                value = {"n": "\n", "t": "\t", "\\": "\\", "'": "'"}.get(
                    source[i], source[i]
                )
                advance()
            elif i < n:
                value = source[i]
                advance()
            else:
                raise LexError(
                    "unterminated char literal", start_line, start_col
                )
            if i >= n or source[i] != "'":
                raise LexError(
                    "unterminated char literal", start_line, start_col
                )
            advance()
            tokens.append(Token("CHAR", value, start_line, start_col))
            continue
        if ch == "`":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            if j >= n or source[j] != "`":
                raise LexError("unterminated backquote", start_line, start_col)
            word = source[i : j + 1]
            advance(j + 1 - i)
            tokens.append(Token("OP", word, start_line, start_col))
            continue
        if ch in "()[]{},;":
            tokens.append(Token("PUNCT", ch, start_line, start_col))
            advance()
            continue
        if ch in _SYMBOL_CHARS:
            j = i
            while j < n and source[j] in _SYMBOL_CHARS:
                j += 1
            sym = source[i:j]
            advance(j - i)
            if sym == "--":
                # already handled above, but guard anyway
                continue
            if sym in ("->", "<-", "=", "|", "\\", "::", "@"):
                tokens.append(Token("PUNCT", sym, start_line, start_col))
            else:
                tokens.append(Token("OP", sym, start_line, start_col))
            continue
        raise LexError(f"unexpected character {ch!r}", start_line, start_col)
    tokens.append(Token("EOF", "", line, col))
    return tokens


_LAYOUT_KEYWORDS = frozenset(["of", "do", "let", "where"])


def _apply_layout(raw: List[Token], top_level: bool) -> List[Token]:
    """Insert virtual braces and semicolons per the simplified rule."""
    out: List[Token] = []
    # Each context is (column, origin): column -1 marks an explicit
    # brace block; origin records which keyword opened it ("let",
    # "of", "do", "module", "explicit") so that `in` only ever closes
    # an implicit let-context.
    contexts: List[tuple] = []
    i = 0
    n = len(raw)

    pending_keyword: Optional[str] = None  # just saw a layout keyword

    if top_level and raw and raw[0].kind != "EOF":
        contexts.append((raw[0].col, "module"))

    prev_line = raw[0].line if raw else 1

    while i < n:
        tok = raw[i]
        if tok.kind == "EOF":
            while contexts and contexts[-1][0] != -1:
                contexts.pop()
                out.append(Token("VRBRACE", "}", tok.line, tok.col))
            out.append(tok)
            break

        if pending_keyword is not None:
            origin = pending_keyword
            pending_keyword = None
            if tok.kind == "PUNCT" and tok.value == "{":
                contexts.append((-1, "explicit"))
                out.append(tok)
                prev_line = tok.line
                i += 1
                continue
            out.append(Token("VLBRACE", "{", tok.line, tok.col))
            contexts.append((tok.col, origin))
            # fall through: the token itself is processed below, but do
            # not apply the new-line rule to it (it opens the block).
            out.append(tok)
            if tok.kind == "KEYWORD" and tok.value in _LAYOUT_KEYWORDS:
                pending_keyword = str(tok.value)
            prev_line = tok.line
            i += 1
            continue

        if tok.line > prev_line:
            # New line: compare against the innermost layout context.
            while (
                contexts
                and contexts[-1][0] != -1
                and tok.col < contexts[-1][0]
            ):
                contexts.pop()
                out.append(Token("VRBRACE", "}", tok.line, tok.col))
            if (
                contexts
                and contexts[-1][0] != -1
                and tok.col == contexts[-1][0]
            ):
                out.append(Token("VSEMI", ";", tok.line, tok.col))

        if tok.kind == "KEYWORD" and tok.value == "in":
            # `in` closes the innermost context when (and only when)
            # that context is an implicit let-block.
            if contexts and contexts[-1][1] == "let":
                contexts.pop()
                out.append(Token("VRBRACE", "}", tok.line, tok.col))
            out.append(tok)
            prev_line = tok.line
            i += 1
            continue

        if tok.kind == "PUNCT" and tok.value == "{":
            contexts.append((-1, "explicit"))
            out.append(tok)
            prev_line = tok.line
            i += 1
            continue
        if tok.kind == "PUNCT" and tok.value == "}":
            if contexts and contexts[-1][0] == -1:
                contexts.pop()
            out.append(tok)
            prev_line = tok.line
            i += 1
            continue

        out.append(tok)
        if tok.kind == "KEYWORD" and tok.value in _LAYOUT_KEYWORDS:
            pending_keyword = str(tok.value)
        prev_line = tok.line
        i += 1

    return out


def lex(source: str, top_level: bool = False) -> List[Token]:
    """Tokenise ``source``.

    With ``top_level=True`` the whole input is treated as a module-level
    layout block (declarations separated by virtual semicolons).
    """
    return _apply_layout(_raw_tokens(source), top_level)
