"""Abstract syntax for the object language.

The core constructors mirror Figure 1 of the paper::

    e ::= x                 variable            -> Var
        | k                 constant            -> Lit
        | e1 e2             application         -> App
        | \\x1 ... xn -> e   abstraction         -> Lam (curried)
        | C e1 ... en       constructors        -> Con / App
        | case e of alts    matching            -> Case
        | raise e           raise exception     -> Raise
        | e1 + e2           primitives          -> PrimOp
        | fix e             fixpoint            -> Fix

plus ``Let`` (recursive let, expressible via ``Fix`` but kept first-class
for readability and for the transformation suite).

All nodes are immutable (frozen dataclasses) and hashable, so they can be
used as dictionary keys by the analyses and as hypothesis-generated test
data.  Structural equality is exact (not alpha-equivalence); use
:func:`repro.lang.names.alpha_equivalent` for the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

LitValue = Union[int, str, bool]


@dataclass(frozen=True)
class Span:
    """A half-open source region, ``line:col`` to ``end_line:end_col``.

    Lines and columns are 1-based, as the lexer reports them.  Spans
    are *metadata*: every AST node carries an optional span in a
    ``compare=False`` field, so structural equality, hashing and all
    oracle verdicts are exactly what they were before spans existed
    (see docs/OBSERVABILITY.md, "Provenance & attribution").

    ``unit`` names the compilation unit the coordinates refer to
    (``"prelude"`` for prelude code; ``None`` for the user's own
    input).  It renders as a prefix — ``prelude:23:13-20`` — so a
    provenance chain mixing user and prelude frames is unambiguous,
    and :mod:`repro.lang.units` can resolve the actual source text.
    Like the coordinates' ``compare=False`` hosting fields, ``unit``
    never participates in node equality; two spans with the same
    coordinates compare equal regardless of unit, so nothing
    identity-relevant changed when units were introduced.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    unit: Optional[str] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        prefix = f"{self.unit}:" if self.unit is not None else ""
        if self.line == self.end_line:
            return f"{prefix}{self.line}:{self.col}-{self.end_col}"
        return (
            f"{prefix}{self.line}:{self.col}"
            f"-{self.end_line}:{self.end_col}"
        )


def with_span(node, span: Optional["Span"]):
    """Stamp ``span`` onto a freshly built node (first stamp wins).

    Nodes are frozen dataclasses whose ``span`` field is excluded from
    comparison and hashing, so stamping never changes identity-relevant
    state; ``object.__setattr__`` is the sanctioned escape hatch.
    Never call this on a node shared between expressions.
    """
    if span is not None and node.span is None:
        object.__setattr__(node, "span", span)
    return node


def copy_span(node, template):
    """Propagate ``template``'s span onto a rebuilt node, if it has one
    and the new node does not.  Used by the passes that reconstruct the
    tree (saturation, pattern flattening, substitution) so provenance
    survives desugaring."""
    if node is not template:
        span = template.span
        if span is not None and node.span is None:
            object.__setattr__(node, "span", span)
    return node


def span_of(node) -> Optional["Span"]:
    """The source span of an AST node (or code object), if known."""
    return getattr(node, "span", None)


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Var(Expr):
    """A variable occurrence, e.g. ``x``."""

    name: str
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant.

    ``kind`` is one of ``"int"``, ``"char"``, ``"string"``.  Booleans and
    unit are *not* literals; they are the constructors ``True``/``False``
    and ``Unit`` of the prelude data types, so pattern matching on them
    goes through the ordinary ``Case`` machinery.
    """

    value: LitValue
    kind: str = "int"
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in ("int", "char", "string"):
            raise ValueError(f"bad literal kind: {self.kind!r}")

    def __repr__(self) -> str:
        return f"Lit({self.value!r}, {self.kind!r})"


@dataclass(frozen=True)
class Lam(Expr):
    """A lambda abstraction of exactly one variable, ``\\x -> body``.

    Multi-argument lambdas are curried by the parser.
    """

    var: str
    body: Expr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class App(Expr):
    """Application, ``fn arg``."""

    fn: Expr
    arg: Expr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Con(Expr):
    """A saturated constructor application ``C e1 ... en``.

    The parser initially produces unsaturated constructor references as
    ``Con(name, ())`` applied via ``App``; the desugarer eta-expands them
    so that every ``Con`` node in a desugared program is saturated.
    ``arity`` records the declared arity (used by the saturation pass and
    the evaluators); ``len(args) <= arity`` always holds.
    """

    name: str
    args: Tuple[Expr, ...] = ()
    arity: int = 0
    span: Optional[Span] = field(default=None, compare=False, repr=False)


class Pattern:
    """Base class for case patterns."""

    __slots__ = ()


@dataclass(frozen=True)
class PVar(Pattern):
    """A variable pattern, binds the scrutinee component."""

    name: str
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PWild(Pattern):
    """The wildcard pattern ``_``."""

    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PLit(Pattern):
    """A literal pattern (integers and characters only)."""

    value: LitValue
    kind: str = "int"
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PCon(Pattern):
    """A constructor pattern ``C p1 ... pn``; sub-patterns may nest."""

    name: str
    args: Tuple[Pattern, ...] = ()
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Alt:
    """One case alternative, ``pattern -> body``."""

    pattern: Pattern
    body: Expr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Case(Expr):
    """``case scrutinee of { alt1 ; ... ; altn }``.

    If no alternative matches, the result is a ``PatternMatchFail``
    exceptional value (the paper treats pattern-match failure as one of
    the built-in causes of failure, Section 2).
    """

    scrutinee: Expr
    alts: Tuple[Alt, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Raise(Expr):
    """``raise e`` — map an ``Exception`` value to an exceptional value
    of any type (Section 3.1)."""

    exc: Expr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class PrimOp(Expr):
    """A saturated primitive operation ``op e1 ... en``.

    The operator table lives in :mod:`repro.lang.ops`; it includes
    arithmetic (``+ - * div mod negate``), comparison (``== /= < <= >
    >=``), ``seq``, ``mapException`` and the IO primitives
    (``returnIO``, ``bindIO``, ``getChar``, ``putChar``, ``putStr``,
    ``getException``).
    """

    op: str
    args: Tuple[Expr, ...]
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Fix(Expr):
    """``fix e`` — the least fixed point of ``e`` (Section 4.2)."""

    fn: Expr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Let(Expr):
    """A (possibly mutually) recursive let: ``let x1 = e1; ... in body``.

    ``binds`` is a tuple of ``(name, rhs)`` pairs.  Semantically this is
    sugar for ``Fix`` over a tuple, but the evaluators treat it directly
    (via recursive environment knots) both for efficiency and so that the
    transformation suite can express let-floating.
    """

    binds: Tuple[Tuple[str, Expr], ...]
    body: Expr
    span: Optional[Span] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class DataDecl:
    """A data type declaration, ``data T a1 ... = C1 t11 .. | C2 ...``.

    ``constructors`` maps constructor name to a tuple of (syntactic)
    argument types; argument types are only used by the type checker, so
    they are stored in a lightweight parsed form
    (:class:`repro.types.types.Type` instances once elaborated).
    """

    name: str
    params: Tuple[str, ...]
    constructors: Tuple[Tuple[str, Tuple[object, ...]], ...]


@dataclass(frozen=True)
class Program:
    """A parsed module: data declarations plus top-level value bindings.

    Top-level bindings are mutually recursive (one big ``Let``); the
    evaluators build a single recursive environment from them.
    """

    data_decls: Tuple[DataDecl, ...] = ()
    binds: Tuple[Tuple[str, Expr], ...] = ()
    type_sigs: Tuple[Tuple[str, object], ...] = ()

    def bind_map(self) -> dict:
        return dict(self.binds)


def app_chain(fn: Expr, *args: Expr) -> Expr:
    """Build ``fn a1 a2 ... an`` as nested :class:`App` nodes."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def lam_chain(params: Tuple[str, ...], body: Expr) -> Expr:
    """Build a curried lambda ``\\p1 -> ... \\pn -> body``."""
    result = body
    for param in reversed(params):
        result = Lam(param, result)
    return result


def unfold_app(expr: Expr) -> Tuple[Expr, list]:
    """Split nested applications into (head, [args])."""
    args = []
    while isinstance(expr, App):
        args.append(expr.arg)
        expr = expr.fn
    args.reverse()
    return expr, args


def unfold_lam(expr: Expr) -> Tuple[list, Expr]:
    """Split nested lambdas into ([params], body)."""
    params = []
    while isinstance(expr, Lam):
        params.append(expr.var)
        expr = expr.body
    return params, expr


def pattern_vars(pattern: Pattern) -> list:
    """All variables bound by a pattern, in left-to-right order."""
    out: list = []

    def go(p: Pattern) -> None:
        if isinstance(p, PVar):
            out.append(p.name)
        elif isinstance(p, PCon):
            for sub in p.args:
                go(sub)

    go(pattern)
    return out


def expr_size(expr: Expr) -> int:
    """Number of AST nodes in an expression (used as the paper's
    'code size' measure for the explicit-encoding comparison, E2)."""
    size = 1
    if isinstance(expr, Lam):
        size += expr_size(expr.body)
    elif isinstance(expr, App):
        size += expr_size(expr.fn) + expr_size(expr.arg)
    elif isinstance(expr, Con):
        size += sum(expr_size(a) for a in expr.args)
    elif isinstance(expr, Case):
        size += expr_size(expr.scrutinee)
        size += sum(1 + expr_size(alt.body) for alt in expr.alts)
    elif isinstance(expr, Raise):
        size += expr_size(expr.exc)
    elif isinstance(expr, PrimOp):
        size += sum(expr_size(a) for a in expr.args)
    elif isinstance(expr, Fix):
        size += expr_size(expr.fn)
    elif isinstance(expr, Let):
        size += sum(expr_size(rhs) for _, rhs in expr.binds)
        size += expr_size(expr.body)
    return size


def program_size(program: Program) -> int:
    """Total AST node count of all top-level bindings."""
    return sum(expr_size(rhs) for _, rhs in program.binds)
