"""Name handling: free variables, fresh name supply, capture-avoiding
substitution, and alpha-equivalence.

These are the workhorses of the transformation suite (beta reduction and
inlining must be capture-avoiding) and of the property-based tests
(round-trip tests compare modulo alpha).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    Pattern,
    PCon,
    PrimOp,
    PVar,
    Raise,
    Var,
    copy_span,
    pattern_vars,
)


class NameSupply:
    """An inexhaustible supply of fresh names.

    Names are of the form ``prefix_N``; the supply can be seeded with a
    set of names to avoid.
    """

    def __init__(self, avoid: Optional[Iterable[str]] = None) -> None:
        self._avoid: Set[str] = set(avoid) if avoid else set()
        self._counter = itertools.count()

    def fresh(self, prefix: str = "v") -> str:
        base = prefix.rstrip("0123456789_") or "v"
        for i in self._counter:
            name = f"{base}_{i}"
            if name not in self._avoid:
                self._avoid.add(name)
                return name
        raise AssertionError("unreachable")

    def avoid(self, names: Iterable[str]) -> None:
        self._avoid.update(names)


def free_vars(expr: Expr) -> FrozenSet[str]:
    """The free variables of an expression."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Lit):
        return frozenset()
    if isinstance(expr, Lam):
        return free_vars(expr.body) - {expr.var}
    if isinstance(expr, App):
        return free_vars(expr.fn) | free_vars(expr.arg)
    if isinstance(expr, Con):
        out: FrozenSet[str] = frozenset()
        for arg in expr.args:
            out |= free_vars(arg)
        return out
    if isinstance(expr, Case):
        out = free_vars(expr.scrutinee)
        for alt in expr.alts:
            out |= free_vars(alt.body) - frozenset(pattern_vars(alt.pattern))
        return out
    if isinstance(expr, Raise):
        return free_vars(expr.exc)
    if isinstance(expr, PrimOp):
        out = frozenset()
        for arg in expr.args:
            out |= free_vars(arg)
        return out
    if isinstance(expr, Fix):
        return free_vars(expr.fn)
    if isinstance(expr, Let):
        bound = frozenset(name for name, _ in expr.binds)
        out = free_vars(expr.body) - bound
        for _, rhs in expr.binds:
            out |= free_vars(rhs) - bound
        return out
    raise TypeError(f"free_vars: unknown expression {expr!r}")


def bound_vars(expr: Expr) -> FrozenSet[str]:
    """All variables bound anywhere inside an expression."""
    if isinstance(expr, (Var, Lit)):
        return frozenset()
    if isinstance(expr, Lam):
        return frozenset((expr.var,)) | bound_vars(expr.body)
    if isinstance(expr, App):
        return bound_vars(expr.fn) | bound_vars(expr.arg)
    if isinstance(expr, Con):
        out: FrozenSet[str] = frozenset()
        for arg in expr.args:
            out |= bound_vars(arg)
        return out
    if isinstance(expr, Case):
        out = bound_vars(expr.scrutinee)
        for alt in expr.alts:
            out |= frozenset(pattern_vars(alt.pattern)) | bound_vars(alt.body)
        return out
    if isinstance(expr, Raise):
        return bound_vars(expr.exc)
    if isinstance(expr, PrimOp):
        out = frozenset()
        for arg in expr.args:
            out |= bound_vars(arg)
        return out
    if isinstance(expr, Fix):
        return bound_vars(expr.fn)
    if isinstance(expr, Let):
        out = frozenset(name for name, _ in expr.binds) | bound_vars(expr.body)
        for _, rhs in expr.binds:
            out |= bound_vars(rhs)
        return out
    raise TypeError(f"bound_vars: unknown expression {expr!r}")


def _rename_pattern(
    pattern: Pattern, mapping: Dict[str, str]
) -> Pattern:
    if isinstance(pattern, PVar):
        return PVar(mapping.get(pattern.name, pattern.name))
    if isinstance(pattern, PCon):
        return PCon(
            pattern.name,
            tuple(_rename_pattern(p, mapping) for p in pattern.args),
        )
    return pattern


def substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Capture-avoiding simultaneous substitution.

    Binders that would capture a free variable of a substituted
    expression are renamed on the fly.
    """
    if not mapping:
        return expr
    needed: Set[str] = set()
    for replacement in mapping.values():
        needed |= free_vars(replacement)
    supply = NameSupply(avoid=needed | set(mapping) | free_vars(expr))
    return _subst(expr, dict(mapping), needed, supply)


def _subst(
    expr: Expr,
    mapping: Dict[str, Expr],
    capture_risk: Set[str],
    supply: NameSupply,
) -> Expr:
    # Rebuilt nodes keep the span of the node they replace; replacements
    # that already carry a span keep their own.
    return copy_span(_subst_node(expr, mapping, capture_risk, supply), expr)


def _subst_node(
    expr: Expr,
    mapping: Dict[str, Expr],
    capture_risk: Set[str],
    supply: NameSupply,
) -> Expr:
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Lam):
        mapping = {k: v for k, v in mapping.items() if k != expr.var}
        if not mapping:
            return expr
        var, body = expr.var, expr.body
        if var in capture_risk:
            fresh = supply.fresh(var)
            body = _subst(body, {var: Var(fresh)}, set(), supply)
            var = fresh
        return Lam(var, _subst(body, mapping, capture_risk, supply))
    if isinstance(expr, App):
        return App(
            _subst(expr.fn, mapping, capture_risk, supply),
            _subst(expr.arg, mapping, capture_risk, supply),
        )
    if isinstance(expr, Con):
        return Con(
            expr.name,
            tuple(_subst(a, mapping, capture_risk, supply) for a in expr.args),
            expr.arity,
        )
    if isinstance(expr, Case):
        scrut = _subst(expr.scrutinee, mapping, capture_risk, supply)
        alts = []
        for alt in expr.alts:
            pvars = pattern_vars(alt.pattern)
            sub = {k: v for k, v in mapping.items() if k not in pvars}
            pattern, body = alt.pattern, alt.body
            clashes = [v for v in pvars if v in capture_risk]
            if clashes and sub:
                renaming = {v: supply.fresh(v) for v in clashes}
                pattern = _rename_pattern(pattern, renaming)
                body = _subst(
                    body,
                    {old: Var(new) for old, new in renaming.items()},
                    set(),
                    supply,
                )
            alts.append(Alt(pattern, _subst(body, sub, capture_risk, supply)))
        return Case(scrut, tuple(alts))
    if isinstance(expr, Raise):
        return Raise(_subst(expr.exc, mapping, capture_risk, supply))
    if isinstance(expr, PrimOp):
        return PrimOp(
            expr.op,
            tuple(_subst(a, mapping, capture_risk, supply) for a in expr.args),
        )
    if isinstance(expr, Fix):
        return Fix(_subst(expr.fn, mapping, capture_risk, supply))
    if isinstance(expr, Let):
        bound = [name for name, _ in expr.binds]
        sub = {k: v for k, v in mapping.items() if k not in bound}
        clashes = [v for v in bound if v in capture_risk]
        binds = list(expr.binds)
        body = expr.body
        if clashes and sub:
            renaming = {v: supply.fresh(v) for v in clashes}
            ren_map = {old: Var(new) for old, new in renaming.items()}
            binds = [
                (renaming.get(name, name), _subst(rhs, ren_map, set(), supply))
                for name, rhs in binds
            ]
            body = _subst(body, ren_map, set(), supply)
        if not sub:
            return Let(tuple(binds), body)
        new_binds = tuple(
            (name, _subst(rhs, sub, capture_risk, supply))
            for name, rhs in binds
        )
        return Let(new_binds, _subst(body, sub, capture_risk, supply))
    raise TypeError(f"substitute: unknown expression {expr!r}")


def alpha_equivalent(a: Expr, b: Expr) -> bool:
    """Structural equality modulo renaming of bound variables."""
    return _alpha(a, b, {}, {})


def _alpha(a: Expr, b: Expr, env_a: Dict[str, int], env_b: Dict[str, int]) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Var):
        ka = env_a.get(a.name, a.name)
        kb = env_b.get(b.name, b.name)
        return ka == kb
    if isinstance(a, Lit):
        return a == b
    if isinstance(a, Lam):
        level = len(env_a)
        return _alpha(
            a.body,
            b.body,
            {**env_a, a.var: level},
            {**env_b, b.var: level},
        )
    if isinstance(a, App):
        return _alpha(a.fn, b.fn, env_a, env_b) and _alpha(
            a.arg, b.arg, env_a, env_b
        )
    if isinstance(a, Con):
        if a.name != b.name or len(a.args) != len(b.args):
            return False
        return all(
            _alpha(x, y, env_a, env_b) for x, y in zip(a.args, b.args)
        )
    if isinstance(a, Case):
        if len(a.alts) != len(b.alts):
            return False
        if not _alpha(a.scrutinee, b.scrutinee, env_a, env_b):
            return False
        for alt_a, alt_b in zip(a.alts, b.alts):
            ok, ea, eb = _alpha_pattern(
                alt_a.pattern, alt_b.pattern, env_a, env_b
            )
            if not ok:
                return False
            if not _alpha(alt_a.body, alt_b.body, ea, eb):
                return False
        return True
    if isinstance(a, Raise):
        return _alpha(a.exc, b.exc, env_a, env_b)
    if isinstance(a, PrimOp):
        if a.op != b.op or len(a.args) != len(b.args):
            return False
        return all(
            _alpha(x, y, env_a, env_b) for x, y in zip(a.args, b.args)
        )
    if isinstance(a, Fix):
        return _alpha(a.fn, b.fn, env_a, env_b)
    if isinstance(a, Let):
        if len(a.binds) != len(b.binds):
            return False
        level = len(env_a)
        ea, eb = dict(env_a), dict(env_b)
        for i, ((name_a, _), (name_b, _)) in enumerate(
            zip(a.binds, b.binds)
        ):
            ea[name_a] = level + i
            eb[name_b] = level + i
        for (_, rhs_a), (_, rhs_b) in zip(a.binds, b.binds):
            if not _alpha(rhs_a, rhs_b, ea, eb):
                return False
        return _alpha(a.body, b.body, ea, eb)
    raise TypeError(f"alpha_equivalent: unknown expression {a!r}")


def _alpha_pattern(pa: Pattern, pb: Pattern, env_a: Dict, env_b: Dict):
    if type(pa) is not type(pb):
        return False, env_a, env_b
    if isinstance(pa, PVar):
        level = len(env_a)
        return (
            True,
            {**env_a, pa.name: level},
            {**env_b, pb.name: level},
        )
    if isinstance(pa, PCon):
        if pa.name != pb.name or len(pa.args) != len(pb.args):
            return False, env_a, env_b
        ea, eb = env_a, env_b
        for sub_a, sub_b in zip(pa.args, pb.args):
            ok, ea, eb = _alpha_pattern(sub_a, sub_b, ea, eb)
            if not ok:
                return False, env_a, env_b
        return True, ea, eb
    return pa == pb, env_a, env_b
