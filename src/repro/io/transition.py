"""The labelled transition system of Section 4.4, over denotations.

The paper gives the IO layer an operational semantics acting on the
*denotation* of the program: ``IO`` is regarded as an algebraic data
type with constructors ``return``, ``>>=``, ``putChar``, ``getChar``,
``getException``, and the behaviour of a program is the set of traces
of the transition system.  The rules implemented here are the paper's:

* structural:  ``m -> m'  ⟹  (m >>= k) -> (m' >>= k)`` and
  ``(return v) >>= k -> k v`` (we take big steps through these);
* ``getChar --?c--> return c`` and ``putChar c --!c--> return ()``;
* ``getException (Ok v)  ->  return (OK v)``
* ``getException (Bad s) ->  return (Bad x)`` for any ``x ∈ s``
* ``getException (Bad s) ->  getException (Bad s)`` when
  ``NonTermination ∈ s`` (it may diverge);
* asynchronous (Section 5.1):
  ``getException v --?x--> return (Bad x)`` for an async event ``x``.

:func:`enumerate_outcomes` explores *all* permitted choices and returns
the set of possible results — this is the specification against which
the operational executor is property-tested (any executor outcome must
be in this set).  For infinite exception sets the enumeration samples
representatives and marks the result as admitting *fictitious
exceptions* (Section 5.3: ``getException loop`` is justified in
returning any exception whatsoever).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.domains import (
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    SemVal,
    Thunk,
    mk_bad,
)
from repro.core.denote import conval_from_exc
from repro.core.excset import (
    DIVIDE_BY_ZERO,
    Exc,
    ExcSet,
    NON_TERMINATION,
    OVERFLOW,
)
from repro.io.oracle import FirstOracle, Oracle


@dataclass(frozen=True)
class MayDiverge:
    """Marker result: the program may fail to terminate."""

    def __str__(self) -> str:
        return "MayDiverge"


@dataclass(frozen=True)
class TraceResult:
    """One possible behaviour: an IO trace plus a final result.

    ``trace`` records the visible events (``"?c"`` reads, ``"!c"``
    writes).  ``kind`` is ``"ok"``, ``"uncaught"``, ``"diverge"`` or
    ``"blocked"`` (input exhausted).  ``detail`` renders the final
    value or exception.  ``fictitious`` marks outcomes sampled from an
    infinite exception set (any exception at all would be permitted).
    """

    trace: Tuple[str, ...]
    kind: str
    detail: str = ""
    fictitious: bool = False

    def __str__(self) -> str:
        trace = "".join(self.trace)
        tag = " (fictitious)" if self.fictitious else ""
        return f"<{trace}| {self.kind}: {self.detail}{tag}>"


def describe_semval(value: SemVal, depth: int = 4) -> str:
    """A small stable rendering of a denotation for trace results."""
    if isinstance(value, Bad):
        return f"Bad {value.excs}"
    assert isinstance(value, Ok)
    inner = value.value
    if isinstance(inner, ConVal):
        if not inner.args or depth <= 0:
            return inner.name
        parts = " ".join(
            describe_semval(arg.force(), depth - 1) for arg in inner.args
        )
        return f"({inner.name} {parts})"
    if isinstance(inner, FunVal):
        return "<function>"
    if isinstance(inner, IOVal):
        return f"<io:{inner.tag}>"
    return repr(inner)


def _sample_excs(excs: ExcSet) -> Tuple[Sequence[Exc], bool]:
    """Members to branch over, plus a 'fictitious' flag for infinite
    sets (where any synchronous exception is permitted)."""
    members = sorted(excs.finite_members())
    if excs.is_finite():
        return members, False
    # Infinite: sample canonical representatives of E.
    sample = [m for m in members if m != NON_TERMINATION]
    sample.extend((DIVIDE_BY_ZERO, OVERFLOW))
    return sample, True


class _Enumerator:
    def __init__(self, stdin: str, async_events: Sequence[Exc], budget: int):
        self.stdin = stdin
        self.async_events = tuple(async_events)
        self.budget = budget
        self.results: Set[TraceResult] = set()

    def _spend(self) -> bool:
        if self.budget <= 0:
            return False
        self.budget -= 1
        return True

    def run(self, io: SemVal) -> FrozenSet[TraceResult]:
        self._perform(
            io,
            trace=(),
            stdin_pos=0,
            cont=self._final,
        )
        return frozenset(self.results)

    def _final(self, value: SemVal, trace: Tuple[str, ...], stdin_pos: int):
        self.results.add(
            TraceResult(trace, "ok", describe_semval(value))
        )

    def _emit_uncaught(
        self, excs: ExcSet, trace: Tuple[str, ...], fict_base: bool = False
    ) -> None:
        sample, fictitious = _sample_excs(excs)
        fictitious = fictitious or fict_base
        for exc in sample:
            self.results.add(
                TraceResult(trace, "uncaught", str(exc), fictitious)
            )
        if NON_TERMINATION in excs:
            self.results.add(TraceResult(trace, "diverge", "", fictitious))

    def _fail(self, excs, trace, stdin_pos, handler) -> None:
        """An exception escaping an IO action: route to the nearest
        enclosing catchIO handler, or report it uncaught."""
        if handler is not None:
            handler(excs, trace, stdin_pos)
        else:
            self._emit_uncaught(excs, trace)

    def _perform(self, io, trace, stdin_pos, cont, handler=None) -> None:
        if not self._spend():
            self.results.add(TraceResult(trace, "diverge", "budget"))
            return
        if isinstance(io, Bad):
            # The action's denotation at IO type is exceptional: an
            # escaping exception (caught by catchIO, else reported).
            self._fail(io.excs, trace, stdin_pos, handler)
            return
        assert isinstance(io, Ok)
        action = io.value
        if not isinstance(action, IOVal):
            raise TypeError(f"performed a non-IO denotation: {io}")
        tag = action.tag
        if tag == "return":
            cont(action.payload[0].force(), trace, stdin_pos)
            return
        if tag == "bind":
            m_thunk, k_thunk = action.payload

            def after(value: SemVal, trace2, stdin_pos2) -> None:
                k = k_thunk.force()
                if isinstance(k, Bad):
                    self._fail(k.excs, trace2, stdin_pos2, handler)
                    return
                assert isinstance(k, Ok)
                fun = k.value
                assert isinstance(fun, FunVal)
                self._perform(
                    fun.apply(Thunk.ready(value)),
                    trace2,
                    stdin_pos2,
                    cont,
                    handler,
                )

            self._perform(m_thunk.force(), trace, stdin_pos, after, handler)
            return
        if tag == "getChar":
            if stdin_pos >= len(self.stdin):
                self.results.add(TraceResult(trace, "blocked", "stdin"))
                return
            ch = self.stdin[stdin_pos]
            cont(Ok(ch), trace + (f"?{ch}",), stdin_pos + 1)
            return
        if tag == "putChar" or tag == "putStr":
            value = action.payload[0].force()
            if isinstance(value, Bad):
                self._fail(value.excs, trace, stdin_pos, handler)
                return
            assert isinstance(value, Ok)
            text = str(value.value)
            cont(
                Ok(ConVal("Unit")),
                trace + tuple(f"!{c}" for c in text),
                stdin_pos,
            )
            return
        if tag == "getException":
            value = action.payload[0].force()
            # Asynchronous rule: at any getException, an allowed event
            # may arrive and pre-empt the value entirely.
            for event in self.async_events:
                cont(
                    Ok(ConVal("Bad", (Thunk.ready(Ok(conval_from_exc(event))),))),
                    trace + (f"?{event.name}",),
                    stdin_pos,
                )
            if isinstance(value, Ok):
                cont(
                    Ok(ConVal("OK", (Thunk.ready(value),))),
                    trace,
                    stdin_pos,
                )
                return
            assert isinstance(value, Bad)
            sample, fictitious = _sample_excs(value.excs)
            for exc in sample:
                wrapped = Ok(
                    ConVal(
                        "Bad",
                        (Thunk.ready(Ok(conval_from_exc(exc))),),
                    )
                )
                # Fictitious choices are still threaded through the
                # continuation; mark by tagging the trace element.
                marker = (
                    (f"~{exc.name}",) if fictitious else ()
                )
                cont(wrapped, trace + marker, stdin_pos)
            if NON_TERMINATION in value.excs:
                # getException (Bad s) -> getException (Bad s): may spin.
                self.results.add(TraceResult(trace, "diverge", ""))
            return
        if tag == "ioError":
            value = action.payload[0].force()
            if isinstance(value, Bad):
                self._fail(value.excs, trace, stdin_pos, handler)
                return
            assert isinstance(value, Ok)
            con = value.value
            assert isinstance(con, ConVal)
            if handler is not None:
                exc = Exc(con.name)
                handler(ExcSet.of(exc), trace, stdin_pos)
                return
            self.results.add(TraceResult(trace, "uncaught", con.name))
            return
        if tag == "catch":
            body_thunk, handler_thunk = action.payload

            def on_fail(excs, trace2, stdin_pos2) -> None:
                sample, fictitious = _sample_excs(excs)
                fn_val = handler_thunk.force()
                if isinstance(fn_val, Bad):
                    self._fail(fn_val.excs, trace2, stdin_pos2, handler)
                    return
                fun = fn_val.value
                assert isinstance(fun, FunVal)
                for exc in sample:
                    marker = (f"~{exc.name}",) if fictitious else ()
                    self._perform(
                        fun.apply(Thunk.ready(Ok(conval_from_exc(exc)))),
                        trace2 + marker,
                        stdin_pos2,
                        cont,
                        handler,
                    )
                if NON_TERMINATION in excs:
                    self.results.add(TraceResult(trace2, "diverge", ""))

            self._perform(
                body_thunk.force(), trace, stdin_pos, cont, on_fail
            )
            return
        raise TypeError(f"unknown IO action {tag!r}")


def enumerate_outcomes(
    io: SemVal,
    stdin: str = "",
    async_events: Sequence[Exc] = (),
    budget: int = 10_000,
) -> FrozenSet[TraceResult]:
    """All behaviours the Section 4.4 transition system permits."""
    return _Enumerator(stdin, async_events, budget).run(io)


def run_denotational(
    io: SemVal,
    stdin: str = "",
    oracle: Optional[Oracle] = None,
    max_steps: int = 100_000,
) -> TraceResult:
    """Perform one run, resolving every choice with the oracle."""
    if oracle is None:
        oracle = FirstOracle()
    trace: List[str] = []
    stdin_pos = 0

    def perform(value: SemVal, depth: int) -> SemVal:
        nonlocal stdin_pos
        if depth <= 0:
            raise RecursionError("IO nesting too deep")
        if isinstance(value, Bad):
            raise _Uncaught(oracle.choose(value.excs))
        assert isinstance(value, Ok)
        action = value.value
        if not isinstance(action, IOVal):
            raise TypeError(f"performed a non-IO denotation: {value}")
        if action.tag == "return":
            return action.payload[0].force()
        if action.tag == "bind":
            m_thunk, k_thunk = action.payload
            result = perform(m_thunk.force(), depth - 1)
            k = k_thunk.force()
            if isinstance(k, Bad):
                raise _Uncaught(oracle.choose(k.excs))
            fun = k.value  # type: ignore[union-attr]
            assert isinstance(fun, FunVal)
            return perform(fun.apply(Thunk.ready(result)), depth - 1)
        if action.tag == "getChar":
            if stdin_pos >= len(stdin):
                raise _Blocked()
            ch = stdin[stdin_pos]
            stdin_pos += 1
            trace.append(f"?{ch}")
            return Ok(ch)
        if action.tag in ("putChar", "putStr"):
            out = action.payload[0].force()
            if isinstance(out, Bad):
                raise _Uncaught(oracle.choose(out.excs))
            assert isinstance(out, Ok)
            for c in str(out.value):
                trace.append(f"!{c}")
            return Ok(ConVal("Unit"))
        if action.tag == "getException":
            inner = action.payload[0].force()
            if isinstance(inner, Ok):
                return Ok(ConVal("OK", (Thunk.ready(inner),)))
            assert isinstance(inner, Bad)
            if oracle.choose_divergence(inner.excs):
                raise _Diverge()
            exc = oracle.choose(inner.excs)
            return Ok(
                ConVal("Bad", (Thunk.ready(Ok(conval_from_exc(exc))),))
            )
        if action.tag == "ioError":
            out = action.payload[0].force()
            if isinstance(out, Bad):
                raise _Uncaught(oracle.choose(out.excs))
            assert isinstance(out, Ok)
            con = out.value
            assert isinstance(con, ConVal)
            raise _Uncaught(Exc(con.name))
        if action.tag == "catch":
            body_thunk, handler_thunk = action.payload
            try:
                return perform(body_thunk.force(), depth - 1)
            except _Uncaught as err:
                fn_val = handler_thunk.force()
                if isinstance(fn_val, Bad):
                    raise _Uncaught(oracle.choose(fn_val.excs)) from None
                fun = fn_val.value
                assert isinstance(fun, FunVal)
                return perform(
                    fun.apply(Thunk.ready(Ok(conval_from_exc(err.exc)))),
                    depth - 1,
                )
        raise TypeError(f"unknown IO action {action.tag!r}")

    try:
        final = perform(io, max_steps)
        return TraceResult(tuple(trace), "ok", describe_semval(final))
    except _Uncaught as err:
        return TraceResult(tuple(trace), "uncaught", str(err.exc))
    except _Blocked:
        return TraceResult(tuple(trace), "blocked", "stdin")
    except _Diverge:
        return TraceResult(tuple(trace), "diverge", "")


class _Uncaught(Exception):
    def __init__(self, exc: Exc) -> None:
        super().__init__(str(exc))
        self.exc = exc


class _Blocked(Exception):
    pass


class _Diverge(Exception):
    pass
