"""The operational IO executor.

Performs IO actions produced by the machine.  An entire program is a
single value of type ``IO ()``; "to run the program is to perform the
specified computation" (Section 3.5).

``getException`` follows the Section 3.3 implementation sketch
directly: mark the evaluation stack (here: a Python ``try``), force the
argument to head normal form, and

* if evaluation completes, return ``OK val``;
* if ``raise ex`` trims the stack to our mark, return ``Bad ex`` — the
  single representative of the denoted exception set;
* if an asynchronous event arrives (Section 5.1), discard the value
  and return ``Bad event``;
* if the runtime detects divergence (fuel), either genuinely diverge
  or — when a timeout monitor is installed — return ``Bad Timeout``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.excset import Exc, TIMEOUT
from repro.io.events import EventPlan
from repro.machine.eval import Machine
from repro.machine.heap import (
    AsyncInterrupt,
    Cell,
    MachineDiverged,
    ObjRaise,
)
from repro.machine.values import VCon, VFun, VInt, VIO, VStr, Value
from repro.obs.events import IO_ACTION


class IORunError(Exception):
    """An ill-formed IO action reached the executor."""


@dataclass
class IOResult:
    """The observable result of running a program.

    ``status`` is ``"ok"`` (``value`` holds the final value),
    ``"exception"`` (``exc`` holds the uncaught exception — "the
    implementation should report" it, Section 4.4), or ``"diverged"``.
    ``stdout`` collects everything written by ``putChar``/``putStr``.
    """

    status: str
    stdout: str
    value: Optional[Value] = None
    exc: Optional[Exc] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def __str__(self) -> str:
        if self.status == "ok":
            return f"IOResult(ok, value={self.value}, stdout={self.stdout!r})"
        if self.status == "exception":
            return f"IOResult(uncaught {self.exc}, stdout={self.stdout!r})"
        return f"IOResult(diverged, stdout={self.stdout!r})"


class IOExecutor:
    """Performs IO actions against a machine.

    Parameters
    ----------
    machine:
        The evaluator (its strategy determines which representative
        exception ``getException`` observes).
    stdin:
        Characters served to ``getChar``.
    timeout_as_exception:
        When True, a ``MachineDiverged`` during ``getException``'s
        forcing is reported as ``Bad Timeout`` (the Section 5.1
        external monitoring system); when False the divergence is
        genuine.
    sink:
        Optional trace sink; forwarded to a machine the executor
        creates, or attached to the one passed in.  The executor
        additionally emits one ``io-action`` event per performed
        action.
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        stdin: str = "",
        timeout_as_exception: bool = False,
        events: Optional[EventPlan] = None,
        sink=None,
    ) -> None:
        if machine is None:
            machine = Machine(
                event_plan=events.as_dict() if events else None,
                sink=sink,
            )
        elif sink is not None:
            machine.attach_sink(sink)
        self.machine = machine
        self.stdin = list(stdin)
        self.stdout: List[str] = []
        self.timeout_as_exception = timeout_as_exception

    # -- running ----------------------------------------------------------

    def run_cell(self, cell: Cell) -> IOResult:
        """Perform a complete ``IO`` computation held in a cell."""
        try:
            result = self._perform(cell)
            return IOResult("ok", "".join(self.stdout), value=result)
        except ObjRaise as err:
            return IOResult(
                "exception", "".join(self.stdout), exc=err.exc
            )
        except AsyncInterrupt as err:
            return IOResult(
                "exception", "".join(self.stdout), exc=err.exc
            )
        except MachineDiverged:
            return IOResult("diverged", "".join(self.stdout))

    def run_value(self, value: Value) -> IOResult:
        return self.run_cell(Cell.ready(value))

    # -- the interpreter ----------------------------------------------------

    def _perform(self, cell: Cell) -> Value:
        """Perform one IO computation to completion, returning the
        delivered value (in WHNF is not required — laziness preserved
        via cells, but the action structure itself is forced)."""
        machine = self.machine
        while True:
            action = cell.force(machine)
            if not isinstance(action, VIO):
                raise IORunError(f"performed a non-IO value: {action}")
            tag = action.tag
            if machine._tracing:
                machine.sink.emit(IO_ACTION, tag=tag)
            if tag == "return":
                return action.payload[0].force(machine)
            if tag == "bind":
                m_cell, k_cell = action.payload
                result = self._perform(m_cell)
                k = k_cell.force(machine)
                if not isinstance(k, VFun):
                    raise IORunError(">>= continuation is not a function")
                cell = machine.bind_cell(k, Cell.ready(result))
                continue
            if tag == "getChar":
                if not self.stdin:
                    raise ObjRaise(Exc("UserError", "end of input"))
                return VStr(self.stdin.pop(0))
            if tag == "putChar":
                ch = action.payload[0].force(machine)
                if not isinstance(ch, VStr):
                    raise IORunError("putChar of a non-character")
                self.stdout.append(ch.value)
                return VCon("Unit")
            if tag == "putStr":
                text = action.payload[0].force(machine)
                if not isinstance(text, VStr):
                    raise IORunError("putStr of a non-string")
                self.stdout.append(text.value)
                return VCon("Unit")
            if tag == "getException":
                return self._get_exception(action.payload[0])
            if tag == "ioError":
                exc_value = action.payload[0].force(machine)
                raise ObjRaise(machine.exc_of_value(exc_value))
            if tag == "catch":
                # Extension primitive (not in the paper): run an IO
                # action; an exception escaping from it — whether from
                # forcing values inside it or from ioError — is passed
                # to the handler, whose resulting action continues.
                body_cell, handler_cell = action.payload
                try:
                    return self._perform(body_cell)
                except (ObjRaise, AsyncInterrupt) as err:
                    handler = handler_cell.force(machine)
                    if not isinstance(handler, VFun):
                        raise IORunError(
                            "catchIO handler is not a function"
                        ) from None
                    cell = machine.bind_cell(
                        handler, Cell.ready(machine.value_of_exc(err.exc))
                    )
                    continue
            raise IORunError(f"unknown IO action {tag!r}")

    def _get_exception(self, cell: Cell) -> Value:
        """The Section 3.3 implementation of ``getException``."""
        machine = self.machine
        try:
            value = cell.force(machine)
            return VCon("OK", (Cell.ready(value),))
        except ObjRaise as err:
            return VCon(
                "Bad", (Cell.ready(machine.value_of_exc(err.exc)),)
            )
        except AsyncInterrupt as err:
            # Section 5.1: the value is discarded, the event returned.
            return VCon(
                "Bad", (Cell.ready(machine.value_of_exc(err.exc)),)
            )
        except MachineDiverged:
            if self.timeout_as_exception:
                # The watchdog fired; the rest of the program gets a
                # fresh step budget (the monitor only polices this one
                # evaluation, Section 5.1).
                machine.grant_fuel(machine.fuel or 1_000_000)
                return VCon(
                    "Bad", (Cell.ready(machine.value_of_exc(TIMEOUT)),)
                )
            raise
