"""Asynchronous events (Section 5.1).

Asynchronous exceptions — interrupts, timeouts, resource exhaustion —
"perhaps will not recur (at all) if the same program is run again", so
they are not part of any denotation.  We model their delivery with an
:class:`EventPlan`: a schedule mapping machine step numbers to events.
The machine raises the event as an ``AsyncInterrupt`` when its step
counter passes the scheduled point; ``getException`` is free to catch
it and return ``Bad event`` (rule: ``getException v --?x--> return
(Bad x)``), discarding ``v`` even when ``v`` is a perfectly normal
value like 42.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.core.excset import CONTROL_C, Exc, HEAP_OVERFLOW, STACK_OVERFLOW, TIMEOUT


@dataclass(frozen=True)
class EventPlan:
    """A deterministic schedule of asynchronous events.

    ``schedule`` maps a machine step count to the event injected when
    evaluation reaches that step.  Determinism keeps tests
    reproducible; the *semantics* places no constraint on when events
    arrive, which is exactly why they cannot live in denotations.
    """

    schedule: Tuple[Tuple[int, Exc], ...] = ()

    def as_dict(self) -> Dict[int, Exc]:
        return dict(self.schedule)

    def shifted(self, offset: int) -> "EventPlan":
        return EventPlan(
            tuple((step + offset, exc) for step, exc in self.schedule)
        )


def timeout_after(steps: int) -> EventPlan:
    """An external monitoring system injecting Timeout after a budget
    ("if evaluation of my argument goes on for too long...")."""
    return EventPlan(((steps, TIMEOUT),))


def control_c_at(step: int) -> EventPlan:
    """The programmer typing ^C at a particular moment."""
    return EventPlan(((step, CONTROL_C),))


def stack_overflow_at(step: int) -> EventPlan:
    return EventPlan(((step, STACK_OVERFLOW),))


def heap_overflow_at(step: int) -> EventPlan:
    return EventPlan(((step, HEAP_OVERFLOW),))
