"""Choice oracles for the non-deterministic IO rules.

``getException`` "is free (although absolutely not required) to consult
some external oracle (the FT Share Index, say)" when choosing which
member of an exception set to return (Section 3.5).  An
:class:`Oracle` is that external consultant, used by the denotational
runner :func:`repro.io.transition.run_denotational`.  The operational
executor needs no oracle: its "choice" is whichever exception the
machine's evaluation strategy encounters first.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.core.excset import DIVIDE_BY_ZERO, Exc, ExcSet, NON_TERMINATION


class Oracle:
    """Chooses one exception from a set, and whether to diverge when
    divergence is permitted (NonTermination in the set)."""

    def choose(self, excs: ExcSet) -> Exc:
        raise NotImplementedError

    def choose_divergence(self, excs: ExcSet) -> bool:
        """May return True only when ``NonTermination ∈ excs``."""
        return False


class FirstOracle(Oracle):
    """Deterministic: the canonical witness of the set."""

    def choose(self, excs: ExcSet) -> Exc:
        witness = excs.witness()
        if witness is None:
            raise ValueError("cannot choose from an empty exception set")
        return witness


class SeededOracle(Oracle):
    """Pseudo-random but reproducible choice; models "each call to
    getException can make a different choice"."""

    def __init__(self, seed: int = 0, diverge_probability: float = 0.0):
        self._rng = random.Random(seed)
        self.diverge_probability = diverge_probability

    def choose(self, excs: ExcSet) -> Exc:
        members = sorted(excs.finite_members())
        if excs.is_finite():
            if not members:
                raise ValueError("cannot choose from an empty exception set")
            return self._rng.choice(members)
        # Infinite set: any synchronous exception at all is permitted —
        # this is where "fictitious exceptions" (Section 5.3) come from.
        pool = list(members) + [DIVIDE_BY_ZERO]
        return self._rng.choice(pool)

    def choose_divergence(self, excs: ExcSet) -> bool:
        if NON_TERMINATION not in excs:
            return False
        return self._rng.random() < self.diverge_probability
