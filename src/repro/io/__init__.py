"""The IO layer (Sections 3.5, 4.4 and 5.1).

Two complementary implementations:

* :mod:`repro.io.run` — an *executor* that performs IO actions built by
  the operational machine: ``getException`` marks the stack, forces its
  argument, and catches the in-flight exception (Section 3.3), with
  optional asynchronous event injection (Section 5.1).
* :mod:`repro.io.transition` — the paper's labelled transition system
  over *denotational* values (Section 4.4), including the
  non-deterministic ``getException (Bad s)`` rules; it can enumerate
  every possible trace/result of a program, which is how the tests
  check that the executor only ever produces permitted outcomes.
"""

from repro.io.concurrent import (
    ConcurrentResult,
    Scheduler,
    run_concurrent_program,
    run_concurrent_source,
)
from repro.io.equivalence import (
    IOEquivalenceReport,
    compare_io,
    compare_io_sources,
)
from repro.io.events import EventPlan, control_c_at, timeout_after
from repro.io.oracle import FirstOracle, Oracle, SeededOracle
from repro.io.run import IOExecutor, IOResult
from repro.io.transition import (
    MayDiverge,
    TraceResult,
    enumerate_outcomes,
    run_denotational,
)

__all__ = [
    "ConcurrentResult",
    "EventPlan",
    "FirstOracle",
    "IOEquivalenceReport",
    "IOExecutor",
    "IOResult",
    "MayDiverge",
    "Oracle",
    "Scheduler",
    "SeededOracle",
    "TraceResult",
    "compare_io",
    "compare_io_sources",
    "control_c_at",
    "enumerate_outcomes",
    "run_concurrent_program",
    "run_concurrent_source",
    "run_denotational",
    "timeout_after",
]
