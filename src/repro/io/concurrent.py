"""Concurrency: ``forkIO``, MVars and a scheduler.

The paper remarks that its IO-layer presentation "scales to other
extensions, such as adding concurrency to the language" (Section 4.4,
citing Concurrent Haskell).  This module is that extension, built in
the paper's style:

* threads interleave at **IO-action granularity** — pure evaluation is
  atomic (exactly the paper's split: the pure layer has no effects to
  interleave);
* the schedule is one more *strategy*: like evaluation order it is an
  implementation choice the semantics does not pin down, so which
  thread's output comes first is imprecise in precisely the same sense
  as which exception is observed first — and, like strategies, a fixed
  scheduler is reproducible;
* ``getException`` / ``catchIO`` are per-thread; an exception escaping
  a forked thread kills that thread alone, one escaping the main
  thread ends the program (GHC's model);
* MVars are the communication primitive: ``takeMVar`` on an empty MVar
  blocks the thread, ``putMVar`` on a full one blocks, and when every
  thread is blocked the runtime reports the deadlock as an exceptional
  result (GHC's ``BlockedIndefinitelyOnMVar``) — a *detectable bottom*
  in the spirit of Section 5.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.excset import Exc, TIMEOUT
from repro.machine.eval import Machine
from repro.machine.heap import (
    AsyncInterrupt,
    Cell,
    MachineDiverged,
    ObjRaise,
)
from repro.machine.values import VCon, VFun, VIO, VMVar, VStr, Value

BLOCKED_INDEFINITELY = Exc("BlockedIndefinitely", synchronous=False)


class ConcurrencyError(Exception):
    """An ill-formed concurrent program reached the scheduler."""


@dataclass
class ThreadOutcome:
    """How one thread ended."""

    thread_id: int
    status: str  # "done" | "exception" | "blocked"
    exc: Optional[Exc] = None


@dataclass
class ConcurrentResult:
    """The observable result of a concurrent run."""

    status: str  # "ok" | "exception" | "deadlock" | "diverged"
    stdout: str
    value: Optional[Value] = None
    exc: Optional[Exc] = None
    threads: Tuple[ThreadOutcome, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class _Frame:
    """A continuation frame: either a bind continuation or a catch
    handler boundary."""

    __slots__ = ("kind", "payload")

    def __init__(self, kind: str, payload) -> None:
        self.kind = kind  # "bind" | "catch"
        self.payload = payload  # Cell holding a VFun


class _Thread:
    __slots__ = ("thread_id", "action", "stack", "is_main")

    def __init__(self, thread_id: int, action: Cell, is_main: bool) -> None:
        self.thread_id = thread_id
        self.action = action
        self.stack: List[_Frame] = []
        self.is_main = is_main


class _MVar:
    __slots__ = ("contents", "take_queue", "put_queue")

    def __init__(self, contents: Optional[Cell]) -> None:
        self.contents = contents
        # Threads blocked on this MVar.
        self.take_queue: Deque[_Thread] = deque()
        # (thread, value-cell) pairs blocked trying to put.
        self.put_queue: Deque[Tuple[_Thread, Cell]] = deque()


class Scheduler:
    """Round-robin over runnable threads, ``quantum`` IO actions per
    turn.  The quantum plays the role evaluation strategies play for
    exceptions: a legal implementation choice that changes observable
    interleavings, reproducibly."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        stdin: str = "",
        quantum: int = 1,
        max_actions: int = 100_000,
        timeout_as_exception: bool = False,
    ) -> None:
        self.machine = machine or Machine()
        self.stdin = list(stdin)
        self.stdout: List[str] = []
        self.quantum = max(1, quantum)
        self.max_actions = max_actions
        self.timeout_as_exception = timeout_as_exception
        self.mvars: List[_MVar] = []
        self.runnable: Deque[_Thread] = deque()
        self.outcomes: List[ThreadOutcome] = []
        self._next_thread_id = 0
        self._main_result: Optional[Value] = None
        self._main_exc: Optional[Exc] = None
        self._blocked_count = 0

    # -- public API ------------------------------------------------------

    def run_cell(self, cell: Cell) -> ConcurrentResult:
        self._spawn(cell, is_main=True)
        actions = 0
        while self.runnable:
            if actions >= self.max_actions:
                return self._result("diverged")
            thread = self.runnable.popleft()
            state = "runnable"
            used = 0
            while used < self.quantum and state == "runnable":
                actions += 1
                used += 1
                state = self._step(thread)
            if state == "runnable":
                self.runnable.append(thread)
            elif state == "main-done":
                return self._result(
                    "ok" if self._main_exc is None else "exception"
                )
            # "blocked" and "dead" threads leave the run queue.
        if self._blocked_count:
            # Every thread blocked on an MVar: detectable deadlock.
            return self._result("deadlock")
        return self._result(
            "ok" if self._main_exc is None else "exception"
        )

    # -- internals ---------------------------------------------------------

    def _result(self, status: str) -> ConcurrentResult:
        if status == "ok" and self._main_result is None:
            # main never finished (e.g. it deadlocked or we ran out of
            # actions) — should not be reported as ok.
            status = "deadlock" if self._blocked_count else "diverged"
        return ConcurrentResult(
            status=status,
            stdout="".join(self.stdout),
            value=self._main_result,
            exc=self._main_exc
            if self._main_exc is not None
            else (
                BLOCKED_INDEFINITELY if status == "deadlock" else None
            ),
            threads=tuple(self.outcomes),
        )

    def _spawn(self, action: Cell, is_main: bool) -> _Thread:
        thread = _Thread(self._next_thread_id, action, is_main)
        self._next_thread_id += 1
        self.runnable.append(thread)
        return thread

    def _finish(self, thread: _Thread, value: Value) -> str:
        self.outcomes.append(ThreadOutcome(thread.thread_id, "done"))
        if thread.is_main:
            self._main_result = value
            return "main-done"
        return "dead"

    def _die(self, thread: _Thread, exc: Exc) -> str:
        """An exception escaped the thread entirely."""
        self.outcomes.append(
            ThreadOutcome(thread.thread_id, "exception", exc)
        )
        if thread.is_main:
            self._main_exc = exc
            return "main-done"
        return "dead"

    def _deliver(self, thread: _Thread, value: Value) -> str:
        """A step produced a (forced) value: hand it to the next bind
        continuation."""
        return self._deliver_cell(thread, Cell.ready(value))

    def _deliver_cell(self, thread: _Thread, cell: Cell) -> str:
        """Hand a possibly-unevaluated cell to the continuation —
        laziness flows through MVars: an exceptional value taken from
        an MVar surfaces at its *consumer*, not at the take."""
        while thread.stack:
            frame = thread.stack.pop()
            if frame.kind == "catch":
                continue  # body completed; handler is discarded
            k = frame.payload.force(self.machine)
            if not isinstance(k, VFun):
                raise ConcurrencyError(">>= continuation not a function")
            thread.action = self.machine.bind_cell(k, cell)
            return "runnable"
        try:
            value = cell.force(self.machine)
        except (ObjRaise, AsyncInterrupt) as err:
            return self._die(thread, err.exc)
        return self._finish(thread, value)

    def _raise_in(self, thread: _Thread, exc: Exc) -> str:
        """An exception escaping the current action: unwind to the
        nearest catch frame, else the thread dies."""
        while thread.stack:
            frame = thread.stack.pop()
            if frame.kind != "catch":
                continue
            handler = frame.payload.force(self.machine)
            if not isinstance(handler, VFun):
                raise ConcurrencyError("catch handler not a function")
            thread.action = self.machine.bind_cell(
                handler, Cell.ready(self.machine.value_of_exc(exc))
            )
            return "runnable"
        return self._die(thread, exc)

    def _step(self, thread: _Thread) -> str:
        """Perform one IO action of one thread."""
        machine = self.machine
        try:
            action = thread.action.force(machine)
        except (ObjRaise, AsyncInterrupt) as err:
            return self._raise_in(thread, err.exc)
        except MachineDiverged:
            if self.timeout_as_exception:
                machine.grant_fuel(machine.fuel or 1_000_000)
                return self._raise_in(thread, TIMEOUT)
            raise
        if not isinstance(action, VIO):
            raise ConcurrencyError(f"performed non-IO value {action}")
        tag = action.tag
        if tag == "return":
            # The returned value stays lazy; exceptions inside it
            # surface at the consumer, exactly as in the sequential
            # executor.
            try:
                value = action.payload[0].force(machine)
            except (ObjRaise, AsyncInterrupt) as err:
                return self._raise_in(thread, err.exc)
            return self._deliver(thread, value)
        if tag == "bind":
            m_cell, k_cell = action.payload
            thread.stack.append(_Frame("bind", k_cell))
            thread.action = m_cell
            return "runnable"
        if tag == "catch":
            body_cell, handler_cell = action.payload
            thread.stack.append(_Frame("catch", handler_cell))
            thread.action = body_cell
            return "runnable"
        if tag == "fork":
            child = self._spawn(action.payload[0], is_main=False)
            return self._deliver(thread, VCon("Unit"))
        if tag == "yield":
            return self._deliver(thread, VCon("Unit"))
        if tag == "getChar":
            if not self.stdin:
                return self._raise_in(
                    thread, Exc("UserError", "end of input")
                )
            return self._deliver(thread, VStr(self.stdin.pop(0)))
        if tag in ("putChar", "putStr"):
            try:
                text = action.payload[0].force(machine)
            except (ObjRaise, AsyncInterrupt) as err:
                return self._raise_in(thread, err.exc)
            if not isinstance(text, VStr):
                raise ConcurrencyError("putChar/putStr of non-string")
            self.stdout.append(text.value)
            return self._deliver(thread, VCon("Unit"))
        if tag == "getException":
            try:
                value = action.payload[0].force(machine)
                result = VCon("OK", (Cell.ready(value),))
            except (ObjRaise, AsyncInterrupt) as err:
                result = VCon(
                    "Bad", (Cell.ready(machine.value_of_exc(err.exc)),)
                )
            except MachineDiverged:
                if not self.timeout_as_exception:
                    raise
                machine.grant_fuel(machine.fuel or 1_000_000)
                result = VCon(
                    "Bad", (Cell.ready(machine.value_of_exc(TIMEOUT)),)
                )
            return self._deliver(thread, result)
        if tag == "ioError":
            try:
                exc_value = action.payload[0].force(machine)
            except (ObjRaise, AsyncInterrupt) as err:
                return self._raise_in(thread, err.exc)
            return self._raise_in(
                thread, machine.exc_of_value(exc_value)
            )
        if tag == "newMVar":
            self.mvars.append(_MVar(action.payload[0]))
            return self._deliver(thread, VMVar(len(self.mvars) - 1))
        if tag == "newEmptyMVar":
            self.mvars.append(_MVar(None))
            return self._deliver(thread, VMVar(len(self.mvars) - 1))
        if tag == "takeMVar":
            mvar = self._mvar(thread, action.payload[0])
            if mvar is None:
                return "dead"  # _mvar already reported
            if mvar.contents is None:
                mvar.take_queue.append(thread)
                self._blocked_count += 1
                return "blocked"
            cell = mvar.contents
            mvar.contents = None
            self._wake_putter(mvar)
            return self._deliver_cell(thread, cell)
        if tag == "putMVar":
            mvar = self._mvar(thread, action.payload[0])
            if mvar is None:
                return "dead"
            value_cell = action.payload[1]
            if mvar.contents is not None:
                mvar.put_queue.append((thread, value_cell))
                self._blocked_count += 1
                return "blocked"
            self._fill(mvar, value_cell)
            return self._deliver(thread, VCon("Unit"))
        raise ConcurrencyError(f"unknown IO action {tag!r}")

    def _mvar(self, thread: _Thread, ref_cell: Cell) -> Optional[_MVar]:
        try:
            ref = ref_cell.force(self.machine)
        except (ObjRaise, AsyncInterrupt) as err:
            self._raise_in(thread, err.exc)
            return None
        if not isinstance(ref, VMVar):
            raise ConcurrencyError("MVar operation on a non-MVar")
        return self.mvars[ref.ref]

    def _fill(self, mvar: _MVar, value_cell: Cell) -> None:
        """Put a value; hand it (still lazy) straight to a blocked
        taker if any."""
        if mvar.take_queue:
            taker = mvar.take_queue.popleft()
            self._blocked_count -= 1
            state = self._deliver_cell(taker, value_cell)
            if state == "runnable":
                self.runnable.append(taker)
            return
        mvar.contents = value_cell

    def _wake_putter(self, mvar: _MVar) -> None:
        if mvar.put_queue:
            putter, value_cell = mvar.put_queue.popleft()
            self._blocked_count -= 1
            mvar.contents = value_cell
            state = self._deliver(putter, VCon("Unit"))
            if state == "runnable":
                self.runnable.append(putter)


def run_concurrent_source(
    source: str,
    stdin: str = "",
    quantum: int = 1,
    fuel: int = 2_000_000,
    max_actions: int = 100_000,
    strategy=None,
    timeout_as_exception: bool = False,
    backend: str = "ast",
) -> ConcurrentResult:
    """Compile an IO expression (prelude in scope) and run it under the
    round-robin scheduler."""
    from repro.api import compile_expr
    from repro.prelude.loader import machine_env

    machine = Machine(strategy=strategy, fuel=fuel, backend=backend)
    scheduler = Scheduler(
        machine=machine,
        stdin=stdin,
        quantum=quantum,
        max_actions=max_actions,
        timeout_as_exception=timeout_as_exception,
    )
    expr = compile_expr(source)
    return scheduler.run_cell(Cell(expr, machine_env(machine)))


def run_concurrent_program(
    source: str,
    entry: str = "main",
    stdin: str = "",
    quantum: int = 1,
    fuel: int = 2_000_000,
    max_actions: int = 100_000,
    typecheck: bool = False,
    backend: str = "ast",
) -> ConcurrentResult:
    """Compile a module and run its entry point concurrently."""
    from repro.api import compile_program
    from repro.machine.eval import program_env
    from repro.prelude.loader import machine_env

    program = compile_program(source, typecheck=typecheck)
    machine = Machine(fuel=fuel, backend=backend)
    scheduler = Scheduler(
        machine=machine,
        stdin=stdin,
        quantum=quantum,
        max_actions=max_actions,
    )
    env = program_env(program, machine, machine_env(machine))
    cell = env.get(entry)
    if cell is None:
        raise KeyError(f"no top-level binding {entry!r}")
    return scheduler.run_cell(cell)
