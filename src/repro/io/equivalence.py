"""Program equivalence for the IO layer.

The Section 4.4 semantics assigns a program "the set of traces obtained
from the labelled transition system".  Two IO programs are therefore

* **equivalent** when they admit exactly the same behaviours,
* one **refines** the other when its behaviour set is a subset
  (fewer behaviours = more deterministic = more defined, matching the
  pure layer's ⊑ which also shrinks towards definedness).

This gives an executable notion of "may this IO transformation be
applied?" mirroring the pure layer's law checker: e.g.

    getException (a + b) ≡ getException (b + a)

holds (both denote the same exception set, so the same behaviour set),
while under a fixed evaluation order it would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.core.domains import SemVal
from repro.core.excset import Exc
from repro.io.transition import TraceResult, enumerate_outcomes


def _canonical(results: FrozenSet[TraceResult]) -> FrozenSet[Tuple]:
    """Strip the fictitious sampling markers: two programs whose only
    difference is *which* representatives were sampled from an
    infinite set are not distinguishable."""
    out = set()
    for r in results:
        trace = tuple(t for t in r.trace if not t.startswith("~"))
        if r.fictitious:
            out.add((trace, r.kind, "<fictitious>"))
        else:
            out.add((trace, r.kind, r.detail))
    return frozenset(out)


@dataclass(frozen=True)
class IOEquivalenceReport:
    """The comparison of two programs' behaviour sets."""

    equivalent: bool
    lhs_refines_rhs: bool  # lhs ⊑ rhs: rhs's behaviours ⊆ lhs's
    rhs_refines_lhs: bool
    only_lhs: FrozenSet[Tuple]
    only_rhs: FrozenSet[Tuple]

    def __str__(self) -> str:
        if self.equivalent:
            return "equivalent"
        if self.lhs_refines_rhs:
            return "lhs ⊑ rhs (rhs more deterministic)"
        if self.rhs_refines_lhs:
            return "rhs ⊑ lhs (lhs more deterministic)"
        return (
            f"incomparable (only-lhs: {sorted(map(str, self.only_lhs))}, "
            f"only-rhs: {sorted(map(str, self.only_rhs))})"
        )


def compare_io(
    lhs: SemVal,
    rhs: SemVal,
    stdin: str = "",
    async_events: Sequence[Exc] = (),
    budget: int = 10_000,
) -> IOEquivalenceReport:
    """Compare the behaviour sets of two IO denotations."""
    lhs_set = _canonical(
        enumerate_outcomes(
            lhs, stdin=stdin, async_events=async_events, budget=budget
        )
    )
    rhs_set = _canonical(
        enumerate_outcomes(
            rhs, stdin=stdin, async_events=async_events, budget=budget
        )
    )
    return IOEquivalenceReport(
        equivalent=lhs_set == rhs_set,
        lhs_refines_rhs=rhs_set <= lhs_set,
        rhs_refines_lhs=lhs_set <= rhs_set,
        only_lhs=frozenset(lhs_set - rhs_set),
        only_rhs=frozenset(rhs_set - lhs_set),
    )


def compare_io_sources(
    lhs_src: str,
    rhs_src: str,
    stdin: str = "",
    fuel: int = 100_000,
    **kwargs,
) -> IOEquivalenceReport:
    """Convenience: compare two IO programs given as source."""
    from repro.api import denote_source

    return compare_io(
        denote_source(lhs_src, fuel=fuel),
        denote_source(rhs_src, fuel=fuel),
        stdin=stdin,
        **kwargs,
    )
