"""Commuting the arguments of commutative primitives.

The paper's flagship example (Section 3.4): "integer addition should be
commutative; that is, e1+e2 = e2+e1.  But what are we to make of
``getException ((1/0) + (error "Urk"))``?"  Under the set semantics the
law is a genuine identity — both orders denote
``Bad {DivideByZero, UserError "Urk"}`` — while under the
fixed-evaluation-order baseline it is unsound.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import Expr, PrimOp
from repro.lang.names import NameSupply
from repro.lang.ops import PRIM_TABLE
from repro.transform.base import Transformation


class CommutePrimArgs(Transformation):
    """``e1 + e2  ==>  e2 + e1`` for commutative primitives."""

    name = "commute-prim-args"
    expected = "identity"

    def __init__(self, ops: Optional[frozenset] = None) -> None:
        if ops is None:
            ops = frozenset(
                name
                for name, info in PRIM_TABLE.items()
                if info.commutes
            )
        self.ops = ops

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if (
            isinstance(expr, PrimOp)
            and expr.op in self.ops
            and len(expr.args) == 2
        ):
            return PrimOp(expr.op, (expr.args[1], expr.args[0]))
        return None
