"""Optimisation pipelines — the paper's "different optimisation
settings" knob (Section 3.5).

Each :class:`OptLevel` bundles transformations; applying different
levels to the same program (then running it on the machine) is the
executable version of "if the program is recompiled with different
optimisation settings, then indeed the order of evaluation might
change, so a different exception might be encountered first" — the
headline of experiment E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.strictness import StrictnessEnv
from repro.lang.ast import Expr, Program
from repro.lang.names import NameSupply, bound_vars, free_vars
from repro.transform.base import (
    Transformation,
    rewrite_bottom_up,
    rewrite_fixpoint,
)
from repro.transform.beta import BetaToLet
from repro.transform.case_rules import (
    AppOfCase,
    CaseOfCase,
    CaseOfKnownCon,
)
from repro.transform.commute import CommutePrimArgs
from repro.transform.inline import InlineLet
from repro.transform.let_rules import (
    DeadLetElimination,
    LetFloatFromApp,
    LetFloatFromCase,
)
from repro.transform.strictify import CallByValue


@dataclass(frozen=True)
class OptLevel:
    """A bundle of rules run to fixpoint, plus optional ``post_rules``
    applied exactly once at the end (for involutive rules like argument
    commuting, which a fixpoint driver would cancel out)."""

    name: str
    rules: Tuple[Transformation, ...]
    post_rules: Tuple[Transformation, ...] = ()

    def optimise(self, expr: Expr, max_rounds: int = 8) -> Expr:
        supply = NameSupply(avoid=free_vars(expr) | bound_vars(expr))
        optimised, _count = rewrite_fixpoint(
            expr, list(self.rules), supply, max_rounds=max_rounds
        )
        for rule in self.post_rules:
            optimised, _count = rewrite_bottom_up(
                optimised, rule, supply
            )
        return optimised

    def optimise_program(self, program: Program) -> Program:
        binds = tuple(
            (name, self.optimise(rhs)) for name, rhs in program.binds
        )
        return Program(program.data_decls, binds, program.type_sigs)

    def __str__(self) -> str:
        return self.name


O0 = OptLevel("O0", ())

O1 = OptLevel(
    "O1",
    (
        BetaToLet(),
        CaseOfKnownCon(),
        InlineLet(),
        DeadLetElimination(),
    ),
)

O2 = OptLevel(
    "O2",
    (
        BetaToLet(),
        CaseOfKnownCon(),
        InlineLet(),
        DeadLetElimination(),
        LetFloatFromApp(),
        LetFloatFromCase(),
        CaseOfCase(),
        AppOfCase(),
    ),
)


def O2_strict(env: StrictnessEnv) -> OptLevel:
    """O2 plus strictness-driven call-by-value (needs a strictness
    environment from :func:`repro.analysis.strictness.analyse_program`)."""
    return OptLevel("O2+strict", O2.rules + (CallByValue(env),))


def O2_commuted(ops: Optional[frozenset] = None) -> OptLevel:
    """O2 plus a final single pass of argument commuting — a legal
    optimiser under the imprecise semantics that flips evaluation
    orders, used by E5 to exhibit a *different* member of the denoted
    set.  (Commuting is involutive, so it runs as a post rule rather
    than inside the fixpoint loop, which would cancel it out.)"""
    return OptLevel(
        "O2+commute", O2.rules, post_rules=(CommutePrimArgs(ops),)
    )


ALL_LEVELS: Sequence[OptLevel] = (O0, O1, O2)


class Pipeline:
    """A named sequence of optimisation levels applied in order."""

    def __init__(self, levels: Sequence[OptLevel]) -> None:
        self.levels = tuple(levels)

    def optimise(self, expr: Expr) -> Expr:
        for level in self.levels:
            expr = level.optimise(expr)
        return expr


def pipeline_for(name: str, strict_env: Optional[StrictnessEnv] = None) -> OptLevel:
    if name == "O0":
        return O0
    if name == "O1":
        return O1
    if name == "O2":
        return O2
    if name == "O2+strict":
        return O2_strict(strict_env or {})
    if name == "O2+commute":
        return O2_commuted()
    raise ValueError(f"unknown optimisation level {name!r}")
