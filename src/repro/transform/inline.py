"""Inlining let-bound definitions.

Semantically always an identity here — this is precisely the paper's
point about confining non-determinism to the IO monad: because
``getException`` is an IO action, ``let x = e in ... x ... x ...`` can
be replaced by two copies of ``e`` without changing meaning
(Section 3.5's beta-reduction discussion).  Under the rejected
"go non-deterministic" design this rewrite is unsound
(:mod:`repro.baselines.nondet` demonstrates the failure).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Raise,
    Var,
)
from repro.lang.names import NameSupply, free_vars, substitute
from repro.transform.base import Transformation


def _count_occurrences(expr: Expr, name: str) -> int:
    if isinstance(expr, Var):
        return 1 if expr.name == name else 0
    if isinstance(expr, Lit):
        return 0
    if isinstance(expr, Lam):
        if expr.var == name:
            return 0
        return _count_occurrences(expr.body, name)
    if isinstance(expr, App):
        return _count_occurrences(expr.fn, name) + _count_occurrences(
            expr.arg, name
        )
    if isinstance(expr, Con):
        return sum(_count_occurrences(a, name) for a in expr.args)
    if isinstance(expr, Case):
        total = _count_occurrences(expr.scrutinee, name)
        for alt in expr.alts:
            from repro.lang.ast import pattern_vars

            if name in pattern_vars(alt.pattern):
                continue
            total += _count_occurrences(alt.body, name)
        return total
    if isinstance(expr, Raise):
        return _count_occurrences(expr.exc, name)
    if isinstance(expr, PrimOp):
        return sum(_count_occurrences(a, name) for a in expr.args)
    if isinstance(expr, Fix):
        return _count_occurrences(expr.fn, name)
    if isinstance(expr, Let):
        if any(bname == name for bname, _ in expr.binds):
            return 0
        total = _count_occurrences(expr.body, name)
        for _bname, rhs in expr.binds:
            total += _count_occurrences(rhs, name)
        return total
    return 0


def _is_cheap(expr: Expr) -> bool:
    """Cheap to duplicate: no risk of work duplication."""
    return isinstance(expr, (Var, Lit, Lam)) or (
        isinstance(expr, Con) and not expr.args
    )


class InlineLet(Transformation):
    """Inline a non-recursive let binding that is either cheap or used
    at most once.  Cost-motivated restrictions only — the rewrite is a
    semantic identity regardless of use count."""

    name = "inline-let"
    expected = "identity"

    def __init__(self, aggressive: bool = False) -> None:
        self.aggressive = aggressive
        if aggressive:
            self.name = "inline-let(aggressive)"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not isinstance(expr, Let) or len(expr.binds) != 1:
            return None
        (name, rhs), = expr.binds
        if name in free_vars(rhs):
            return None  # recursive
        uses = _count_occurrences(expr.body, name)
        if uses == 0:
            return expr.body
        if self.aggressive or _is_cheap(rhs) or uses == 1:
            return substitute(expr.body, {name: rhs})
        return None
