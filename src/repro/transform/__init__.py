"""Program transformations and their verification (Sections 3.4, 4.5).

The paper's central claim is that the imprecise semantics "retains
almost all useful opportunities for transformation ... No separate
effect analysis is required."  This package makes that claim
executable:

* each :class:`Transformation` is a local rewrite rule;
* :mod:`repro.transform.pipeline` assembles them into optimisation
  levels (the "recompiled with different optimisation settings" knob of
  Section 3.5);
* :mod:`repro.transform.verify` classifies a rule as *identity*,
  *refinement* or *unsound* under a chosen semantics, by comparing
  denotations over instantiation batteries — reproducing the paper's
  examples (commutativity of ``+``, beta reduction, case-switching,
  ``error "This" /= error "That"``).
"""

from repro.transform.base import (
    Transformation,
    rewrite_bottom_up,
    rewrite_everywhere,
    rewrite_fixpoint,
)
from repro.transform.beta import BetaReduce, BetaToLet, EtaReduce
from repro.transform.case_rules import (
    AppOfCase,
    CaseOfCase,
    CaseOfKnownCon,
    CaseSwitch,
    DeadAltRemoval,
)
from repro.transform.commute import CommutePrimArgs
from repro.transform.cse import CommonSubexpression
from repro.transform.inline import InlineLet
from repro.transform.let_rules import (
    DeadLetElimination,
    LetFloatFromApp,
    LetFloatFromCase,
)
from repro.transform.strictify import CallByValue
from repro.transform.pipeline import (
    OptLevel,
    Pipeline,
    O0,
    O1,
    O2,
    pipeline_for,
)
from repro.transform.verify import (
    TransformReport,
    classify_on_corpus,
    classify_transformation,
    default_corpus,
)

__all__ = [
    "AppOfCase",
    "BetaReduce",
    "BetaToLet",
    "CallByValue",
    "CaseOfCase",
    "CaseOfKnownCon",
    "CaseSwitch",
    "CommonSubexpression",
    "CommutePrimArgs",
    "DeadAltRemoval",
    "DeadLetElimination",
    "EtaReduce",
    "InlineLet",
    "LetFloatFromApp",
    "LetFloatFromCase",
    "O0",
    "O1",
    "O2",
    "OptLevel",
    "Pipeline",
    "TransformReport",
    "Transformation",
    "classify_on_corpus",
    "classify_transformation",
    "default_corpus",
    "pipeline_for",
    "rewrite_bottom_up",
    "rewrite_everywhere",
    "rewrite_fixpoint",
]
