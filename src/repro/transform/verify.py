"""Classifying transformations under a chosen semantics.

For a rule ``t`` and a corpus of expressions, every firing
``e -> t(e)`` is checked with the law machinery of
:mod:`repro.core.laws`: denotations of both sides are compared over a
battery of instantiations of the free variables.

The verdict per firing is *identity*, *refinement* (``[e] ⊑ [t e]``,
legitimate per Section 4.5) or *unsound*.  A rule's verdict on a corpus
is the worst verdict over all firings.  Running the same classification
with the fixed-evaluation-order context reproduces the paper's
comparison: rules that are identities under the imprecise semantics
become unsound under fixed order unless an effect analysis can prove
the operands exception-free (E3, E6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.denote import DenoteContext
from repro.core.laws import (
    BOOL_BATTERY,
    DEFAULT_BATTERY,
    PAIR_BATTERY,
    TOTAL_FUNCTION_BATTERY,
    LawReport,
    check_law,
)
from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Raise,
)
from repro.lang.match import flatten_case_patterns
from repro.lang.names import NameSupply, bound_vars, free_vars
from repro.lang.parser import parse_expr
from repro.transform.base import Transformation

_VERDICT_RANK = {"identity": 0, "refinement": 1, "unsound": 2}


@dataclass
class TransformReport:
    """Aggregated verdicts for one rule over a corpus."""

    rule: str
    semantics: str
    firings: int = 0
    identities: int = 0
    refinements: int = 0
    unsound: int = 0
    worst: str = "identity"
    counterexamples: List[LawReport] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """Legal to apply everywhere (identity or refinement)?"""
        return self.unsound == 0

    def record(self, report: LawReport) -> None:
        self.firings += 1
        if report.verdict == "identity":
            self.identities += 1
        elif report.verdict == "refinement":
            self.refinements += 1
        else:
            self.unsound += 1
            if len(self.counterexamples) < 3:
                self.counterexamples.append(report)
        if _VERDICT_RANK[report.verdict] > _VERDICT_RANK[self.worst]:
            self.worst = report.verdict

    def __str__(self) -> str:
        return (
            f"{self.rule:28s} [{self.semantics:12s}] "
            f"firings={self.firings:3d} id={self.identities:3d} "
            f"refine={self.refinements:3d} unsound={self.unsound:3d} "
            f"-> {self.worst}"
        )


# The corpus: expression schemas with free variables standing for
# arbitrary denotations.  Each is chosen to exercise a particular
# transformation; several are lifted straight from the paper.
#
# Naming convention (laws quantify over *well-typed* environments):
#   a b c d e  — scalar battery (ints, bools, Bads, ⊥)
#   f g h      — total functions (the paper's own instantiations; the
#                effect of ⊥-bodied functions is a separate finding,
#                see tests/transform/test_findings.py)
#   p q r      — booleans (scrutinised against True/False)
#   x y        — pairs (scrutinised against Tuple2 patterns)
_CORPUS_SOURCES: Tuple[str, ...] = (
    # arithmetic with potential exceptions everywhere
    "a + b",
    "(a + b) * c",
    "a + (b `div` c)",
    "(1 `div` 0) + a",
    # the paper's Section 3.4 example
    "(1 `div` 0) + (raise (UserError \"Urk\"))",
    # beta / inlining shapes
    "(\\w -> w + w) a",
    "(\\w -> 3) a",
    "(\\w -> w + b) (a * a)",
    "let { v = a + b } in v * v",
    "let { v = a } in v + (let { u = b } in u)",
    # case shapes (flat patterns; Bool scrutinees use p/q/r)
    "case p of { True -> b; False -> c }",
    "case p of { True -> b + 1; False -> b + 2 }",
    "(case p of { True -> f; False -> g }) b",
    "case (case p of { True -> q; False -> r }) of "
    "{ True -> d; False -> e }",
    "case p of { True -> case q of { True -> c; False -> d };"
    " False -> e }",
    # the Section 4 case-switch pair shape
    "case x of { Tuple2 a b -> case y of { Tuple2 s t -> a + s } }",
    # seq / forcing
    "seq a b",
    "seq (a + b) c",
    # raise in value position
    "raise (UserError \"This\")",
    "(raise DivideByZero) a",
    # application of possibly-exceptional function
    "f (a + b)",
    "(case p of { True -> f; False -> raise Overflow }) a",
    # eta shape (the verifier must REJECT eta-reduce on this)
    "\\w -> f w",
    # dead binding
    "let { unused = a `div` b } in c + 1",
    # known-constructor scrutinee
    "case Just a of { Just v -> v + 1; Nothing -> 0 }",
    "case Nil of { Nil -> a; Cons h t -> h }",
    # shadowed (dead) alternative
    "case a of { _ -> b; True -> c }",
    # let floating shapes
    "(let { v = a + b } in f v) c",
    "case (let { v = a + b } in v == 0) of { True -> c; False -> d }",
    # common subexpression
    "(a + b) * (a + b)",
    "(a `div` b) + ((a `div` b) + c)",
)


def default_corpus() -> List[Expr]:
    """The parsed, flattened verification corpus."""
    return [flatten_case_patterns(parse_expr(src)) for src in _CORPUS_SOURCES]


def _firings(
    expr: Expr, rule: Transformation, supply: NameSupply
) -> List[Tuple[Expr, Expr]]:
    """All (subterm, rewritten-subterm) pairs where the rule fires.

    Comparing subterm against its rewrite (rather than whole-program
    before/after) keeps the law check focused and the battery small.
    """
    pairs: List[Tuple[Expr, Expr]] = []

    def visit(e: Expr) -> None:
        rewritten = rule.try_rewrite(e, supply)
        if rewritten is not None:
            pairs.append((e, rewritten))
        if isinstance(e, Lam):
            visit(e.body)
        elif isinstance(e, App):
            visit(e.fn)
            visit(e.arg)
        elif isinstance(e, Con):
            for a in e.args:
                visit(a)
        elif isinstance(e, Case):
            visit(e.scrutinee)
            for alt in e.alts:
                visit(alt.body)
        elif isinstance(e, Raise):
            visit(e.exc)
        elif isinstance(e, PrimOp):
            for a in e.args:
                visit(a)
        elif isinstance(e, Fix):
            visit(e.fn)
        elif isinstance(e, Let):
            for _n, rhs in e.binds:
                visit(rhs)
            visit(e.body)

    visit(expr)
    return pairs


def classify_transformation(
    rule: Transformation,
    corpus: Optional[Sequence[Expr]] = None,
    ctx_factory: Optional[Callable[[], DenoteContext]] = None,
    semantics_name: str = "imprecise",
    function_vars: Sequence[str] = ("f", "g", "h"),
    fuel: int = 20_000,
) -> TransformReport:
    """Classify one rule over the corpus under one semantics."""
    if corpus is None:
        corpus = default_corpus()
    report = TransformReport(rule.name, semantics_name)
    var_batteries = {name: TOTAL_FUNCTION_BATTERY for name in function_vars}
    var_batteries["x"] = PAIR_BATTERY
    var_batteries["y"] = PAIR_BATTERY
    for bool_var in ("p", "q", "r"):
        var_batteries[bool_var] = BOOL_BATTERY
    for expr in corpus:
        supply = NameSupply(avoid=free_vars(expr) | bound_vars(expr))
        for before, after in _firings(expr, rule, supply):
            law = check_law(
                before,
                after,
                name=f"{rule.name}@{report.firings}",
                fuel=fuel,
                ctx_factory=ctx_factory,
                max_environments=600,
                var_batteries=var_batteries,
            )
            report.record(law)
    return report


def classify_on_corpus(
    rules: Sequence[Transformation],
    corpus: Optional[Sequence[Expr]] = None,
    ctx_factory: Optional[Callable[[], DenoteContext]] = None,
    semantics_name: str = "imprecise",
) -> List[TransformReport]:
    """Classify many rules; the comparison table of E3."""
    if corpus is None:
        corpus = default_corpus()
    return [
        classify_transformation(
            rule, corpus, ctx_factory, semantics_name
        )
        for rule in rules
    ]
