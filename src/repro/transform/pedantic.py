"""The ``-fno-pedantic-bottoms`` transformations (Section 5.3 footnote).

"There are a number of situations in which it is useful to be able to
assume that a value is not ⊥.  For example, if v is not ⊥, then the
following law holds::

    case v of { True -> e; False -> e }  =  e

Our compiler has a flag -fno-pedantic-bottoms that enables such
transformations, in exchange for the programmer undertaking the proof
obligation that no sub-expression in the program has value ⊥."

In the imprecise setting the obligation is stronger: the scrutinee must
not be *exceptional* at all — for an exceptional ``v`` the lhs denotes
``Bad (S(v) ∪ S(e))`` while the rhs denotes ``[e]``.  The verifier
demonstrates exactly this: the rule is unsound over the full battery
and an identity over normal-values-only instantiation (the discharged
obligation).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.domains import ConVal, Ok, SemVal
from repro.lang.ast import Case, Expr, PWild
from repro.lang.names import NameSupply
from repro.transform.base import Transformation

# The battery a programmer who has discharged the Section 5.3 proof
# obligation is entitled to: normal values only.
NO_BOTTOM_BATTERY: Tuple[SemVal, ...] = (
    Ok(0),
    Ok(1),
    Ok(7),
    Ok(ConVal("True")),
    Ok(ConVal("False")),
)


class CollapseIdenticalAlts(Transformation):
    """``case v of { p1 -> e; ...; pn -> e }  ==>  e`` when every
    alternative has the same (closed w.r.t. its pattern) body.

    UNSOUND in general under the paper's semantics (the scrutinee's
    exceptions are dropped); valid under the ``-fno-pedantic-bottoms``
    proof obligation.  ``expected`` is therefore ``"unsound"`` — the
    verifier must reject it unless given :data:`NO_BOTTOM_BATTERY`.
    """

    name = "collapse-identical-alts"
    expected = "unsound"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not isinstance(expr, Case) or not expr.alts:
            return None
        from repro.lang.ast import pattern_vars
        from repro.lang.names import free_vars

        first = expr.alts[0].body
        for alt in expr.alts:
            if alt.body != first:
                return None
            # Bodies must not use pattern-bound variables.
            if set(pattern_vars(alt.pattern)) & free_vars(alt.body):
                return None
        return first


class DropSeqOnNonBottom(Transformation):
    """``seq a b ==> b`` — sound only when ``a`` provably denotes a
    normal value; another ``-fno-pedantic-bottoms`` citizen."""

    name = "drop-seq"
    expected = "unsound"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        from repro.lang.ast import PrimOp

        if isinstance(expr, PrimOp) and expr.op == "seq":
            return expr.args[1]
        return None
