"""The strictness-driven call-by-value transformation.

Section 3.4: "Haskell compilers perform strictness analysis to turn
call-by-need into call-by-value.  This crucial transformation changes
the evaluation order, by evaluating a function argument when the
function is called, rather than when the argument is demanded."

The rewrite::

    f e   ==>   case e of x -> f x          (f strict in its argument)

is an identity under the imprecise semantics: if ``e`` denotes
``Bad s`` the rhs enters exception-finding mode and denotes
``Bad (s ∪ S(f (Bad {})))``, while the lhs — ``f`` being strict —
denotes an exception set containing ``s``; with ``f`` strict the two
sets coincide.  Without the strictness precondition the rewrite is
unsound (``(\\x -> 3) (raise E)``), which is exactly why the analysis
exists; and under the *fixed-order* baseline it is unsound even with
the precondition whenever the argument and the function body can both
raise (E4 quantifies this).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.strictness import StrictnessEnv, strict_in
from repro.lang.ast import Alt, App, Case, Con, Expr, Lam, Lit, PVar, Var, unfold_app
from repro.lang.names import NameSupply
from repro.transform.base import Transformation


def _already_whnf(expr: Expr) -> bool:
    return isinstance(expr, (Lit, Lam, Con, Var))


class CallByValue(Transformation):
    """Evaluate strict arguments at the call.

    Two forms of evidence license the rewrite:

    * the callee is a literal lambda whose body is strict in the
      parameter, or
    * the callee is a variable with a strictness signature in ``env``
      saying the corresponding position is strict.
    """

    name = "call-by-value"
    expected = "identity"

    def __init__(self, env: Optional[StrictnessEnv] = None) -> None:
        self.env = env or {}

    def _arg_is_strict(self, fn: Expr, arg_index: int, total: int) -> bool:
        if isinstance(fn, Var):
            signature = self.env.get(fn.name)
            return (
                signature is not None
                and len(signature) == total
                and signature[arg_index]
            )
        return False

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not isinstance(expr, App):
            return None
        # Lambda callee: (\x -> body) e with body strict in x.
        if isinstance(expr.fn, Lam):
            lam = expr.fn
            if _already_whnf(expr.arg):
                return None
            if strict_in(lam.body, lam.var, self.env):
                fresh = supply.fresh("strict")
                return Case(
                    expr.arg,
                    (Alt(PVar(fresh), App(lam, Var(fresh))),),
                )
            return None
        # Saturated call of a known function.
        head, args = unfold_app(expr)
        if not (isinstance(head, Var) and args):
            return None
        last = len(args) - 1
        if _already_whnf(args[last]):
            return None
        if not self._arg_is_strict(head, last, len(args)):
            return None
        fresh = supply.fresh("strict")
        rebuilt: Expr = head
        for a in args[:last]:
            rebuilt = App(rebuilt, a)
        return Case(
            args[last],
            (Alt(PVar(fresh), App(rebuilt, Var(fresh))),),
        )
