"""The transformation protocol and generic rewriting drivers."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Raise,
)
from repro.lang.names import NameSupply, bound_vars, free_vars


class Transformation:
    """A local rewrite rule.

    ``try_rewrite`` attempts the rule at the *root* of an expression,
    returning the rewritten expression or None.  Drivers below apply a
    rule throughout a term.  ``expected`` documents the verdict the
    paper's semantics assigns the rule (``"identity"`` or
    ``"refinement"``) — asserted by the test suite and benchmarks.
    """

    name = "transformation"
    expected = "identity"

    def try_rewrite(
        self, expr: Expr, supply: NameSupply
    ) -> Optional[Expr]:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.name


def _map_children(expr: Expr, f: Callable[[Expr], Expr]) -> Expr:
    """Rebuild an expression with ``f`` applied to each child."""
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Lam):
        return Lam(expr.var, f(expr.body))
    if isinstance(expr, App):
        return App(f(expr.fn), f(expr.arg))
    if isinstance(expr, Con):
        return Con(expr.name, tuple(f(a) for a in expr.args), expr.arity)
    if isinstance(expr, Case):
        return Case(
            f(expr.scrutinee),
            tuple(Alt(alt.pattern, f(alt.body)) for alt in expr.alts),
        )
    if isinstance(expr, Raise):
        return Raise(f(expr.exc))
    if isinstance(expr, PrimOp):
        return PrimOp(expr.op, tuple(f(a) for a in expr.args))
    if isinstance(expr, Fix):
        return Fix(f(expr.fn))
    if isinstance(expr, Let):
        return Let(
            tuple((name, f(rhs)) for name, rhs in expr.binds),
            f(expr.body),
        )
    return expr  # Var


def rewrite_bottom_up(
    expr: Expr,
    rule: Transformation,
    supply: Optional[NameSupply] = None,
) -> Tuple[Expr, int]:
    """Apply ``rule`` once at every node, children first.

    Returns the rewritten expression and the number of rule firings.
    """
    if supply is None:
        supply = NameSupply(avoid=free_vars(expr) | bound_vars(expr))
    count = 0

    def go(e: Expr) -> Expr:
        nonlocal count
        e = _map_children(e, go)
        rewritten = rule.try_rewrite(e, supply)
        if rewritten is not None:
            count += 1
            return rewritten
        return e

    return go(expr), count


def rewrite_everywhere(
    expr: Expr,
    rule: Transformation,
    supply: Optional[NameSupply] = None,
) -> Expr:
    """Bottom-up application, discarding the count."""
    rewritten, _count = rewrite_bottom_up(expr, rule, supply)
    return rewritten


def rewrite_fixpoint(
    expr: Expr,
    rules: List[Transformation],
    supply: Optional[NameSupply] = None,
    max_rounds: int = 20,
) -> Tuple[Expr, int]:
    """Apply a list of rules bottom-up repeatedly until no rule fires
    (or the round budget runs out — rules like CSE can ping-pong with
    inlining, so a bound is essential)."""
    if supply is None:
        supply = NameSupply(avoid=free_vars(expr) | bound_vars(expr))
    total = 0
    for _round in range(max_rounds):
        fired = 0
        for rule in rules:
            expr, count = rewrite_bottom_up(expr, rule, supply)
            fired += count
        total += fired
        if fired == 0:
            break
    return expr, total
