"""Case transformations — the rules that motivated the exception-finding
mode of Section 4.3.

``CaseSwitch`` is the paper's Section 4 opening example::

    case x of (a,b) -> case y of (p,q) -> e
  =
    case y of (p,q) -> case x of (a,b) -> e

"In Haskell the answer is yes; ... But if x and y are both bound to
exceptional values, then the order of the cases clearly determines
which exception will be encountered."  The exception-finding semantics
restores the law (as an identity); the naive case rule makes it fail —
both verified in the tests and in E7.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import (
    Alt,
    App,
    Case,
    Con,
    Expr,
    Lit,
    PCon,
    PLit,
    PVar,
    PWild,
    Var,
    pattern_vars,
)
from repro.lang.names import NameSupply, free_vars, substitute
from repro.transform.base import Transformation


class CaseSwitch(Transformation):
    """Swap two adjacent single-alternative cases on distinct variables
    (both will be evaluated anyway — the strictness-analysis insight)."""

    name = "case-switch"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not (isinstance(expr, Case) and len(expr.alts) == 1):
            return None
        outer_alt = expr.alts[0]
        inner = outer_alt.body
        if not (isinstance(inner, Case) and len(inner.alts) == 1):
            return None
        inner_alt = inner.alts[0]
        outer_scrut, inner_scrut = expr.scrutinee, inner.scrutinee
        if not (
            isinstance(outer_scrut, Var) and isinstance(inner_scrut, Var)
        ):
            return None
        if outer_scrut.name == inner_scrut.name:
            return None
        outer_vars = set(pattern_vars(outer_alt.pattern))
        inner_vars = set(pattern_vars(inner_alt.pattern))
        # The inner scrutinee must not be bound by the outer pattern
        # (and vice versa after the swap), and the patterns must not
        # shadow each other's variables.
        if inner_scrut.name in outer_vars:
            return None
        if outer_scrut.name in inner_vars:
            return None
        if outer_vars & inner_vars:
            return None
        return Case(
            inner_scrut,
            (
                Alt(
                    inner_alt.pattern,
                    Case(outer_scrut, (Alt(outer_alt.pattern, inner_alt.body),)),
                ),
            ),
        )


class CaseOfCase(Transformation):
    """``case (case e of p_i -> r_i) of alts  ==>
    case e of p_i -> case r_i of alts``.

    May duplicate the outer alternatives (real compilers introduce join
    points; duplication does not affect meaning).

    A refinement, not an identity: on an exceptional inner scrutinee
    the lhs explores every *outer* alternative in exception-finding
    mode, while on the rhs an inner branch that returns a known normal
    value selects just one — so the rhs can denote a strictly smaller
    exception set."""

    name = "case-of-case"
    expected = "refinement"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not (isinstance(expr, Case) and isinstance(expr.scrutinee, Case)):
            return None
        inner = expr.scrutinee
        outer_alts = expr.alts
        outer_free = set()
        for alt in outer_alts:
            outer_free |= free_vars(alt.body)
        new_alts = []
        for alt in inner.alts:
            # Inner pattern variables must not capture outer bodies.
            if set(pattern_vars(alt.pattern)) & outer_free:
                return None
            new_alts.append(Alt(alt.pattern, Case(alt.body, outer_alts)))
        return Case(inner.scrutinee, tuple(new_alts))


class CaseOfKnownCon(Transformation):
    """``case (C a b) of ... C x y -> r ...  ==>  let x=a; y=b in r``
    (substituting directly; the let form preserves sharing)."""

    name = "case-of-known-constructor"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not isinstance(expr, Case):
            return None
        scrut = expr.scrutinee
        if isinstance(scrut, Con):
            for alt in expr.alts:
                pat = alt.pattern
                if isinstance(pat, PWild):
                    return alt.body
                if isinstance(pat, PVar):
                    return substitute(alt.body, {pat.name: scrut})
                if isinstance(pat, PCon) and pat.name == scrut.name:
                    mapping = {}
                    for sub, arg in zip(pat.args, scrut.args):
                        if isinstance(sub, PVar):
                            mapping[sub.name] = arg
                        elif not isinstance(sub, PWild):
                            return None  # nested: leave to flattener
                    return substitute(alt.body, mapping)
                if isinstance(pat, PCon):
                    continue  # known mismatch: try the next alternative
                return None
            return None
        if isinstance(scrut, Lit):
            for alt in expr.alts:
                pat = alt.pattern
                if isinstance(pat, PWild):
                    return alt.body
                if isinstance(pat, PVar):
                    return substitute(alt.body, {pat.name: scrut})
                if isinstance(pat, PLit):
                    if pat.value == scrut.value:
                        return alt.body
                    continue
                return None
            return None
        return None


class AppOfCase(Transformation):
    """The paper's Section 4.5 *refinement* example::

        (case e of True -> f; False -> g) x
      ⊑
        case e of True -> f x; False -> g x

    With ``e = raise E`` and ``x = raise X``, the lhs denotes
    ``Bad {E, X}`` but the rhs denotes ``Bad {E}`` — strictly more
    information.  "We argue that it is legitimate to perform a
    transformation that increases information."
    """

    name = "app-of-case"
    expected = "refinement"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not (isinstance(expr, App) and isinstance(expr.fn, Case)):
            return None
        case = expr.fn
        arg_free = free_vars(expr.arg)
        new_alts = []
        for alt in case.alts:
            if set(pattern_vars(alt.pattern)) & arg_free:
                return None
            new_alts.append(Alt(alt.pattern, App(alt.body, expr.arg)))
        return Case(case.scrutinee, tuple(new_alts))


class DeadAltRemoval(Transformation):
    """Remove a syntactically unreachable alternative (one shadowed by
    an earlier catch-all pattern).

    A *refinement*: on an exceptional scrutinee the exception-finding
    mode explores every alternative, so removing one can only shrink
    the denoted set."""

    name = "dead-alt-removal"
    expected = "refinement"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not isinstance(expr, Case):
            return None
        for idx, alt in enumerate(expr.alts):
            if isinstance(alt.pattern, (PVar, PWild)) and idx + 1 < len(
                expr.alts
            ):
                return Case(expr.scrutinee, expr.alts[: idx + 1])
        return None
