"""Common subexpression elimination.

Sharing two syntactically identical pure subexpressions is an identity
under the imprecise semantics — the denotation of an expression does
not depend on how many times it is computed.  (Contrast the rejected
non-deterministic design of Section 3.4, where two occurrences of the
same expression may denote *different* exceptions, making CSE and its
inverse both unsound.)
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.lang.ast import (
    App,
    Case,
    Con,
    Expr,
    Fix,
    Lam,
    Let,
    Lit,
    PrimOp,
    Raise,
    Var,
    expr_size,
)
from repro.lang.names import NameSupply, bound_vars, free_vars
from repro.transform.base import Transformation


def _subexpressions(expr: Expr, out: Counter) -> None:
    """Count closed-enough candidate subexpressions (no binders inside
    whose variables escape — we only count subtrees whose free vars are
    free in the whole expression, checked by the caller)."""
    if isinstance(expr, (App, PrimOp)) and expr_size(expr) >= 3:
        out[expr] += 1
    if isinstance(expr, Lam):
        _subexpressions(expr.body, out)
    elif isinstance(expr, App):
        _subexpressions(expr.fn, out)
        _subexpressions(expr.arg, out)
    elif isinstance(expr, Con):
        for a in expr.args:
            _subexpressions(a, out)
    elif isinstance(expr, Case):
        _subexpressions(expr.scrutinee, out)
        for alt in expr.alts:
            _subexpressions(alt.body, out)
    elif isinstance(expr, Raise):
        _subexpressions(expr.exc, out)
    elif isinstance(expr, PrimOp):
        for a in expr.args:
            _subexpressions(a, out)
    elif isinstance(expr, Fix):
        _subexpressions(expr.fn, out)
    elif isinstance(expr, Let):
        for _n, rhs in expr.binds:
            _subexpressions(rhs, out)
        _subexpressions(expr.body, out)


def _replace(expr: Expr, target: Expr, name: str) -> Expr:
    if expr == target:
        return Var(name)
    if isinstance(expr, Lam):
        return Lam(expr.var, _replace(expr.body, target, name))
    if isinstance(expr, App):
        return App(
            _replace(expr.fn, target, name),
            _replace(expr.arg, target, name),
        )
    if isinstance(expr, Con):
        return Con(
            expr.name,
            tuple(_replace(a, target, name) for a in expr.args),
            expr.arity,
        )
    if isinstance(expr, Case):
        from repro.lang.ast import Alt

        return Case(
            _replace(expr.scrutinee, target, name),
            tuple(
                Alt(alt.pattern, _replace(alt.body, target, name))
                for alt in expr.alts
            ),
        )
    if isinstance(expr, Raise):
        return Raise(_replace(expr.exc, target, name))
    if isinstance(expr, PrimOp):
        return PrimOp(
            expr.op, tuple(_replace(a, target, name) for a in expr.args)
        )
    if isinstance(expr, Fix):
        return Fix(_replace(expr.fn, target, name))
    if isinstance(expr, Let):
        return Let(
            tuple(
                (n, _replace(rhs, target, name)) for n, rhs in expr.binds
            ),
            _replace(expr.body, target, name),
        )
    return expr


class CommonSubexpression(Transformation):
    """Bind one repeated subexpression in a fresh ``let``.

    Only subexpressions all of whose free variables are free at the
    *root* are candidates (no rebinding headaches); this is the common
    conservative CSE."""

    name = "cse"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        # Applying at every node would re-trigger on its own output;
        # restrict to "large" roots to keep the driver terminating.
        if isinstance(expr, (Var, Lit)):
            return None
        root_free = free_vars(expr)
        bound = bound_vars(expr)
        counts: Counter = Counter()
        _subexpressions(expr, counts)
        candidates = [
            (sub, n)
            for sub, n in counts.items()
            if n >= 2 and free_vars(sub) <= root_free and not (
                free_vars(sub) & bound
            )
        ]
        if not candidates:
            return None
        # Largest first: sharing the biggest tree helps the most.
        candidates.sort(key=lambda pair: -expr_size(pair[0]))
        target, _count = candidates[0]
        if isinstance(expr, Let):
            for _n, rhs in expr.binds:
                if rhs == target:
                    return None  # already bound right here
        name = supply.fresh("shared")
        return Let(((name, target),), _replace(expr, target, name))
