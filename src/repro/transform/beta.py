"""Beta reduction and friends.

Beta reduction is the transformation the paper refuses to give up: the
"go non-deterministic" design was rejected precisely because it breaks
β (Section 3.4), and the sets-of-exceptions design restores it ("Beta
reduction remains valid", Section 3.5).
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import App, Expr, Lam, Let, Var
from repro.lang.names import NameSupply, free_vars, substitute
from repro.transform.base import Transformation


class BetaReduce(Transformation):
    """``(\\x -> body) arg  ==>  body[arg/x]``.

    Call-by-name beta: capture-avoiding substitution.  Semantically an
    identity under the imprecise semantics; it may duplicate *work*
    (not meaning), which the cost-conscious :class:`BetaToLet` avoids.
    """

    name = "beta-reduce"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if isinstance(expr, App) and isinstance(expr.fn, Lam):
            return substitute(
                expr.fn.body, {expr.fn.var: expr.arg}
            )
        return None


class BetaToLet(Transformation):
    """``(\\x -> body) arg  ==>  let x = arg in body`` — the
    sharing-preserving form compilers actually use."""

    name = "beta-to-let"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if isinstance(expr, App) and isinstance(expr.fn, Lam):
            lam = expr.fn
            if lam.var in free_vars(expr.arg):
                fresh = supply.fresh(lam.var)
                body = substitute(lam.body, {lam.var: Var(fresh)})
                return Let(((fresh, expr.arg),), body)
            return Let(((lam.var, expr.arg),), lam.body)
        return None


class EtaReduce(Transformation):
    """``\\x -> f x  ==>  f`` when ``x`` not free in ``f``.

    NOTE: this is *not* an identity in general in a lazy language with
    exceptions: ``\\x -> f x`` is a normal value (a lambda) even when
    ``f`` is exceptional or ⊥ — "a lambda abstraction is a normal
    value; that is λx.⊥ ≠ ⊥" (Section 4.2).  The rewrite *loses*
    information (``Ok (\\x -> ...)`` becomes ``Bad s``), so it is not
    even a refinement; it goes the wrong way.  It is included
    deliberately: the verifier must *reject* it (tested in
    ``tests/transform/test_verify.py``).
    """

    name = "eta-reduce"
    expected = "unsound"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if (
            isinstance(expr, Lam)
            and isinstance(expr.body, App)
            and isinstance(expr.body.arg, Var)
            and expr.body.arg.name == expr.var
            and expr.var not in free_vars(expr.body.fn)
        ):
            return expr.body.fn
        return None
