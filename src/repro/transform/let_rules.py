"""Let transformations: floating and dead-code elimination.

All identities: ``let`` is non-strict, so moving or deleting a binding
never changes what is demanded — only *when* it would be demanded,
which the imprecise semantics deliberately does not pin down.
"""

from __future__ import annotations

from typing import Optional

from repro.lang.ast import App, Case, Expr, Let, pattern_vars
from repro.lang.names import NameSupply, free_vars
from repro.transform.base import Transformation


class DeadLetElimination(Transformation):
    """``let x = e in b  ==>  b`` when ``x`` unused in ``b`` (and the
    binding group has no other members referencing it)."""

    name = "dead-let"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not isinstance(expr, Let):
            return None
        used = free_vars(expr.body)
        for _name, rhs in expr.binds:
            used |= free_vars(rhs)
        live = tuple(
            (name, rhs) for name, rhs in expr.binds if name in used
        )
        if len(live) == len(expr.binds):
            return None
        if not live:
            return expr.body
        return Let(live, expr.body)


class LetFloatFromApp(Transformation):
    """``(let binds in f) a  ==>  let binds in (f a)``."""

    name = "let-float-from-app"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not (isinstance(expr, App) and isinstance(expr.fn, Let)):
            return None
        let = expr.fn
        bound = {name for name, _ in let.binds}
        if bound & free_vars(expr.arg):
            return None
        return Let(let.binds, App(let.body, expr.arg))


class LetFloatFromCase(Transformation):
    """``case (let binds in e) of alts  ==>  let binds in case e of alts``."""

    name = "let-float-from-case"
    expected = "identity"

    def try_rewrite(self, expr: Expr, supply: NameSupply) -> Optional[Expr]:
        if not (isinstance(expr, Case) and isinstance(expr.scrutinee, Let)):
            return None
        let = expr.scrutinee
        bound = {name for name, _ in let.binds}
        alt_free = set()
        for alt in expr.alts:
            alt_free |= free_vars(alt.body) - set(pattern_vars(alt.pattern))
        if bound & alt_free:
            return None
        return Let(let.binds, Case(let.body, expr.alts))
