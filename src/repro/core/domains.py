"""The semantic domain ``M t`` of Section 4.1.

Following the paper's "perhaps more perspicuous" presentation::

    M t = {Ok v | v ∈ t} ∪ {Bad s | s ⊆ E} ∪ {Bad (E ∪ {NonTermination})}

A denotation is either a normal value ``Ok v`` or an exceptional value
``Bad s`` where ``s`` is an :class:`repro.core.excset.ExcSet`; the
bottom element is ``Bad BOTTOM_SET``.

Normal values ``v`` are:

* Python ``int`` (machine integers with the paper's overflow checking),
* Python ``str`` of length 1 for characters and arbitrary ``str`` for
  the ``String`` base type (kept primitive rather than ``[Char]`` for
  efficiency; ``error``/``UserError`` carry them),
* :class:`ConVal` — a constructor applied to *lazy* arguments (thunks),
  since constructors are non-strict (Section 4.2),
* :class:`FunVal` — a function from thunk to denotation; note
  ``Ok (\\x.⊥) ≠ ⊥``: "a lambda abstraction is a normal value"
  (Section 4.2),
* :class:`IOVal` — an unperformed IO computation (a first-class value
  with no side effects until performed, Section 3.5).

Laziness is emulated with memoised closures: a :class:`Thunk` wraps a
nullary Python callable and caches its denotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from repro.core.excset import BOTTOM_SET, ExcSet, EMPTY_SET


class SemVal:
    """Base class of denotations."""

    __slots__ = ()


class Thunk:
    """A memoised lazy denotation.

    ``Thunk(fn)`` delays ``fn()``; :meth:`force` computes it once and
    caches.  Re-entrant forcing (a value defined directly in terms of
    itself, e.g. ``black = black + 1``) is detected and yields ⊥ — at
    the denotational level such a knot genuinely *is* ⊥, which is also
    what licenses the Section 5.2 "detectable bottoms" behaviour.
    """

    __slots__ = ("_fn", "_value", "_entered")

    def __init__(self, fn: Callable[[], "SemVal"]) -> None:
        self._fn: Optional[Callable[[], SemVal]] = fn
        self._value: Optional[SemVal] = None
        self._entered = False

    @staticmethod
    def ready(value: "SemVal") -> "Thunk":
        thunk = Thunk.__new__(Thunk)
        thunk._fn = None
        thunk._value = value
        thunk._entered = False
        return thunk

    def force(self) -> "SemVal":
        if self._value is not None:
            return self._value
        if self._entered:
            return BOTTOM
        self._entered = True
        try:
            assert self._fn is not None
            value = self._fn()
        finally:
            self._entered = False
        self._value = value
        self._fn = None
        return value


@dataclass(frozen=True)
class Ok(SemVal):
    """A normal value."""

    value: object

    def __str__(self) -> str:
        return f"Ok {self.value}"


@dataclass(frozen=True)
class Bad(SemVal):
    """An exceptional value carrying a *set* of exceptions."""

    excs: ExcSet

    def __str__(self) -> str:
        return f"Bad {self.excs}"


BOTTOM = Bad(BOTTOM_SET)
BAD_EMPTY = Bad(EMPTY_SET)  # the "strange value Bad {}" of Section 4.3


@dataclass(frozen=True)
class ConVal:
    """A saturated constructor value with lazy fields."""

    name: str
    args: Tuple[Thunk, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}<{len(self.args)} args>"


@dataclass(frozen=True)
class FunVal:
    """A semantic function: thunked argument in, denotation out."""

    fn: Callable[[Thunk], SemVal]
    label: str = "<function>"

    def apply(self, arg: Thunk) -> SemVal:
        return self.fn(arg)

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class IOVal:
    """An unperformed IO action (interpreted by :mod:`repro.io`).

    ``tag`` is one of ``return``, ``bind``, ``getChar``, ``putChar``,
    ``putStr``, ``getException``, ``ioError``; ``payload`` is a tuple of
    thunks whose shape depends on the tag.
    """

    tag: str
    payload: Tuple[Thunk, ...] = ()

    def __str__(self) -> str:
        return f"IO<{self.tag}>"


def mk_bad(excs: ExcSet) -> Bad:
    return BOTTOM if excs.is_bottom() else Bad(excs)


def is_bottom(value: SemVal) -> bool:
    return isinstance(value, Bad) and value.excs.is_bottom()


def exc_part(value: SemVal) -> ExcSet:
    """The auxiliary function ``S`` of Section 4.2:
    ``S(Ok v) = {}`` and ``S(Bad s) = s``."""
    if isinstance(value, Bad):
        return value.excs
    return EMPTY_SET


def ok_unit() -> Ok:
    return Ok(ConVal("Unit"))


def ok_bool(flag: bool) -> Ok:
    return Ok(ConVal("True" if flag else "False"))


def from_bool(value: SemVal) -> Optional[bool]:
    """Read a Bool denotation back, or None if exceptional/non-Bool."""
    if isinstance(value, Ok) and isinstance(value.value, ConVal):
        if value.value.name == "True":
            return True
        if value.value.name == "False":
            return False
    return None
