"""The information order ``⊑`` on denotations (Section 4.1 / 4.5).

The domain ``M t = t_⊥ + P(E)_⊥`` is a coalesced sum, so:

* ``Bad s1 ⊑ Bad s2``  iff  ``s1 ⊇ s2`` (reverse inclusion);
* ``⊥ = Bad (E ∪ {NonTermination})`` is below everything;
* a non-bottom ``Bad`` and an ``Ok`` are incomparable;
* ``Ok v1 ⊑ Ok v2`` is the pointwise order on ``t``: base values by
  equality, constructor values componentwise (forcing lazily, bounded
  by ``depth``), functions extensionally over a finite probe set.

Functions make ``⊑`` undecidable in general; for law checking
(Section 4.5) we compare them extensionally on a battery of probe
arguments — ``Ok 0``, ``Ok 1``, ``Bad {}``, a singleton ``Bad`` and ⊥ —
which suffices to *refute* laws and gives strong evidence for them
(this is a testing semantics, documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.domains import (
    BAD_EMPTY,
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    SemVal,
    Thunk,
)
from repro.core.excset import DIVIDE_BY_ZERO, ExcSet


def default_probes() -> Sequence[Thunk]:
    """Probe arguments for extensional function comparison."""
    return (
        Thunk.ready(Ok(0)),
        Thunk.ready(Ok(1)),
        Thunk.ready(BAD_EMPTY),
        Thunk.ready(Bad(ExcSet.of(DIVIDE_BY_ZERO))),
        Thunk.ready(BOTTOM),
    )


def refines(
    lower: SemVal,
    upper: SemVal,
    depth: int = 6,
    probes: Optional[Sequence[Thunk]] = None,
) -> bool:
    """Is ``lower ⊑ upper``?  (``upper`` has at least as much
    information: a transformation ``e -> e'`` is *legitimate* when
    ``[e] ⊑ [e']``, Section 4.5.)"""
    if probes is None:
        probes = default_probes()
    return _refines(lower, upper, depth, probes)


def _refines(
    lower: SemVal, upper: SemVal, depth: int, probes: Sequence[Thunk]
) -> bool:
    if isinstance(lower, Bad):
        if lower.excs.is_bottom():
            return True
        if isinstance(upper, Bad):
            return lower.excs.superset_of(upper.excs)
        return False
    if isinstance(upper, Bad):
        return False
    assert isinstance(lower, Ok) and isinstance(upper, Ok)
    a, b = lower.value, upper.value
    if isinstance(a, ConVal) and isinstance(b, ConVal):
        if a.name != b.name or len(a.args) != len(b.args):
            return False
        if depth <= 0:
            return True  # depth-bounded: assume comparable (testing order)
        return all(
            _refines(x.force(), y.force(), depth - 1, probes)
            for x, y in zip(a.args, b.args)
        )
    if isinstance(a, FunVal) and isinstance(b, FunVal):
        if a is b:
            return True
        if depth <= 0:
            return True
        return all(
            _refines(a.apply(p), b.apply(p), depth - 1, probes)
            for p in probes
        )
    if isinstance(a, IOVal) and isinstance(b, IOVal):
        if a.tag != b.tag or len(a.payload) != len(b.payload):
            return False
        if depth <= 0:
            return True
        return all(
            _refines(x.force(), y.force(), depth - 1, probes)
            for x, y in zip(a.payload, b.payload)
        )
    return a == b and type(a) is type(b)


def sem_equal(
    a: SemVal,
    b: SemVal,
    depth: int = 6,
    probes: Optional[Sequence[Thunk]] = None,
) -> bool:
    """Semantic equality: ``a ⊑ b`` and ``b ⊑ a``."""
    return refines(a, b, depth, probes) and refines(b, a, depth, probes)
