"""The paper's primary contribution: the imprecise-exception semantics.

* :mod:`repro.core.excset` — the lattice ``P(E)_⊥`` of exception sets
  under reverse inclusion (Section 4.1).
* :mod:`repro.core.domains` — the semantic domain ``M t``: values are
  ``Ok v`` or ``Bad s`` with ``⊥ = Bad (E ∪ {NonTermination})``.
* :mod:`repro.core.denote` — the denotational evaluator (Section 4.2 /
  4.3), including ``case``'s exception-finding mode.
* :mod:`repro.core.ordering` — the information order ``⊑`` on
  denotations, used to classify transformations as identities or
  refinements (Section 4.5).
* :mod:`repro.core.laws` — law-checking helpers built on the above.
"""

from repro.core.excset import (
    ALL_EXCEPTIONS,
    BOTTOM_SET,
    CONTROL_C,
    DIVIDE_BY_ZERO,
    EMPTY_SET,
    Exc,
    ExcSet,
    HEAP_OVERFLOW,
    NON_TERMINATION,
    OVERFLOW,
    PATTERN_MATCH_FAIL,
    STACK_OVERFLOW,
    TIMEOUT,
    user_error,
)
from repro.core.domains import (
    BOTTOM,
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    SemVal,
    Thunk,
    exc_part,
    is_bottom,
    mk_bad,
)
from repro.core.denote import DenoteContext, denote, denote_expr, denote_program
from repro.core.ordering import refines, sem_equal
from repro.core.laws import LawReport, check_law

__all__ = [
    "ALL_EXCEPTIONS",
    "BOTTOM",
    "BOTTOM_SET",
    "Bad",
    "CONTROL_C",
    "ConVal",
    "DIVIDE_BY_ZERO",
    "DenoteContext",
    "EMPTY_SET",
    "Exc",
    "ExcSet",
    "FunVal",
    "HEAP_OVERFLOW",
    "IOVal",
    "LawReport",
    "NON_TERMINATION",
    "OVERFLOW",
    "Ok",
    "PATTERN_MATCH_FAIL",
    "STACK_OVERFLOW",
    "SemVal",
    "TIMEOUT",
    "Thunk",
    "check_law",
    "denote",
    "denote_expr",
    "denote_program",
    "exc_part",
    "is_bottom",
    "mk_bad",
    "refines",
    "sem_equal",
    "user_error",
]
