"""Deep rendering of denotations.

``str(SemVal)`` shows WHNF only; :func:`show_semval` forces lazily
through constructor fields, rendering lurking exceptional values as
``<Bad {...}>`` instead of aborting — the denotational counterpart of
:func:`repro.machine.observe.show_value` (Section 3.2: exceptional
values hide inside lazy structures and surface only on demand).
"""

from __future__ import annotations

from typing import List

from repro.core.domains import (
    Bad,
    ConVal,
    FunVal,
    IOVal,
    Ok,
    SemVal,
    Thunk,
)


def show_semval(value: SemVal, depth: int = 50) -> str:
    """Render a denotation, forcing constructor fields as needed."""
    if isinstance(value, Bad):
        return f"<Bad {value.excs}>"
    assert isinstance(value, Ok)
    inner = value.value
    if isinstance(inner, bool):
        return str(inner)
    if isinstance(inner, int):
        return str(inner)
    if isinstance(inner, str):
        return repr(inner)
    if isinstance(inner, FunVal):
        return "<function>"
    if isinstance(inner, IOVal):
        return f"<io:{inner.tag}>"
    if isinstance(inner, ConVal):
        return _show_con(inner, depth)
    return str(inner)


def _force(thunk: Thunk, depth: int) -> str:
    if depth <= 0:
        return "..."
    return show_semval(thunk.force(), depth)


def _show_con(con: ConVal, depth: int) -> str:
    if con.name == "Cons":
        items: List[str] = []
        current: object = con
        budget = depth
        while (
            isinstance(current, ConVal)
            and current.name == "Cons"
            and budget > 0
        ):
            items.append(_force(current.args[0], budget - 1))
            tail = current.args[1].force()
            if isinstance(tail, Bad):
                items.append(f"<Bad {tail.excs}>")
                return "[" + ", ".join(items) + "?"
            assert isinstance(tail, Ok)
            current = tail.value
            budget -= 1
        if isinstance(current, ConVal) and current.name == "Nil":
            return "[" + ", ".join(items) + "]"
        return "[" + ", ".join(items) + ", ...]"
    if con.name.startswith("Tuple"):
        return (
            "("
            + ", ".join(_force(a, depth - 1) for a in con.args)
            + ")"
        )
    if not con.args:
        return con.name
    inner = " ".join(_force(a, depth - 1) for a in con.args)
    return f"({con.name} {inner})"
