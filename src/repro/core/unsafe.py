"""``isException`` — the Section 5.4 cautionary tale, implemented.

The paper asks whether a *pure* ``isException :: a -> Bool`` can
exist.  Two respectable denotational semantics are available:

* the **optimistic** one — ``isException (Bad s) = True`` always;
* the **pessimistic** one — ``isException (Bad s) = ⊥`` when
  ``NonTermination ∈ s`` (the set might only be "exceptional" because
  of possible divergence).

Neither is efficiently implementable, "because they require the
implementation to detect nontermination": evaluating
``isException ((1/0) + loop)`` right-to-left loops (where the
optimistic semantics demands True), and left-to-right returns True
(where the pessimistic semantics demands ⊥).  The paper's resolution
— option 2 of its list — is to expose the function as
``unsafeIsException`` with a *proof obligation* on the programmer:
the argument must not be ⊥.

This module provides all three artifacts:

* :func:`is_exception_optimistic` / :func:`is_exception_pessimistic`
  — the two denotational semantics, as functions on denotations;
* :func:`unsafe_is_exception` — the paper's chosen design, documented
  with its obligation;
* :func:`observe_is_exception` — the operational behaviour under a
  given strategy, used by the tests to *demonstrate* the
  unimplementability argument (different strategies disagree with
  whichever pure semantics you pick).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.denote import DenoteContext, denote
from repro.core.domains import (
    BOTTOM,
    Bad,
    ConVal,
    Ok,
    SemVal,
    Thunk,
)
from repro.core.excset import NON_TERMINATION
from repro.lang.ast import Expr


def is_exception_optimistic(value: SemVal) -> SemVal:
    """The optimistic semantics: any exceptional value answers True.

    Making this implementable would require the language to promise
    only "the same or LESS defined than the denotation" — under which
    "an implementation could, in theory, abort with an error message
    or fail to terminate for any program at all" (Section 5.4,
    option 4)."""
    if isinstance(value, Bad):
        return Ok(ConVal("True"))
    return Ok(ConVal("False"))


def is_exception_pessimistic(value: SemVal) -> SemVal:
    """The pessimistic semantics: possible divergence answers ⊥.

    Making this implementable would require "any value that is the
    same as or MORE defined than the program's denotation" — under
    which a looping program "would be justified in returning an IO
    computation that (say) deleted your entire filestore"
    (Section 5.4, option 3)."""
    if isinstance(value, Bad):
        if NON_TERMINATION in value.excs:
            return BOTTOM
        return Ok(ConVal("True"))
    return Ok(ConVal("False"))


def unsafe_is_exception(
    expr: Expr,
    env: Optional[Dict[str, Thunk]] = None,
    ctx: Optional[DenoteContext] = None,
) -> SemVal:
    """The paper's chosen design (Section 5.4, option 2).

    PROOF OBLIGATION: the caller must ensure ``expr`` does not denote
    ⊥.  Under that assumption the optimistic and pessimistic semantics
    coincide and every evaluation order implements them; without it,
    which answer (or divergence) you get is evaluation-order-dependent
    and this function's result is meaningless.
    """
    if ctx is None:
        ctx = DenoteContext(fuel=100_000)
    value = denote(expr, dict(env) if env else {}, ctx)
    return is_exception_optimistic(value)


def observe_is_exception(
    expr: Expr,
    strategy=None,
    env=None,
    fuel: int = 100_000,
) -> str:
    """What an *implementation* of isException does under a strategy:
    force the argument to WHNF and report.  Returns ``"True"``,
    ``"False"`` or ``"diverged"`` — the Section 5.4 demonstration that
    no strategy implements either pure semantics on all arguments."""
    from repro.machine.eval import Machine
    from repro.machine.heap import MachineDiverged, ObjRaise

    machine = Machine(strategy=strategy, fuel=fuel,
                      detect_blackholes=False)
    try:
        machine.eval(expr, dict(env) if env else {})
        return "False"
    except ObjRaise:
        return "True"
    except MachineDiverged:
        return "diverged"
